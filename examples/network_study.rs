//! The paper's §II-A motivation, reproduced as a study: stream each named
//! resolution over simulated WiFi and 5G mmWave links and measure frame
//! drops — high-resolution streams collapse, the 720p stream (what
//! GameStreamSR ships plus RoI coordinates) fits.
//!
//! ```text
//! cargo run --release --example network_study
//! ```

use gss::frame::Resolution;
use gss::net::{stream_drop_rate, Link, LinkProfile};

/// Rough coded bytes per frame at 60 FPS for each resolution, scaled from
/// the codec's measured 720p output (sublinear in pixels, exponent 0.835 —
/// see `gamestreamsr::session`).
fn bytes_per_frame(res: Resolution) -> usize {
    const BYTES_720P: f64 = 62_000.0;
    let ratio = res.pixels() as f64 / Resolution::P720.pixels() as f64;
    (BYTES_720P * ratio.powf(0.835)) as usize
}

fn main() {
    println!("frame-drop study: 60 FPS game streams over simulated wireless links\n");
    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>12}",
        "stream", "bytes/frame", "Mbps", "WiFi drops", "5G drops"
    );
    for res in [
        Resolution::P2160,
        Resolution::P1440,
        Resolution::P1080,
        Resolution::P720,
        Resolution::P480,
    ] {
        let bytes = bytes_per_frame(res);
        let mbps = bytes as f64 * 8.0 * 60.0 / 1e6;
        let wifi = stream_drop_rate(&LinkProfile::wifi(), 42, bytes, 60.0, 1800);
        let mm = stream_drop_rate(&LinkProfile::mmwave_5g(), 42, bytes, 60.0, 1800);
        println!(
            "{:<8} {:>12} {:>10.1} {:>11.1}% {:>11.1}%",
            res.to_string(),
            bytes,
            mbps,
            wifi * 100.0,
            mm * 100.0
        );
    }

    // latency distribution of the stream GameStreamSR actually ships
    println!("\ndownlink transit latency for the 720p stream over WiFi:");
    let mut link = Link::new(LinkProfile::wifi(), 7);
    let mut transits: Vec<f64> = (0..1800)
        .filter_map(|i| {
            let t = link.send(bytes_per_frame(Resolution::P720), i as f64 * 16.66);
            t.delivered().then_some(t.transit_ms)
        })
        .collect();
    transits.sort_by(f64::total_cmp);
    let pct = |p: f64| transits[((transits.len() - 1) as f64 * p) as usize];
    println!(
        "  p50 {:.1} ms | p90 {:.1} ms | p99 {:.1} ms | delivered {}/{}",
        pct(0.5),
        pct(0.9),
        pct(0.99),
        transits.len(),
        1800
    );
    println!(
        "\nconclusion: the {:.0} Mbps 2K stream is undeliverable; GameStreamSR's 720p
stream + client-side RoI super-resolution restores 2K-class output without the loss.",
        bytes_per_frame(Resolution::P1440) as f64 * 8.0 * 60.0 / 1e6
    );
}
