//! Step-0 of a GameStreamSR session (paper Fig. 6): calibrate the client
//! device's RoI window — the foveal minimum from human visual physiology
//! and the compute maximum from benchmarking the SR model on the NPU —
//! then report the latency curve the choice comes from.
//!
//! ```text
//! cargo run --release --example device_calibration
//! ```

use gss::core::roi::plan_roi_window;
use gss::platform::{DeviceProfile, REALTIME_BUDGET_MS};
use gss::sr::edsr::{Edsr, EdsrConfig};

fn main() {
    println!("EDSR-16/64 x2 (the paper's SR model):");
    let model = Edsr::new(EdsrConfig::default());
    for side in [100usize, 200, 300, 720] {
        let macs = model.macs_for_input(side, side);
        println!(
            "  {side:>4}x{side:<4} input: {:.1} GMACs",
            macs as f64 / 1e9
        );
    }
    println!();

    for device in DeviceProfile::all() {
        println!("=== {} ===", device.name);
        println!("  NPU latency curve (x2 SR):");
        for side in [150usize, 200, 250, 300, 350, 400] {
            let ms = device.npu_sr_ms(side * side);
            println!(
                "    {side:>3}x{side:<3}: {ms:6.1} ms {}",
                if ms <= REALTIME_BUDGET_MS {
                    "(real-time)"
                } else {
                    ""
                }
            );
        }
        let plan = plan_roi_window(&device, 2, 1280, 720);
        println!(
            "  foveal minimum:  {0}x{0} px on the 720p frame",
            plan.foveal_side
        );
        println!(
            "  compute maximum: {0}x{0} px within the 16.66 ms budget",
            plan.max_side
        );
        println!("  chosen window:   {0}x{0} px", plan.chosen_side);
        if plan.foveal_compromised {
            println!(
                "  note: the display is dense enough that the foveal window \
                 exceeds the NPU budget; quality is compute-bound"
            );
        }
        println!();
    }
}
