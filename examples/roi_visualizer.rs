//! Dumps the depth-guided RoI detection stages as viewable images
//! (paper Figs. 5 and 8): the rendered frame, its depth map, the
//! foreground extraction, the spatially-weighted map, the selected depth
//! layer and the final frame with the RoI marked.
//!
//! ```text
//! cargo run --release --example roi_visualizer [G1..G10] [out_dir]
//! ```

use gss::core::roi::{RoiDetector, RoiDetectorConfig};
use gss::frame::io::{save_depth_pgm, save_plane_pgm, save_ppm};
use gss::frame::Rgb8;
use gss::render::{GameId, GameWorkload};
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let game = args
        .get(1)
        .and_then(|g| GameId::ALL.into_iter().find(|id| id.label() == g))
        .unwrap_or(GameId::G3);
    let out_dir = args.get(2).map(String::as_str).unwrap_or("roi_stages");
    std::fs::create_dir_all(out_dir)?;
    let out = Path::new(out_dir);

    let workload = GameWorkload::new(game);
    let rendered = workload.render_frame(0, 640, 360);
    println!(
        "rendered {game} at 640x360 ({} triangles)",
        workload.scene().triangle_count()
    );

    save_ppm(out.join("1_frame.ppm"), &rendered.frame)?;
    save_depth_pgm(out.join("2_depth.pgm"), &rendered.depth)?;

    let detector = RoiDetector::new(RoiDetectorConfig {
        keep_stages: true,
        ..RoiDetectorConfig::default()
    });
    let result = detector.detect(&rendered.depth, (150, 150));
    let stages = result.stages.expect("stages requested");
    println!(
        "foreground threshold: depth < {:.3}; selected layer {} of {}",
        stages.threshold,
        stages.selected_layer + 1,
        stages.layers.len()
    );
    save_plane_pgm(out.join("3_foreground.pgm"), &stages.foreground)?;
    save_plane_pgm(out.join("4_weighted.pgm"), &stages.weighted)?;
    save_plane_pgm(out.join("5_selected_layer.pgm"), &stages.processed)?;

    // draw the RoI box on the frame
    let mut marked = rendered.frame.clone();
    let roi = result.roi;
    let mark = |frame: &mut gss::frame::Frame, x: usize, y: usize| {
        let (yv, cb, cr) = {
            let px = Rgb8::new(255, 40, 40);
            // convert once via a tiny 1x1 helper frame
            let f = gss::frame::Frame::from_rgb_fn(1, 1, |_, _| px);
            (f.y().get(0, 0), f.cb().get(0, 0), f.cr().get(0, 0))
        };
        frame.y_mut().set(x, y, yv);
        frame.cb_mut().set(x, y, cb);
        frame.cr_mut().set(x, y, cr);
    };
    for x in roi.x..roi.right() {
        for t in 0..2 {
            mark(&mut marked, x, roi.y + t);
            mark(&mut marked, x, roi.bottom() - 1 - t);
        }
    }
    for y in roi.y..roi.bottom() {
        for t in 0..2 {
            mark(&mut marked, roi.x + t, y);
            mark(&mut marked, roi.right() - 1 - t, y);
        }
    }
    save_ppm(out.join("6_frame_with_roi.ppm"), &marked)?;
    println!("RoI detected at {roi}; images written to {out_dir}/");
    Ok(())
}
