//! Quickstart: one frame through the whole GameStreamSR pipeline.
//!
//! Renders a Witcher 3-style frame with its depth buffer, detects the RoI
//! from depth, streams the frame through the codec, upscales it on the
//! simulated client (DNN SR in the RoI ∥ bilinear outside) and reports
//! quality against the native render.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gss::core::{GameStreamClient, GameStreamServer, ServerConfig};
use gss::metrics::{perceptual_distance, psnr};
use gss::render::GameId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // a server streaming G3 at a 320x180 canvas (x2 -> 640x360 display)
    // with a 75x75 RoI window (the 300x300 deployment window at canvas scale)
    let mut config = ServerConfig::new(GameId::G3, (320, 180), (75, 75));
    // a high-quality stream so the RoI SR gain is visible above codec noise
    config.encoder.quality = 90;
    config.encoder.residual_step = 6;
    let mut server = GameStreamServer::new(config);
    let mut client = GameStreamClient::new(2);

    let packet = server.next_frame()?;
    println!(
        "frame 0: {:?}, {} coded bytes, RoI at {}",
        packet.frame_type,
        packet.encoded.size_bytes(),
        packet.roi
    );

    let output = client.process(&packet.encoded, packet.roi)?;
    println!(
        "client produced a {}x{} frame; RoI upscaled by the DNN at {}",
        output.frame.width(),
        output.frame.height(),
        output.roi_hr
    );

    let quality = psnr(&packet.ground_truth_hr, &output.frame)?;
    let perceptual = perceptual_distance(&packet.ground_truth_hr, &output.frame)?;
    println!("quality vs native render: {quality:.2} dB PSNR, {perceptual:.4} perceptual distance");

    // compare against plain bilinear upscaling of the whole frame
    use gss::sr::{InterpKernel, InterpUpscaler, Upscaler};
    let mut decoder = gss::codec::Decoder::new();
    let decoded = decoder.decode(&packet.encoded)?;
    let plain = InterpUpscaler::new(InterpKernel::Bilinear, 2).upscale(&decoded.frame);
    let plain_q = psnr(&packet.ground_truth_hr, &plain)?;
    println!(
        "plain bilinear everywhere: {plain_q:.2} dB PSNR ({:+.2} dB from RoI SR)",
        quality - plain_q
    );

    // the gain concentrates where the player looks: compare inside the RoI
    use gss::metrics::psnr_planes;
    let gt_roi = packet.ground_truth_hr.y().crop(output.roi_hr)?;
    let ours_roi = output.frame.y().crop(output.roi_hr)?;
    let plain_roi = plain.y().crop(output.roi_hr)?;
    println!(
        "inside the RoI: ours {:.2} dB vs bilinear {:.2} dB ({:+.2} dB where the player looks)",
        psnr_planes(&gt_roi, &ours_roi)?,
        psnr_planes(&gt_roi, &plain_roi)?,
        psnr_planes(&gt_roi, &ours_roi)? - psnr_planes(&gt_roi, &plain_roi)?
    );
    Ok(())
}
