//! A full streaming session: both pipelines (GameStreamSR and the NEMO
//! baseline) over the same game, device, codec stream and wireless channel,
//! with the paper's headline metrics printed at the end.
//!
//! ```text
//! cargo run --release --example streaming_session [G1..G10] [s8|pixel] [frames]
//! ```

use gss::core::session::{run_comparison, SessionConfig};
use gss::platform::DeviceProfile;
use gss::render::GameId;
use gss_codec::FrameType;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let game = args
        .get(1)
        .and_then(|g| GameId::ALL.into_iter().find(|id| id.label() == g))
        .unwrap_or(GameId::G3);
    let device = match args.get(2).map(String::as_str) {
        Some("pixel") => DeviceProfile::pixel7_pro(),
        _ => DeviceProfile::s8_tab(),
    };
    let frames: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(60);

    println!("streaming {game} to {} for {frames} frames...", device.name);
    let cfg = SessionConfig {
        frames,
        gop_size: 60,
        lr_size: (320, 180),
        ..SessionConfig::new(game, device)
    };
    let cmp = run_comparison(&cfg)?;

    println!("\n--- upscaling performance ---");
    println!(
        "reference frames:    ours {:6.1} ms | SOTA {:6.1} ms | {:.1}x speedup",
        cmp.ours.mean_upscale_ms(FrameType::Intra),
        cmp.sota.mean_upscale_ms(FrameType::Intra),
        cmp.ref_upscale_speedup()
    );
    println!(
        "non-reference:       ours {:6.1} ms | SOTA {:6.1} ms | {:.2}x speedup",
        cmp.ours.mean_upscale_ms(FrameType::Inter),
        cmp.sota.mean_upscale_ms(FrameType::Inter),
        cmp.nonref_upscale_speedup()
    );
    println!(
        "real-time (60 FPS):  ours {:3.0}% of frames | SOTA {:3.0}%",
        cmp.ours.realtime_fraction() * 100.0,
        cmp.sota.realtime_fraction() * 100.0
    );

    println!("\n--- motion-to-photon latency ---");
    println!(
        "reference frames:    ours {:5.1} ms | SOTA {:5.1} ms | {:.1}x better",
        cmp.ours.mean_mtp_ms(FrameType::Intra),
        cmp.sota.mean_mtp_ms(FrameType::Intra),
        cmp.ref_mtp_improvement()
    );
    println!("worst frame (ours):  {:5.1} ms", cmp.ours.max_mtp_ms());

    println!("\n--- energy ---");
    println!(
        "session energy:      ours {:6.0} mJ | SOTA {:6.0} mJ | {:.1}% savings",
        cmp.ours.energy.total_mj,
        cmp.sota.energy.total_mj,
        cmp.energy_savings() * 100.0
    );

    println!("\n--- quality (vs native render) ---");
    if let (Some(gain), Some(perc)) = (cmp.psnr_gain_db(), cmp.perceptual_improvement()) {
        println!(
            "PSNR:                ours {:5.2} dB | SOTA {:5.2} dB | {gain:+.2} dB",
            cmp.ours.mean_psnr_db().unwrap_or(f64::NAN),
            cmp.sota.mean_psnr_db().unwrap_or(f64::NAN)
        );
        println!(
            "perceptual distance: ours {:6.4} | SOTA {:6.4} | {perc:+.4} improvement",
            cmp.ours.mean_perceptual().unwrap_or(f64::NAN),
            cmp.sota.mean_perceptual().unwrap_or(f64::NAN)
        );
    }
    println!(
        "\nstream: {:.1} Mbps over {}",
        cmp.ours.mean_bitrate_mbps(),
        cfg.link.name
    );
    Ok(())
}
