//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this workspace vendors
//! the tiny slice of `rand`'s API it actually uses: [`rngs::SmallRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen`, `gen_bool` and `gen_range`. The generator is xoshiro256++ (the
//! same family real `rand` uses for `SmallRng` on 64-bit targets), so the
//! statistical properties the simulators rely on (uniformity, long period)
//! hold. The seeding path (splitmix64 expansion) and the distribution
//! algorithms (multiply-based float construction, widening-multiply
//! integer ranges, fixed-point Bernoulli) replicate `rand` 0.8.5
//! bit-for-bit, so every seeded stream in this workspace — and therefore
//! every simulated scene, link trace and quality figure the reproduction
//! tests assert on — matches what upstream `rand` produced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generator sources.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly-distributed value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // xoshiro's lowest bits have linear dependencies; upstream takes
        // the upper half for next_u32, and we must match its stream.
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // upstream's multiply-based method: 53 uniform bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 24 bits of the next_u32 draw, i.e. bits 63..40 of the u64
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // upstream compares the most significant bit of next_u32
        rng.next_u64() >> 63 != 0
    }
}

/// Numeric types [`Rng::gen_range`] can sample uniformly.
///
/// Mirroring real `rand`, [`SampleRange`] is implemented once, generically,
/// for `Range<T>` / `RangeInclusive<T>` over this trait. The single generic
/// impl matters for type inference: it lets unsuffixed literals in calls
/// like `rng.gen_range(2.0..4.0)` unify with an `f32` usage site instead of
/// defaulting to `f64`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from the half-open range `[lo, hi)`.
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Draws uniformly from the closed range `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

// Bit-exact port of rand 0.8.5's `UniformFloat::sample_single`: a value in
// [1, 2) is built from the type's mantissa bits, shifted to [0, 1), then
// scaled into the range. The loop only re-draws in the pathological case
// where rounding lands exactly on `hi`.
// Bit-exact port of rand 0.8.5's `UniformFloat::sample_single`: a value in
// [1, 2) is built from the type's mantissa bits, shifted to [0, 1), then
// scaled into the range. The loop only re-draws in the pathological case
// where rounding lands exactly on `hi`.
macro_rules! uniform_float {
    ($t:ty, $bits:ty, $fraction_bits:expr, $exponent_bias:expr) => {
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let mut scale = hi - lo;
                loop {
                    let fraction =
                        <$bits as Standard>::sample(rng) >> (<$bits>::BITS - $fraction_bits);
                    let value1_2 =
                        <$t>::from_bits((($exponent_bias as $bits) << $fraction_bits) | fraction);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + lo;
                    if res < hi {
                        return res;
                    }
                    // shave one ulp off the scale, as upstream does
                    scale = <$t>::from_bits(scale.to_bits() - 1);
                }
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                // scale against the largest value the mantissa draw can
                // reach, so `hi` itself is attainable
                let ones: $bits = (1 << $fraction_bits) - 1;
                let max_rand =
                    <$t>::from_bits((($exponent_bias as $bits) << $fraction_bits) | ones) - 1.0;
                let mut scale = (hi - lo) / max_rand;
                loop {
                    let fraction =
                        <$bits as Standard>::sample(rng) >> (<$bits>::BITS - $fraction_bits);
                    let value1_2 =
                        <$t>::from_bits((($exponent_bias as $bits) << $fraction_bits) | fraction);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + lo;
                    if res <= hi {
                        return res;
                    }
                    scale = <$t>::from_bits(scale.to_bits() - 1);
                }
            }
        }
    };
}
uniform_float!(f32, u32, 23, 127);
uniform_float!(f64, u64, 52, 1023);

// Bit-exact port of rand 0.8.5's `UniformInt::sample_single_inclusive`:
// widening multiply of a fresh draw by the range, accepting when the low
// half falls inside the unbiased zone. 8/16/32-bit types draw u32 (the
// upper half of next_u64, matching xoshiro's next_u32); wider types draw
// the full u64.
macro_rules! uniform_int {
    ($t:ty, $unsigned:ty, $u_large:ty, $wide:ty) => {
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                <$t as SampleUniform>::sample_inclusive(lo, hi - 1, rng)
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let range = hi.wrapping_sub(lo).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    // full type range: any draw is uniform
                    return <$u_large as Standard>::sample(rng) as $t;
                }
                let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                    let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v = <$u_large as Standard>::sample(rng);
                    let wide = (v as $wide) * (range as $wide);
                    let hi_part = (wide >> <$u_large>::BITS) as $u_large;
                    let lo_part = wide as $u_large;
                    if lo_part <= zone {
                        return lo.wrapping_add(hi_part as $t);
                    }
                }
            }
        }
    };
}
uniform_int!(i8, u8, u32, u64);
uniform_int!(i16, u16, u32, u64);
uniform_int!(i32, u32, u32, u64);
uniform_int!(i64, u64, u64, u128);
uniform_int!(u8, u8, u32, u64);
uniform_int!(u16, u16, u32, u64);
uniform_int!(u32, u32, u32, u64);
uniform_int!(u64, u64, u64, u128);
uniform_int!(usize, usize, u64, u128);
uniform_int!(isize, usize, u64, u128);

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly-distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a uniformly-distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::sample(self) < p
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator (the family real `rand` backs
    /// `SmallRng` with on 64-bit platforms).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as upstream does for small seeds
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility with `rand`'s `std_rng` feature.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(-5.0..5.0f32);
            assert!((-5.0..5.0).contains(&v));
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let k = rng.gen_range(1u8..=255);
            assert!((1..=255).contains(&k));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
    }
}
