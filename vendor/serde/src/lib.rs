//! Offline stand-in for `serde`.
//!
//! The workspace uses serde purely as a *marker*: report types derive
//! `Serialize`/`Deserialize` so downstream tooling can rely on them being
//! plain data, but nothing in-tree performs actual serialization (the
//! telemetry JSONL sink hand-writes its JSON). This stub therefore provides
//! the two traits with blanket implementations — every type is plain data
//! as far as the in-tree bounds are concerned — and no-op derive macros so
//! the `#[derive(...)]` attributes compile unchanged. Swapping the real
//! `serde` back in (when a registry is available) requires only restoring
//! the crates.io entry in the workspace `Cargo.toml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable plain-data types.
///
/// Blanket-implemented: in-tree bounds like `T: serde::Serialize` only
/// assert "this is report data", never drive real encoding.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable plain-data types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Owned variant of [`Deserialize`], mirroring serde's helper.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}
