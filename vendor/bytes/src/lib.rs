//! Offline stand-in for the `bytes` crate.
//!
//! Provides the surface the codec's bitstream layer uses: an immutable,
//! cheaply-cloneable [`Bytes`] (backed by `Arc<[u8]>`, so cloning a coded
//! payload is O(1) exactly like upstream) and a growable [`BytesMut`] with
//! the [`BufMut`] write methods plus [`BytesMut::freeze`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer; clones share storage.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Returns the subrange as a new buffer. Upstream shares storage here;
    /// this stand-in copies, which preserves the semantics (and the codec
    /// only slices in tests).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds, like upstream.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Bytes::copy_from_slice(&self.data[start..end])
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"{} bytes\"", self.data.len())
    }
}

/// Write extensions for growable buffers.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a slice.
    fn put_slice(&mut self, v: &[u8]);

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable shared [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.data.extend_from_slice(v);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        b.put_u16(0x0405);
        let frozen = b.freeze();
        assert_eq!(&*frozen, &[1, 2, 3, 4, 5]);
        assert_eq!(frozen.len(), 5);
    }

    #[test]
    fn slice_copies_the_subrange() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4]);
        assert_eq!(&*b.slice(1..4), &[1, 2, 3]);
        assert_eq!(&*b.slice(..2), &[0, 1]);
        assert_eq!(&*b.slice(3..), &[3, 4]);
        assert_eq!(b.slice(..).len(), 5);
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![9u8; 1000]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
    }
}
