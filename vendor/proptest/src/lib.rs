//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`strategy::Just`], [`collection::vec`], the `proptest!`
//! macro (with optional `#![proptest_config(...)]`), and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros. Cases are drawn
//! from a deterministic per-test generator (seeded from the test name), so
//! runs are reproducible; failing inputs are reported via panic message.
//! Shrinking and persistence files are intentionally not implemented —
//! failures print the full generated input instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator behind every sampled value (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// A runner seeded from a label (typically the test name) and case
    /// index.
    pub fn new(label: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, n)`; `n` must be nonzero.
    pub fn next_index(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty choice");
        self.next_u64() % n
    }
}

/// Why a generated case did not produce a verdict.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; the case is not counted.
    Reject(String),
    /// A `prop_assert!` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with a reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration; only `cases` is meaningful in this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a second strategy-producing function.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).sample(runner)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.sample(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, runner: &mut TestRunner) -> S2::Value {
        (self.f)(self.inner.sample(runner)).sample(runner)
    }
}

macro_rules! int_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + runner.next_index(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                let v = if span == u64::MAX {
                    runner.next_u64()
                } else {
                    runner.next_index(span + 1)
                };
                (lo as i128 + v as i128) as $t
            }
        }
    };
}
int_strategy!(u8);
int_strategy!(u16);
int_strategy!(u32);
int_strategy!(u64);
int_strategy!(usize);
int_strategy!(i8);
int_strategy!(i16);
int_strategy!(i32);
int_strategy!(i64);
int_strategy!(isize);

macro_rules! float_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (runner.next_unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (runner.next_unit_f64() as $t) * (hi - lo)
            }
        }
    };
}
float_strategy!(f32);
float_strategy!(f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(runner),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Core strategy types.
pub mod strategy {
    pub use super::Strategy;
    use super::TestRunner;
    use std::fmt;

    /// Always yields a clone of the held value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRunner};
    use std::fmt;
    use std::ops::Range;

    /// Sizes accepted by [`vec`]: an exact length or a length range.
    pub trait IntoSize {
        /// Draws a concrete length.
        fn pick(&self, runner: &mut TestRunner) -> usize;
    }

    impl IntoSize for usize {
        fn pick(&self, _runner: &mut TestRunner) -> usize {
            *self
        }
    }

    impl IntoSize for Range<usize> {
        fn pick(&self, runner: &mut TestRunner) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + runner.next_index((self.end - self.start) as u64) as usize
        }
    }

    /// A strategy producing `Vec`s of `element` values with `size` length.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSize) -> VecStrategy<S, impl IntoSize>
    where
        S::Value: fmt::Debug,
    {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: IntoSize> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = self.size.pick(runner);
            (0..n).map(|_| self.element.sample(runner)).collect()
        }
    }
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use super::strategy::Just;
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case unless the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
}

/// Rejects the current case (not counted toward the case budget) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    // Internal expansion rule; must precede the catch-all below, which
    // would otherwise re-match `@cfg ...` and recurse forever.
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                let mut run: u32 = 0;
                while run < config.cases {
                    let mut runner = $crate::TestRunner::new(stringify!($name), case);
                    case += 1;
                    let sampled = ($($crate::Strategy::sample(&($strategy), &mut runner),)+);
                    // rendered up front: the body may move the inputs
                    let inputs = ::std::format!("{:?}", &sampled);
                    let ($($arg),+ ,) = sampled;
                    let verdict: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { { $body } ::std::result::Result::Ok(()) })();
                    match verdict {
                        Ok(()) => run += 1,
                        Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases * 16 + 256,
                                "too many prop_assume! rejections in {}",
                                stringify!($name),
                            );
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {}\ninputs: {}",
                                run + 1,
                                stringify!($name),
                                msg,
                                inputs
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn parity(n: u32) -> bool {
        n.is_multiple_of(2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..9, b in 0.25f64..0.75, c in 1u8..=4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((0.25..0.75).contains(&b), "b = {b}");
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn combinators_compose(v in (1usize..5, 1usize..5).prop_flat_map(|(w, h)| {
            crate::collection::vec(0u32..100, w * h).prop_map(move |data| (w, h, data))
        })) {
            let (w, h, data) = v;
            prop_assert_eq!(data.len(), w * h);
        }

        #[test]
        fn just_yields_its_value(x in (Just(7u32), 0u32..3)) {
            prop_assert_eq!(x.0, 7);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(parity(n));
            prop_assert!(n.is_multiple_of(2));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRunner::new("label", 3);
        let mut b = crate::TestRunner::new("label", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
