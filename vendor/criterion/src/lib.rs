//! Offline stand-in for `criterion`.
//!
//! Covers the API this workspace's benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `sample_size`, `Bencher::iter` — with
//! a straightforward wall-clock runner: each benchmark is warmed up once,
//! then timed over batches until a time budget is met, and the median
//! per-iteration time is printed. No statistical analysis, HTML reports or
//! regression detection; the numbers are honest medians, good enough to
//! rank hot paths and spot order-of-magnitude regressions offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the hot code.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting per-iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let budget = Duration::from_millis(200);
        let started = Instant::now();
        while self.samples.len() < self.sample_size && started.elapsed() < budget {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort();
        Some(self.samples[self.samples.len() / 2])
    }
}

fn run_one(group: &str, id: &BenchmarkId, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.name.clone()
    } else {
        format!("{group}/{}", id.name)
    };
    match bencher.median() {
        Some(t) => println!(
            "{label:<48} median {t:>12.3?} ({} samples)",
            bencher.samples.len()
        ),
        None => println!("{label:<48} (no samples — closure never called iter)"),
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into(), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op offline).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Upstream parses CLI filters here; the offline runner accepts and
    /// ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group {name} --");
        BenchmarkGroup {
            name,
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one("", &id.into(), 20, f);
        self
    }
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("noop", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.finish();
        assert!(ran >= 3);
    }
}
