//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! The companion `serde` stub blanket-implements both traits, so the
//! derives have nothing to generate; they exist only so `#[derive(...)]`
//! attributes (and `#[serde(...)]` helper attributes) compile unchanged.

use proc_macro::TokenStream;

/// Derives the (blanket-implemented) `Serialize` marker; emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives the (blanket-implemented) `Deserialize` marker; emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
