//! Offline stand-in for `crossbeam`, covering `crossbeam::thread::scope`.
//!
//! Since Rust 1.63 the standard library's `std::thread::scope` provides the
//! same structured-concurrency guarantee crossbeam pioneered; this shim
//! adapts it to crossbeam's API shape (spawn closures receive the scope,
//! `scope` returns a `Result`) so the client's parallel NPU ∥ GPU code
//! compiles unchanged. Spawned threads are real OS threads — the
//! parallelism the paper's client depends on is preserved, not simulated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads (crossbeam-utils API shape over `std::thread::scope`).
pub mod thread {
    use std::thread as std_thread;

    /// Error type carried by a panicked scope/thread.
    pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

    /// A scope handle passed to [`scope`]'s closure; spawn threads off it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it can
        /// spawn further threads, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope whose spawned threads are all joined before
    /// `scope` returns. Child panics propagate when joined (unjoined child
    /// panics propagate at scope exit), so the `Err` arm is vestigial here —
    /// kept for crossbeam API compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn parallel_spawn_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let left = s.spawn(|_| data[..2].iter().sum::<u64>());
            let right: u64 = data[2..].iter().sum();
            left.join().expect("left thread panicked") + right
        })
        .expect("scope panicked");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = thread::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21);
                h2.join().expect("inner join") * 2
            });
            h.join().expect("outer join")
        })
        .expect("scope panicked");
        assert_eq!(n, 42);
    }
}
