//! The paper's headline claims, asserted end-to-end against the running
//! system (the "shape targets" of DESIGN.md §5). These are the assertions
//! that make this repository a *reproduction* rather than a library.

use gss::codec::FrameType;
use gss::core::session::{run_comparison, run_session, Pipeline, SessionConfig};
use gss::platform::{DeviceProfile, Stage, REALTIME_BUDGET_MS};
use gss::render::GameId;

/// Latency/energy config: full 60-frame GOP so the frame-class mix matches
/// the deployment.
fn gop_cfg(device: DeviceProfile) -> SessionConfig {
    SessionConfig {
        frames: 60,
        gop_size: 60,
        lr_size: (128, 72),
        ..SessionConfig::new(GameId::G3, device)
    }
    .without_quality()
}

#[test]
fn claim_reference_frame_speedup_13x_to_14x() {
    // paper Fig. 10a: 13x on the S8 Tab, 14x on the Pixel 7 Pro
    let s8 = run_comparison(&gop_cfg(DeviceProfile::s8_tab())).unwrap();
    let px = run_comparison(&gop_cfg(DeviceProfile::pixel7_pro())).unwrap();
    assert!(
        (12.5..14.0).contains(&s8.ref_upscale_speedup()),
        "S8: {:.2}",
        s8.ref_upscale_speedup()
    );
    assert!(
        (13.2..15.0).contains(&px.ref_upscale_speedup()),
        "Pixel: {:.2}",
        px.ref_upscale_speedup()
    );
}

#[test]
fn claim_output_frame_rate_60fps_vs_under_5fps() {
    // paper: 4.6 -> 61.7 FPS (S8) and 4.3 -> 61 FPS (Pixel) for reference frames
    let cmp = run_comparison(&gop_cfg(DeviceProfile::s8_tab())).unwrap();
    let sota_fps = cmp.sota.upscale_fps(FrameType::Intra);
    let ours_fps = cmp.ours.upscale_fps(FrameType::Intra);
    assert!((4.0..5.0).contains(&sota_fps), "SOTA {sota_fps:.1} FPS");
    assert!(ours_fps >= 60.0, "ours {ours_fps:.1} FPS");
}

#[test]
fn claim_nonref_speedup_above_1_5x_and_gop_near_2x() {
    for device in DeviceProfile::all() {
        let cmp = run_comparison(&gop_cfg(device.clone())).unwrap();
        assert!(
            cmp.nonref_upscale_speedup() > 1.5,
            "{}: {:.2}",
            device.name,
            cmp.nonref_upscale_speedup()
        );
        assert!(
            (1.6..2.2).contains(&cmp.gop_upscale_speedup()),
            "{}: {:.2}",
            device.name,
            cmp.gop_upscale_speedup()
        );
    }
}

#[test]
fn claim_every_frame_meets_realtime_only_for_ours() {
    for device in DeviceProfile::all() {
        let cfg = gop_cfg(device);
        let ours = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
        let sota = run_session(&cfg, Pipeline::Nemo).unwrap();
        assert_eq!(ours.realtime_fraction(), 1.0, "{}", cfg.device.name);
        assert_eq!(sota.realtime_fraction(), 0.0, "{}", cfg.device.name);
        assert!(ours.mean_upscale_ms_all() <= REALTIME_BUDGET_MS);
    }
}

#[test]
fn claim_mtp_improvement_about_4x_and_ours_under_fast_genre_bar() {
    // paper Fig. 10b: 3.8-4x reference-frame MTP improvement; ours < 100 ms
    // (the fast-genre bar) for all frames and ~70 ms for reference frames.
    // Streamed like the deployment: rate-controlled to a bitrate that fits
    // the WiFi downlink (an open-loop stream saturates the link as the
    // flythrough content gets busier, and the queueing delay alone blows
    // the MTP bar for every pipeline).
    for device in DeviceProfile::all() {
        let cfg = SessionConfig {
            rate_control: Some(gss::codec::RateControlConfig::for_bitrate_mbps(25.0)),
            ..gop_cfg(device.clone())
        };
        let cmp = run_comparison(&cfg).unwrap();
        let improvement = cmp.ref_mtp_improvement();
        assert!(
            (3.5..4.8).contains(&improvement),
            "{}: {improvement:.2}",
            device.name
        );
        assert!(
            cmp.ours.max_mtp_ms() < 100.0,
            "{}: {:.1}",
            device.name,
            cmp.ours.max_mtp_ms()
        );
        assert!(
            cmp.ours.mean_mtp_ms(FrameType::Intra) < 75.0,
            "{}: {:.1}",
            device.name,
            cmp.ours.mean_mtp_ms(FrameType::Intra)
        );
        // SOTA's reference frames blow through the 150 ms tolerable bar
        assert!(cmp.sota.mean_mtp_ms(FrameType::Intra) > 150.0);
    }
}

#[test]
fn claim_energy_savings_26_to_33_percent() {
    // paper Fig. 11: ≈26% (S8 Tab) and ≈33% (Pixel 7 Pro)
    let s8 = run_comparison(&gop_cfg(DeviceProfile::s8_tab())).unwrap();
    let px = run_comparison(&gop_cfg(DeviceProfile::pixel7_pro())).unwrap();
    let s8_savings = s8.energy_savings();
    let px_savings = px.energy_savings();
    assert!((0.22..0.30).contains(&s8_savings), "S8 {s8_savings:.3}");
    assert!((0.29..0.37).contains(&px_savings), "Pixel {px_savings:.3}");
    assert!(
        px_savings > s8_savings,
        "larger display hurts relative savings"
    );
}

#[test]
fn claim_energy_breakdown_shape() {
    // paper Fig. 12: decode ≈46% of SOTA energy vs ≈6% of ours; upscaling
    // dominates ours at ≈85%
    let cfg = gop_cfg(DeviceProfile::pixel7_pro());
    let ours = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
    let sota = run_session(&cfg, Pipeline::Nemo).unwrap();
    let sota_decode = sota.energy.fraction(Stage::Decode);
    let ours_decode = ours.energy.fraction(Stage::Decode);
    let ours_upscale = ours.energy.fraction(Stage::Upscale);
    assert!(
        (0.40..0.52).contains(&sota_decode),
        "SOTA decode {sota_decode:.3}"
    );
    assert!(
        (0.03..0.09).contains(&ours_decode),
        "ours decode {ours_decode:.3}"
    );
    assert!(
        (0.78..0.90).contains(&ours_upscale),
        "ours upscale {ours_upscale:.3}"
    );
}

#[test]
fn claim_quality_ours_above_30db_and_above_sota() {
    // paper Figs. 13/14: ours stays above 30 dB and beats SOTA on PSNR and
    // perceptual quality; SOTA decays within the GOP
    let cfg = SessionConfig {
        frames: 24,
        gop_size: 24,
        lr_size: (160, 90),
        ..SessionConfig::new(GameId::G3, DeviceProfile::pixel7_pro())
    };
    let cmp = run_comparison(&cfg).unwrap();
    let ours_psnr = cmp.ours.mean_psnr_db().unwrap();
    let sota_psnr = cmp.sota.mean_psnr_db().unwrap();
    assert!(ours_psnr > 30.0, "ours {ours_psnr:.2}");
    assert!(
        ours_psnr > sota_psnr,
        "ours {ours_psnr:.2} vs sota {sota_psnr:.2}"
    );
    assert!(
        cmp.perceptual_improvement().unwrap() > 0.0,
        "perceptual {:?}",
        cmp.perceptual_improvement()
    );
    // SOTA decays within the GOP: last quarter worse than first quarter
    let series = cmp.sota.psnr_series();
    let first: f64 = series[..6].iter().sum::<f64>() / 6.0;
    let last: f64 = series[18..].iter().sum::<f64>() / 6.0;
    assert!(last < first - 0.5, "first {first:.2} last {last:.2}");
    // Ours stays (nearly) flat in GOP position. The flythrough content is
    // not stationary (the camera dollies into busier geometry, which costs
    // every upscaler several dB over these 24 frames), so flatness is
    // judged against a codec-free per-frame difficulty baseline: what a
    // plain interpolation of the same pristine frame scores. Ours must not
    // drift more than 1 dB beyond what the content alone explains.
    let upscaler = gss::sr::InterpUpscaler::new(gss::sr::InterpKernel::Bilinear, cfg.scale);
    let workload = gss::render::GameWorkload::new(cfg.game);
    let stride = 1280 / cfg.lr_size.0;
    let baseline: Vec<f64> = (0..cfg.frames)
        .map(|t| {
            let hr = workload
                .render_frame(
                    t * stride,
                    cfg.lr_size.0 * cfg.scale,
                    cfg.lr_size.1 * cfg.scale,
                )
                .frame;
            let lr = hr.downsample_box(cfg.scale);
            gss::metrics::psnr(&hr, &gss::sr::Upscaler::upscale(&upscaler, &lr)).unwrap()
        })
        .collect();
    let base_first: f64 = baseline[..6].iter().sum::<f64>() / 6.0;
    let base_last: f64 = baseline[18..].iter().sum::<f64>() / 6.0;
    let ours_series = cmp.ours.psnr_series();
    let ours_first: f64 = ours_series[..6].iter().sum::<f64>() / 6.0;
    let ours_last: f64 = ours_series[18..].iter().sum::<f64>() / 6.0;
    let drift = (ours_last - ours_first) - (base_last - base_first);
    assert!(
        drift > -1.0,
        "ours drifted beyond content: {drift:.2} dB ({ours_first:.2} -> {ours_last:.2}, content {base_first:.2} -> {base_last:.2})"
    );
}
