//! Decoder-crash recovery integration tests: the crash-storm fault
//! timeline (canonical storm plus five scripted decoder crashes) must be
//! survivable on every device tier of the capability matrix — the
//! recovery state machine drains, reconfigures and resyncs each crash,
//! backs off under rapid-fire crashes, and ultimately pins the session to
//! the safe bilinear profile instead of freezing forever.
//!
//! The observability layer is part of the contract: recovery-era deadline
//! misses must attribute to `decoder-crash`, the frozen-stall ledger must
//! carry a decoder-crash entry, and the whole scenario must replay
//! byte-identically across worker counts.

use gss::codec::RateControlConfig;
use gss::core::degrade::{DegradationConfig, LADDER};
use gss::core::session::{run_session, Pipeline, SessionConfig, SessionReport};
use gss::net::{DropCause, FaultEvent, FaultKind, FaultPlan};
use gss::platform::{pool, DeviceProfile};
use gss::render::GameId;
use gss::telemetry::{Counter, MissCause};

/// Milliseconds per frame at the 60 FPS source rate.
const FRAME_MS: f64 = 1000.0 / 60.0;
/// Time compression of the crash-storm timeline for the deterministic
/// tests (all five 100 ms crash windows stay wider than a frame period).
const TIME_SCALE: f64 = 0.2;

/// The shared scenario: the scaled crash storm — canonical bandwidth
/// collapse, NPU throttle and outage, plus one clean decoder crash and a
/// rapid-fire burst of four more — rate-controlled at 12 Mbps with the
/// adaptive ladder enabled.
fn storm_cfg(device: DeviceProfile) -> SessionConfig {
    SessionConfig {
        frames: (FaultPlan::crash_storm_duration_ms(TIME_SCALE) / FRAME_MS).round() as usize,
        gop_size: 60,
        lr_size: (128, 72),
        rate_control: Some(RateControlConfig {
            min_quality: 10,
            ..RateControlConfig::for_bitrate_mbps(12.0)
        }),
        ..SessionConfig::new(GameId::G3, device)
    }
    .without_quality()
    .with_faults(FaultPlan::crash_storm_scaled(TIME_SCALE))
    .with_degradation(DegradationConfig::default())
}

fn assert_storm_recovered(name: &str, r: &SessionReport) {
    let rec = r.recovery.as_ref().expect("crash storm arms the machine");
    // every scripted crash was sampled, every reconfigure attempted, and
    // the rapid-fire burst drove the machine into the permanent fallback
    assert_eq!(rec.crashes, 5, "{name}: crashes");
    assert!(
        rec.reconfigures >= 5,
        "{name}: reconfigures {}",
        rec.reconfigures
    );
    assert!(
        !rec.recovery_frames.is_empty(),
        "{name}: no completed episode"
    );
    assert!(rec.safe_profile_fallback, "{name}: fallback never engaged");
    assert_eq!(
        r.telemetry.counter(Counter::DecoderCrashes),
        5,
        "{name}: crash counter"
    );
    // no permanent freeze: the tail streams again, on the bilinear floor
    let last = r.frames.last().unwrap();
    assert!(!last.frozen, "{name}: session ended frozen");
    assert_eq!(
        last.rung,
        LADDER.len() - 1,
        "{name}: fallback must pin the ladder floor"
    );
    assert!(
        r.longest_frozen_run() < r.frames.len() / 2,
        "{name}: frozen {} of {} frames",
        r.longest_frozen_run(),
        r.frames.len()
    );
    // decoder-down frames are dropped with their own cause, and the
    // counter agrees with the per-frame records
    let decoder_drops = r.drops_with_cause(DropCause::DecoderDown);
    assert!(decoder_drops > 0, "{name}: no decoder-down drops");
    assert_eq!(
        decoder_drops as u64,
        r.telemetry.counter(Counter::DropsDecoderDown),
        "{name}: drop counter"
    );
    // the frozen-stall ledger blames the decoder crash for the freezes
    let stall = r
        .attribution
        .stalls
        .iter()
        .find(|s| s.cause == MissCause::DecoderCrash)
        .unwrap_or_else(|| panic!("{name}: no decoder-crash stall entry"));
    assert!(stall.frames > 0, "{name}: empty decoder-crash stall entry");
}

#[test]
fn every_device_tier_recovers_from_the_crash_storm() {
    let matrix = DeviceProfile::matrix();
    assert_eq!(matrix.len(), 5, "the fault matrix covers five devices");
    for device in matrix {
        let name = device.name;
        let r = run_session(&storm_cfg(device), Pipeline::GameStreamSr).expect("session");
        assert_storm_recovered(name, &r);
    }
}

#[test]
fn negotiation_clamps_the_weak_tier_ladder_through_the_storm() {
    let r = run_session(
        &storm_cfg(DeviceProfile::tier_low()),
        Pipeline::GameStreamSr,
    )
    .expect("session");
    // tier-low negotiates away the EDSR-64 rungs (top rung 2), so even at
    // its best the session never climbs above the negotiated ceiling
    assert!(
        r.frames.iter().all(|f| f.rung >= 2),
        "min rung {} below the negotiated ceiling",
        r.frames.iter().map(|f| f.rung).min().unwrap()
    );
}

#[test]
fn recovery_era_impact_attributes_to_the_decoder_crash() {
    // crashes only — no competing network faults — so everything the
    // viewer suffers inside a crash-plus-recovery era must carry the
    // decoder-crash verdict
    let crashes = [(500.0, 600.0), (1500.0, 1600.0), (1900.0, 2000.0)];
    let plan = FaultPlan::new(
        crashes
            .iter()
            .map(|&(start_ms, end_ms)| FaultEvent {
                start_ms,
                end_ms,
                kind: FaultKind::DecoderCrash,
            })
            .collect(),
    );
    let cfg = SessionConfig {
        frames: 240,
        ..storm_cfg(DeviceProfile::s8_tab())
    }
    .with_faults(plan);
    let r = run_session(&cfg, Pipeline::GameStreamSr).expect("session");
    let rec = r.recovery.as_ref().expect("machine armed");
    assert_eq!(rec.crashes, 3);
    assert!(rec.frozen_frames > 0, "the crashes froze no frames");

    // decoder-down slots repeat the previous frame with a zero critical
    // path, so the crash's viewer impact lands in the frozen-stall ledger
    // — and every frozen recovery slot must be blamed on the crash there
    let stall = r
        .attribution
        .stalls
        .iter()
        .find(|s| s.cause == MissCause::DecoderCrash)
        .expect("no decoder-crash stall entry");
    assert!(
        stall.frames >= rec.frozen_frames,
        "stall ledger blames {} frames on the crash, recovery froze {}",
        stall.frames,
        rec.frozen_frames
    );
    assert!(stall.longest_run > 0);

    // deadline misses inside a crash-plus-recovery era (crash start until
    // well after the worst-case drain + backoff + reconfigure + resync)
    // must attribute to the crash at >= 95% — no other cause may claim
    // them, and none may be left unknown
    let in_era = |ts: f64| {
        crashes
            .iter()
            .any(|&(start, end)| ts >= start && ts <= end + 1000.0)
    };
    let era: Vec<_> = r
        .attribution
        .records
        .iter()
        .filter(|m| in_era(m.ts_ms))
        .collect();
    let blamed = era
        .iter()
        .filter(|m| m.cause == MissCause::DecoderCrash)
        .count();
    assert!(
        blamed as f64 >= 0.95 * era.len() as f64,
        "only {blamed} of {} recovery-era misses attributed to the crash",
        era.len()
    );
    // and the session-wide health contract still holds under the storm
    assert!(
        r.attribution.attributed_fraction() >= 0.95,
        "only {:.1}% of misses attributed",
        r.attribution.attributed_fraction() * 100.0
    );
}

/// Worker count is a process-wide knob, so the whole sweep lives in one
/// `#[test]` (same pattern as the scalar ↔ parallel identity suite).
#[test]
fn crash_recovery_replays_byte_identically_across_worker_counts() {
    let prev = pool::workers();
    let fingerprint = || {
        let r = run_session(&storm_cfg(DeviceProfile::s8_tab()), Pipeline::GameStreamSr)
            .expect("session");
        (
            format!("{:?}", r.frames),
            format!("{:?}", r.recovery),
            r.telemetry.to_json(),
            r.attribution.clone(),
        )
    };
    pool::set_workers(1);
    let base = fingerprint();
    pool::set_workers(8);
    let wide = fingerprint();
    pool::set_workers(prev);
    assert_eq!(
        base.0, wide.0,
        "frame records diverged across worker counts"
    );
    assert_eq!(
        base.1, wide.1,
        "recovery summaries diverged across worker counts"
    );
    assert_eq!(base.2, wide.2, "telemetry diverged across worker counts");
    assert_eq!(base.3, wide.3, "attribution diverged across worker counts");
}
