//! Scalar ↔ parallel identity: the determinism contract of
//! `gss_platform::pool` holds end-to-end. One seeded session runs at 1, 2
//! and 8 workers and must produce byte-identical per-frame records and
//! telemetry at every count — frames, packets, PSNR floats, counters, all
//! of it.
//!
//! Everything lives in a single `#[test]` because the worker count is a
//! process-wide knob: concurrent tests flipping it would race each other.

use gamestreamsr::session::{run_session, Pipeline, SessionConfig};
use gss_codec::{Encoder, EncoderConfig};
use gss_frame::{Frame, Plane};
use gss_platform::{pool, DeviceProfile};
use gss_render::GameId;

fn session_fingerprint() -> (String, String) {
    let cfg = SessionConfig {
        frames: 8,
        gop_size: 4,
        lr_size: (128, 72),
        ..SessionConfig::new(GameId::G3, DeviceProfile::s8_tab())
    };
    let report = run_session(&cfg, Pipeline::GameStreamSr).expect("identity session");
    (format!("{:?}", report.frames), report.telemetry.to_json())
}

fn stream_fingerprint() -> Vec<Vec<u8>> {
    let mut enc = Encoder::new(EncoderConfig {
        gop_size: 3,
        ..EncoderConfig::default()
    });
    (0..5)
        .map(|t| {
            let frame = Frame::from_planes(
                Plane::from_fn(96, 64, |x, y| {
                    (128.0
                        + 80.0
                            * (((x + t * 3) as f32 * 0.21).sin() * ((y + t) as f32 * 0.17).cos()))
                    .clamp(0.0, 255.0)
                }),
                Plane::from_fn(96, 64, |x, _| 100.0 + (x % 24) as f32),
                Plane::filled(96, 64, 140.0),
            )
            .unwrap();
            enc.encode(&frame).unwrap().payload.to_vec()
        })
        .collect()
}

#[test]
fn sessions_and_bitstreams_are_bit_identical_across_worker_counts() {
    let prev = pool::workers();

    pool::set_workers(1);
    let (frames_1, telemetry_1) = session_fingerprint();
    let packets_1 = stream_fingerprint();

    for workers in [2usize, 8] {
        pool::set_workers(workers);
        let (frames_n, telemetry_n) = session_fingerprint();
        assert_eq!(
            frames_1, frames_n,
            "frame records diverged at {workers} workers"
        );
        assert_eq!(
            telemetry_1, telemetry_n,
            "telemetry diverged at {workers} workers"
        );
        let packets_n = stream_fingerprint();
        assert_eq!(
            packets_1, packets_n,
            "encoded bitstream diverged at {workers} workers"
        );
    }

    pool::set_workers(prev);
}
