//! Integration tests for the causal tracing layer: a faulted session
//! driven through a [`TraceSink`] must yield well-formed span trees and a
//! schema-valid Chrome trace-event export that is byte-identical across
//! reruns at any worker count; synthetic event streams (property test)
//! must never produce an orphan parent or an interval escaping its
//! parent.

use gss::codec::RateControlConfig;
use gss::core::degrade::DegradationConfig;
use gss::core::session::{run_session, Pipeline, SessionConfig};
use gss::net::FaultPlan;
use gss::platform::{pool, DeviceProfile};
use gss::render::GameId;
use gss::telemetry::json::{self, Json};
use gss::telemetry::{
    Event, InstantKind, Recorder, Sink, SinkHandle, Stage, TraceFrame, TraceSink,
};
use proptest::prelude::*;

const FRAME_MS: f64 = 1000.0 / 60.0;

/// A compressed replay of the canonical fault storm: bandwidth collapse,
/// NPU throttle and an outage inside ~1000 frames, with the degradation
/// ladder and NACK recovery on — every instant kind fires.
fn stormy_cfg() -> SessionConfig {
    let time_scale = 0.2;
    SessionConfig {
        frames: (FaultPlan::canonical_duration_ms(time_scale) / FRAME_MS).round() as usize,
        gop_size: 60,
        lr_size: (128, 72),
        rate_control: Some(RateControlConfig {
            min_quality: 10,
            ..RateControlConfig::for_bitrate_mbps(12.0)
        }),
        ..SessionConfig::new(GameId::G3, DeviceProfile::s8_tab())
    }
    .without_quality()
    .with_faults(FaultPlan::canonical_scaled(time_scale))
    .with_degradation(DegradationConfig::default())
}

fn traced_run() -> (TraceSink, String) {
    let trace = TraceSink::new();
    let cfg = stormy_cfg().with_telemetry(SinkHandle::new(trace.clone()));
    run_session(&cfg, Pipeline::GameStreamSr).expect("session");
    let chrome = trace.to_chrome_json();
    (trace, chrome)
}

fn assert_well_formed(frame: &TraceFrame) {
    assert!(!frame.spans.is_empty(), "frame without a root span");
    assert_eq!(frame.spans[0].parent, None, "root must be parentless");
    for s in &frame.spans {
        assert!(
            s.start_ms <= s.end_ms,
            "span {} runs backwards: {s:?}",
            s.name
        );
        if let Some(pid) = s.parent {
            let p = frame
                .span(pid)
                .unwrap_or_else(|| panic!("orphan parent {pid} of {}", s.name));
            assert!(
                p.start_ms <= s.start_ms && s.end_ms <= p.end_ms,
                "span {} [{}, {}] escapes parent {} [{}, {}]",
                s.name,
                s.start_ms,
                s.end_ms,
                p.name,
                p.start_ms,
                p.end_ms
            );
        } else {
            assert_eq!(s.id, 0, "only the root may be parentless");
        }
    }
}

#[test]
fn session_trace_covers_the_whole_pipeline_with_instants() {
    let (trace, _) = traced_run();
    let sessions = trace.sessions();
    assert_eq!(sessions.len(), 1);
    let frames = &sessions[0].frames;
    assert!(!frames.is_empty());

    for f in frames {
        assert_well_formed(f);
    }
    // all eight pipeline stages appear somewhere in the trace
    for stage in [
        Stage::Render,
        Stage::RoiDetect,
        Stage::Encode,
        Stage::LinkTransfer,
        Stage::Decode,
        Stage::NpuSr,
        Stage::GpuInterp,
        Stage::Merge,
    ] {
        assert!(
            frames.iter().any(|f| !f.stage_spans(stage).is_empty()),
            "{} never traced",
            stage.label()
        );
    }
    // the storm trips every causal marker at least once
    for kind in [
        InstantKind::DeadlineMiss,
        InstantKind::Drop,
        InstantKind::LadderShift,
        InstantKind::Nack,
        InstantKind::Fault,
    ] {
        assert!(
            frames
                .iter()
                .any(|f| f.instants.iter().any(|i| i.kind == kind)),
            "no {} instant in the storm",
            kind.label()
        );
    }
    // trace ids are unique and derived from pid + frame number
    let mut ids: Vec<u64> = frames.iter().map(|f| f.trace_id).collect();
    ids.dedup();
    assert_eq!(ids.len(), frames.len());
    assert_eq!(frames[0].trace_id, sessions[0].pid * 1_000_000);
}

#[test]
fn chrome_export_passes_the_schema_check() {
    let (_, chrome) = traced_run();
    let doc = json::parse(&chrome).expect("chrome trace parses");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    assert!(!events.is_empty());
    let mut open_async = 0i64;
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph");
        assert!(e.get("pid").and_then(Json::as_f64).is_some(), "pid missing");
        match ph {
            "M" => {
                assert!(e.get("name").and_then(Json::as_str).is_some());
                assert!(e.get("args").is_some());
            }
            "X" => {
                let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
                let dur = e.get("dur").and_then(Json::as_f64).expect("dur");
                assert!(ts >= 0.0 && dur >= 0.0);
                assert!(e.get("tid").and_then(Json::as_f64).is_some());
            }
            "b" | "e" => {
                assert_eq!(e.get("cat").and_then(Json::as_str), Some("frame"));
                assert!(e.get("id").and_then(Json::as_str).is_some());
                assert!(e.get("ts").and_then(Json::as_f64).expect("ts") >= 0.0);
                open_async += if ph == "b" { 1 } else { -1 };
                assert!(open_async >= 0, "async end before begin");
            }
            "i" => {
                assert_eq!(e.get("s").and_then(Json::as_str), Some("p"));
                assert!(e.get("ts").and_then(Json::as_f64).expect("ts") >= 0.0);
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    assert_eq!(open_async, 0, "unbalanced async frame events");
}

#[test]
fn trace_json_is_byte_identical_across_reruns_and_worker_counts() {
    let prev = pool::workers();
    let mut exports = Vec::new();
    for workers in [1usize, 8] {
        pool::set_workers(workers);
        exports.push(traced_run().1);
        exports.push(traced_run().1);
    }
    pool::set_workers(prev);
    for e in &exports[1..] {
        assert_eq!(
            e.len(),
            exports[0].len(),
            "trace length diverged across runs"
        );
        assert!(
            e == &exports[0],
            "trace bytes diverged across reruns / worker counts"
        );
    }
}

#[test]
fn slo_breach_instants_fire_without_the_controller_and_stay_quiet_with_it() {
    // the managed storm absorbs the faults inside its SLO error budgets:
    // no breach markers may appear in its trace (the CI triage gate
    // enforces the same contract on the canonical storm)
    let (trace, _) = traced_run();
    assert!(
        !trace.sessions()[0]
            .frames
            .iter()
            .any(|f| f.instants.iter().any(|i| i.kind == InstantKind::SloBreach)),
        "the controller-managed storm must not breach an SLO"
    );

    // the same storm without the degradation ladder burns through the
    // error budget and the breach surfaces as a causal marker
    let trace = TraceSink::new();
    let cfg = SessionConfig {
        degradation: None,
        ..stormy_cfg()
    }
    .with_telemetry(SinkHandle::new(trace.clone()));
    run_session(&cfg, Pipeline::GameStreamSr).expect("session");
    let breaches: Vec<String> = trace.sessions()[0]
        .frames
        .iter()
        .flat_map(|f| &f.instants)
        .filter(|i| i.kind == InstantKind::SloBreach)
        .map(|i| i.detail.clone())
        .collect();
    assert!(
        !breaches.is_empty(),
        "the unmanaged storm should trip at least one SLO breach marker"
    );
    assert!(
        breaches.iter().any(|d| d.contains("breach")),
        "breach details should say what happened: {breaches:?}"
    );
}

// ---- property test: synthetic event streams -----------------------------

fn stage_of(idx: usize) -> Stage {
    Stage::ALL[idx % Stage::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever spans a frame records — any stages, any overlap, any
    /// order — the reconstructed tree has no orphan parents and every
    /// interval nests inside its parent's.
    #[test]
    fn synthetic_span_streams_build_well_formed_trees(
        frames in proptest::collection::vec(
            proptest::collection::vec((0usize..10, -50.0f64..50.0, 0.0f64..20.0), 0..12),
            1..6,
        ),
    ) {
        let trace = TraceSink::new();
        let mut rec = Recorder::new("prop", 16.67).with_sink(SinkHandle::new(trace.clone()));
        for (i, spans) in frames.iter().enumerate() {
            rec.begin_frame(i as u64);
            for (stage_idx, start, dur) in spans {
                rec.record_span(stage_of(*stage_idx), *start, *dur);
            }
            rec.end_frame(1.0, 1.0, 0).unwrap();
        }
        rec.finish();

        let sessions = trace.sessions();
        prop_assert_eq!(sessions[0].frames.len(), frames.len());
        for f in &sessions[0].frames {
            assert_well_formed(f);
        }
        // and the export of an arbitrary stream still parses
        prop_assert!(json::parse(&trace.to_chrome_json()).is_ok());
    }

    /// Replaying the identical event stream into two sinks exports
    /// byte-identical JSON (determinism is a property of the stream, not
    /// of any hidden sink state).
    #[test]
    fn identical_event_streams_export_identically(
        spans in proptest::collection::vec((0usize..10, -20.0f64..20.0, 0.0f64..10.0), 1..20),
    ) {
        let export = |spans: &[(usize, f64, f64)]| {
            let mut sink = TraceSink::new();
            sink.emit(&Event::FrameStart { frame: 0 });
            for (stage_idx, start, dur) in spans {
                sink.emit(&Event::Span {
                    frame: 0,
                    stage: stage_of(*stage_idx),
                    start_ms: *start,
                    end_ms: start + dur,
                });
            }
            sink.emit(&Event::FrameEnd {
                frame: 0,
                mtp_ms: 1.0,
                bytes: 0,
                deadline_met: true,
            });
            sink.to_chrome_json()
        };
        prop_assert_eq!(export(&spans), export(&spans));
    }
}
