//! Resilience integration tests: the canonical fault timeline (mid-session
//! bandwidth collapse overlapping an NPU thermal-throttle ramp, then a full
//! outage) drives a GameStreamSR session with and without the adaptive
//! degradation controller. With the controller, effective FPS stays above
//! 30 and the ladder climbs back to full quality within 2 s of fault
//! clearance; without it, frozen-frame runs grow measurably longer.
//!
//! Everything here is deterministic: the same seed and fault plan replay
//! byte-identical sessions, which the determinism test pins.

use std::sync::OnceLock;

use gss::codec::RateControlConfig;
use gss::core::degrade::DegradationConfig;
use gss::core::session::{run_session, Pipeline, SessionConfig, SessionReport};
use gss::net::{DropCause, FaultPlan};
use gss::platform::DeviceProfile;
use gss::render::GameId;
use gss::telemetry::Counter;

/// Frames per millisecond of session time at the 60 FPS source rate.
const FRAME_MS: f64 = 1000.0 / 60.0;
/// Time compression of the canonical timeline for the deterministic tests.
const TIME_SCALE: f64 = 0.3;

/// The shared scenario: a 7.5 s session through the canonical fault
/// timeline compressed 0.3x (bandwidth collapse ≈1.5–4.5 s overlapping the
/// NPU throttle ramp, outage ≈4.95–5.1 s), rate-controlled at 12 Mbps with
/// enough quality headroom that the ladder's rate cuts can actually fit
/// the collapsed link.
fn faulted_cfg() -> SessionConfig {
    SessionConfig {
        frames: 450,
        gop_size: 60,
        lr_size: (128, 72),
        rate_control: Some(RateControlConfig {
            min_quality: 10,
            ..RateControlConfig::for_bitrate_mbps(12.0)
        }),
        ..SessionConfig::new(GameId::G3, DeviceProfile::s8_tab())
    }
    .without_quality()
    .with_faults(FaultPlan::canonical_scaled(TIME_SCALE))
}

/// First frame index at which every scripted fault has cleared (the
/// canonical timeline's last event, the outage, ends at 17 s unscaled).
fn clearance_frame() -> usize {
    (17_000.0 * TIME_SCALE / FRAME_MS).ceil() as usize
}

fn controller_report() -> &'static SessionReport {
    static R: OnceLock<SessionReport> = OnceLock::new();
    R.get_or_init(|| {
        let cfg = faulted_cfg().with_degradation(DegradationConfig::default());
        run_session(&cfg, Pipeline::GameStreamSr).unwrap()
    })
}

fn no_controller_report() -> &'static SessionReport {
    static R: OnceLock<SessionReport> = OnceLock::new();
    R.get_or_init(|| {
        let mut cfg = faulted_cfg();
        cfg.loss_recovery = true; // same NACK recovery, no ladder
        run_session(&cfg, Pipeline::GameStreamSr).unwrap()
    })
}

#[test]
fn controller_holds_realtime_through_the_canonical_faults() {
    let r = controller_report();
    assert!(
        r.fps_effective() >= 30.0,
        "effective fps {:.1} under faults",
        r.fps_effective()
    );
    // the ladder actually descended deep enough to absorb the 3x throttle
    assert!(r.max_rung() >= 3, "max rung {}", r.max_rung());
    assert!(r.telemetry.counter(Counter::LadderDowngrades) >= 3);
    assert!(r.telemetry.counter(Counter::LadderUpgrades) >= 3);
    // and the NACK machinery both requested and re-requested keyframes
    assert!(r.telemetry.counter(Counter::Nacks) > 0);
    assert!(r.telemetry.counter(Counter::NackRetries) > 0);
}

#[test]
fn controller_recovers_within_two_seconds_of_clearance() {
    let r = controller_report();
    let clear = clearance_frame();
    let deadline = clear + (2000.0 / FRAME_MS) as usize;
    let recovered = r.frames[clear..]
        .iter()
        .find(|f| f.rung == 0)
        .map(|f| f.index)
        .expect("never climbed back to full quality");
    assert!(
        recovered <= deadline,
        "recovered at frame {recovered}, deadline {deadline}"
    );
    // and it stays at full quality once the channel is healthy again
    assert!(r.frames[recovered..].iter().all(|f| f.rung == 0));
}

#[test]
fn disabling_the_controller_lengthens_frozen_runs() {
    let on = controller_report().longest_frozen_run();
    let off = no_controller_report().longest_frozen_run();
    assert!(
        off > on && off >= on + 10,
        "frozen runs: {off} without controller vs {on} with"
    );
}

#[test]
fn drop_causes_agree_between_frame_records_and_telemetry() {
    for r in [controller_report(), no_controller_report()] {
        for f in &r.frames {
            assert_eq!(f.dropped, f.drop_cause.is_some(), "frame {}", f.index);
        }
        assert!(
            r.drops_with_cause(DropCause::Outage) > 0,
            "outage never hit"
        );
        assert_eq!(
            r.drops_with_cause(DropCause::Outage) as u64,
            r.telemetry.counter(Counter::DropsOutage)
        );
        assert_eq!(
            r.drops_with_cause(DropCause::QueueOverflow) as u64,
            r.telemetry.counter(Counter::DropsQueueOverflow)
        );
        assert_eq!(
            r.frames.iter().filter(|f| f.dropped).count() as u64,
            r.telemetry.counter(Counter::FramesDropped)
        );
    }
}

#[test]
fn nack_keyframe_attempts_respect_the_backoff_bound() {
    use gss::codec::FrameType;
    let r = no_controller_report();
    let cfg = DegradationConfig::default();
    let first_drop = r
        .frames
        .iter()
        .find(|f| f.dropped)
        .map(|f| f.index)
        .expect("faulted link never dropped");
    // a fresh NACK forces the very next frame intra
    assert_eq!(r.frames[first_drop + 1].frame_type, FrameType::Intra);
    // while the client stays frozen, keyframe attempts arrive at least
    // every backoff-bound frames (GOP keyframes may come sooner)
    let mut since_intra = 0usize;
    for f in &r.frames {
        if f.frame_type == FrameType::Intra {
            since_intra = 0;
        } else if f.frozen {
            since_intra += 1;
            assert!(
                since_intra <= cfg.nack_backoff_max_frames + 1,
                "frame {}: {} frames frozen without a keyframe attempt",
                f.index,
                since_intra
            );
        }
    }
}

#[test]
fn resilient_sessions_replay_byte_identically() {
    // a compressed copy of the scenario keeps this double-run cheap
    let cfg = SessionConfig {
        frames: 150,
        ..faulted_cfg()
    }
    .with_faults(FaultPlan::canonical_scaled(0.1))
    .with_degradation(DegradationConfig::default());
    let a = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
    let b = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
    assert_eq!(
        format!("{:?}", a.telemetry),
        format!("{:?}", b.telemetry),
        "telemetry summaries diverged across identical runs"
    );
    for (x, y) in a.frames.iter().zip(&b.frames) {
        assert_eq!(
            (x.dropped, x.drop_cause, x.frozen, x.rung),
            (y.dropped, y.drop_cause, y.frozen, y.rung),
            "frame {}",
            x.index
        );
        assert_eq!(x.upscale_ms.to_bits(), y.upscale_ms.to_bits());
        assert_eq!(x.bytes, y.bytes);
    }
}

#[test]
fn summary_table_shows_the_resilience_counters() {
    let table = controller_report().telemetry.table();
    for label in [
        "ladder-downgrades",
        "ladder-upgrades",
        "nack-retries",
        "drops-queue-overflow",
        "drops-outage",
        "ladder-rung",
        "npu-slowdown",
    ] {
        assert!(table.contains(label), "table lacks {label}:\n{table}");
    }
}

/// Full-length canonical soak (20 s, 1200 frames) — run by the CI
/// resilience job with `--ignored`: the session must survive the whole
/// timeline without panicking, hold 30 FPS, bound its worst frozen run,
/// and end back at full quality.
#[test]
#[ignore = "soak: full canonical timeline, run in CI via --ignored"]
fn canonical_soak_survives_and_bounds_frozen_runs() {
    let cfg = SessionConfig {
        frames: 1200,
        ..faulted_cfg()
    }
    .with_faults(FaultPlan::canonical())
    .with_degradation(DegradationConfig::default());
    let r = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
    assert!(r.fps_effective() >= 30.0, "fps {:.1}", r.fps_effective());
    assert!(
        r.longest_frozen_run() <= 180,
        "frozen run {} frames (> 3 s)",
        r.longest_frozen_run()
    );
    assert_eq!(r.frames.last().unwrap().rung, 0, "ended degraded");
}
