//! Quality-ordering invariants across the SR/codec/pipeline stack.

use gss::codec::{Decoder, Encoder, EncoderConfig};
use gss::core::decoder_ext::SrIntegratedDecoder;
use gss::core::{GameStreamClient, NemoClient};
use gss::frame::Rect;
use gss::metrics::{perceptual_distance, psnr, ssim};
use gss::render::{GameId, GameWorkload};
use gss::sr::{InterpKernel, InterpUpscaler, NeuralSr, NeuralSrConfig, Upscaler};

/// Renders a ground-truth HR frame and its LR stream frame.
fn gt_and_lr(game: GameId, t: usize) -> (gss::frame::Frame, gss::frame::Frame) {
    let out = GameWorkload::new(game).render_frame(t, 192, 108);
    let lr = out.frame.downsample_box(2);
    (out.frame, lr)
}

#[test]
fn upscaler_quality_ordering_on_rendered_content() {
    // the paper's premise: DNN-SR (proxy) ranks above the interpolators
    let mut score = std::collections::HashMap::new();
    for game in [GameId::G1, GameId::G3, GameId::G5] {
        let (gt, lr) = gt_and_lr(game, 0);
        for (name, up) in [
            (
                "nearest",
                Box::new(InterpUpscaler::new(InterpKernel::Nearest, 2)) as Box<dyn Upscaler>,
            ),
            (
                "bilinear",
                Box::new(InterpUpscaler::new(InterpKernel::Bilinear, 2)),
            ),
            (
                "bicubic",
                Box::new(InterpUpscaler::new(InterpKernel::Bicubic, 2)),
            ),
            ("neural", Box::new(NeuralSr::new(NeuralSrConfig::default()))),
        ] {
            let q = psnr(&gt, &up.upscale(&lr)).unwrap();
            *score.entry(name).or_insert(0.0) += q;
        }
    }
    // the neural proxy must rank best overall and bicubic above bilinear;
    // nearest-vs-bilinear ordering is content-dependent on box-downsampled
    // aliased renders, so it is not asserted
    let best = score
        .iter()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(k, _)| *k)
        .unwrap();
    assert_eq!(best, "neural", "{score:?}");
    assert!(score["bicubic"] > score["bilinear"], "{score:?}");
}

#[test]
fn metrics_agree_on_gross_quality_differences() {
    // PSNR, SSIM and the perceptual proxy must all rank a good
    // reconstruction above a bad one
    let (gt, lr) = gt_and_lr(GameId::G3, 0);
    let good = InterpUpscaler::new(InterpKernel::Bicubic, 2).upscale(&lr);
    let bad = InterpUpscaler::new(InterpKernel::Nearest, 2)
        .upscale(&lr.downsample_box(2))
        .y()
        .clone();
    let bad = gss::frame::Frame::from_planes(
        InterpUpscaler::new(InterpKernel::Nearest, 2).upscale_plane(&bad),
        good.cb().clone(),
        good.cr().clone(),
    )
    .unwrap();
    assert!(psnr(&gt, &good).unwrap() > psnr(&gt, &bad).unwrap());
    assert!(ssim(&gt, &good).unwrap() > ssim(&gt, &bad).unwrap());
    assert!(perceptual_distance(&gt, &good).unwrap() < perceptual_distance(&gt, &bad).unwrap());
}

#[test]
fn roi_client_beats_nemo_late_in_gop() {
    // stream one GOP; by the last frames NEMO's drift must put it below
    // the RoI client
    let mut enc = Encoder::new(EncoderConfig {
        gop_size: 12,
        ..EncoderConfig::default()
    });
    let workload = GameWorkload::new(GameId::G3);
    let mut ours = GameStreamClient::new(2);
    let mut nemo = NemoClient::new(2);
    let roi = Rect::new(44, 24, 48, 48);
    let mut ours_last = 0.0;
    let mut nemo_last = 0.0;
    for t in 0..12 {
        let native = workload.render_frame(t * 6, 192, 108);
        let lr = native.frame.downsample_box(2);
        let packet = enc.encode(&lr).unwrap();
        let a = ours.process(&packet, roi).unwrap();
        let b = nemo.process(&packet).unwrap();
        if t >= 9 {
            ours_last += psnr(&native.frame, &a.frame).unwrap();
            nemo_last += psnr(&native.frame, &b.frame).unwrap();
        }
    }
    assert!(
        ours_last > nemo_last + 0.5,
        "late-GOP: ours {:.2} vs nemo {:.2}",
        ours_last / 3.0,
        nemo_last / 3.0
    );
}

#[test]
fn sr_integrated_decoder_beats_nemo_on_the_same_stream() {
    // the §VI prototype's RoI-guided residual interpolation should never
    // be worse than NEMO's uniform bilinear on the same stream
    let mut enc = Encoder::new(EncoderConfig {
        gop_size: 10,
        ..EncoderConfig::default()
    });
    let workload = GameWorkload::new(GameId::G6);
    let mut ext = SrIntegratedDecoder::new(2);
    let mut nemo = NemoClient::new(2);
    let roi = Rect::new(30, 20, 40, 34);
    let mut ext_total = 0.0;
    let mut nemo_total = 0.0;
    for t in 0..10 {
        let native = workload.render_frame(t * 4, 192, 108);
        let lr = native.frame.downsample_box(2);
        let packet = enc.encode(&lr).unwrap();
        ext_total += psnr(&native.frame, &ext.process(&packet, roi).unwrap().frame).unwrap();
        nemo_total += psnr(&native.frame, &nemo.process(&packet).unwrap().frame).unwrap();
    }
    assert!(
        ext_total >= nemo_total - 0.1,
        "ext {:.2} vs nemo {:.2}",
        ext_total / 10.0,
        nemo_total / 10.0
    );
}

#[test]
fn codec_quality_monotone_in_quality_setting() {
    let (_, lr) = gt_and_lr(GameId::G4, 0);
    let mut prev_psnr = 0.0;
    for quality in [40u8, 70, 95] {
        let mut enc = Encoder::new(EncoderConfig {
            quality,
            ..EncoderConfig::default()
        });
        let mut dec = Decoder::new();
        let decoded = dec.decode(&enc.encode(&lr).unwrap()).unwrap();
        let q = psnr(&lr, &decoded.frame).unwrap();
        assert!(q > prev_psnr, "quality {quality}: {q:.2} <= {prev_psnr:.2}");
        prev_psnr = q;
    }
}
