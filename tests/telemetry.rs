//! Integration tests for the frame-scoped telemetry subsystem: a real
//! session driven through an in-memory sink must yield a summary whose
//! per-stage percentiles, byte counters and deadline ledger are consistent
//! with the per-frame records, and identical seeded sessions must produce
//! byte-identical summaries.

use gss::core::session::{run_comparison, run_session, Pipeline, SessionConfig};
use gss::platform::{DeviceProfile, REALTIME_BUDGET_MS};
use gss::render::GameId;
use gss::telemetry::{Counter, Event, Level, MemorySink, SinkHandle, Stage};

fn small_cfg() -> SessionConfig {
    SessionConfig {
        frames: 12,
        gop_size: 6,
        lr_size: (128, 72),
        ..SessionConfig::new(GameId::G2, DeviceProfile::pixel7_pro())
    }
    .without_quality()
}

#[test]
fn session_summary_matches_frame_records() {
    let mem = MemorySink::new();
    let cfg = small_cfg().with_telemetry(SinkHandle::new(mem.clone()));
    let report = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
    let t = &report.telemetry;

    // one frame in the ledger per simulated frame
    assert_eq!(t.frames as usize, report.frames.len());

    // per-stage latency distributions with ordered percentiles
    for stage in Stage::ALL {
        if let Some(s) = t.stage(stage) {
            assert!(
                s.dist.p50 <= s.dist.p95 && s.dist.p95 <= s.dist.p99 && s.dist.p99 <= s.dist.max,
                "{}: p50 {} p95 {} p99 {} max {}",
                stage.label(),
                s.dist.p50,
                s.dist.p95,
                s.dist.p99,
                s.dist.max
            );
        }
    }
    // the RoI pipeline exercises every stage of the taxonomy
    for stage in Stage::ALL {
        assert!(t.stage(stage).is_some(), "{} never recorded", stage.label());
    }

    // byte accounting agrees with the report exactly
    assert_eq!(
        t.counter(Counter::BytesOnWire) as usize,
        report.total_bytes()
    );
    let bytes = t.frame_bytes.expect("byte histogram");
    assert_eq!(bytes.count as usize, report.frames.len());

    // the deadline ledger agrees with the per-frame records
    let misses = report.frames.iter().filter(|f| !f.deadline_met).count();
    assert_eq!(t.deadline_misses as usize, misses);
    assert_eq!(t.budget_ms, REALTIME_BUDGET_MS);

    // and with the event stream the sink observed
    let events = mem.events();
    let end_verdicts: Vec<bool> = events
        .iter()
        .filter_map(|e| match e {
            Event::FrameEnd { deadline_met, .. } => Some(*deadline_met),
            _ => None,
        })
        .collect();
    let record_verdicts: Vec<bool> = report.frames.iter().map(|f| f.deadline_met).collect();
    assert_eq!(end_verdicts, record_verdicts);
}

#[test]
fn identical_seeded_sessions_produce_identical_summaries() {
    let cfg = small_cfg();
    let a = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
    let b = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
    assert_eq!(a.telemetry.to_json(), b.telemetry.to_json());

    // and a different link seed perturbs the trace (the equality above is
    // not vacuous)
    let mut other = small_cfg();
    other.link_seed ^= 0xdead_beef;
    let c = run_session(&other, Pipeline::GameStreamSr).unwrap();
    assert_ne!(a.telemetry.to_json(), c.telemetry.to_json());
}

#[test]
fn comparison_exposes_both_pipelines_summaries() {
    let cmp = run_comparison(&small_cfg()).unwrap();
    let (ours, sota) = cmp.telemetry();
    assert!(ours.label.contains("GameStreamSR"));
    assert!(sota.label.contains("NEMO"));
    // NEMO never runs the RoI stages and misses every deadline
    assert!(sota.stage(Stage::DepthCapture).is_none());
    assert!(sota.stage(Stage::RoiDetect).is_none());
    assert_eq!(sota.deadline_misses, sota.frames);
    assert_eq!(ours.deadline_misses, 0);
    // effective display rate follows the ledger
    assert_eq!(cmp.ours.fps_effective(), 60.0);
    assert_eq!(cmp.sota.fps_effective(), 0.0);
}

#[test]
fn summary_table_renders_every_recorded_stage() {
    let report = run_session(&small_cfg(), Pipeline::GameStreamSr).unwrap();
    let table = report.telemetry.table();
    for stage in Stage::ALL {
        assert!(
            table.contains(stage.label()),
            "table lacks {}",
            stage.label()
        );
    }
    assert!(table.contains("mtp (ms)"));
    assert!(table.contains("frame bytes"));
}

#[test]
fn log_events_round_trip_through_the_shared_sink() {
    let mem = MemorySink::new();
    let handle = SinkHandle::new(mem.clone());
    handle.emit(&Event::Log {
        level: Level::Warn,
        message: "bandwidth dip".into(),
    });
    let cfg = small_cfg().with_telemetry(handle);
    run_session(&cfg, Pipeline::Nemo).unwrap();
    let events = mem.events();
    assert!(matches!(
        events[0],
        Event::Log {
            level: Level::Warn,
            ..
        }
    ));
    assert!(events.iter().any(|e| matches!(e, Event::SessionEnd { .. })));
}
