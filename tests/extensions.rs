//! Integration tests for the extensions beyond the paper (DESIGN.md §4b):
//! temporal RoI tracking, closed-loop rate control and loss recovery, all
//! running through the full session pipeline.

use gss::codec::RateControlConfig;
use gss::core::roi::TrackerConfig;
use gss::core::session::{run_session, Pipeline, SessionConfig};
use gss::platform::DeviceProfile;
use gss::render::GameId;

fn base(game: GameId) -> SessionConfig {
    SessionConfig {
        frames: 12,
        gop_size: 12,
        lr_size: (128, 72),
        ..SessionConfig::new(game, DeviceProfile::s8_tab())
    }
    .without_quality()
}

#[test]
fn tracker_in_session_produces_valid_frames() {
    let mut cfg = base(GameId::G10);
    cfg.tracker = Some(TrackerConfig::default());
    let r = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
    assert_eq!(r.frames.len(), 12);
    // all modeled numbers remain sane with tracking enabled
    assert!(r.realtime_fraction() == 1.0);
}

#[test]
fn rate_control_in_session_cuts_bytes() {
    let free = run_session(&base(GameId::G5), Pipeline::GameStreamSr)
        .unwrap()
        .total_bytes();
    let mut cfg = base(GameId::G5);
    cfg.rate_control = Some(RateControlConfig {
        // a budget well under the free-running stream
        target_bytes_per_frame: 400,
        ..RateControlConfig::for_bitrate_mbps(1.0)
    });
    let governed = run_session(&cfg, Pipeline::GameStreamSr)
        .unwrap()
        .total_bytes();
    assert!(
        governed < free * 4 / 5,
        "governed {governed} vs free {free}"
    );
}

#[test]
fn rate_control_reduces_drops_on_a_tight_link() {
    // the whole point of rate control: fit the channel
    let mut cfg = base(GameId::G5).with_frames(30);
    cfg.link.bandwidth_mbps = 25.0;
    cfg.link.bandwidth_cv = 0.2;
    let free_drops = run_session(&cfg, Pipeline::GameStreamSr)
        .unwrap()
        .frames
        .iter()
        .filter(|f| f.dropped)
        .count();
    cfg.rate_control = Some(RateControlConfig::for_bitrate_mbps(12.0));
    let governed_drops = run_session(&cfg, Pipeline::GameStreamSr)
        .unwrap()
        .frames
        .iter()
        .filter(|f| f.dropped)
        .count();
    assert!(
        governed_drops <= free_drops,
        "governed {governed_drops} vs free {free_drops}"
    );
}

#[test]
fn loss_recovery_composes_with_rate_control_and_tracker() {
    // everything on at once over a bad link: the session must complete and
    // recover
    let mut cfg = base(GameId::G3).with_frames(24);
    cfg.loss_recovery = true;
    cfg.tracker = Some(TrackerConfig::default());
    cfg.rate_control = Some(RateControlConfig::for_bitrate_mbps(10.0));
    cfg.link.bandwidth_mbps = 12.0;
    cfg.link.bandwidth_cv = 0.5;
    let r = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
    assert_eq!(r.frames.len(), 24);
    // any drop must eventually be followed by a displayed frame
    if let Some(first_drop) = r.frames.iter().position(|f| f.dropped) {
        assert!(
            r.frames[first_drop..]
                .iter()
                .any(|f| !f.frozen && !f.dropped),
            "never recovered after frame {first_drop}"
        );
    }
}

#[test]
fn extensions_default_off_matches_paper_configuration() {
    let cfg = base(GameId::G1);
    assert!(cfg.tracker.is_none());
    assert!(cfg.rate_control.is_none());
    assert!(!cfg.loss_recovery);
}
