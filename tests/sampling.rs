//! Integration tests for tail-based trace sampling: a faulted session
//! driven through the full trace collector *and* the sampler at once
//! must retain exactly the anomaly/context/baseline frames (each
//! byte-equal to its full-trace twin), every exemplar must link to a
//! retained frame, and a sampled fleet must export byte-identical
//! traces and reports at any worker count while staying strictly
//! smaller than its full-trace twin.

use gss::codec::RateControlConfig;
use gss::core::degrade::DegradationConfig;
use gss::core::fleet::{FleetConfig, FleetSessionSpec, FleetSim};
use gss::core::session::{run_session, Pipeline, SessionConfig};
use gss::net::{FaultEvent, FaultKind, FaultPlan, LinkProfile};
use gss::platform::pool::PoolHandle;
use gss::platform::DeviceProfile;
use gss::render::GameId;
use gss::telemetry::{
    compute_exemplars, SamplingPolicy, SamplingTraceSink, SinkHandle, TraceBudget, TraceFrame,
    TraceSink,
};

const FRAME_MS: f64 = 1000.0 / 60.0;

/// A compressed replay of the canonical fault storm (see `tests/trace.rs`):
/// bandwidth collapse, NPU throttle and an outage inside ~1000 frames, so
/// deadline misses, drops, NACKs, ladder shifts and faults all fire.
fn stormy_cfg() -> SessionConfig {
    let time_scale = 0.2;
    SessionConfig {
        frames: (FaultPlan::canonical_duration_ms(time_scale) / FRAME_MS).round() as usize,
        gop_size: 60,
        lr_size: (128, 72),
        rate_control: Some(RateControlConfig {
            min_quality: 10,
            ..RateControlConfig::for_bitrate_mbps(12.0)
        }),
        ..SessionConfig::new(GameId::G3, DeviceProfile::s8_tab())
    }
    .without_quality()
    .with_faults(FaultPlan::canonical_scaled(time_scale))
    .with_degradation(DegradationConfig::default())
}

/// An uncapped keep policy: 1-in-16 baseline, ±2 context, budget far
/// above anything the storm produces — so the keep policy alone decides.
fn uncapped_policy() -> SamplingPolicy {
    SamplingPolicy {
        baseline_period: 16,
        context_frames: 2,
        budget: TraceBudget {
            per_session: usize::MAX,
            fleet: usize::MAX,
        },
    }
}

/// Runs the storm once with both collectors fanned out off one session.
fn dual_run(policy: SamplingPolicy) -> (TraceSink, SamplingTraceSink) {
    let full = TraceSink::new();
    let (cfg, sampler) = stormy_cfg()
        .with_telemetry(SinkHandle::new(full.clone()))
        .with_sampled_trace(policy);
    run_session(&cfg, Pipeline::GameStreamSr).expect("session");
    (full, sampler)
}

fn is_anomalous(frame: &TraceFrame) -> bool {
    !frame.deadline_met || !frame.instants.is_empty()
}

#[test]
fn retained_frames_twin_the_full_trace_and_cover_every_anomaly() {
    let (full, sampler) = dual_run(uncapped_policy());
    let full_frames = &full.sessions()[0].frames;
    let retained = &sampler.sessions()[0].frames;
    assert!(!retained.is_empty(), "storm retained nothing");
    assert!(
        retained.len() < full_frames.len(),
        "sampler kept everything ({} frames) — no storm should be 100% anomalous",
        retained.len()
    );

    // every retained frame is byte-for-byte its full-trace twin
    for frame in retained {
        let twin = full_frames
            .iter()
            .find(|f| f.frame == frame.frame)
            .unwrap_or_else(|| panic!("retained frame {} not in the full trace", frame.frame));
        assert_eq!(frame, twin, "retained frame {} diverged", frame.frame);
    }

    // every anomalous frame is retained, with ±K context around it
    let k = uncapped_policy().context_frames;
    let last = full_frames.last().expect("frames").frame;
    let kept: Vec<u64> = retained.iter().map(|f| f.frame).collect();
    let mut anomalies = 0;
    for f in full_frames.iter().filter(|f| is_anomalous(f)) {
        anomalies += 1;
        for n in f.frame.saturating_sub(k)..=(f.frame + k).min(last) {
            assert!(
                kept.binary_search(&n).is_ok(),
                "frame {n} (context of anomaly {}) was not retained",
                f.frame
            );
        }
    }
    assert!(anomalies > 0, "the storm produced no anomalies to cover");

    // the deterministic 1-in-M baseline rides along
    let m = uncapped_policy().baseline_period;
    for f in full_frames.iter().filter(|f| f.frame % m == 0) {
        assert!(
            kept.binary_search(&f.frame).is_ok(),
            "baseline frame {} was not retained",
            f.frame
        );
    }
}

#[test]
fn exemplars_always_link_to_retained_frames_with_matching_durations() {
    let (_, sampler) = dual_run(uncapped_policy());
    let sessions = sampler.sessions();
    let exemplars = compute_exemplars(&sessions);
    assert_eq!(exemplars.len(), 1);
    let e = &exemplars[0];
    assert!(e.count() > 0, "storm produced no exemplars");

    let frames = &sessions[0].frames;
    let worst = e.worst_frame.expect("worst-frame exemplar");
    let frame = frames
        .iter()
        .find(|f| f.trace_id == worst.trace_id)
        .expect("worst-frame exemplar links to a retained frame");
    let root = &frame.spans[0];
    assert_eq!(root.end_ms - root.start_ms, worst.value);

    for (stage, ex) in &e.stages {
        let frame = frames
            .iter()
            .find(|f| f.trace_id == ex.trace_id)
            .unwrap_or_else(|| panic!("{stage:?} exemplar links to no retained frame"));
        assert!(
            frame
                .stage_spans(*stage)
                .iter()
                .any(|s| s.end_ms - s.start_ms == ex.value),
            "{stage:?} exemplar value {} matches no retained span",
            ex.value
        );
    }
}

/// A small sampled fleet with churn and a decoder-crash victim — the
/// worker-identity and size contracts at fleet scope.
fn sampled_fleet(ticks: usize, pool: PoolHandle, sampled: bool) -> FleetConfig {
    let mut config = FleetConfig::new(LinkProfile::fiber(), 0xf1ee7).with_ticks(ticks);
    config.session_rate_mbps = 18.0;
    config.pool = pool;
    if sampled {
        config = config.with_sampling(SamplingPolicy::default());
    }
    config
        .with_session(FleetSessionSpec::new(GameId::G1, DeviceProfile::s8_tab()))
        .with_session(
            FleetSessionSpec::new(GameId::G2, DeviceProfile::pixel7_pro())
                .joining_at(3)
                .leaving_at(ticks * 2 / 3),
        )
        .with_session(
            FleetSessionSpec::new(GameId::G3, DeviceProfile::s8_tab())
                .joining_at(6)
                .with_faults(FaultPlan::new(vec![FaultEvent {
                    start_ms: 150.0,
                    end_ms: 400.0,
                    kind: FaultKind::DecoderCrash,
                }])),
        )
}

#[test]
fn sampled_fleet_trace_and_report_are_bit_identical_at_1_and_8_workers() {
    let mut serial = FleetSim::new(sampled_fleet(90, PoolHandle::with_workers(1), true));
    let serial_report = serial.run_until_idle().expect("serial run");
    let mut wide = FleetSim::new(sampled_fleet(90, PoolHandle::with_workers(8), true));
    let wide_report = wide.run_until_idle().expect("wide run");

    assert_eq!(serial_report.to_json(), wide_report.to_json());
    assert_eq!(serial.to_chrome_json(), wide.to_chrome_json());
    assert_eq!(
        serial.sampling_summary().expect("sampling on").to_json(),
        wide.sampling_summary().expect("sampling on").to_json()
    );
}

#[test]
fn sampled_fleet_reports_identically_to_full_but_exports_fewer_bytes() {
    let mut full = FleetSim::new(sampled_fleet(90, PoolHandle::with_workers(2), false));
    let full_report = full.run_until_idle().expect("full run");
    let mut sampled = FleetSim::new(sampled_fleet(90, PoolHandle::with_workers(2), true));
    let sampled_report = sampled.run_until_idle().expect("sampled run");

    // the sampler must be observationally free: same report bytes
    assert_eq!(full_report.to_json(), sampled_report.to_json());
    assert!(full.sampling_summary().is_none());

    let full_bytes = full.to_chrome_json().len();
    let sampled_bytes = sampled.to_chrome_json().len();
    assert!(
        sampled_bytes < full_bytes,
        "sampled trace ({sampled_bytes} B) not smaller than full ({full_bytes} B)"
    );
}
