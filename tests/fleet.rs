//! Fleet-simulator contract tests: bit-determinism at any worker count,
//! join/leave churn soaks, one-session decoder-crash isolation, and the
//! deadline-miss attribution floor.

use gamestreamsr::fleet::{AdmissionPolicy, FleetConfig, FleetReport, FleetSessionSpec, FleetSim};
use gss_net::{FaultEvent, FaultKind, FaultPlan, LinkProfile};
use gss_platform::pool::PoolHandle;
use gss_platform::DeviceProfile;
use gss_render::GameId;

fn device(i: usize) -> DeviceProfile {
    if i.is_multiple_of(2) {
        DeviceProfile::s8_tab()
    } else {
        DeviceProfile::pixel7_pro()
    }
}

/// A four-session fleet with staggered joins, one mid-run leaver, one
/// decoder-crash storm and one bandwidth-fade timeline — every code path
/// the determinism contract must cover.
fn mixed_fleet(ticks: usize, pool: PoolHandle) -> FleetConfig {
    let mut config = FleetConfig::new(LinkProfile::fiber(), 0xf1ee7).with_ticks(ticks);
    config.session_rate_mbps = 18.0;
    config.pool = pool;
    config = config
        .with_session(FleetSessionSpec::new(GameId::G1, device(0)))
        .with_session(
            FleetSessionSpec::new(GameId::G2, device(1))
                .joining_at(3)
                .leaving_at(ticks * 2 / 3),
        )
        .with_session(
            FleetSessionSpec::new(GameId::G3, device(2))
                .joining_at(6)
                .with_faults(FaultPlan::new(vec![FaultEvent {
                    start_ms: 150.0,
                    end_ms: 400.0,
                    kind: FaultKind::DecoderCrash,
                }])),
        )
        .with_session(
            FleetSessionSpec::new(GameId::G4, device(3))
                .joining_at(9)
                .with_faults(FaultPlan::new(vec![FaultEvent {
                    start_ms: 300.0,
                    end_ms: 700.0,
                    kind: FaultKind::BandwidthCollapse { factor: 0.4 },
                }])),
        );
    config
}

/// Per-session digests that must replay bit-identically: the telemetry,
/// SLO and attribution JSON documents of every session.
fn session_digests(report: &FleetReport) -> Vec<String> {
    report
        .sessions
        .iter()
        .map(|s| {
            format!(
                "{}|{}|{}|{}",
                s.label,
                s.telemetry.to_json(),
                s.slo.to_json(),
                s.attribution.to_json()
            )
        })
        .collect()
}

#[test]
fn fleet_report_is_bit_identical_at_1_and_8_workers() {
    let serial = FleetSim::new(mixed_fleet(90, PoolHandle::with_workers(1)))
        .run_until_idle()
        .expect("serial fleet");
    let wide = FleetSim::new(mixed_fleet(90, PoolHandle::with_workers(8)))
        .run_until_idle()
        .expect("wide fleet");
    assert_eq!(
        serial.to_json(),
        wide.to_json(),
        "fleet report must not depend on the worker count"
    );
    assert_eq!(
        session_digests(&serial),
        session_digests(&wide),
        "per-session telemetry/SLO/attribution digests must not depend on the worker count"
    );
}

#[test]
fn fleet_trace_is_bit_identical_at_1_and_8_workers() {
    let mut serial = FleetSim::new(mixed_fleet(60, PoolHandle::with_workers(1)));
    serial.run_until_idle().expect("serial fleet");
    let mut wide = FleetSim::new(mixed_fleet(60, PoolHandle::with_workers(8)));
    wide.run_until_idle().expect("wide fleet");
    assert_eq!(serial.to_chrome_json(), wide.to_chrome_json());
}

/// Join/leave churn every 12 ticks across a 2-slot server: the compressed
/// always-on variant of the CI soak below.
fn churn_fleet(ticks: usize, period: usize, capacity: usize) -> FleetConfig {
    let mut config = FleetConfig::new(LinkProfile::fiber(), 0xc0ffee).with_ticks(ticks);
    config.session_rate_mbps = 18.0;
    config.admission = AdmissionPolicy {
        capacity,
        queue_limit: 3,
    };
    let mut i = 0;
    let mut join = 0;
    while join < ticks {
        let spec = FleetSessionSpec::new(GameId::ALL[i % GameId::ALL.len()], device(i))
            .joining_at(join)
            .leaving_at((join + period * 5).min(ticks));
        config = config.with_session(spec);
        i += 1;
        join += period;
    }
    config
}

#[test]
fn churn_soak_compressed_stays_consistent() {
    let report = FleetSim::new(churn_fleet(120, 12, 2))
        .run_until_idle()
        .expect("churn fleet");
    assert!(report.admission.admitted >= 2, "churn admitted nobody");
    assert!(report.flows_consistent());
    for s in &report.sessions {
        assert!(
            s.left_tick > s.joined_tick,
            "session {} left before it joined",
            s.spec
        );
        assert_eq!(
            s.frames as usize,
            s.left_tick - s.joined_tick,
            "session {} frame ledger does not match its tenancy",
            s.spec
        );
    }
    assert!(
        report.attributed_fraction() >= 0.95,
        "churn attribution below the 95% floor: {:.3}",
        report.attributed_fraction()
    );
}

/// The full CI soak: one minute of logical time, a join every 2 s, each
/// tenancy 10 s, an 8-slot server. Heavy — run with `--release -- --ignored`.
#[test]
#[ignore = "heavy soak; CI runs it with --release -- --ignored"]
fn churn_soak_full_minute() {
    let report = FleetSim::new(churn_fleet(3600, 120, 8))
        .run_until_idle()
        .expect("churn fleet");
    assert!(report.admission.admitted >= 20);
    assert!(report.flows_consistent());
    assert!(
        report.attributed_fraction() >= 0.95,
        "soak attribution below the 95% floor: {:.3}",
        report.attributed_fraction()
    );
    let identical = FleetSim::new(churn_fleet(3600, 120, 8))
        .run_until_idle()
        .expect("churn fleet replay");
    assert_eq!(report.to_json(), identical.to_json());
}

#[test]
fn decoder_crash_storm_stays_inside_its_session() {
    let mut config = FleetConfig::new(LinkProfile::fiber(), 7).with_ticks(120);
    config.session_rate_mbps = 18.0;
    config = config
        .with_session(FleetSessionSpec::new(GameId::G1, device(0)))
        .with_session(
            FleetSessionSpec::new(GameId::G2, device(1))
                .joining_at(1)
                .with_faults(FaultPlan::crash_storm_scaled(0.2)),
        )
        .with_session(FleetSessionSpec::new(GameId::G3, device(2)).joining_at(2));
    let report = FleetSim::new(config).run_until_idle().expect("crash fleet");
    let victim = &report.sessions[1];
    assert!(
        victim.drops_decoder_down > 0,
        "the storm session never lost a frame to its dead decoder"
    );
    assert!(
        victim.recovery.is_some(),
        "the storm session must carry a recovery summary"
    );
    for s in [&report.sessions[0], &report.sessions[2]] {
        assert_eq!(
            s.drops_decoder_down, 0,
            "decoder crash leaked into session {}",
            s.spec
        );
        assert_eq!(
            s.frames,
            120 - s.joined_tick as u64,
            "bystander session {} lost frames",
            s.spec
        );
    }
    assert!(
        report.attributed_fraction() >= 0.95,
        "crash-storm attribution below the 95% floor: {:.3}",
        report.attributed_fraction()
    );
}
