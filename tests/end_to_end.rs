//! Cross-crate integration: the full server → network → client pipeline,
//! run through the facade crate exactly as a downstream user would.

use gss::codec::FrameType;
use gss::core::session::{run_session, Pipeline, SessionConfig};
use gss::core::{GameStreamClient, GameStreamServer, NemoClient, ServerConfig};
use gss::platform::DeviceProfile;
use gss::render::GameId;

fn small_session(game: GameId) -> SessionConfig {
    SessionConfig {
        frames: 8,
        gop_size: 4,
        lr_size: (128, 72),
        ..SessionConfig::new(game, DeviceProfile::s8_tab())
    }
}

#[test]
fn both_pipelines_complete_on_every_game() {
    for game in GameId::ALL {
        let cfg = small_session(game).without_quality();
        for pipeline in [Pipeline::GameStreamSr, Pipeline::Nemo] {
            let report = run_session(&cfg, pipeline)
                .unwrap_or_else(|e| panic!("{game} / {pipeline:?}: {e}"));
            assert_eq!(report.frames.len(), 8);
            assert!(report.energy.total_mj > 0.0);
        }
    }
}

#[test]
fn frame_types_alternate_with_gop() {
    let cfg = small_session(GameId::G7).without_quality();
    let report = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
    let types: Vec<FrameType> = report.frames.iter().map(|f| f.frame_type).collect();
    use FrameType::*;
    assert_eq!(
        types,
        vec![Intra, Inter, Inter, Inter, Intra, Inter, Inter, Inter]
    );
}

#[test]
fn server_packets_feed_both_clients_identically() {
    // both clients decode the same stream; their decoded LR content (and
    // hence their quality differences) must come only from upscaling policy
    let mut server = GameStreamServer::new(ServerConfig::new(GameId::G2, (96, 54), (32, 32)));
    let mut ours = GameStreamClient::new(2);
    let mut nemo = NemoClient::new(2);
    for _ in 0..3 {
        let p = server.next_frame().unwrap();
        let a = ours.process(&p.encoded, p.roi).unwrap();
        let b = nemo.process(&p.encoded).unwrap();
        assert_eq!(a.frame.size(), (192, 108));
        assert_eq!(b.frame.size(), (192, 108));
    }
}

#[test]
fn session_reports_are_serializable_data() {
    // reports are plain data for downstream tooling: Serialize must hold
    let cfg = small_session(GameId::G9).without_quality().with_frames(4);
    let report = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
    fn assert_serialize<T: serde::Serialize>(_: &T) {}
    assert_serialize(&report);
}

#[test]
fn dropped_frames_are_flagged_not_fatal() {
    // strangle the link so drops occur; the session must still complete
    let mut cfg = small_session(GameId::G5).without_quality().with_frames(12);
    cfg.link.bandwidth_mbps = 3.0;
    cfg.link.bandwidth_cv = 0.0;
    let report = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
    assert!(report.frames.iter().any(|f| f.dropped));
    assert_eq!(report.frames.len(), 12);
}

#[test]
fn energy_scales_linearly_with_frames() {
    let short = run_session(
        &small_session(GameId::G1).without_quality().with_frames(4),
        Pipeline::GameStreamSr,
    )
    .unwrap();
    let long = run_session(
        &small_session(GameId::G1).without_quality().with_frames(8),
        Pipeline::GameStreamSr,
    )
    .unwrap();
    let ratio = long.energy.total_mj / short.energy.total_mj;
    assert!((1.8..2.2).contains(&ratio), "ratio {ratio:.3}");
}
