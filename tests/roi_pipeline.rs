//! Property-based and rendered-scene tests of the RoI detection pipeline
//! across crates (renderer → depth buffer → detector).

use gss::core::roi::{
    plan_roi_window, preprocess, search_roi, PreprocessConfig, RoiDetector, RoiDetectorConfig,
    SearchConfig,
};
use gss::frame::{DepthMap, Plane, Rect};
use gss::platform::DeviceProfile;
use gss::render::{GameId, GameWorkload};
use proptest::prelude::*;

#[test]
fn roi_tracks_the_hero_across_frames() {
    // in TPS games the camera-attached hero keeps a near object close to
    // the frame center; the RoI should stay near it across the session
    for game in [GameId::G2, GameId::G3, GameId::G6] {
        let workload = GameWorkload::new(game);
        let detector = RoiDetector::default();
        for t in [0usize, 10, 20] {
            let out = workload.render_frame(t, 256, 144);
            let depth = out.depth.downsample_box(2);
            let roi = detector.detect(&depth, (48, 40)).roi;
            let (cx, cy) = roi.center();
            assert!(
                (16..=112).contains(&cx) && (10..=62).contains(&cy),
                "{game} t={t}: roi center ({cx},{cy}) far off-center"
            );
        }
    }
}

#[test]
fn detector_is_stable_under_small_temporal_changes() {
    // consecutive frames move the camera slightly; the RoI must not leap
    // across the frame (it feeds a visual quality region — jumps would
    // flicker)
    let workload = GameWorkload::new(GameId::G9); // slowest camera
    let detector = RoiDetector::default();
    let mut prev: Option<Rect> = None;
    for t in 0..5 {
        let out = workload.render_frame(t, 256, 144);
        let depth = out.depth.downsample_box(2);
        let roi = detector.detect(&depth, (48, 40)).roi;
        if let Some(p) = prev {
            let (ax, ay) = p.center();
            let (bx, by) = roi.center();
            let dist =
                (((ax as f64 - bx as f64).powi(2)) + ((ay as f64 - by as f64).powi(2))).sqrt();
            assert!(dist < 24.0, "t={t}: RoI jumped {dist:.1}px");
        }
        prev = Some(roi);
    }
}

#[test]
fn window_plans_are_consistent_across_devices() {
    for device in DeviceProfile::all() {
        let plan = plan_roi_window(&device, 2, 1280, 720);
        assert!(plan.chosen_side <= plan.max_side);
        assert!(plan.chosen_side <= 720);
        assert!(plan.max_side >= 200, "{}: {}", device.name, plan.max_side);
        // the chosen window must actually fit the real-time budget
        assert!(
            device.npu_sr_ms(plan.chosen_side * plan.chosen_side)
                <= gss::platform::REALTIME_BUDGET_MS + 1e-9
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn detection_never_escapes_bounds(
        w in 40usize..160,
        h in 30usize..120,
        win_frac in 0.2f64..0.9,
        blob_x in 0.0f64..1.0,
        blob_y in 0.0f64..1.0,
        blob_r in 0.05f64..0.4,
    ) {
        let depth = DepthMap::from_fn(w, h, |x, y| {
            let dx = x as f64 - blob_x * w as f64;
            let dy = y as f64 - blob_y * h as f64;
            if (dx * dx + dy * dy).sqrt() < blob_r * w.min(h) as f64 {
                0.1
            } else {
                0.85
            }
        });
        let win = (
            ((w as f64 * win_frac) as usize).max(1),
            ((h as f64 * win_frac) as usize).max(1),
        );
        let roi = RoiDetector::new(RoiDetectorConfig::default()).detect(&depth, win).roi;
        prop_assert!(roi.right() <= w);
        prop_assert!(roi.bottom() <= h);
        prop_assert_eq!((roi.width, roi.height), win);
    }

    #[test]
    fn search_finds_the_best_window_with_unit_strides(
        w in 24usize..64,
        h in 24usize..64,
        bx in 0usize..64,
        by in 0usize..64,
    ) {
        let bx = bx % w;
        let by = by % h;
        let map = Plane::from_fn(w, h, |x, y| {
            if x == bx && y == by { 100.0 } else { 0.0 }
        });
        let win = (w / 3 + 1, h / 3 + 1);
        let roi = search_roi(
            &map,
            win,
            &SearchConfig { fine_stride: 1, boundary: Some(w.max(h)), coarse_only: false },
        );
        // with full refinement the single hot pixel must be inside the RoI
        prop_assert!(roi.contains(bx, by), "{roi:?} misses ({bx},{by})");
    }

    #[test]
    fn preprocessing_keeps_mass_nonnegative(
        seed in 0u64..500,
        layers in 1usize..8,
        gaussian in 0.0f32..1.0,
    ) {
        let depth = DepthMap::from_fn(48, 48, |x, y| {
            let v = (x as u64).wrapping_mul(seed + 3).wrapping_add((y as u64) * 17) % 97;
            v as f32 / 97.0
        });
        let cfg = PreprocessConfig {
            layers,
            gaussian_weight: gaussian,
            ..PreprocessConfig::default()
        };
        let stages = preprocess(&depth, &cfg);
        prop_assert!(stages.processed.iter().all(|&v| v >= 0.0));
        prop_assert!(stages.processed.sum() >= 0.0);
        prop_assert!(stages.selected_layer < stages.layers.len());
    }
}
