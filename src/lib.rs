//! Facade crate for the GameStreamSR reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can say `use gss::frame::Frame;` etc. See the
//! individual crates for full documentation:
//!
//! * [`frame`] — pixel planes, frames, depth maps, regions
//! * [`metrics`] — PSNR / SSIM / perceptual distance
//! * [`sr`] — interpolation and neural super-resolution upscalers
//! * [`render`] — software rasterizer and the ten game-scene generators
//! * [`codec`] — block-based hybrid video codec with GOP structure
//! * [`platform`] — mobile device timing/energy models
//! * [`net`] — network link simulator
//! * [`telemetry`] — frame-scoped spans, histograms, sinks
//! * [`core`] — the GameStreamSR system itself plus the NEMO baseline

pub use gamestreamsr as core;
pub use gss_codec as codec;
pub use gss_frame as frame;
pub use gss_metrics as metrics;
pub use gss_net as net;
pub use gss_platform as platform;
pub use gss_render as render;
pub use gss_sr as sr;
pub use gss_telemetry as telemetry;
