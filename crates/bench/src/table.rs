//! Plain-text table rendering for experiment output.

/// A simple left-aligned text table with a title.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics when the column count differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with the given precision.
pub fn f(value: f64, prec: usize) -> String {
    format!("{value:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("alpha  1"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
