//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [--quick] [experiment-id ...]
//! ```
//!
//! With no ids, every experiment runs in report order.

use gss_bench::{run_experiment, RunOptions, ALL_EXPERIMENTS};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut ids: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => {
                println!("usage: figures [--quick] [experiment-id ...]");
                println!("experiments: {}", ALL_EXPERIMENTS.join(" "));
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    let options = RunOptions { quick };
    for id in &ids {
        println!("\n################ {id} ################\n");
        if let Err(e) = run_experiment(id, &options) {
            eprintln!("error: {e}");
            eprintln!("known experiments: {}", ALL_EXPERIMENTS.join(" "));
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
