//! Regenerates the paper's tables and figures, and gates benchmarks.
//!
//! ```text
//! figures [--quick] [--threads N] [--telemetry out.jsonl] [--trace out.json] [experiment-id ...]
//! figures bench [--quick] [--threads N] [--host TAG] (--emit-baseline PATH | --check PATH)
//! figures triage [--quick] [--threads N] [--baseline PATH] [--out PATH] [--prom PATH] [--folded PATH] [--gate]
//! figures fleetwatch [--quick] [--sample] [--threads N] [--out PATH] [--trace PATH] [--prom PATH] [--check PATH]
//! figures bigfleet [--quick] [--threads N] [--out PATH] [--trace PATH] [--full-trace PATH] [--prom PATH] [--check PATH]
//! ```
//!
//! `--telemetry` streams every session's frame-scoped event trace (stage
//! spans, counters, deadline verdicts) to a JSONL file; `--trace` builds a
//! causal per-frame trace of the same sessions and writes it as a Chrome
//! trace-event JSON file, loadable in [Perfetto](https://ui.perfetto.dev)
//! or `chrome://tracing`. Both flags share one sink pipeline, so they
//! compose. `--threads` pins the parallel executor's worker count
//! (default: `GSS_THREADS` or the machine's core count capped at 8); any
//! value produces bit-identical results — see `gss_platform::pool`.
//!
//! The `bench` subcommand records or checks a benchmark baseline: see
//! `gss_bench::bench` for the metric set and tolerance-band policy.
//! `--check` exits non-zero when any gated metric drifts out of band,
//! after printing the per-metric drift table.
//!
//! The `triage` subcommand runs the canonical resilience storm and emits
//! the machine-readable health report (deadline-miss attribution + SLO
//! burn rates + drift vs a committed baseline): see `gss_bench::triage`.
//! `--out` writes the deterministic triage JSON, `--prom` a Prometheus
//! text snapshot, `--folded` a collapsed-stack pool profile for
//! flamegraph tooling (wall-clock — the one non-deterministic artifact),
//! and `--gate` exits non-zero when the managed storm breaches an SLO,
//! leaves more than 5% of its misses unattributed, or drifts off the
//! baseline.

use gss_bench::{
    bench,
    experiments::{bigfleet, fleetwatch},
    run_experiment, triage, RunOptions, ALL_EXPERIMENTS,
};
use gss_telemetry::{JsonlSink, Level, MultiSink, SinkHandle, TraceSink};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench") {
        return run_bench(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("triage") {
        return run_triage(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("fleetwatch") {
        return run_fleetwatch(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("bigfleet") {
        return run_bigfleet(&args[1..]);
    }
    run_figures(&args)
}

fn run_figures(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut telemetry_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--threads" => match args.next().map(|s| s.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => gss_platform::pool::set_workers(n),
                _ => {
                    eprintln!("error: --threads needs a worker count >= 1 (e.g. --threads 4)");
                    return ExitCode::FAILURE;
                }
            },
            "--telemetry" => match args.next() {
                Some(path) => telemetry_path = Some(path.clone()),
                None => {
                    eprintln!("error: --telemetry needs a file path (e.g. --telemetry out.jsonl)");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match args.next() {
                Some(path) => trace_path = Some(path.clone()),
                None => {
                    eprintln!("error: --trace needs a file path (e.g. --trace out.json)");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: figures [--quick] [--threads N] [--telemetry out.jsonl] [--trace out.json] [experiment-id ...]"
                );
                println!(
                    "       figures bench [--quick] [--threads N] [--host TAG] (--emit-baseline PATH | --check PATH)"
                );
                println!(
                    "       figures triage [--quick] [--threads N] [--baseline PATH] [--out PATH] [--prom PATH] [--folded PATH] [--gate]"
                );
                println!(
                    "       figures fleetwatch [--quick] [--threads N] [--out PATH] [--trace PATH] [--prom PATH] [--check PATH]"
                );
                println!(
                    "       figures bigfleet [--quick] [--threads N] [--out PATH] [--trace PATH] [--full-trace PATH] [--prom PATH] [--check PATH]"
                );
                println!("experiments: {}", ALL_EXPERIMENTS.join(" "));
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    // one shared sink pipeline: every experiment's sessions append to the
    // same JSONL stream and/or causal trace
    let mut sinks: Vec<SinkHandle> = Vec::new();
    match telemetry_path.as_deref().map(JsonlSink::create) {
        Some(Ok(sink)) => sinks.push(SinkHandle::new(sink)),
        Some(Err(e)) => {
            eprintln!(
                "error: cannot open telemetry file {}: {e}",
                telemetry_path.as_deref().unwrap_or_default()
            );
            return ExitCode::FAILURE;
        }
        None => {}
    }
    let trace_sink = trace_path.as_ref().map(|_| TraceSink::new());
    if let Some(trace) = &trace_sink {
        sinks.push(SinkHandle::new(trace.clone()));
    }
    let telemetry = match sinks.len() {
        0 => None,
        1 => Some(sinks.remove(0)),
        _ => Some(SinkHandle::new(MultiSink::new(sinks))),
    };
    let options = RunOptions { quick, telemetry };

    for id in &ids {
        println!("\n################ {id} ################\n");
        options.log(Level::Info, format!("experiment {id} starting"));
        if let Err(e) = run_experiment(id, &options) {
            // diagnostics flow through the telemetry sink as structured
            // events; the terminal keeps a copy either way
            options.log(Level::Error, &e);
            eprintln!("error: {e}");
            eprintln!("known experiments: {}", ALL_EXPERIMENTS.join(" "));
            return ExitCode::FAILURE;
        }
    }
    if let Some(sink) = &options.telemetry {
        sink.flush();
    }
    if let Some(path) = &telemetry_path {
        println!("\ntelemetry trace written to {path}");
    }
    if let (Some(path), Some(trace)) = (&trace_path, &trace_sink) {
        if let Err(e) = std::fs::write(path, trace.to_chrome_json()) {
            eprintln!("error: cannot write trace file {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "chrome trace written to {path} ({} frames; open in https://ui.perfetto.dev)",
            trace.frame_count()
        );
    }
    ExitCode::SUCCESS
}

fn run_bench(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut host = "local".to_owned();
    let mut emit: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--threads" => match args.next().map(|s| s.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => gss_platform::pool::set_workers(n),
                _ => {
                    eprintln!("error: --threads needs a worker count >= 1");
                    return ExitCode::FAILURE;
                }
            },
            "--host" => match args.next() {
                Some(tag) => host = tag.clone(),
                None => {
                    eprintln!("error: --host needs a tag (e.g. --host ci)");
                    return ExitCode::FAILURE;
                }
            },
            "--emit-baseline" => emit = args.next().cloned(),
            "--check" => check = args.next().cloned(),
            other => {
                eprintln!("error: unknown bench argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    match (emit, check) {
        (Some(path), None) => {
            let mut baseline = bench::collect(&RunOptions {
                quick,
                telemetry: None,
            });
            baseline.host = host;
            if let Err(e) = std::fs::write(&path, baseline.to_json()) {
                eprintln!("error: cannot write baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "baseline with {} metrics written to {path}",
                baseline.metrics.len()
            );
            ExitCode::SUCCESS
        }
        (None, Some(path)) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let baseline = match bench::Baseline::from_json(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: malformed baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if baseline.quick != quick {
                eprintln!(
                    "error: baseline {path} was recorded with quick={}, this run has quick={} — re-run with {}",
                    baseline.quick,
                    quick,
                    if baseline.quick { "--quick" } else { "no --quick" }
                );
                return ExitCode::FAILURE;
            }
            let mut current = bench::collect(&RunOptions {
                quick,
                telemetry: None,
            });
            current.host = host;
            let drifts = baseline.check(&current);
            println!("{}", bench::drift_table(&drifts));
            let failures: Vec<&bench::Drift> = drifts.iter().filter(|d| d.is_failure()).collect();
            if failures.is_empty() {
                println!(
                    "benchmark check passed: {} metrics within tolerance of {path}",
                    drifts.len()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "benchmark check FAILED: {} of {} metrics out of tolerance vs {path}:",
                    failures.len(),
                    drifts.len()
                );
                for d in &failures {
                    eprintln!(
                        "  {}: baseline {} -> current {} (|d| {}, rel {:.2}%)",
                        d.name,
                        d.baseline,
                        d.current,
                        d.abs_delta,
                        d.rel_delta * 100.0
                    );
                }
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!(
                "usage: figures bench [--quick] [--threads N] [--host TAG] (--emit-baseline PATH | --check PATH)"
            );
            ExitCode::FAILURE
        }
    }
}

fn run_fleetwatch(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut sample = false;
    let mut out_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut prom_path: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--sample" => sample = true,
            "--threads" => match args.next().map(|s| s.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => gss_platform::pool::set_workers(n),
                _ => {
                    eprintln!("error: --threads needs a worker count >= 1");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => out_path = args.next().cloned(),
            "--trace" => trace_path = args.next().cloned(),
            "--prom" => prom_path = args.next().cloned(),
            "--check" => check = args.next().cloned(),
            "--help" | "-h" => {
                println!(
                    "usage: figures fleetwatch [--quick] [--sample] [--threads N] [--out PATH] [--trace PATH] [--prom PATH] [--check PATH]"
                );
                println!("  --sample      run behind the tail sampler: same report, --trace keeps only retained frames");
                println!("  --out PATH    write the deterministic fleet report JSON (watch rollup included)");
                println!("  --trace PATH  write the merged Chrome trace with fleet counter tracks and anomaly markers");
                println!("  --prom PATH   write a fleet-labeled Prometheus text snapshot");
                println!(
                    "  --check PATH  gate the fleetwatch.* metrics against a benchmark baseline"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown fleetwatch argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let options = RunOptions {
        quick,
        telemetry: None,
    };
    let t0 = std::time::Instant::now();
    let run = if sample {
        fleetwatch::measure_sampled(&options, gss_telemetry::SamplingPolicy::default())
    } else {
        fleetwatch::measure(&options)
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    fleetwatch::print(&run);

    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, run.report.to_json()) {
            eprintln!("error: cannot write fleet report {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("fleet report written to {path}");
    }
    if let Some(path) = &trace_path {
        if let Err(e) = std::fs::write(path, run.sim.to_chrome_json()) {
            eprintln!("error: cannot write fleet trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("fleet chrome trace written to {path} (open in https://ui.perfetto.dev)");
    }
    if let Some(path) = &prom_path {
        let watch = &run.report.watch;
        let snapshot = gss_telemetry::prom::render_fleet(&gss_telemetry::prom::PromFleet {
            name: fleetwatch::FLEET_NAME,
            series: &watch.series,
            anomalies: &watch.anomalies(),
            knee_tick: watch.knee_tick,
        });
        if let Err(e) = std::fs::write(path, snapshot) {
            eprintln!("error: cannot write prometheus snapshot {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("prometheus snapshot written to {path}");
    }

    let Some(path) = check else {
        return ExitCode::SUCCESS;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let full = match bench::Baseline::from_json(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: malformed baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if full.quick != quick {
        eprintln!(
            "error: baseline {path} was recorded with quick={}, this run has quick={} — re-run with {}",
            full.quick,
            quick,
            if full.quick { "--quick" } else { "no --quick" }
        );
        return ExitCode::FAILURE;
    }
    let metrics: Vec<bench::BenchMetric> = full
        .metrics
        .iter()
        .filter(|m| m.name.starts_with("fleetwatch."))
        .cloned()
        .collect();
    if metrics.is_empty() {
        eprintln!("error: baseline {path} has no fleetwatch.* metrics — re-emit it");
        return ExitCode::FAILURE;
    }
    let baseline = bench::Baseline {
        host: full.host.clone(),
        quick: full.quick,
        metrics,
    };
    let mut current_metrics = bench::fleetwatch_metrics(&run);
    current_metrics.push(bench::BenchMetric {
        name: "fleetwatch.wall_ms".to_owned(),
        value: wall_ms,
        abs_tol: None,
        rel_tol: None,
    });
    let current = bench::Baseline {
        host: full.host,
        quick,
        metrics: current_metrics,
    };
    let drifts = baseline.check(&current);
    println!("{}", bench::drift_table(&drifts));
    let failures: Vec<&bench::Drift> = drifts.iter().filter(|d| d.is_failure()).collect();
    if failures.is_empty() {
        println!(
            "fleetwatch check passed: {} metrics within tolerance of {path}",
            drifts.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "fleetwatch check FAILED: {} of {} metrics out of tolerance vs {path}:",
            failures.len(),
            drifts.len()
        );
        for d in &failures {
            eprintln!(
                "  {}: baseline {} -> current {} (|d| {}, rel {:.2}%)",
                d.name,
                d.baseline,
                d.current,
                d.abs_delta,
                d.rel_delta * 100.0
            );
        }
        ExitCode::FAILURE
    }
}

fn run_bigfleet(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut out_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut full_trace_path: Option<String> = None;
    let mut prom_path: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--threads" => match args.next().map(|s| s.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => gss_platform::pool::set_workers(n),
                _ => {
                    eprintln!("error: --threads needs a worker count >= 1");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => out_path = args.next().cloned(),
            "--trace" => trace_path = args.next().cloned(),
            "--full-trace" => full_trace_path = args.next().cloned(),
            "--prom" => prom_path = args.next().cloned(),
            "--check" => check = args.next().cloned(),
            "--help" | "-h" => {
                println!(
                    "usage: figures bigfleet [--quick] [--threads N] [--out PATH] [--trace PATH] [--full-trace PATH] [--prom PATH] [--check PATH]"
                );
                println!(
                    "  --out PATH        write the fleet report JSON plus the sampling ledger"
                );
                println!("  --trace PATH      write the tail-sampled merged Chrome trace");
                println!("  --full-trace PATH write the unsampled reference Chrome trace");
                println!(
                    "  --prom PATH       write a Prometheus snapshot with p99 exemplar annotations"
                );
                println!(
                    "  --check PATH      gate the bigfleet.* / sampling.* metrics against a benchmark baseline"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown bigfleet argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let options = RunOptions {
        quick,
        telemetry: None,
    };
    let t0 = std::time::Instant::now();
    let run = bigfleet::measure(&options);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    bigfleet::print(&run);

    if let Some(path) = &out_path {
        // the fleet report (byte-identical to the full run's) plus the
        // sampling ledger, which deliberately lives outside the report
        let body = format!(
            "{{\"report\":{},\"sampling\":{}}}",
            run.report.to_json(),
            run.sampling.to_json()
        );
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("error: cannot write bigfleet report {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("bigfleet report written to {path}");
    }
    if let Some(path) = &trace_path {
        if let Err(e) = std::fs::write(path, run.sim.to_chrome_json()) {
            eprintln!("error: cannot write sampled trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("sampled chrome trace written to {path} (open in https://ui.perfetto.dev)");
    }
    if let Some(path) = &full_trace_path {
        if let Err(e) = std::fs::write(path, run.full_sim.to_chrome_json()) {
            eprintln!("error: cannot write full trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("full chrome trace written to {path}");
    }
    if let Some(path) = &prom_path {
        let watch = &run.report.watch;
        let mut snapshot = gss_telemetry::prom::render_fleet(&gss_telemetry::prom::PromFleet {
            name: bigfleet::FLEET_NAME,
            series: &watch.series,
            anomalies: &watch.anomalies(),
            knee_tick: watch.knee_tick,
        });
        // per-session sections with p99 exemplars keyed to the sampled
        // trace's ids (pid * 1e6 + frame) — paste one into Perfetto's
        // search box to jump to the retained frame
        let sampled = run.sim.sampled_sessions();
        let exemplars = gss_telemetry::compute_exemplars(&sampled);
        let sessions: Vec<gss_telemetry::prom::PromSession<'_>> = run
            .report
            .sessions
            .iter()
            .enumerate()
            .map(|(i, r)| gss_telemetry::prom::PromSession {
                name: &r.label,
                summary: &r.telemetry,
                attribution: Some(&r.attribution),
                slo: Some(&r.slo),
                exemplars: exemplars.get(i),
            })
            .collect();
        snapshot.push_str(&gss_telemetry::prom::render_opts(
            &sessions,
            gss_telemetry::prom::PromOptions { exemplars: true },
        ));
        if let Err(e) = std::fs::write(path, snapshot) {
            eprintln!("error: cannot write prometheus snapshot {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("prometheus snapshot written to {path}");
    }

    let Some(path) = check else {
        return ExitCode::SUCCESS;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let full = match bench::Baseline::from_json(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: malformed baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if full.quick != quick {
        eprintln!(
            "error: baseline {path} was recorded with quick={}, this run has quick={} — re-run with {}",
            full.quick,
            quick,
            if full.quick { "--quick" } else { "no --quick" }
        );
        return ExitCode::FAILURE;
    }
    let metrics: Vec<bench::BenchMetric> = full
        .metrics
        .iter()
        .filter(|m| m.name.starts_with("bigfleet.") || m.name.starts_with("sampling."))
        .cloned()
        .collect();
    if metrics.is_empty() {
        eprintln!("error: baseline {path} has no bigfleet.*/sampling.* metrics — re-emit it");
        return ExitCode::FAILURE;
    }
    let baseline = bench::Baseline {
        host: full.host.clone(),
        quick: full.quick,
        metrics,
    };
    let mut current_metrics = bench::bigfleet_metrics(&run);
    current_metrics.push(bench::BenchMetric {
        name: "bigfleet.wall_ms".to_owned(),
        value: wall_ms,
        abs_tol: None,
        rel_tol: None,
    });
    let current = bench::Baseline {
        host: full.host,
        quick,
        metrics: current_metrics,
    };
    let drifts = baseline.check(&current);
    println!("{}", bench::drift_table(&drifts));
    let failures: Vec<&bench::Drift> = drifts.iter().filter(|d| d.is_failure()).collect();
    if failures.is_empty() {
        println!(
            "bigfleet check passed: {} metrics within tolerance of {path}",
            drifts.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bigfleet check FAILED: {} of {} metrics out of tolerance vs {path}:",
            failures.len(),
            drifts.len()
        );
        for d in &failures {
            eprintln!(
                "  {}: baseline {} -> current {} (|d| {}, rel {:.2}%)",
                d.name, d.baseline, d.current, d.abs_delta, d.rel_delta
            );
        }
        ExitCode::FAILURE
    }
}

fn run_triage(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut baseline_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut prom_path: Option<String> = None;
    let mut folded_path: Option<String> = None;
    let mut gate = false;
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--threads" => match args.next().map(|s| s.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => gss_platform::pool::set_workers(n),
                _ => {
                    eprintln!("error: --threads needs a worker count >= 1");
                    return ExitCode::FAILURE;
                }
            },
            "--baseline" => baseline_path = args.next().cloned(),
            "--out" => out_path = args.next().cloned(),
            "--prom" => prom_path = args.next().cloned(),
            "--folded" => folded_path = args.next().cloned(),
            "--gate" => gate = true,
            "--help" | "-h" => {
                println!(
                    "usage: figures triage [--quick] [--threads N] [--baseline PATH] [--out PATH] [--prom PATH] [--folded PATH] [--gate]"
                );
                println!("  --baseline PATH  benchmark baseline to diff against (default BENCH_ci.json if present)");
                println!(
                    "  --out PATH       write the deterministic triage JSON (default: stdout)"
                );
                println!(
                    "  --prom PATH      write a Prometheus text snapshot of the storm sessions"
                );
                println!("  --folded PATH    write a collapsed-stack pool profile (wall-clock)");
                println!(
                    "  --gate           exit non-zero on SLO breach, <95% attribution, or drift"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown triage argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    // default to the committed CI baseline when it is present and the
    // caller did not pick one explicitly
    let baseline_path = baseline_path.or_else(|| {
        std::path::Path::new("BENCH_ci.json")
            .exists()
            .then(|| "BENCH_ci.json".to_owned())
    });
    let baseline = match &baseline_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match bench::Baseline::from_json(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("error: malformed baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    let options = RunOptions {
        quick,
        telemetry: None,
    };
    let report = triage::build(
        &options,
        baseline
            .as_ref()
            .map(|b| (baseline_path.as_deref().unwrap_or_default(), b)),
    );

    eprint!("{}", report.table());
    let json = report.to_json();
    match &out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("error: cannot write triage report {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("triage report written to {path}");
        }
        None => print!("{json}"),
    }
    if let Some(path) = &prom_path {
        if let Err(e) = std::fs::write(path, report.prometheus()) {
            eprintln!("error: cannot write prometheus snapshot {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("prometheus snapshot written to {path}");
    }
    if let Some(path) = &folded_path {
        // wall-clock artifact: a quality-on profiled session, separate
        // from the deterministic report by design
        let acct = gss_bench::experiments::scaling::profile(&options);
        if let Err(e) = std::fs::write(path, acct.collapsed_stack()) {
            eprintln!("error: cannot write collapsed stack {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "collapsed-stack pool profile written to {path} (imbalance {:.2})",
            acct.imbalance()
        );
    }

    let failures = report.gate_failures();
    if failures.is_empty() {
        println!("triage gate: healthy (all SLOs intact, attribution complete, no drift)");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("triage gate: {f}");
        }
        if gate {
            eprintln!("triage gate FAILED with {} violation(s)", failures.len());
            ExitCode::FAILURE
        } else {
            println!(
                "triage gate: {} violation(s) (informational; pass --gate to enforce)",
                failures.len()
            );
            ExitCode::SUCCESS
        }
    }
}
