//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [--quick] [--threads N] [--telemetry out.jsonl] [experiment-id ...]
//! ```
//!
//! With no ids, every experiment runs in report order. `--telemetry`
//! streams every session's frame-scoped event trace (stage spans,
//! counters, deadline verdicts) to a JSONL file; harness diagnostics go
//! through the same sink as structured log events. `--threads` pins the
//! parallel executor's worker count (default: `GSS_THREADS` or the
//! machine's core count capped at 8); any value produces bit-identical
//! results — see `gss_platform::pool`.

use gss_bench::{run_experiment, RunOptions, ALL_EXPERIMENTS};
use gss_telemetry::{JsonlSink, Level, SinkHandle};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut telemetry_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--threads" => match args.next().as_deref().map(str::parse::<usize>) {
                Some(Ok(n)) if n >= 1 => gss_platform::pool::set_workers(n),
                _ => {
                    eprintln!("error: --threads needs a worker count >= 1 (e.g. --threads 4)");
                    return ExitCode::FAILURE;
                }
            },
            "--telemetry" => match args.next() {
                Some(path) => telemetry_path = Some(path),
                None => {
                    eprintln!("error: --telemetry needs a file path (e.g. --telemetry out.jsonl)");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: figures [--quick] [--threads N] [--telemetry out.jsonl] [experiment-id ...]"
                );
                println!("experiments: {}", ALL_EXPERIMENTS.join(" "));
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    // one shared sink: every experiment's sessions append to the same trace
    let telemetry = match telemetry_path.as_deref().map(JsonlSink::create) {
        Some(Ok(sink)) => Some(SinkHandle::new(sink)),
        Some(Err(e)) => {
            eprintln!(
                "error: cannot open telemetry file {}: {e}",
                telemetry_path.as_deref().unwrap_or_default()
            );
            return ExitCode::FAILURE;
        }
        None => None,
    };
    let options = RunOptions { quick, telemetry };

    for id in &ids {
        println!("\n################ {id} ################\n");
        options.log(Level::Info, format!("experiment {id} starting"));
        if let Err(e) = run_experiment(id, &options) {
            // diagnostics flow through the telemetry sink as structured
            // events; the terminal keeps a copy either way
            options.log(Level::Error, &e);
            eprintln!("error: {e}");
            eprintln!("known experiments: {}", ALL_EXPERIMENTS.join(" "));
            return ExitCode::FAILURE;
        }
    }
    if let Some(sink) = &options.telemetry {
        sink.flush();
        println!(
            "\ntelemetry trace written to {}",
            telemetry_path.as_deref().unwrap_or_default()
        );
    }
    ExitCode::SUCCESS
}
