//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (see `DESIGN.md` § per-experiment index and `EXPERIMENTS.md`
//! for recorded paper-vs-measured values).
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p gss-bench --bin figures
//! ```
//!
//! or a single experiment by id (`table1`, `fig2`, `fig3a`, `fig3b`,
//! `fig7`, `fig9`, `fig10a`, `fig10b`, `fig10c`, `fig11`, `fig12`,
//! `fig13`, `fig14a`, `fig14b`, `fig15`, `server`, `ablation`, `loss`,
//! `resilience`, `recovery`, `scaling`):
//!
//! ```text
//! cargo run --release -p gss-bench --bin figures -- fig10a
//! ```
//!
//! Each experiment prints the same rows/series the paper reports. `--quick`
//! shrinks frame counts for smoke runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod experiments;
mod table;
pub mod triage;

pub use table::Table;

/// Global knobs shared by all experiments.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Shrink frame counts (smoke mode).
    pub quick: bool,
    /// Telemetry sink every experiment session streams its event trace
    /// into (`--telemetry out.jsonl` on the `figures` binary). `None`
    /// keeps sessions aggregate-only.
    pub telemetry: Option<gss_telemetry::SinkHandle>,
}

impl RunOptions {
    /// `full` frames normally, `quick` frames in smoke mode.
    pub fn frames(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Emits a structured log event to the telemetry sink, if one is
    /// attached (the harness still prints to the terminal either way).
    pub fn log(&self, level: gss_telemetry::Level, message: impl Into<String>) {
        if let Some(sink) = &self.telemetry {
            sink.emit(&gss_telemetry::Event::Log {
                level,
                message: message.into(),
            });
        }
    }
}

/// All experiment ids in report order.
pub const ALL_EXPERIMENTS: [&str; 22] = [
    "table1",
    "fig2",
    "fig3a",
    "fig3b",
    "fig7",
    "fig9",
    "fig10a",
    "fig10b",
    "fig10c",
    "fig11",
    "fig12",
    "fig13",
    "fig14a",
    "fig14b",
    "fig15",
    "server",
    "ablation",
    "loss",
    "resilience",
    "recovery",
    "scaling",
    "consolidate",
];

/// Runs one experiment by id, printing its rows to stdout.
///
/// # Errors
///
/// Returns a description for unknown ids; experiment-internal failures
/// panic (they indicate bugs, not user error).
pub fn run_experiment(id: &str, options: &RunOptions) -> Result<(), String> {
    use experiments as e;
    match id {
        "table1" => e::table1::run(options),
        "fig2" => e::fig2::run(options),
        "fig3a" => e::fig3::run_a(options),
        "fig3b" => e::fig3::run_b(options),
        "fig7" => e::fig7::run(options),
        "fig9" => e::fig9::run(options),
        "fig10a" => e::fig10::run_a(options),
        "fig10b" => e::fig10::run_b(options),
        "fig10c" => e::fig10::run_c(options),
        "fig11" => e::fig11_12::run_savings(options),
        "fig12" => e::fig11_12::run_breakdown(options),
        "fig13" => e::fig13::run(options),
        "fig14a" => e::fig14::run_psnr(options),
        "fig14b" => e::fig14::run_perceptual(options),
        "fig15" => e::fig15::run(options),
        "server" => e::server_side::run(options),
        "ablation" => e::ablation::run(options),
        "loss" => e::loss::run(options),
        "resilience" => e::resilience::run(options),
        "recovery" => e::recovery::run(options),
        "scaling" => e::scaling::run(options),
        "consolidate" => e::consolidate::run(options),
        other => return Err(format!("unknown experiment id: {other}")),
    }
    Ok(())
}
