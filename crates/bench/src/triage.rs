//! `figures triage` — the machine-readable health report.
//!
//! Runs the canonical resilience storm and folds the observability layer
//! into one JSON document: per-session deadline-miss attribution
//! ([`gss_telemetry::attribution`]), SLO burn-rate standings
//! ([`gss_telemetry::slo`]), and drift of the storm's deterministic
//! metrics against a committed benchmark baseline (`BENCH_ci.json`). A
//! Prometheus text snapshot of the same sessions is available via
//! [`TriageReport::prometheus`].
//!
//! Everything in the JSON comes from the modeled simulation plus the
//! baseline file's contents — no wall clocks — so the document is
//! byte-identical across reruns and worker counts, a property the
//! integration tests assert. Wall-clock artifacts (the collapsed-stack
//! pool profile) are deliberately separate files.
//!
//! [`TriageReport::gate`] enforces the CI health contract on the
//! controller-managed storm: no SLO may breach, and at most 5% of its
//! deadline misses may be left `unknown`.

use crate::bench::{self, Baseline};
use crate::experiments::resilience::{self, ResilienceRuns};
use crate::RunOptions;
use gamestreamsr::session::SessionReport;
use gss_telemetry::prom::{self, PromSession};
use std::fmt::Write as _;

/// Minimum fraction of the managed storm's deadline misses that must be
/// attributed to a non-`unknown` cause for the gate to pass.
pub const MIN_ATTRIBUTED_FRACTION: f64 = 0.95;

/// One metric's baseline-vs-current comparison in the drift section.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftRow {
    /// Metric name.
    pub name: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// This run's value.
    pub current: f64,
    /// Tolerated absolute drift.
    pub abs_tol: f64,
    /// Within tolerance?
    pub ok: bool,
}

/// The drift section: either checked rows or a reason it was skipped.
#[derive(Debug, Clone, PartialEq)]
pub enum DriftSection {
    /// Drift was not computed (no baseline, or a quick/full mismatch).
    Skipped {
        /// Why.
        reason: String,
    },
    /// Drift was computed against a baseline.
    Checked {
        /// Baseline identifier (file name).
        baseline: String,
        /// One row per deterministic storm metric present in both sets.
        rows: Vec<DriftRow>,
        /// Storm metrics this run produced that the baseline lacks
        /// (stale baseline — regenerate it).
        missing_from_baseline: Vec<String>,
    },
}

/// The assembled health report.
#[derive(Debug)]
pub struct TriageReport {
    /// Smoke mode?
    pub quick: bool,
    /// The storm's three sessions.
    pub runs: ResilienceRuns,
    /// Drift of the storm's deterministic metrics vs the baseline.
    pub drift: DriftSection,
}

/// Runs the storm and assembles the report. `baseline` is the committed
/// benchmark baseline to diff against, with its display name.
pub fn build(options: &RunOptions, baseline: Option<(&str, &Baseline)>) -> TriageReport {
    let runs = resilience::measure(options);
    let drift = match baseline {
        None => DriftSection::Skipped {
            reason: "no baseline supplied".to_owned(),
        },
        Some((name, b)) if b.quick != options.quick => DriftSection::Skipped {
            reason: format!(
                "baseline {name} was recorded with quick={}, this run has quick={}",
                b.quick, options.quick
            ),
        },
        Some((name, b)) => {
            // only deterministic (absolutely gated) metrics may enter the
            // byte-identical report; the noisy wall-clock metrics live in
            // the bench gate, not here
            let mut rows = Vec::new();
            let mut missing = Vec::new();
            for m in bench::resilience_metrics(&runs) {
                let tol = m.abs_tol.unwrap_or(0.0);
                match b.metrics.iter().find(|bm| bm.name == m.name) {
                    Some(bm) => rows.push(DriftRow {
                        name: m.name,
                        baseline: bm.value,
                        current: m.value,
                        abs_tol: tol,
                        ok: (m.value - bm.value).abs() <= tol,
                    }),
                    None => missing.push(m.name),
                }
            }
            DriftSection::Checked {
                baseline: name.to_owned(),
                rows,
                missing_from_baseline: missing,
            }
        }
    };
    TriageReport {
        quick: options.quick,
        runs,
        drift,
    }
}

impl TriageReport {
    /// The three sessions with their stable report names.
    fn sessions(&self) -> [(&'static str, &SessionReport); 3] {
        [
            ("controller", &self.runs.controller),
            ("no_controller", &self.runs.no_controller),
            ("nemo", &self.runs.nemo),
        ]
    }

    /// Health-contract violations on the controller-managed storm; empty
    /// means the gate passes.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        let c = &self.runs.controller;
        let frac = c.attribution.attributed_fraction();
        if frac < MIN_ATTRIBUTED_FRACTION {
            failures.push(format!(
                "controller storm: only {:.1}% of {} deadline misses attributed \
                 (need >= {:.0}%)",
                frac * 100.0,
                c.attribution.misses,
                MIN_ATTRIBUTED_FRACTION * 100.0
            ));
        }
        let breaches = c.slo.total_breaches();
        if breaches > 0 {
            for o in c.slo.objectives.iter().filter(|o| o.breaches > 0) {
                failures.push(format!(
                    "controller storm: SLO {} breached {} time(s) \
                     (max fast burn {:.2}x, slow {:.2}x)",
                    o.name, o.breaches, o.max_fast_burn, o.max_slow_burn
                ));
            }
        }
        if let DriftSection::Checked {
            rows,
            missing_from_baseline,
            baseline,
        } = &self.drift
        {
            for r in rows.iter().filter(|r| !r.ok) {
                failures.push(format!(
                    "drift: {} = {} vs baseline {} (tol {})",
                    r.name, r.current, r.baseline, r.abs_tol
                ));
            }
            for name in missing_from_baseline {
                failures.push(format!(
                    "drift: metric {name} is absent from {baseline} — regenerate the baseline"
                ));
            }
        }
        failures
    }

    /// Deterministic JSON rendering of the whole report.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"report\": \"gss-triage\",\n  \"mode\": \"{}\",\n  \"budget_ms\": {},\n  \"sessions\": [",
            if self.quick { "quick" } else { "full" },
            jf(gss_telemetry::REALTIME_BUDGET_MS)
        );
        for (i, (name, r)) in self.sessions().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{name}\", \"frames\": {}, \"deadline_misses\": {}, \
                 \"fps_effective\": {}, \"longest_frozen_run\": {}, \"max_rung\": {},\n     \
                 \"attribution\": {},\n     \"slo\": {}}}",
                r.frames.len(),
                r.telemetry.deadline_misses,
                jf(r.fps_effective()),
                r.longest_frozen_run(),
                r.max_rung(),
                r.attribution.to_json(),
                r.slo.to_json()
            );
        }
        out.push_str("\n  ],\n  \"drift\": ");
        match &self.drift {
            DriftSection::Skipped { reason } => {
                let _ = write!(out, "{{\"skipped\": \"{}\"}}", escape(reason));
            }
            DriftSection::Checked {
                baseline,
                rows,
                missing_from_baseline,
            } => {
                let _ = write!(out, "{{\"baseline\": \"{}\", \"rows\": [", escape(baseline));
                for (i, r) in rows.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "\n    {{\"name\": \"{}\", \"baseline\": {}, \"current\": {}, \
                         \"abs_tol\": {}, \"ok\": {}}}",
                        escape(&r.name),
                        jf(r.baseline),
                        jf(r.current),
                        jf(r.abs_tol),
                        r.ok
                    );
                }
                out.push_str("\n  ], \"missing_from_baseline\": [");
                for (i, name) in missing_from_baseline.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\"", escape(name));
                }
                out.push_str("]}");
            }
        }
        let failures = self.gate_failures();
        let _ = write!(
            out,
            ",\n  \"gate\": {{\"min_attributed_fraction\": {}, \"attributed_fraction\": {}, \
             \"slo_breaches\": {}, \"pass\": {}, \"failures\": [",
            jf(MIN_ATTRIBUTED_FRACTION),
            jf(self.runs.controller.attribution.attributed_fraction()),
            self.runs.controller.slo.total_breaches(),
            failures.is_empty()
        );
        for (i, f) in failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\"", escape(f));
        }
        out.push_str("]}\n}\n");
        out
    }

    /// Prometheus text-format snapshot of the three sessions.
    pub fn prometheus(&self) -> String {
        let sessions: Vec<PromSession<'_>> = self
            .sessions()
            .iter()
            .map(|(name, r)| PromSession {
                name,
                summary: &r.telemetry,
                attribution: Some(&r.attribution),
                slo: Some(&r.slo),
                exemplars: None,
            })
            .collect();
        prom::render(&sessions)
    }

    /// Human-readable console summary (blame tables + SLO standings).
    pub fn table(&self) -> String {
        let mut out = String::new();
        for (name, r) in self.sessions() {
            let _ = writeln!(out, "== {name} ==");
            out.push_str(&r.attribution.table());
            for o in &r.slo.objectives {
                let _ = writeln!(
                    out,
                    "  slo {:<18} {} | breaches {}, worst burn fast {:.2}x / slow {:.2}x{}",
                    o.name,
                    o.objective,
                    o.breaches,
                    o.max_fast_burn,
                    o.max_slow_burn,
                    if o.breached { " [IN BREACH]" } else { "" }
                );
            }
        }
        out
    }
}

/// Deterministic float rendering (shared shape with the telemetry JSON).
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Minimal JSON string escaping for report-internal strings.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}
