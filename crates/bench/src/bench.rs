//! Benchmark-regression gate: record a baseline, check later runs
//! against it.
//!
//! `figures bench --emit-baseline BENCH_<host>.json` runs the resilience
//! storm and the scaling ladder and records a named metric set;
//! `figures bench --check BENCH_<host>.json` re-runs them and fails
//! (non-zero exit) when any metric drifts past its tolerance band,
//! printing a per-metric drift table either way.
//!
//! # Tolerance-band policy
//!
//! Metrics fall into three classes, each with its own band:
//!
//! - **Modeled** (effective FPS, freeze runs, ladder depth, drop/NACK
//!   ledgers, miss rates): pure functions of the seeded simulation, exact
//!   on every host and at every `GSS_THREADS` by the determinism contract.
//!   Band: absolute 1e-6 (float) or 0 (integer-valued) — any drift is a
//!   real behavior change.
//! - **Accounting-derived** (modeled scaling speedup, worker imbalance):
//!   computed from wall-clock chunk measurements, so they carry scheduler
//!   noise. Band: wide relative tolerance; they gate only catastrophic
//!   regressions (e.g. the executor quietly serializing).
//! - **Informational** (raw wall-clock): recorded for trend archaeology,
//!   never gated (`None` tolerances — the check always passes them).

use crate::experiments::{bigfleet, consolidate, fleetwatch, recovery, resilience, scaling};
use crate::{RunOptions, Table};
use gss_telemetry::json::{self, Json};

/// One benchmarked metric with its tolerance band.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMetric {
    /// Stable metric name (`<experiment>.<configuration>.<quantity>`).
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Maximum tolerated absolute drift, if gated absolutely.
    pub abs_tol: Option<f64>,
    /// Maximum tolerated relative drift (`|cur-base| / max(|base|, 1e-12)`),
    /// if gated relatively.
    pub rel_tol: Option<f64>,
}

impl BenchMetric {
    fn modeled(name: impl Into<String>, value: f64) -> Self {
        BenchMetric {
            name: name.into(),
            value,
            abs_tol: Some(1e-6),
            rel_tol: None,
        }
    }

    fn exact(name: impl Into<String>, value: f64) -> Self {
        BenchMetric {
            name: name.into(),
            value,
            abs_tol: Some(0.0),
            rel_tol: None,
        }
    }

    fn noisy(name: impl Into<String>, value: f64, rel_tol: f64) -> Self {
        BenchMetric {
            name: name.into(),
            value,
            abs_tol: None,
            rel_tol: Some(rel_tol),
        }
    }

    fn informational(name: impl Into<String>, value: f64) -> Self {
        BenchMetric {
            name: name.into(),
            value,
            abs_tol: None,
            rel_tol: None,
        }
    }
}

/// A full baseline: the metric set plus the run mode that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Host tag the baseline was recorded on (free-form; `ci` for the
    /// committed CI baseline).
    pub host: String,
    /// Whether the metrics came from a `--quick` run. Checking a quick run
    /// against a full baseline (or vice versa) is refused outright.
    pub quick: bool,
    /// The metrics, in collection order.
    pub metrics: Vec<BenchMetric>,
}

/// One metric's baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Metric name.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// `|current - baseline|`.
    pub abs_delta: f64,
    /// `abs_delta / max(|baseline|, 1e-12)`.
    pub rel_delta: f64,
    /// Why the metric passed or failed.
    pub verdict: DriftVerdict,
}

/// The outcome of one metric comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftVerdict {
    /// Within every applicable band.
    Ok,
    /// Outside an applicable band.
    Failed,
    /// No band applies (informational metric).
    Informational,
    /// The metric is missing from the other side.
    Missing,
}

impl Drift {
    /// Whether this drift blocks the check.
    pub fn is_failure(&self) -> bool {
        matches!(self.verdict, DriftVerdict::Failed | DriftVerdict::Missing)
    }
}

fn session_metrics(
    out: &mut Vec<BenchMetric>,
    tag: &str,
    r: &gamestreamsr::session::SessionReport,
) {
    use gss_telemetry::Counter;
    let tl = &r.telemetry;
    out.push(BenchMetric::modeled(
        format!("resilience.{tag}.fps_effective"),
        r.fps_effective(),
    ));
    out.push(BenchMetric::exact(
        format!("resilience.{tag}.longest_frozen_run"),
        r.longest_frozen_run() as f64,
    ));
    out.push(BenchMetric::exact(
        format!("resilience.{tag}.max_rung"),
        r.max_rung() as f64,
    ));
    out.push(BenchMetric::modeled(
        format!("resilience.{tag}.deadline_miss_rate"),
        tl.deadline_miss_rate(),
    ));
    for (quantity, counter) in [
        ("drops_queue", Counter::DropsQueueOverflow),
        ("drops_outage", Counter::DropsOutage),
        ("nacks", Counter::Nacks),
        ("bytes_on_wire", Counter::BytesOnWire),
    ] {
        out.push(BenchMetric::exact(
            format!("resilience.{tag}.{quantity}"),
            tl.counter(counter) as f64,
        ));
    }
    // observability-layer metrics: attribution coverage and SLO standings
    // are pure functions of the modeled trace, so they gate exactly
    out.push(BenchMetric::modeled(
        format!("resilience.{tag}.miss_attributed_fraction"),
        r.attribution.attributed_fraction(),
    ));
    out.push(BenchMetric::exact(
        format!("resilience.{tag}.slo_breaches"),
        r.slo.total_breaches() as f64,
    ));
}

/// The deterministic metric set of one resilience-storm run — shared by
/// [`collect`] and the triage report's drift section, so the two can't
/// diverge on what "the storm's metrics" means.
pub(crate) fn resilience_metrics(storm: &resilience::ResilienceRuns) -> Vec<BenchMetric> {
    let mut metrics = Vec::new();
    session_metrics(&mut metrics, "controller", &storm.controller);
    session_metrics(&mut metrics, "no_controller", &storm.no_controller);
    session_metrics(&mut metrics, "nemo", &storm.nemo);
    metrics
}

/// The deterministic metric set of one crash-storm device sweep — the
/// recovery state machine's outcomes per device tier. All modeled: a
/// crash that drifts into a longer freeze or loses its fallback is a real
/// behavior change, not noise.
pub(crate) fn recovery_metrics(runs: &recovery::RecoveryRuns) -> Vec<BenchMetric> {
    const FRAME_MS: f64 = 1000.0 / 60.0;
    let mut out = Vec::new();
    for run in &runs.runs {
        let r = &run.report;
        let rec = r
            .recovery
            .as_ref()
            .expect("the crash storm arms the machine");
        let tag = run.tag;
        out.push(BenchMetric::modeled(
            format!("recovery.{tag}.time_to_recover_p99_ms"),
            rec.time_to_recover_p99_ms(FRAME_MS),
        ));
        out.push(BenchMetric::exact(
            format!("recovery.{tag}.frozen_during_recovery"),
            rec.frozen_frames as f64,
        ));
        out.push(BenchMetric::exact(
            format!("recovery.{tag}.longest_frozen_run"),
            r.longest_frozen_run() as f64,
        ));
        out.push(BenchMetric::exact(
            format!("recovery.{tag}.crashes"),
            rec.crashes as f64,
        ));
        out.push(BenchMetric::exact(
            format!("recovery.{tag}.safe_profile_fallback"),
            if rec.safe_profile_fallback { 1.0 } else { 0.0 },
        ));
        out.push(BenchMetric::modeled(
            format!("recovery.{tag}.post_recovery_fps"),
            recovery::post_recovery_fps(r, runs.clearance_frame),
        ));
    }
    out
}

/// The deterministic metric set of one consolidation sweep — every value
/// is replayed bit-identically on any host and worker count by the fleet
/// determinism contract (`tests/fleet.rs` pins it).
pub(crate) fn consolidate_metrics(sweep: &consolidate::ConsolidationSweep) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    for p in &sweep.points {
        let r = &p.report;
        let tag = format!("consolidate.n{}", p.n);
        out.push(BenchMetric::exact(
            format!("{tag}.healthy_sessions"),
            p.healthy_sessions() as f64,
        ));
        out.push(BenchMetric::modeled(
            format!("{tag}.min_fps_effective"),
            r.min_fps_effective(),
        ));
        out.push(BenchMetric::modeled(
            format!("{tag}.mean_fps_effective"),
            r.mean_fps_effective(),
        ));
        out.push(BenchMetric::modeled(
            format!("{tag}.mtp_p99_ms"),
            r.mtp_p99_ms,
        ));
        out.push(BenchMetric::exact(
            format!("{tag}.frames"),
            r.total_frames() as f64,
        ));
        out.push(BenchMetric::exact(
            format!("{tag}.frozen"),
            r.total_frozen() as f64,
        ));
        let flow = r.total_flow();
        out.push(BenchMetric::exact(
            format!("{tag}.drops_queue_overflow"),
            flow.drops_queue_overflow as f64,
        ));
        out.push(BenchMetric::modeled(
            format!("{tag}.miss_attributed_fraction"),
            r.attributed_fraction(),
        ));
    }
    out
}

/// The deterministic metric set of one fleet-watch churn storm — knee
/// placement, fairness extremes, anomaly tallies, admission outcome and
/// the fleet series envelopes. All modeled or exact: the watch layer
/// samples only modeled values in the serial phase, so any drift is a
/// real behavior change.
pub fn fleetwatch_metrics(run: &fleetwatch::FleetwatchRun) -> Vec<BenchMetric> {
    let r = &run.report;
    let w = &r.watch;
    let mut out = vec![
        BenchMetric::exact(
            "fleetwatch.knee_tick",
            w.knee_tick.map_or(-1.0, |t| t as f64),
        ),
        BenchMetric::modeled("fleetwatch.fairness_min", w.fairness_min),
        BenchMetric::modeled("fleetwatch.fairness_mean", w.fairness_mean),
        BenchMetric::exact("fleetwatch.rung_flaps", w.rung_flaps as f64),
        BenchMetric::exact("fleetwatch.starvation_events", w.starvation_events as f64),
        BenchMetric::exact("fleetwatch.starved_max_streak", w.starved_max_streak as f64),
        BenchMetric::exact("fleetwatch.admission_storms", w.admission_storms as f64),
        BenchMetric::exact("fleetwatch.admitted", r.admission.admitted as f64),
        BenchMetric::exact("fleetwatch.rejected", r.admission.rejected.len() as f64),
        BenchMetric::exact("fleetwatch.abandoned", r.admission.abandoned.len() as f64),
        BenchMetric::exact("fleetwatch.peak_queue", r.admission.peak_queue as f64),
        BenchMetric::exact(
            "fleetwatch.peak_concurrency",
            r.admission.peak_concurrency as f64,
        ),
        BenchMetric::exact("fleetwatch.frames", r.total_frames() as f64),
        BenchMetric::exact("fleetwatch.frozen", r.total_frozen() as f64),
        BenchMetric::modeled("fleetwatch.min_fps_effective", r.min_fps_effective()),
        BenchMetric::modeled("fleetwatch.mean_fps_effective", r.mean_fps_effective()),
    ];
    for (name, quantity) in [
        ("p99-critical-ms", "p99_critical_max_ms"),
        ("alloc-mbps", "alloc_mbps_max"),
        ("consumed-mbps", "consumed_mbps_max"),
        ("slo-burn-fast", "burn_fast_max"),
        ("slo-burn-slow", "burn_slow_max"),
    ] {
        let max = w.series.get(name).and_then(|s| s.max()).unwrap_or(0.0);
        out.push(BenchMetric::modeled(format!("fleetwatch.{quantity}"), max));
    }
    out
}

/// The deterministic metric set of one big-fleet sampled storm: the
/// fleet outcome, the full-vs-sampled report identity, and the tail
/// sampler's retention ledger. Trace byte counts are exact — the
/// merged traces are byte-deterministic, so even a one-byte drift
/// means the export format or the keep policy changed.
pub fn bigfleet_metrics(run: &bigfleet::BigfleetRun) -> Vec<BenchMetric> {
    let r = &run.report;
    let s = &run.sampling;
    vec![
        BenchMetric::exact("bigfleet.sessions", r.sessions.len() as f64),
        BenchMetric::exact("bigfleet.admitted", r.admission.admitted as f64),
        BenchMetric::exact("bigfleet.rejected", r.admission.rejected.len() as f64),
        BenchMetric::exact("bigfleet.abandoned", r.admission.abandoned.len() as f64),
        BenchMetric::exact("bigfleet.frames", r.total_frames() as f64),
        BenchMetric::exact("bigfleet.deadline_misses", r.total_deadline_misses() as f64),
        BenchMetric::exact(
            "bigfleet.knee_tick",
            r.watch.knee_tick.map_or(-1.0, |t| t as f64),
        ),
        BenchMetric::modeled("bigfleet.fairness_min", r.watch.fairness_min),
        BenchMetric::exact(
            "bigfleet.report_identical",
            if run.report_identical { 1.0 } else { 0.0 },
        ),
        BenchMetric::exact("sampling.frames", s.frames as f64),
        BenchMetric::exact("sampling.retained", s.retained as f64),
        BenchMetric::exact("sampling.evicted", s.evicted as f64),
        BenchMetric::exact("sampling.anomaly_frames", s.anomaly_frames as f64),
        BenchMetric::exact("sampling.anomaly_kept", s.anomaly_kept as f64),
        BenchMetric::exact("sampling.baseline_kept", s.baseline_kept as f64),
        BenchMetric::exact("sampling.context_kept", s.context_kept as f64),
        BenchMetric::exact("sampling.exemplars", s.exemplars as f64),
        BenchMetric::exact("sampling.anomaly_coverage", s.anomaly_coverage()),
        BenchMetric::modeled("sampling.retention_ratio", s.retention_ratio()),
        BenchMetric::exact(
            "sampling.budget_ok",
            if run.budget_ok() { 1.0 } else { 0.0 },
        ),
        BenchMetric::exact("sampling.full_trace_bytes", run.full_trace_bytes as f64),
        BenchMetric::exact(
            "sampling.sampled_trace_bytes",
            run.sampled_trace_bytes as f64,
        ),
        BenchMetric::modeled("sampling.trace_byte_ratio", run.trace_byte_ratio()),
    ]
}

/// Runs the benchmarked experiments and collects the metric set.
pub fn collect(options: &RunOptions) -> Baseline {
    let mut metrics = Vec::new();

    let t0 = std::time::Instant::now();
    let storm = resilience::measure(options);
    let resilience_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    metrics.extend(resilience_metrics(&storm));
    metrics.push(BenchMetric::informational(
        "resilience.wall_ms",
        resilience_wall_ms,
    ));

    let t0 = std::time::Instant::now();
    let crash_sweep = recovery::measure(options);
    let recovery_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    metrics.extend(recovery_metrics(&crash_sweep));
    metrics.push(BenchMetric::informational(
        "recovery.wall_ms",
        recovery_wall_ms,
    ));

    let t0 = std::time::Instant::now();
    let ladder = scaling::measure(options);
    let scaling_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    for p in &ladder {
        // the speedup/imbalance come from wall-clock chunk accounting:
        // wide bands, catching only an executor that stopped scaling
        if p.workers > 1 {
            metrics.push(BenchMetric::noisy(
                format!("scaling.w{}.speedup", p.workers),
                p.speedup,
                0.5,
            ));
        }
        metrics.push(BenchMetric::exact(
            format!("scaling.w{}.identical", p.workers),
            if p.identical { 1.0 } else { 0.0 },
        ));
    }
    metrics.push(BenchMetric::informational(
        "scaling.wall_ms",
        scaling_wall_ms,
    ));

    let t0 = std::time::Instant::now();
    let sweep = consolidate::measure(options);
    let consolidate_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    metrics.extend(consolidate_metrics(&sweep));
    metrics.push(BenchMetric::informational(
        "consolidate.wall_ms",
        consolidate_wall_ms,
    ));

    let t0 = std::time::Instant::now();
    let watch_run = fleetwatch::measure(options);
    let fleetwatch_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    metrics.extend(fleetwatch_metrics(&watch_run));
    metrics.push(BenchMetric::informational(
        "fleetwatch.wall_ms",
        fleetwatch_wall_ms,
    ));

    let t0 = std::time::Instant::now();
    let big_run = bigfleet::measure(options);
    let bigfleet_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    metrics.extend(bigfleet_metrics(&big_run));
    metrics.push(BenchMetric::informational(
        "bigfleet.wall_ms",
        bigfleet_wall_ms,
    ));

    // trend-archaeology rows for the tracing tax in both sink modes;
    // the hard < 3% overhead assertions live in the bench_gate tests
    let t0 = std::time::Instant::now();
    let _ = trace_overhead_ratio(1);
    metrics.push(BenchMetric::informational(
        "tracing.overhead_full.wall_ms",
        t0.elapsed().as_secs_f64() * 1e3,
    ));
    let t0 = std::time::Instant::now();
    let _ = trace_overhead_ratio_sampled(1);
    metrics.push(BenchMetric::informational(
        "tracing.overhead_sampled.wall_ms",
        t0.elapsed().as_secs_f64() * 1e3,
    ));

    Baseline {
        host: String::new(),
        quick: options.quick,
        metrics,
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

impl Baseline {
    /// Serializes the baseline as pretty-printed deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"host\": \"{}\",\n", self.host));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let tol = |t: Option<f64>| t.map_or("null".to_owned(), json_num);
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"value\": {}, \"abs_tol\": {}, \"rel_tol\": {}}}{}\n",
                m.name,
                json_num(m.value),
                tol(m.abs_tol),
                tol(m.rel_tol),
                if i + 1 < self.metrics.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a baseline file previously written by [`Baseline::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description when the document is not valid JSON or is
    /// missing required fields.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let host = doc
            .get("host")
            .and_then(Json::as_str)
            .ok_or("baseline missing \"host\"")?
            .to_owned();
        let quick = match doc.get("quick") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("baseline missing \"quick\"".into()),
        };
        let raw = doc
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or("baseline missing \"metrics\"")?;
        let mut metrics = Vec::with_capacity(raw.len());
        for m in raw {
            let name = m
                .get("name")
                .and_then(Json::as_str)
                .ok_or("metric missing \"name\"")?
                .to_owned();
            let value = m
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("metric {name} missing \"value\""))?;
            let tol = |key: &str| m.get(key).and_then(Json::as_f64);
            metrics.push(BenchMetric {
                name,
                value,
                abs_tol: tol("abs_tol"),
                rel_tol: tol("rel_tol"),
            });
        }
        Ok(Baseline {
            host,
            quick,
            metrics,
        })
    }

    /// Compares `current` against this baseline, metric by metric. The
    /// baseline's tolerance bands are authoritative (so tightening a band
    /// requires re-emitting the baseline, a reviewable diff).
    pub fn check(&self, current: &Baseline) -> Vec<Drift> {
        let mut drifts = Vec::with_capacity(self.metrics.len());
        for base in &self.metrics {
            let Some(cur) = current.metrics.iter().find(|m| m.name == base.name) else {
                drifts.push(Drift {
                    name: base.name.clone(),
                    baseline: base.value,
                    current: f64::NAN,
                    abs_delta: f64::NAN,
                    rel_delta: f64::NAN,
                    verdict: DriftVerdict::Missing,
                });
                continue;
            };
            let abs_delta = (cur.value - base.value).abs();
            let rel_delta = abs_delta / base.value.abs().max(1e-12);
            let verdict = if base.abs_tol.is_none() && base.rel_tol.is_none() {
                DriftVerdict::Informational
            } else if base.abs_tol.is_some_and(|t| abs_delta > t)
                || base.rel_tol.is_some_and(|t| rel_delta > t)
            {
                DriftVerdict::Failed
            } else {
                DriftVerdict::Ok
            };
            drifts.push(Drift {
                name: base.name.clone(),
                baseline: base.value,
                current: cur.value,
                abs_delta,
                rel_delta,
                verdict,
            });
        }
        for cur in &current.metrics {
            if !self.metrics.iter().any(|m| m.name == cur.name) {
                drifts.push(Drift {
                    name: cur.name.clone(),
                    baseline: f64::NAN,
                    current: cur.value,
                    abs_delta: f64::NAN,
                    rel_delta: f64::NAN,
                    verdict: DriftVerdict::Missing,
                });
            }
        }
        drifts
    }
}

/// Renders the per-metric drift table.
pub fn drift_table(drifts: &[Drift]) -> String {
    let mut t = Table::new(
        "Benchmark drift vs baseline",
        &["metric", "baseline", "current", "delta", "rel", "verdict"],
    );
    let num = |v: f64| {
        if v.is_nan() {
            "-".to_owned()
        } else {
            format!("{v:.6}")
        }
    };
    for d in drifts {
        t.row(&[
            d.name.clone(),
            num(d.baseline),
            num(d.current),
            num(d.abs_delta),
            if d.rel_delta.is_nan() {
                "-".to_owned()
            } else {
                format!("{:.2}%", d.rel_delta * 100.0)
            },
            match d.verdict {
                DriftVerdict::Ok => "ok",
                DriftVerdict::Failed => "FAILED",
                DriftVerdict::Informational => "info",
                DriftVerdict::Missing => "MISSING",
            }
            .to_owned(),
        ]);
    }
    t.render()
}

/// Measures the tracing layer's overhead: the quick scaling ladder with a
/// trace sink attached versus without, min-of-`rounds` wall-clock each.
/// Traced and untraced rounds are interleaved so background load (e.g. a
/// parallel test suite) hits both sides alike. Returns the overhead as a
/// fraction of the untraced time, floored at 0 (scheduler noise can make
/// the traced run measure faster).
pub fn trace_overhead_ratio(rounds: usize) -> f64 {
    overhead_ratio(rounds, false)
}

/// Same measurement with the tail sampler as the sink instead of the
/// full trace. The sampler does strictly more per-frame work
/// (classification + ring upkeep on top of span bookkeeping), so this
/// bounds the cost of running sampled telemetry always-on.
pub fn trace_overhead_ratio_sampled(rounds: usize) -> f64 {
    overhead_ratio(rounds, true)
}

fn overhead_ratio(rounds: usize, sampled: bool) -> f64 {
    let rounds = rounds.max(1);
    let wall = |traced: bool| -> f64 {
        let options = RunOptions {
            quick: true,
            telemetry: traced.then(|| {
                if sampled {
                    gss_telemetry::SinkHandle::new(gss_telemetry::SamplingTraceSink::default())
                } else {
                    gss_telemetry::SinkHandle::new(gss_telemetry::TraceSink::new())
                }
            }),
        };
        let t0 = std::time::Instant::now();
        let points = scaling::measure(&options);
        assert!(!points.is_empty());
        t0.elapsed().as_secs_f64()
    };
    let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        off = off.min(wall(false));
        on = on.min(wall(true));
    }
    ((on - off) / off).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        Baseline {
            host: "unit".into(),
            quick: true,
            metrics: vec![
                BenchMetric::modeled("a.fps", 58.25),
                BenchMetric::exact("a.drops", 3.0),
                BenchMetric::noisy("a.speedup", 3.0, 0.5),
                BenchMetric::informational("a.wall_ms", 120.0),
            ],
        }
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let b = sample();
        let parsed = Baseline::from_json(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn identical_runs_pass_the_check() {
        let b = sample();
        let drifts = b.check(&b.clone());
        assert!(drifts.iter().all(|d| !d.is_failure()), "{drifts:?}");
        assert!(drifts
            .iter()
            .any(|d| d.verdict == DriftVerdict::Informational));
    }

    #[test]
    fn perturbed_metric_fails_with_a_drift_row() {
        let base = sample();
        let mut cur = base.clone();
        cur.metrics[1].value = 4.0; // exact-gated drop count changed
        cur.metrics[3].value = 9000.0; // informational: may drift freely
        let drifts = base.check(&cur);
        let failed: Vec<&Drift> = drifts.iter().filter(|d| d.is_failure()).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].name, "a.drops");
        let table = drift_table(&drifts);
        assert!(table.contains("FAILED"));
        assert!(table.contains("a.drops"));
    }

    #[test]
    fn noisy_band_tolerates_wobble_but_not_collapse() {
        let base = sample();
        let mut wobble = base.clone();
        wobble.metrics[2].value = 2.4; // 20% off a 0.5 rel band: fine
        assert!(base.check(&wobble).iter().all(|d| !d.is_failure()));
        let mut collapse = base.clone();
        collapse.metrics[2].value = 1.0; // executor stopped scaling
        assert!(base.check(&collapse).iter().any(|d| d.is_failure()));
    }

    #[test]
    fn missing_and_extra_metrics_are_failures() {
        let base = sample();
        let mut cur = base.clone();
        cur.metrics.remove(0);
        cur.metrics.push(BenchMetric::exact("a.new", 1.0));
        let drifts = base.check(&cur);
        assert_eq!(
            drifts
                .iter()
                .filter(|d| d.verdict == DriftVerdict::Missing)
                .count(),
            2
        );
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        for bad in [
            "",
            "{}",
            "{\"host\":\"x\",\"quick\":true}",
            "{\"host\":\"x\",\"quick\":true,\"metrics\":[{\"value\":1}]}",
        ] {
            assert!(Baseline::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }
}
