//! Fig. 14 — per-game quality versus SOTA: (a) PSNR gain, (b) perceptual
//! (LPIPS-proxy) improvement.

use crate::experiments::common::quality_cfg;
use crate::{table::f, RunOptions, Table};
use gamestreamsr::session::{run_comparison, ComparisonReport};
use gss_platform::DeviceProfile;
use gss_render::GameId;

fn comparisons(options: &RunOptions) -> Vec<(GameId, ComparisonReport)> {
    let frames = options.frames(60, 10);
    let games: &[GameId] = if options.quick {
        &[GameId::G3, GameId::G10]
    } else {
        &GameId::ALL
    };
    games
        .iter()
        .map(|&game| {
            let mut cfg = quality_cfg(game, DeviceProfile::pixel7_pro(), frames, options);
            cfg.gop_size = frames;
            (game, run_comparison(&cfg).expect("session"))
        })
        .collect()
}

/// Fig. 14a: PSNR gain w.r.t. SOTA per game (one GOP).
pub fn run_psnr(options: &RunOptions) {
    let mut t = Table::new(
        "Fig. 14a: PSNR gain w.r.t. SOTA (one GOP, dB; foveated = RoI weighted 4x)",
        &["game", "ours dB", "SOTA dB", "gain dB", "foveated gain dB"],
    );
    let mut gain_sum = 0.0;
    let mut fov_sum = 0.0;
    let results = comparisons(options);
    for (game, cmp) in &results {
        let gain = cmp.psnr_gain_db().expect("quality on");
        let fov = cmp.foveated_psnr_gain_db().expect("quality on");
        gain_sum += gain;
        fov_sum += fov;
        t.row(&[
            game.label().to_string(),
            f(cmp.ours.mean_psnr_db().unwrap_or(f64::NAN), 2),
            f(cmp.sota.mean_psnr_db().unwrap_or(f64::NAN), 2),
            f(gain, 2),
            f(fov, 2),
        ]);
    }
    t.row(&[
        "MEAN".into(),
        String::new(),
        String::new(),
        f(gain_sum / results.len() as f64, 2),
        f(fov_sum / results.len() as f64, 2),
    ]);
    t.print();
}

/// Fig. 14b: perceptual-distance improvement w.r.t. SOTA per game (lower
/// distance is better; positive improvement means ours is perceptually
/// closer to the native render).
pub fn run_perceptual(options: &RunOptions) {
    let mut t = Table::new(
        "Fig. 14b: perceptual (LPIPS-proxy) improvement w.r.t. SOTA (one GOP)",
        &["game", "ours", "SOTA", "improvement"],
    );
    let mut imp_sum = 0.0;
    let results = comparisons(options);
    for (game, cmp) in &results {
        let imp = cmp.perceptual_improvement().expect("quality on");
        imp_sum += imp;
        t.row(&[
            game.label().to_string(),
            f(cmp.ours.mean_perceptual().unwrap_or(f64::NAN), 4),
            f(cmp.sota.mean_perceptual().unwrap_or(f64::NAN), 4),
            f(imp, 4),
        ]);
    }
    t.row(&[
        "MEAN".into(),
        String::new(),
        String::new(),
        f(imp_sum / results.len() as f64, 4),
    ]);
    t.print();
    println!(
        "note: the untrained proxy metric compresses absolute distances relative to LPIPS;\n\
         the ordering (ours better on every game) and the within-GOP growth reproduce. See EXPERIMENTS.md.\n"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_runs_complete() {
        let q = RunOptions {
            quick: true,
            ..Default::default()
        };
        run_psnr(&q);
    }
}
