//! Fig. 10 — performance results: (a) upscaling speedups and output frame
//! rates, (b) MTP latency improvement for reference frames, (c) the MTP
//! breakdown for G3 on the Pixel 7 Pro.

use crate::experiments::common::fast_cfg;
use crate::{table::f, RunOptions, Table};
use gamestreamsr::session::{run_comparison, run_session, Pipeline};
use gss_codec::FrameType;
use gss_platform::DeviceProfile;
use gss_render::GameId;

/// Fig. 10a: upscaling speedup for reference frames, non-reference frames
/// and the whole GOP, per device, with the implied output FPS.
pub fn run_a(options: &RunOptions) {
    let frames = options.frames(120, 12);
    let mut t = Table::new(
        "Fig. 10a: upscaling speedup over SOTA and output frame rate",
        &[
            "device",
            "ref speedup",
            "non-ref speedup",
            "GOP speedup",
            "SOTA ref FPS",
            "ours ref FPS",
        ],
    );
    for device in DeviceProfile::all() {
        let cmp = run_comparison(&fast_cfg(GameId::G3, device.clone(), frames, options))
            .expect("session");
        t.row(&[
            device.name.to_string(),
            format!("{:.1}x", cmp.ref_upscale_speedup()),
            format!("{:.2}x", cmp.nonref_upscale_speedup()),
            format!("{:.2}x", cmp.gop_upscale_speedup()),
            f(cmp.sota.upscale_fps(FrameType::Intra), 1),
            f(cmp.ours.upscale_fps(FrameType::Intra), 1),
        ]);
    }
    t.print();
    println!(
        "(speedups are content-independent; the paper likewise reports no per-game variation)\n"
    );
}

/// Fig. 10b: end-to-end MTP latency improvement for reference frames.
pub fn run_b(options: &RunOptions) {
    let frames = options.frames(120, 12);
    let mut t = Table::new(
        "Fig. 10b: reference-frame MTP latency improvement over SOTA",
        &[
            "device",
            "SOTA ref MTP ms",
            "ours ref MTP ms",
            "improvement",
        ],
    );
    for device in DeviceProfile::all() {
        let cmp = run_comparison(&fast_cfg(GameId::G3, device.clone(), frames, options))
            .expect("session");
        t.row(&[
            device.name.to_string(),
            f(cmp.sota.mean_mtp_ms(FrameType::Intra), 1),
            f(cmp.ours.mean_mtp_ms(FrameType::Intra), 1),
            format!("{:.1}x", cmp.ref_mtp_improvement()),
        ]);
    }
    t.print();
}

/// Fig. 10c: the per-stage MTP breakdown for G3 on the Pixel 7 Pro,
/// reference frames, both pipelines.
pub fn run_c(options: &RunOptions) {
    let frames = options.frames(61, 2);
    let cfg = fast_cfg(GameId::G3, DeviceProfile::pixel7_pro(), frames, options);
    let ours = run_session(&cfg, Pipeline::GameStreamSr).expect("session");
    let sota = run_session(&cfg, Pipeline::Nemo).expect("session");
    let pick = |r: &gamestreamsr::session::SessionReport| {
        r.frames
            .iter()
            .find(|f| f.frame_type == FrameType::Intra)
            .expect("a reference frame")
            .mtp
    };
    let m_ours = pick(&ours);
    let m_sota = pick(&sota);
    let mut t = Table::new(
        "Fig. 10c: MTP breakdown, reference frame, G3 on Pixel 7 Pro (ms)",
        &["stage", "ours", "SOTA"],
    );
    for ((label, ours_v), (_, sota_v)) in m_ours.stages().iter().zip(m_sota.stages().iter()) {
        t.row(&[label.to_string(), f(*ours_v, 1), f(*sota_v, 1)]);
    }
    t.row(&[
        "TOTAL".into(),
        f(m_ours.total_ms(), 1),
        f(m_sota.total_ms(), 1),
    ]);
    t.print();
    println!(
        "ours stays under the 100 ms fast-genre MTP bar; SOTA's upscaling stage alone exceeds it\n"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_runs_complete() {
        let q = RunOptions {
            quick: true,
            ..Default::default()
        };
        run_a(&q);
        run_b(&q);
        run_c(&q);
    }
}
