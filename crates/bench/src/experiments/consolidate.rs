//! Consolidation study (extension): how many concurrent sessions one
//! GameStreamSR server sustains behind a shared uplink before per-viewer
//! quality collapses.
//!
//! The sweep admits N ∈ {1, 2, 4, 8} sessions to one fleet behind the shared
//! fiber uplink and reports the sessions-per-server curve: per-session
//! effective FPS (min and mean), the pooled fleet MTP percentiles, the
//! shared-queue drop ledger, and how much of the miss budget the
//! attribution engine could explain. The fair-share allocator and the
//! `ceil(n / server_slots)` GPU time-sharing factor are the two levers the
//! curve exercises — see `DESIGN.md` §4f.
//!
//! Fleet sessions keep private telemetry sinks (a sink shared across
//! concurrently-produced sessions would interleave their event streams),
//! so the `--telemetry`/`--trace` session plumbing does not apply here.
//! Set `GSS_FLEET_TRACE=<path>` to write the merged per-session Chrome
//! trace of the densest sweep point instead (one Chrome process per fleet
//! session; open in Perfetto). Set `GSS_FLEET_SAMPLE=1` as well to run
//! the sweep behind the tail sampler (`gss_telemetry::sampling`), which
//! shrinks that trace to anomaly + context + baseline frames without
//! changing a byte of the reports.

use crate::{table::f, RunOptions, Table};
use gamestreamsr::fleet::{FleetConfig, FleetReport, FleetSessionSpec, FleetSim};
use gss_net::LinkProfile;
use gss_platform::DeviceProfile;
use gss_render::GameId;

/// Session counts the sweep visits, in order.
pub const SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Effective-FPS floor a session must hold to count as "healthy" in the
/// consolidation gate.
pub const HEALTHY_FPS: f64 = 55.0;

/// One sweep point: N requested sessions and the fleet outcome.
#[derive(Debug)]
pub struct ConsolidationPoint {
    /// Sessions requested at this point.
    pub n: usize,
    /// The fleet report.
    pub report: FleetReport,
}

impl ConsolidationPoint {
    /// Sessions holding at least [`HEALTHY_FPS`] effective FPS.
    pub fn healthy_sessions(&self) -> usize {
        self.report
            .sessions
            .iter()
            .filter(|s| s.frames > 0 && s.fps_effective() >= HEALTHY_FPS)
            .count()
    }
}

/// The full sessions-per-server sweep. Produced by [`measure`]; consumed
/// by [`run`] and the benchmark-regression harness.
pub struct ConsolidationSweep {
    /// Fleet ticks each point ran (60 ticks = 1 s logical).
    pub ticks: usize,
    /// One entry per [`SWEEP`] session count.
    pub points: Vec<ConsolidationPoint>,
    /// The densest point's simulator, retained for Chrome-trace export.
    pub peak_sim: FleetSim,
}

/// The canonical fleet at `n` sessions: games round-robin through the
/// paper's workload set, devices alternate between the two calibrated
/// handhelds, all behind the shared fiber uplink. Joins are staggered one
/// tick apart — admitting everyone on the same tick phase-locks the GOPs,
/// so every session's keyframe lands in the same millisecond and the
/// synchronized burst overflows the shared queue (a real consolidation
/// server staggers keyframes for exactly this reason).
pub fn fleet_config(n: usize, ticks: usize) -> FleetConfig {
    let mut config = FleetConfig::new(LinkProfile::fiber(), 0xf1ee7).with_ticks(ticks);
    // what the codec actually emits per session at this canvas's quantizer
    // floor (deployment-equivalent); the allocator splits the budget
    // against this figure
    config.session_rate_mbps = 18.0;
    for i in 0..n {
        let device = if i % 2 == 0 {
            DeviceProfile::s8_tab()
        } else {
            DeviceProfile::pixel7_pro()
        };
        config = config.with_session(
            FleetSessionSpec::new(GameId::ALL[i % GameId::ALL.len()], device).joining_at(i),
        );
    }
    config
}

/// Runs the sweep and returns every fleet report. With
/// `GSS_FLEET_SAMPLE` set, every point runs behind the tail sampler —
/// the reports (and thus the gated `consolidate.*` metrics) are
/// byte-identical either way; only the exported peak trace shrinks to
/// the retained frames.
pub fn measure(options: &RunOptions) -> ConsolidationSweep {
    let ticks = options.frames(360, 120);
    let sample = std::env::var_os("GSS_FLEET_SAMPLE").is_some();
    let mut points = Vec::new();
    let mut peak_sim = None;
    for n in SWEEP {
        let mut config = fleet_config(n, ticks);
        if sample {
            config = config.with_sampling(gss_telemetry::SamplingPolicy::default());
        }
        let mut sim = FleetSim::new(config);
        let report = sim.run_until_idle().expect("fleet run");
        points.push(ConsolidationPoint { n, report });
        peak_sim = Some(sim);
    }
    ConsolidationSweep {
        ticks,
        points,
        peak_sim: peak_sim.expect("sweep is non-empty"),
    }
}

/// Prints the sessions-per-server consolidation curve.
pub fn run(options: &RunOptions) {
    let sweep = measure(options);
    let budget = sweep.points[0].report.budget_mbps;
    let mut t = Table::new(
        format!(
            "Server consolidation on a shared fiber uplink ({} ticks/point, {} Mbps budget)",
            sweep.ticks,
            f(budget, 0)
        ),
        &[
            "sessions",
            "healthy (>=55 FPS)",
            "min eff. FPS",
            "mean eff. FPS",
            "fleet MTP p50/p99",
            "drops (queue/outage)",
            "frozen",
            "miss attr.",
        ],
    );
    for p in &sweep.points {
        let r = &p.report;
        let flow = r.total_flow();
        t.row(&[
            format!("{}", p.n),
            format!("{}/{}", p.healthy_sessions(), r.sessions.len()),
            f(r.min_fps_effective(), 1),
            f(r.mean_fps_effective(), 1),
            format!("{}/{} ms", f(r.mtp_p50_ms, 1), f(r.mtp_p99_ms, 1)),
            format!("{}/{}", flow.drops_queue_overflow, flow.drops_outage),
            r.total_frozen().to_string(),
            format!("{}%", f(r.attributed_fraction() * 100.0, 1)),
        ]);
    }
    t.print();
    let densest = sweep.points.last().expect("sweep is non-empty");
    println!(
        "allocator share at {} sessions: {} Mbps/session ({}x of the 18 Mbps nominal rate)\n",
        densest.n,
        f(budget / densest.n as f64, 2),
        f((budget / densest.n as f64 / 18.0).min(1.0), 2),
    );

    if let Ok(path) = std::env::var("GSS_FLEET_TRACE") {
        match std::fs::write(&path, sweep.peak_sim.to_chrome_json()) {
            Ok(()) => println!(
                "fleet chrome trace ({} sessions) written to {path} (open in https://ui.perfetto.dev)",
                densest.n
            ),
            Err(e) => eprintln!("error: cannot write fleet trace file {path}: {e}"),
        }
    }
    let _ = options;
}
