//! Fig. 3 — SR characterization: (a) latency and quality versus upscale
//! factor at a fixed 1440p target; (b) latency versus input resolution at
//! the fixed ×2 factor.

use crate::{table::f, RunOptions, Table};
use gss_frame::Resolution;
use gss_metrics::psnr_planes;
use gss_platform::{DeviceProfile, REALTIME_BUDGET_MS};
use gss_render::{GameId, GameWorkload};
use gss_sr::{NeuralSr, NeuralSrConfig, Upscaler};

/// Fig. 3a: larger upscale factors hit the 1440p target from smaller
/// inputs — latency falls but quality falls too (paper: "the quality drops
/// significantly" beyond ×2).
pub fn run_a(options: &RunOptions) {
    let device = DeviceProfile::s8_tab();
    // quality measured on a G3 frame rendered at a canvas divisible by all
    // factors: ground truth 576x324, inputs 1/f of it
    let workload = GameWorkload::new(GameId::G3);
    let frames = options.frames(4, 1);

    let mut t = Table::new(
        "Fig. 3a: SR latency and quality vs upscale factor (target 1440p, S8 Tab)",
        &["factor", "input", "NPU latency ms", "PSNR dB"],
    );
    for factor in [2usize, 3, 4, 6] {
        // deployment-scale input pixels for the latency model
        let input_px = Resolution::P1440.pixels() / (factor * factor);
        let latency = device.npu_sr_ms(input_px);
        // quality on the evaluation canvas
        let mut total = 0.0;
        for i in 0..frames {
            let native = workload.render_frame(i * 8, 576, 324);
            let lr = native.frame.downsample_box(factor);
            let sr = NeuralSr::new(NeuralSrConfig {
                scale: factor,
                ..NeuralSrConfig::default()
            });
            let up = sr.upscale(&lr);
            total += psnr_planes(native.frame.y(), up.y()).expect("same size");
        }
        let input_h = 1440 / factor;
        t.row(&[
            format!("x{factor}"),
            format!("{input_h}p"),
            f(latency, 1),
            f(total / frames as f64, 2),
        ]);
    }
    t.print();
}

/// Fig. 3b: SR latency for each named input resolution at ×2 on both
/// devices; only small inputs fit the 16.66 ms budget.
pub fn run_b(_options: &RunOptions) {
    let mut t = Table::new(
        "Fig. 3b: SR latency vs input resolution (x2 factor)",
        &[
            "input",
            "pixels",
            "S8 Tab ms",
            "Pixel 7 Pro ms",
            "real-time?",
        ],
    );
    let s8 = DeviceProfile::s8_tab();
    let pixel = DeviceProfile::pixel7_pro();
    for res in Resolution::ALL.iter().rev() {
        let a = s8.npu_sr_ms(res.pixels());
        let b = pixel.npu_sr_ms(res.pixels());
        t.row(&[
            res.to_string(),
            res.pixels().to_string(),
            f(a, 1),
            f(b, 1),
            if a <= REALTIME_BUDGET_MS {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    t.print();
    let side = s8.max_realtime_roi_side(REALTIME_BUDGET_MS);
    println!(
        "largest real-time square RoI on S8 Tab: {side}x{side} px ({:.1} ms)\n",
        s8.npu_sr_ms(side * side)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_runs_complete() {
        run_a(&RunOptions {
            quick: true,
            ..Default::default()
        });
        run_b(&RunOptions {
            quick: true,
            ..Default::default()
        });
    }
}
