//! Fig. 15 / §VI — the RoI-guided SR-integrated decoder prototype: energy
//! projection and quality sanity check.

use crate::experiments::common::quality_canvas;
use crate::{table::f, RunOptions, Table};
use gamestreamsr::decoder_ext::{gop_energy_projection, SrIntegratedDecoder};
use gamestreamsr::roi::plan_roi_window;
use gamestreamsr::{GameStreamServer, NemoClient, ServerConfig};
use gss_metrics::psnr;
use gss_platform::DeviceProfile;
use gss_render::GameId;

/// Prints the prototype's projected per-GOP energy versus this work's
/// client, plus a quality comparison against NEMO over one GOP.
pub fn run(options: &RunOptions) {
    let mut t = Table::new(
        "Fig. 15: SR-integrated decoder prototype - projected energy per GOP (60 frames)",
        &[
            "device",
            "this work mJ",
            "prototype mJ",
            "additional saving",
        ],
    );
    for device in DeviceProfile::all() {
        let plan = plan_roi_window(&device, 2, 1280, 720);
        let proj = gop_energy_projection(&device, 60, plan.chosen_side, 62_000);
        t.row(&[
            device.name.to_string(),
            f(proj.ours_gop_mj, 0),
            f(proj.ext_gop_mj, 0),
            format!("{:.1}%", proj.savings() * 100.0),
        ]);
    }
    t.print();

    // quality: the prototype's RoI-guided (bicubic-in-RoI) residual
    // interpolation versus NEMO's uniform bilinear, same stream
    let frames = options.frames(30, 6);
    let canvas = quality_canvas(options);
    let roi_side = canvas.0 * 75 / 320;
    let mut server_cfg = ServerConfig::new(GameId::G3, canvas, (roi_side, roi_side));
    server_cfg.encoder.gop_size = frames;
    server_cfg.time_stride = 1280 / canvas.0;
    let mut server = GameStreamServer::new(server_cfg);
    let mut ext = SrIntegratedDecoder::new(2);
    let mut nemo = NemoClient::new(2);
    let mut ext_psnr = 0.0;
    let mut nemo_psnr = 0.0;
    for _ in 0..frames {
        let p = server.next_frame().expect("packet");
        let e = ext.process(&p.encoded, p.roi).expect("ext decode");
        let n = nemo.process(&p.encoded).expect("nemo decode");
        ext_psnr += psnr(&p.ground_truth_hr, &e.frame).expect("psnr");
        nemo_psnr += psnr(&p.ground_truth_hr, &n.frame).expect("psnr");
    }
    println!(
        "quality over one GOP (G3): prototype {:.2} dB vs NEMO {:.2} dB (RoI-guided residual interpolation)\n",
        ext_psnr / frames as f64,
        nemo_psnr / frames as f64
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_completes() {
        run(&RunOptions {
            quick: true,
            ..Default::default()
        });
    }
}
