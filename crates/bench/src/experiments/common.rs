//! Shared session configurations for the experiments.

use gamestreamsr::session::SessionConfig;
use gss_platform::DeviceProfile;
use gss_render::GameId;

/// Canvas used by latency/energy experiments (data-path content does not
/// affect modeled numbers beyond byte volumes, which are scale-corrected).
pub const FAST_CANVAS: (usize, usize) = (128, 72);

/// Canvas used by quality experiments: 320×180 → 640×360 at the paper's
/// ×2 factor; motion is replayed at deployment pixel velocity.
pub const QUALITY_CANVAS: (usize, usize) = (320, 180);

/// A latency/energy session (quality metrics off) over full GOPs.
pub fn fast_cfg(
    game: GameId,
    device: DeviceProfile,
    frames: usize,
    options: &crate::RunOptions,
) -> SessionConfig {
    SessionConfig {
        frames,
        gop_size: 60,
        lr_size: FAST_CANVAS,
        telemetry: options.telemetry.clone(),
        ..SessionConfig::new(game, device)
    }
    .without_quality()
}

/// Quality canvas honoring quick mode (smoke tests shrink the canvas).
pub fn quality_canvas(options: &crate::RunOptions) -> (usize, usize) {
    if options.quick {
        (160, 90)
    } else {
        QUALITY_CANVAS
    }
}

/// A quality-evaluating session over full GOPs.
pub fn quality_cfg(
    game: GameId,
    device: DeviceProfile,
    frames: usize,
    options: &crate::RunOptions,
) -> SessionConfig {
    SessionConfig {
        frames,
        gop_size: 60,
        lr_size: quality_canvas(options),
        telemetry: options.telemetry.clone(),
        ..SessionConfig::new(game, device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_differ_only_where_expected() {
        let f = fast_cfg(
            GameId::G1,
            DeviceProfile::s8_tab(),
            10,
            &crate::RunOptions::default(),
        );
        let q = quality_cfg(
            GameId::G1,
            DeviceProfile::s8_tab(),
            10,
            &crate::RunOptions::default(),
        );
        assert!(!f.evaluate_quality);
        assert!(q.evaluate_quality);
        assert_eq!(f.gop_size, 60);
        assert_eq!(q.lr_size, QUALITY_CANVAS);
    }
}
