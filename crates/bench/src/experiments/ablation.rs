//! Ablation studies of the design choices DESIGN.md calls out: Gaussian
//! spatial weighting, depth layering, two-phase search, RoI window size,
//! and the eye-tracking-versus-depth energy argument (§III-A).

use crate::experiments::common::quality_canvas;
use crate::{table::f, RunOptions, Table};
use gamestreamsr::roi::{preprocess, search_roi, PreprocessConfig, SearchConfig};
use gamestreamsr::{GameStreamClient, GameStreamServer, RoiDetectorConfig, ServerConfig};
use gss_metrics::psnr;
use gss_platform::{DeviceProfile, REALTIME_BUDGET_MS};
use gss_render::{GameId, GameWorkload};

/// Runs all ablations.
pub fn run(options: &RunOptions) {
    roi_detector_variants(options);
    roi_size_sweep(options);
    model_choice(options);
    search_phase_cost(options);
    eyetracking_energy();
}

/// Model-agnostic calibration (§IV-B1): benchmarking a cheaper SR model at
/// step-0 buys a larger real-time RoI window on the same NPU.
fn model_choice(_options: &RunOptions) {
    use gss_sr::edsr::{Edsr, EdsrConfig};
    use gss_sr::fsrcnn::{Fsrcnn, FsrcnnConfig};
    let reference = Edsr::new(EdsrConfig::default()).macs_for_input(300, 300) as f64;
    let models: [(&str, u64); 3] = [
        (
            "EDSR-16/64 (paper)",
            Edsr::new(EdsrConfig::default()).macs_for_input(300, 300),
        ),
        (
            "EDSR-8/32",
            Edsr::new(EdsrConfig {
                channels: 32,
                blocks: 8,
                scale: 2,
            })
            .macs_for_input(300, 300),
        ),
        (
            "FSRCNN-56/12/4",
            Fsrcnn::new(FsrcnnConfig::default()).macs_for_input(300, 300),
        ),
    ];
    let device = DeviceProfile::s8_tab();
    let mut t = Table::new(
        "Ablation: SR model choice vs real-time RoI window (S8 Tab)",
        &[
            "model",
            "GMACs @300x300",
            "cost vs EDSR",
            "max real-time RoI",
        ],
    );
    for (name, macs) in models {
        let ratio = macs as f64 / reference;
        let side = device.max_realtime_roi_side_for_model(REALTIME_BUDGET_MS, ratio);
        t.row(&[
            name.to_string(),
            f(macs as f64 / 1e9, 1),
            format!("{ratio:.3}x"),
            format!("{side}x{side}"),
        ]);
    }
    t.print();
}

/// RoI detector variants: how each preprocessing stage affects where the
/// RoI lands (measured as mean depth inside the RoI — lower = nearer =
/// better foreground capture — and distance from frame center).
fn roi_detector_variants(options: &RunOptions) {
    let games: &[GameId] = if options.quick {
        &[GameId::G3]
    } else {
        &GameId::ALL
    };
    let variants: [(&str, PreprocessConfig); 4] = [
        ("full pipeline", PreprocessConfig::default()),
        (
            "no gaussian weighting",
            PreprocessConfig {
                gaussian_weight: 0.0,
                ..PreprocessConfig::default()
            },
        ),
        (
            "single layer (no layering)",
            PreprocessConfig {
                layers: 1,
                ..PreprocessConfig::default()
            },
        ),
        (
            "8 layers",
            PreprocessConfig {
                layers: 8,
                ..PreprocessConfig::default()
            },
        ),
    ];
    let mut t = Table::new(
        "Ablation: RoI preprocessing variants (mean over games, frame 0)",
        &["variant", "RoI mean depth", "center offset (frac of width)"],
    );
    for (name, pre) in variants {
        let mut depth_sum = 0.0;
        let mut offset_sum = 0.0;
        for &game in games {
            let w = GameWorkload::new(game);
            let out = w.render_frame(0, 256, 144);
            let depth = out.depth.downsample_box(2);
            let stages = preprocess(&depth, &pre);
            let roi = search_roi(&stages.processed, (48, 40), &SearchConfig::default());
            depth_sum += depth.mean_in(roi);
            let (cx, _) = roi.center();
            offset_sum += (cx as f64 - 64.0).abs() / 128.0;
        }
        t.row(&[
            name.to_string(),
            f(depth_sum / games.len() as f64, 3),
            f(offset_sum / games.len() as f64, 3),
        ]);
    }
    t.print();
}

/// RoI window-size sweep: latency versus delivered quality (the trade-off
/// behind §IV-B1's sizing rule).
fn roi_size_sweep(options: &RunOptions) {
    let device = DeviceProfile::s8_tab();
    let frames = options.frames(6, 2);
    let canvas = quality_canvas(options);
    let mut t = Table::new(
        "Ablation: RoI window size vs NPU latency and quality (S8 Tab, G3)",
        &[
            "side (720p scale)",
            "NPU ms",
            "real-time",
            "frame PSNR dB",
            "central-region PSNR dB",
        ],
    );
    for side_full in [128usize, 200, 300, 400, 520] {
        let npu_ms = device.npu_sr_ms(side_full * side_full);
        // quality at canvas scale
        let side_canvas = (side_full * canvas.0 / 1280).max(8);
        let mut server_cfg = ServerConfig::new(GameId::G3, canvas, (side_canvas, side_canvas));
        server_cfg.time_stride = 1280 / canvas.0;
        server_cfg.detector = RoiDetectorConfig::default();
        let mut server = GameStreamServer::new(server_cfg);
        let mut client = GameStreamClient::new(2);
        let mut total = 0.0;
        let mut central = 0.0;
        // fixed foveal-sized probe at the HR frame center: quality here is
        // what the player actually perceives (§IV-B1)
        let (hw, hh) = (canvas.0 * 2, canvas.1 * 2);
        let probe_side = (86 * canvas.0 / 320).max(16);
        let probe = gss_frame::Rect::new(
            hw / 2 - probe_side / 2,
            hh / 2 - probe_side / 2,
            probe_side,
            probe_side,
        );
        for _ in 0..frames {
            let p = server.next_frame().expect("packet");
            let out = client.process(&p.encoded, p.roi).expect("client");
            total += psnr(&p.ground_truth_hr, &out.frame).expect("psnr");
            central += gss_metrics::psnr_planes(
                &p.ground_truth_hr.y().crop(probe).expect("probe fits"),
                &out.frame.y().crop(probe).expect("probe fits"),
            )
            .expect("psnr");
        }
        t.row(&[
            side_full.to_string(),
            f(npu_ms, 1),
            if npu_ms <= REALTIME_BUDGET_MS {
                "yes".into()
            } else {
                "no".into()
            },
            f(total / frames as f64, 2),
            f(central / frames as f64, 2),
        ]);
    }
    t.print();
}

/// Cost of Algorithm 1's phases: probe counts of coarse-only versus the
/// two-phase scheme versus an exhaustive scan.
fn search_phase_cost(_options: &RunOptions) {
    let mut t = Table::new(
        "Ablation: Algorithm 1 probe counts (720p map, 300x300 window)",
        &["scheme", "window probes"],
    );
    let (map_w, map_h) = (1280usize, 720usize);
    let (win, stride_coarse, stride_fine) = (300usize, 150usize, 4usize);
    let coarse = ((map_w - win) / stride_coarse + 1) * ((map_h - win) / stride_coarse + 1);
    let fine = (2 * stride_coarse / stride_fine + 1).pow(2);
    let exhaustive = (map_w - win + 1) * (map_h - win + 1);
    t.row(&["coarse only".into(), coarse.to_string()]);
    t.row(&["coarse + fine (Alg. 1)".into(), (coarse + fine).to_string()]);
    t.row(&["exhaustive".into(), exhaustive.to_string()]);
    t.print();
}

/// §III-A: the energy argument for depth-guided RoI detection over
/// camera-based eye tracking.
fn eyetracking_energy() {
    let device = DeviceProfile::pixel7_pro();
    let camera_mj_per_s = device.camera_w * 1000.0;
    println!(
        "eye-tracking ablation: on-device camera eye tracking draws +{:.1} W \
         ({:.0} mJ per second of gameplay); the depth buffer is produced by \
         rendering anyway, so depth-guided RoI detection adds 0 mJ at the client\n",
        device.camera_w, camera_mj_per_s
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_completes() {
        run(&RunOptions {
            quick: true,
            ..Default::default()
        });
    }
}
