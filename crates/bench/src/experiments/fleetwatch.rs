//! Fleet-watch churn storm (extension): replay a deterministic admission
//! flash crowd plus a starved victim session and read the fleet back
//! through the streaming time-series layer.
//!
//! The storm seeds three long-lived sessions (the first one's last hop
//! outages twice, starving it under its fair share and whipsawing its
//! ladder rung), then lands a six-session flash crowd inside a ten-tick
//! window against a `capacity 4 / queue 2` admission policy — so the run
//! exercises every detector at once: admission storm, per-session
//! starvation, rung flap, and the fleet fairness knee. Everything the
//! experiment prints and writes is a pure function of the seeded
//! simulation, byte-identical at any `GSS_THREADS`.
//!
//! Artifacts (via `figures fleetwatch`): `--out` writes the fleet report
//! JSON (including the `watch` rollup and downsampled series), `--trace`
//! the merged Chrome trace with pid-0 fleet counter tracks and anomaly
//! markers, `--prom` a fleet-labeled Prometheus snapshot, and `--check`
//! gates the `fleetwatch.*` metrics against a committed baseline.

use crate::{table::f, RunOptions, Table};
use gamestreamsr::fleet::{AdmissionPolicy, FleetConfig, FleetReport, FleetSessionSpec, FleetSim};
use gss_net::{FaultEvent, FaultKind, FaultPlan, LinkProfile};
use gss_platform::DeviceProfile;
use gss_render::GameId;

/// Fleet label on the Prometheus snapshot and in the printed table.
pub const FLEET_NAME: &str = "churn-storm";

/// One fleet-watch storm run: the simulator (kept for trace export) and
/// its report.
pub struct FleetwatchRun {
    /// Fleet ticks the storm ran.
    pub ticks: usize,
    /// The fleet report, `watch` rollup included.
    pub report: FleetReport,
    /// The simulator, retained for Chrome-trace export.
    pub sim: FleetSim,
}

/// The canonical churn storm at `ticks` length. Three staggered seed
/// sessions (the first with two last-hop outage windows at 25–40% and
/// 55–70% of the run), then a six-session flash crowd joining one tick
/// apart from `ticks / 3`, all leaving together a third of a run later —
/// against an admission policy of 4 slots and 2 queue places, so the
/// crowd splits into one admit, two queued and three rejects.
pub fn storm_config(ticks: usize) -> FleetConfig {
    let total_ms = ticks as f64 * 1000.0 / 60.0;
    let mut config = FleetConfig::new(LinkProfile::fiber(), 0x0b5e55).with_ticks(ticks);
    // deployment-equivalent per-session rate, as in the consolidation sweep
    config.session_rate_mbps = 18.0;
    config.admission = AdmissionPolicy {
        capacity: 4,
        queue_limit: 2,
    };
    for i in 0..3 {
        let device = if i % 2 == 0 {
            DeviceProfile::s8_tab()
        } else {
            DeviceProfile::pixel7_pro()
        };
        let mut spec =
            FleetSessionSpec::new(GameId::ALL[i % GameId::ALL.len()], device).joining_at(i);
        if i == 0 {
            // the victim: two sustained last-hop outages, each long
            // enough (15% of the run) to run the starvation streak out
            spec = spec.with_faults(FaultPlan::new(vec![
                FaultEvent {
                    start_ms: total_ms * 0.25,
                    end_ms: total_ms * 0.40,
                    kind: FaultKind::Outage,
                },
                FaultEvent {
                    start_ms: total_ms * 0.55,
                    end_ms: total_ms * 0.70,
                    kind: FaultKind::Outage,
                },
            ]));
        }
        config = config.with_session(spec);
    }
    let crowd = ticks / 3;
    for i in 0..6 {
        let device = if i % 2 == 0 {
            DeviceProfile::pixel7_pro()
        } else {
            DeviceProfile::s8_tab()
        };
        config = config.with_session(
            FleetSessionSpec::new(GameId::ALL[(3 + i) % GameId::ALL.len()], device)
                .joining_at(crowd + i)
                .leaving_at(crowd + ticks / 3),
        );
    }
    config
}

/// Runs the storm and returns the report plus the simulator.
pub fn measure(options: &RunOptions) -> FleetwatchRun {
    let ticks = options.frames(480, 160);
    let mut sim = FleetSim::new(storm_config(ticks));
    let report = sim.run_until_idle().expect("fleet run");
    FleetwatchRun { ticks, report, sim }
}

/// The same storm behind the tail sampler (`figures fleetwatch
/// --sample`): the report — and with it every gated `fleetwatch.*`
/// metric — is byte-identical to [`measure`]'s, but the exported Chrome
/// trace carries only the retained frames plus the per-session
/// `sampling-*` counter tracks.
pub fn measure_sampled(
    options: &RunOptions,
    policy: gss_telemetry::SamplingPolicy,
) -> FleetwatchRun {
    let ticks = options.frames(480, 160);
    let mut sim = FleetSim::new(storm_config(ticks).with_sampling(policy));
    let report = sim.run_until_idle().expect("fleet run");
    FleetwatchRun { ticks, report, sim }
}

/// Prints the fleet-watch series table and the anomaly/knee summary.
pub fn run(options: &RunOptions) {
    print(&measure(options));
}

/// Prints one already-measured storm (so the `figures fleetwatch`
/// subcommand can reuse the run for its artifacts).
pub fn print(run: &FleetwatchRun) {
    let w = &run.report.watch;
    let mut t = Table::new(
        format!(
            "Fleet watch: {FLEET_NAME} ({} ticks, {} sessions scripted)",
            run.ticks,
            run.report.sessions.len()
                + run.report.admission.rejected.len()
                + run.report.admission.abandoned.len()
        ),
        &["series", "samples", "min", "max", "last"],
    );
    for s in w.series.iter() {
        t.row(&[
            s.name().to_owned(),
            s.samples().to_string(),
            f(s.min().unwrap_or(f64::NAN), 3),
            f(s.max().unwrap_or(f64::NAN), 3),
            f(s.last().unwrap_or(f64::NAN), 3),
        ]);
    }
    t.print();
    println!(
        "fairness: min {} mean {} | knee: {}",
        f(w.fairness_min, 3),
        f(w.fairness_mean, 3),
        w.knee_tick
            .map_or_else(|| "none".to_owned(), |t| format!("tick {t}")),
    );
    println!(
        "anomalies: {} rung flaps, {} starvation episodes (max streak {} ticks), {} admission storms",
        w.rung_flaps, w.starvation_events, w.starved_max_streak, w.admission_storms
    );
    println!(
        "admission: {} admitted, {} rejected, {} abandoned (peak queue {}, peak concurrency {})\n",
        run.report.admission.admitted,
        run.report.admission.rejected.len(),
        run.report.admission.abandoned.len(),
        run.report.admission.peak_queue,
        run.report.admission.peak_concurrency
    );
}
