//! §IV-B2 server-side numbers: GPU utilization headroom at 720p versus
//! 1440p, and the bandwidth reduction from streaming low-resolution frames
//! plus RoI coordinates instead of 2K frames.

use crate::{table::f, RunOptions, Table};
use gamestreamsr::{GameStreamServer, ServerConfig};
use gss_frame::Resolution;
use gss_net::{stream_drop_rate, LinkProfile};
use gss_platform::ServerModel;
use gss_render::GameId;

/// Prints GPU utilization, measured bandwidth at both resolutions, and the
/// frame-drop motivation experiment.
pub fn run(options: &RunOptions) {
    let server = ServerModel::default();
    let mut t = Table::new(
        "Server GPU utilization at 60 FPS (paper: 79% at 1440p vs 52% at 720p)",
        &["stream", "RoI detection", "utilization"],
    );
    for (res, roi) in [
        (Resolution::P1440, false),
        (Resolution::P720, false),
        (Resolution::P720, true),
    ] {
        t.row(&[
            res.to_string(),
            if roi { "on".into() } else { "off".into() },
            format!("{:.0}%", server.gpu_utilization(res, roi) * 100.0),
        ]);
    }
    t.print();

    // bandwidth: encode the same content at a 720p-equivalent canvas and a
    // 1440p-equivalent canvas and compare coded sizes per frame
    let frames = options.frames(8, 3);
    let measure = |canvas: (usize, usize)| -> f64 {
        let roi_w = (canvas.0 / 4, canvas.1 / 4);
        let mut s = GameStreamServer::new(ServerConfig::new(GameId::G3, canvas, roi_w));
        let mut total = 0usize;
        for _ in 0..frames {
            total += s.next_frame().expect("packet").encoded.size_bytes();
        }
        total as f64 / frames as f64
    };
    let low = measure((640, 360)); // stands in for the 720p stream
    let high = measure((1280, 720)); // stands in for the 2K stream
    let reduction = 1.0 - low / high;
    let mut t = Table::new(
        "Bandwidth: low-resolution stream + RoI coordinates vs high-resolution stream",
        &["stream", "bytes/frame", "Mbps @60FPS"],
    );
    t.row(&[
        "high-res (2K-equivalent)".into(),
        f(high, 0),
        f(high * 8.0 * 60.0 / 1e6, 1),
    ]);
    t.row(&[
        "low-res + RoI coords".into(),
        f(low + 16.0, 0), // 16 bytes of RoI coordinates per frame
        f((low + 16.0) * 8.0 * 60.0 / 1e6, 1),
    ]);
    t.print();
    println!(
        "bandwidth reduction: {:.0}% (paper reports 66%)\n",
        reduction * 100.0
    );

    // frame-drop motivation (§II-A): the 2K stream over WiFi vs the low
    // stream — scale measured bytes to deployment sizes
    let frames_net = options.frames(1200, 200);
    let hi_bytes = (high * 3.2) as usize; // 2K deployment-scale estimate
    let lo_bytes = low as usize * 2; // 720p deployment-scale estimate
    let hi_drop = stream_drop_rate(&LinkProfile::wifi(), 7, hi_bytes, 60.0, frames_net);
    let lo_drop = stream_drop_rate(&LinkProfile::wifi(), 7, lo_bytes, 60.0, frames_net);
    println!(
        "WiFi frame drops @60FPS: 2K stream {:.0}% vs low-res stream {:.1}% (paper's motivation: heavy drops at high resolution)\n",
        hi_drop * 100.0,
        lo_drop * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_completes() {
        run(&RunOptions {
            quick: true,
            ..Default::default()
        });
    }
}
