//! Strong-scaling of the deterministic parallel executor.
//!
//! Runs the same seeded GameStreamSR session at 1, 2, 4 and 8 workers and
//! reports the end-to-end speedup. Two time columns:
//!
//! - **measured** — wall-clock of the run. In accounting mode the pool
//!   executes chunks serially, so this column is flat by construction; it
//!   is reported as the baseline cost and a sanity check that the worker
//!   count does not change the amount of work.
//! - **modeled** — `measured - work + span`, where per region the pool
//!   charges the most-loaded worker's chunk cost (`span`) instead of the
//!   full serial cost (`work`). This is the wall-clock on an unloaded
//!   machine with one core per worker, computed exactly on any host —
//!   including single-core CI — in the same spirit as the device timing
//!   models used everywhere else in the pipeline.
//!
//! The `identical` column proves the determinism contract end-to-end: the
//! per-frame record stream and the telemetry summary hash to the same
//! digest at every worker count.

use crate::{RunOptions, Table};
use gamestreamsr::session::{run_session, Pipeline, SessionConfig};
use gss_platform::{pool, DeviceProfile};
use gss_render::GameId;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Worker counts exercised by the scaling ladder.
pub const WORKER_LADDER: [usize; 4] = [1, 2, 4, 8];

/// One row of the scaling ladder.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Worker count.
    pub workers: usize,
    /// Wall-clock of the (serialized, accounted) run, ms.
    pub measured_ms: f64,
    /// Modeled wall-clock with one core per worker, ms.
    pub modeled_ms: f64,
    /// Modeled speedup versus the 1-worker run.
    pub speedup: f64,
    /// Load imbalance across workers (most-loaded / mean, 1.0 = perfect),
    /// from the pool's per-worker accounting.
    pub imbalance: f64,
    /// Whether the frame records and telemetry matched the 1-worker run.
    pub identical: bool,
}

fn digest(report_frames: &str, telemetry: &str) -> u64 {
    let mut h = DefaultHasher::new();
    report_frames.hash(&mut h);
    telemetry.hash(&mut h);
    h.finish()
}

/// Runs the ladder and returns its points (used by the smoke test too).
pub fn measure(options: &RunOptions) -> Vec<ScalingPoint> {
    let frames = options.frames(24, 5);
    // Quality evaluation stays ON: it drives the client's decode + SR +
    // merge data path, which is the parallel half of the end-to-end
    // pipeline (without it the run measures the server alone).
    let cfg = SessionConfig {
        frames,
        gop_size: 12,
        // Quick mode keeps enough pixels per frame that the parallel
        // fraction dominates spawn/merge overhead; below ~192x108 the
        // ladder undersells the steady-state speedup.
        lr_size: if options.quick {
            (192, 108)
        } else {
            (320, 180)
        },
        telemetry: options.telemetry.clone(),
        ..SessionConfig::new(GameId::G3, DeviceProfile::s8_tab())
    };

    let prev = pool::workers();
    let mut base: Option<(f64, u64)> = None; // (modeled_ms at 1 worker, digest)
    let mut points = Vec::with_capacity(WORKER_LADDER.len());
    for &w in &WORKER_LADDER {
        pool::set_workers(w);
        pool::start_accounting();
        let t0 = Instant::now();
        let report = run_session(&cfg, Pipeline::GameStreamSr).expect("scaling session");
        let measured_ms = t0.elapsed().as_secs_f64() * 1e3;
        let acct = pool::stop_accounting();
        let modeled_ms = measured_ms - (acct.work_ns as f64) * 1e-6 + (acct.span_ns as f64) * 1e-6;
        let d = digest(&format!("{:?}", report.frames), &report.telemetry.to_json());
        let (base_ms, base_digest) = *base.get_or_insert((modeled_ms, d));
        points.push(ScalingPoint {
            workers: w,
            measured_ms,
            modeled_ms,
            speedup: base_ms / modeled_ms,
            imbalance: acct.imbalance(),
            identical: d == base_digest,
        });
    }
    pool::set_workers(prev);
    points
}

/// Runs one quality-on session at the current worker count under pool
/// accounting and returns the per-worker ledger — the input of the
/// collapsed-stack flamegraph export (`figures triage --folded`). Uses
/// the same session shape as the ladder so the profile reflects the
/// parallel data path, not the aggregate-only storm. A 1-worker pool
/// runs its regions inline and records nothing, so the profile
/// temporarily widens to the ladder's headline count of 4 workers.
pub fn profile(options: &RunOptions) -> gss_platform::pool::PoolAccounting {
    let cfg = SessionConfig {
        frames: options.frames(24, 5),
        gop_size: 12,
        lr_size: if options.quick {
            (192, 108)
        } else {
            (320, 180)
        },
        ..SessionConfig::new(GameId::G3, DeviceProfile::s8_tab())
    };
    let prev = pool::workers();
    if prev <= 1 {
        pool::set_workers(4);
    }
    pool::start_accounting();
    let _ = run_session(&cfg, Pipeline::GameStreamSr).expect("profile session");
    let acct = pool::stop_accounting();
    pool::set_workers(prev);
    acct
}

/// Prints the scaling table and the headline speedup at 4 workers.
pub fn run(options: &RunOptions) {
    let points = measure(options);
    let mut t = Table::new(
        "Scaling: end-to-end session wall-clock vs worker count (G3, ours pipeline)",
        &[
            "workers",
            "measured ms",
            "modeled ms",
            "speedup",
            "imbalance",
            "identical",
        ],
    );
    for p in &points {
        t.row(&[
            p.workers.to_string(),
            format!("{:.1}", p.measured_ms),
            format!("{:.1}", p.modeled_ms),
            format!("{:.2}x", p.speedup),
            format!("{:.2}", p.imbalance),
            if p.identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.print();
    let at4 = points
        .iter()
        .find(|p| p.workers == 4)
        .expect("ladder includes 4 workers");
    println!(
        "speedup at 4 workers: {:.2}x (modeled span accounting; identity {})\n",
        at4.speedup,
        if points.iter().all(|p| p.identical) {
            "holds at every worker count"
        } else {
            "VIOLATED"
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_ladder_is_deterministic_and_scales() {
        let points = measure(&RunOptions {
            quick: true,
            ..Default::default()
        });
        assert_eq!(points.len(), WORKER_LADDER.len());
        assert!(points.iter().all(|p| p.identical), "{points:?}");
        let at4 = points.iter().find(|p| p.workers == 4).unwrap();
        assert!(
            at4.speedup > 1.0,
            "no parallel gain at 4 workers: {points:?}"
        );
    }
}
