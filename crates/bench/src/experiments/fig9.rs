//! Fig. 9 / §IV-C — the client upscaling path: NPU (RoI) and GPU (non-RoI)
//! run in parallel, then merge. Reproduces the paper's worked example
//! (300×300 RoI: ≈16.2 ms NPU ∥ ≈1.4 ms GPU on the S8 Tab).

use crate::{table::f, RunOptions, Table};
use gamestreamsr::mtp::ours_upscale;
use gamestreamsr::roi::plan_roi_window;
use gss_platform::DeviceProfile;

/// Prints the per-device parallel upscaling timing.
pub fn run(_options: &RunOptions) {
    let mut t = Table::new(
        "Fig. 9: client upscaling path (720p -> 1440p)",
        &[
            "device",
            "RoI window",
            "NPU (RoI) ms",
            "GPU (non-RoI) ms",
            "merge ms",
            "critical path ms",
        ],
    );
    for device in DeviceProfile::all() {
        let plan = plan_roi_window(&device, 2, 1280, 720);
        let timing = ours_upscale(&device, plan.chosen_side);
        t.row(&[
            device.name.to_string(),
            format!("{0}x{0}", plan.chosen_side),
            f(timing.npu_ms, 1),
            f(timing.gpu_ms, 2),
            f(timing.merge_ms, 2),
            f(timing.critical_ms, 1),
        ]);
    }
    t.print();
    println!(
        "the NPU and GPU paths run concurrently; the critical path is max(NPU, GPU) + merge\n"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_completes() {
        run(&RunOptions::default());
    }
}
