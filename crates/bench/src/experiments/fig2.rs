//! Fig. 2 — the SOTA's super-resolution execution timeline over three
//! consecutive GOPs on the S8 Tab, showing the reference-frame latency
//! peaks and the non-reference frames' deadline violations.

use crate::experiments::common::fast_cfg;
use crate::{table::f, RunOptions, Table};
use gamestreamsr::session::{run_session, Pipeline};
use gss_codec::FrameType;
use gss_platform::{DeviceProfile, REALTIME_BUDGET_MS};
use gss_render::GameId;

/// Prints the SOTA per-frame upscaling timeline for 3 GOPs.
pub fn run(options: &RunOptions) {
    let frames = options.frames(180, 12);
    let cfg = fast_cfg(GameId::G3, DeviceProfile::s8_tab(), frames, options);
    let report = run_session(&cfg, Pipeline::Nemo).expect("session");

    let mut t = Table::new(
        format!(
            "Fig. 2: SOTA SR execution timeline ({} frames, GOP 60, S8 Tab, budget {:.2} ms)",
            frames, REALTIME_BUDGET_MS
        ),
        &["frame", "type", "upscale ms", "meets 60 FPS"],
    );
    // print the first frames of each GOP plus GOP summaries
    for rec in &report.frames {
        let in_gop = rec.index % 60;
        if in_gop < 3 || in_gop == 59 {
            t.row(&[
                rec.index.to_string(),
                match rec.frame_type {
                    FrameType::Intra => "reference".into(),
                    FrameType::Inter => "non-ref".into(),
                },
                f(rec.upscale_ms, 1),
                if rec.upscale_ms <= REALTIME_BUDGET_MS {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
    }
    t.print();
    let ref_ms = report.mean_upscale_ms(FrameType::Intra);
    let nonref_ms = report.mean_upscale_ms(FrameType::Inter);
    println!(
        "reference peaks: {:.0} ms ({}x the 16.66 ms budget); non-reference: {:.1} ms (also over budget)\n",
        ref_ms,
        (ref_ms / REALTIME_BUDGET_MS).round() as i64,
        nonref_ms
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_completes() {
        run(&RunOptions {
            quick: true,
            ..Default::default()
        });
    }
}
