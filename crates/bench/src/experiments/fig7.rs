//! Fig. 7 / §IV-B1 — RoI window sizing: the foveal minimum from human
//! visual physiology and the compute maximum from device calibration.

use crate::{RunOptions, Table};
use gamestreamsr::roi::plan_roi_window;
use gss_platform::{DeviceProfile, FOVEAL_DIAMETER_INCHES};

/// Prints the per-device window plan (step-0 of the session).
pub fn run(_options: &RunOptions) {
    println!(
        "foveal visual diameter at 30 cm: {FOVEAL_DIAMETER_INCHES:.2} in (2 * 30cm * tan(3 deg))\n"
    );
    let mut t = Table::new(
        "Fig. 7: RoI window sizing per device (720p stream, x2 factor)",
        &[
            "device",
            "ppi",
            "foveal px on display",
            "foveal min on 720p",
            "compute max (16.66 ms)",
            "chosen",
            "foveal compromised",
        ],
    );
    for device in DeviceProfile::all() {
        let plan = plan_roi_window(&device, 2, 1280, 720);
        t.row(&[
            device.name.to_string(),
            format!("{:.0}", device.ppi),
            device.foveal_roi_side(1).to_string(),
            plan.foveal_side.to_string(),
            plan.max_side.to_string(),
            plan.chosen_side.to_string(),
            plan.foveal_compromised.to_string(),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_completes() {
        run(&RunOptions::default());
    }
}
