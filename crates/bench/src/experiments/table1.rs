//! Table I — the ten game workloads, with measured scene statistics
//! demonstrating each generator is a real, distinct workload.

use crate::{table::f, RunOptions, Table};
use gss_codec::estimate_motion;
use gss_render::{GameId, GameWorkload};

/// Prints Table I plus per-workload scene statistics (triangles, mean
/// depth, per-frame pixel motion at the evaluation canvas).
pub fn run(_options: &RunOptions) {
    let mut t = Table::new(
        "Table I: game workloads",
        &[
            "ID",
            "Game",
            "Genre",
            "triangles",
            "mean depth",
            "motion px/frame",
        ],
    );
    for id in GameId::ALL {
        let w = GameWorkload::new(id);
        let a = w.render_frame(0, 320, 180);
        let b = w.render_frame(4, 320, 180);
        let motion = estimate_motion(b.frame.y(), a.frame.y(), 15).mean_magnitude() / 4.0;
        t.row(&[
            id.label().to_string(),
            id.title().to_string(),
            id.genre().to_string(),
            w.scene().triangle_count().to_string(),
            f(a.depth.plane().mean(), 3),
            f(motion, 2),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_covers_all_games() {
        run(&RunOptions {
            quick: true,
            ..Default::default()
        });
    }
}
