//! Big-fleet churn storm (extension): a 32-session flash-crowd replay
//! run twice — once with the full trace and once behind the tail
//! sampler — to pin the retention budget, anomaly coverage and the
//! sampled-vs-full trace byte ratio.
//!
//! The fleet seeds eight long-lived sessions (two of them outage
//! victims whose last hop drops twice each, whipsawing their ladder
//! rungs) and then lands a 24-session flash crowd one tick apart
//! against a `capacity 16 / queue 4` admission policy. Both runs share
//! one seeded config, and the simulator's serial phases make the event
//! stream bit-identical between them — so the full run is a perfect
//! reference: the sampled run must produce the byte-identical fleet
//! report (`report_identical`), keep every anomaly frame
//! (`anomaly_coverage == 1.0`) and land the merged sampled trace at a
//! fraction of the full trace's bytes.
//!
//! Artifacts (via `figures bigfleet`): `--out` writes the fleet report
//! JSON plus the sampling ledger, `--trace` the sampled merged Chrome
//! trace, `--full-trace` the unsampled reference trace, `--prom` a
//! Prometheus snapshot with p99 exemplar annotations, and `--check`
//! gates the `bigfleet.*` / `sampling.*` metrics against a committed
//! baseline.

use crate::{table::f, RunOptions, Table};
use gamestreamsr::fleet::{AdmissionPolicy, FleetConfig, FleetReport, FleetSessionSpec, FleetSim};
use gss_net::{FaultEvent, FaultKind, FaultPlan, LinkProfile};
use gss_platform::DeviceProfile;
use gss_render::GameId;
use gss_telemetry::{SamplingPolicy, SamplingSummary};

/// Fleet label on the Prometheus snapshot and in the printed table.
pub const FLEET_NAME: &str = "bigfleet-storm";

/// Scripted sessions in the storm (seeds + flash crowd).
pub const SESSIONS: usize = 32;

/// Retention policy both gates and docs quote: keep a 1-in-32 baseline
/// plus ±2 frames of context around every anomaly, under a 256-frame
/// per-session and 4096-frame fleet budget.
pub fn policy() -> SamplingPolicy {
    SamplingPolicy {
        baseline_period: 32,
        ..SamplingPolicy::default()
    }
}

/// One big-fleet run: the sampled simulator (kept for trace export),
/// its full-trace twin, and the comparison ledger.
pub struct BigfleetRun {
    /// Fleet ticks the storm ran.
    pub ticks: usize,
    /// The retention policy the sampled run used.
    pub policy: SamplingPolicy,
    /// The sampled run's fleet report (byte-identical to the full
    /// run's when `report_identical` holds).
    pub report: FleetReport,
    /// Sampling ledger rolled up across every session's sampler.
    pub sampling: SamplingSummary,
    /// Merged Chrome trace bytes of the full-trace reference run.
    pub full_trace_bytes: usize,
    /// Merged Chrome trace bytes of the sampled run.
    pub sampled_trace_bytes: usize,
    /// Whether both runs' `FleetReport::to_json` matched byte-for-byte.
    pub report_identical: bool,
    /// The sampled simulator, retained for Chrome-trace export.
    pub sim: FleetSim,
    /// The full-trace simulator, retained for the reference trace.
    pub full_sim: FleetSim,
}

impl BigfleetRun {
    /// Sampled-over-full merged trace size.
    pub fn trace_byte_ratio(&self) -> f64 {
        if self.full_trace_bytes == 0 {
            0.0
        } else {
            self.sampled_trace_bytes as f64 / self.full_trace_bytes as f64
        }
    }

    /// Whether the retained total sits inside the fleet budget.
    pub fn budget_ok(&self) -> bool {
        self.sampling.retained <= self.policy.budget.fleet as u64
    }
}

/// The canonical 32-session storm at `ticks` length. Eight staggered
/// seed sessions (sessions 0 and 3 each take two sustained last-hop
/// outages), then a 24-session flash crowd joining one tick apart from
/// `ticks / 3` and leaving together a third of a run later — against an
/// admission policy of 16 slots and 4 queue places, so the crowd splits
/// into admits, queued joins and rejects.
pub fn storm_config(ticks: usize) -> FleetConfig {
    let total_ms = ticks as f64 * 1000.0 / 60.0;
    // a consolidation-rack uplink: fiber characteristics, provisioned
    // for 16 concurrent 18 Mbps sessions (budget 450 x 0.7 = 315 Mbps
    // vs 288 offered). The steady state is healthy, so the anomalies
    // the sampler must catch are the *bursts* — the victims' outage
    // windows and the churn edges — not wall-to-wall congestion.
    let rack = LinkProfile {
        bandwidth_mbps: 450.0,
        ..LinkProfile::fiber()
    };
    let mut config = FleetConfig::new(rack, 0xb16f1ee7).with_ticks(ticks);
    config.session_rate_mbps = 18.0;
    config.admission = AdmissionPolicy {
        capacity: 16,
        queue_limit: 4,
    };
    for i in 0..8 {
        let device = if i % 2 == 0 {
            DeviceProfile::s8_tab()
        } else {
            DeviceProfile::pixel7_pro()
        };
        let mut spec =
            FleetSessionSpec::new(GameId::ALL[i % GameId::ALL.len()], device).joining_at(i);
        if i == 0 || i == 3 {
            // the victims: two sustained last-hop outages each, offset
            // between the two sessions so the anomaly windows interleave
            let shift = if i == 0 { 0.0 } else { 0.05 };
            spec = spec.with_faults(FaultPlan::new(vec![
                FaultEvent {
                    start_ms: total_ms * (0.25 + shift),
                    end_ms: total_ms * (0.40 + shift),
                    kind: FaultKind::Outage,
                },
                FaultEvent {
                    start_ms: total_ms * (0.55 + shift),
                    end_ms: total_ms * (0.70 + shift),
                    kind: FaultKind::Outage,
                },
            ]));
        }
        config = config.with_session(spec);
    }
    let crowd = ticks / 3;
    for i in 0..(SESSIONS - 8) {
        let device = if i % 2 == 0 {
            DeviceProfile::pixel7_pro()
        } else {
            DeviceProfile::s8_tab()
        };
        config = config.with_session(
            FleetSessionSpec::new(GameId::ALL[(8 + i) % GameId::ALL.len()], device)
                .joining_at(crowd + i)
                .leaving_at(crowd + ticks / 3),
        );
    }
    config
}

/// Runs the storm twice — full trace, then sampled — and returns the
/// comparison. Both runs are pure functions of the seeded config, so
/// any report divergence is a sampler bug, not noise.
pub fn measure(options: &RunOptions) -> BigfleetRun {
    let ticks = options.frames(480, 160);
    let policy = policy();

    let mut full_sim = FleetSim::new(storm_config(ticks));
    let full_report = full_sim.run_until_idle().expect("full fleet run");
    let full_trace_bytes = full_sim.to_chrome_json().len();

    let mut sim = FleetSim::new(storm_config(ticks).with_sampling(policy));
    let report = sim.run_until_idle().expect("sampled fleet run");
    let sampled_trace_bytes = sim.to_chrome_json().len();
    let sampling = sim.sampling_summary().expect("sampling enabled");

    let report_identical = full_report.to_json() == report.to_json();
    BigfleetRun {
        ticks,
        policy,
        report,
        sampling,
        full_trace_bytes,
        sampled_trace_bytes,
        report_identical,
        sim,
        full_sim,
    }
}

/// Runs the storm and prints the comparison table.
pub fn run(options: &RunOptions) {
    print(&measure(options));
}

/// Prints one already-measured storm (so the `figures bigfleet`
/// subcommand can reuse the run for its artifacts).
pub fn print(run: &BigfleetRun) {
    let r = &run.report;
    let s = &run.sampling;
    let mut t = Table::new(
        format!(
            "Big fleet: {FLEET_NAME} ({} ticks, {SESSIONS} sessions scripted)",
            run.ticks
        ),
        &["quantity", "full", "sampled"],
    );
    t.row(&[
        "trace bytes".to_owned(),
        run.full_trace_bytes.to_string(),
        run.sampled_trace_bytes.to_string(),
    ]);
    t.row(&[
        "trace byte ratio".to_owned(),
        "1.000".to_owned(),
        f(run.trace_byte_ratio(), 3),
    ]);
    t.row(&[
        "report identical".to_owned(),
        "-".to_owned(),
        if run.report_identical { "yes" } else { "NO" }.to_owned(),
    ]);
    t.print();
    println!(
        "sampling: {} frames -> {} retained ({} anomaly, {} context, {} baseline), {} evicted, retention {}",
        s.frames,
        s.retained,
        s.anomaly_kept,
        s.context_kept,
        s.baseline_kept,
        s.evicted,
        f(s.retention_ratio(), 4),
    );
    println!(
        "anomalies: {} frames, coverage {} | exemplars: {} | budget: {} / {} ({})",
        s.anomaly_frames,
        f(s.anomaly_coverage(), 3),
        s.exemplars,
        s.retained,
        run.policy.budget.fleet,
        if run.budget_ok() { "ok" } else { "OVER" },
    );
    println!(
        "admission: {} admitted, {} rejected, {} abandoned | {} frames, {} misses, knee {}\n",
        r.admission.admitted,
        r.admission.rejected.len(),
        r.admission.abandoned.len(),
        r.total_frames(),
        r.total_deadline_misses(),
        r.watch
            .knee_tick
            .map_or_else(|| "none".to_owned(), |t| format!("tick {t}")),
    );
}
