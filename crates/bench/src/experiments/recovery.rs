//! Decoder-crash recovery study (extension): the crash-storm fault
//! timeline — the canonical storm plus five scripted decoder crashes, one
//! clean and four rapid-fire — swept across the device capability matrix
//! ([`DeviceProfile::matrix`]): both calibrated reference phones and the
//! three synthetic low/mid/high NPU tiers.
//!
//! Per device the table reports what the recovery state machine delivered:
//! crash/reconfigure/failed-resync counts, whether the permanent
//! safe-profile fallback engaged, time-to-recover (p99 and worst episode),
//! frames frozen while the decoder was down, the worst freeze the viewer
//! sat through, and post-clearance effective FPS. The same numbers gate in
//! `BENCH_ci.json` — a crash that turns into a permanent freeze on any
//! tier fails the benchmark check.

use crate::experiments::common::FAST_CANVAS;
use crate::{table::f, RunOptions, Table};
use gamestreamsr::degrade::DegradationConfig;
use gamestreamsr::session::{run_session, Pipeline, SessionConfig, SessionReport};
use gss_codec::RateControlConfig;
use gss_net::{DropCause, FaultPlan};
use gss_platform::DeviceProfile;
use gss_render::GameId;

const FRAME_MS: f64 = 1000.0 / 60.0;

/// Short stable metric tags, one per [`DeviceProfile::matrix`] entry (in
/// matrix order). Baseline metric names are built from these, so they must
/// never be reordered without re-emitting the baselines.
pub const DEVICE_TAGS: [&str; 5] = ["s8-tab", "pixel7-pro", "tier-low", "tier-mid", "tier-high"];

fn storm_cfg(device: DeviceProfile, time_scale: f64, options: &RunOptions) -> SessionConfig {
    SessionConfig {
        frames: (FaultPlan::crash_storm_duration_ms(time_scale) / FRAME_MS).round() as usize,
        gop_size: 60,
        lr_size: FAST_CANVAS,
        rate_control: Some(RateControlConfig {
            min_quality: 10,
            ..RateControlConfig::for_bitrate_mbps(12.0)
        }),
        telemetry: options.telemetry.clone(),
        ..SessionConfig::new(GameId::G3, device)
    }
    .without_quality()
    .with_faults(FaultPlan::crash_storm_scaled(time_scale))
    .with_degradation(DegradationConfig::default())
}

/// One device's run through the crash storm.
#[derive(Debug)]
pub struct DeviceRun {
    /// Stable metric tag (see [`DEVICE_TAGS`]).
    pub tag: &'static str,
    /// Human-readable device name.
    pub device: String,
    /// The completed session.
    pub report: SessionReport,
}

/// The crash storm swept across the device matrix. Produced by
/// [`measure`]; consumed by [`run`] (the printed table) and by the
/// benchmark-regression harness.
#[derive(Debug)]
pub struct RecoveryRuns {
    /// Timeline compression factor (1.0 = the full storm).
    pub time_scale: f64,
    /// First frame index after every scripted fault has cleared.
    pub clearance_frame: usize,
    /// One run per device, in [`DeviceProfile::matrix`] order.
    pub runs: Vec<DeviceRun>,
}

/// Effective FPS over the post-clearance era — the frames after every
/// scripted fault (crashes included) has cleared, i.e. the quality the
/// viewer gets back once the storm is over.
pub fn post_recovery_fps(r: &SessionReport, clearance_frame: usize) -> f64 {
    let start = clearance_frame.min(r.frames.len());
    let tail = &r.frames[start..];
    if tail.is_empty() {
        return 0.0;
    }
    60.0 * tail.iter().filter(|fr| fr.deadline_met).count() as f64 / tail.len() as f64
}

/// Streams the crash storm through every device of the matrix.
pub fn measure(options: &RunOptions) -> RecoveryRuns {
    // quick mode compresses the timeline 5x; the full run replays it 1:1
    let time_scale = if options.quick { 0.2 } else { 1.0 };
    let clearance_frame = (17_000.0 * time_scale / FRAME_MS).ceil() as usize;
    let runs = DeviceProfile::matrix()
        .into_iter()
        .zip(DEVICE_TAGS)
        .map(|(device, tag)| {
            let name = device.name.to_owned();
            let report = run_session(
                &storm_cfg(device, time_scale, options),
                Pipeline::GameStreamSr,
            )
            .expect("session");
            DeviceRun {
                tag,
                device: name,
                report,
            }
        })
        .collect();
    RecoveryRuns {
        time_scale,
        clearance_frame,
        runs,
    }
}

/// Runs the crash storm across the device matrix and prints the
/// per-device recovery table.
pub fn run(options: &RunOptions) {
    let m = measure(options);
    let mut t = Table::new(
        format!(
            "Decoder crash recovery across the device matrix ({} frames, {}x time scale)",
            m.runs[0].report.frames.len(),
            f(m.time_scale, 1)
        ),
        &[
            "device",
            "crashes",
            "reconfigs",
            "failed",
            "fallback",
            "TTR p99",
            "worst episode",
            "frozen (recovery)",
            "frozen run (max)",
            "post-clear FPS",
        ],
    );
    for run in &m.runs {
        let r = &run.report;
        let rec = r
            .recovery
            .as_ref()
            .expect("the crash storm arms the machine");
        t.row(&[
            run.device.clone(),
            rec.crashes.to_string(),
            rec.reconfigures.to_string(),
            rec.failed_attempts.to_string(),
            if rec.safe_profile_fallback {
                "yes"
            } else {
                "-"
            }
            .to_string(),
            format!("{} ms", f(rec.time_to_recover_p99_ms(FRAME_MS), 0)),
            format!(
                "{} frames ({} ms)",
                rec.worst_recovery_frames(),
                f(rec.worst_recovery_frames() as f64 * FRAME_MS, 0)
            ),
            rec.frozen_frames.to_string(),
            format!(
                "{} ({} ms)",
                r.longest_frozen_run(),
                f(r.longest_frozen_run() as f64 * FRAME_MS, 0)
            ),
            f(post_recovery_fps(r, m.clearance_frame), 1),
        ]);
    }
    t.print();
    let decoder_drops: u64 = m
        .runs
        .iter()
        .map(|run| run.report.drops_with_cause(DropCause::DecoderDown) as u64)
        .sum();
    println!(
        "decoder-down drops across the matrix: {decoder_drops}; all faults clear at frame {}\n",
        m.clearance_frame
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_tier_recovers_from_the_quick_storm() {
        let options = RunOptions {
            quick: true,
            ..Default::default()
        };
        run(&options); // smoke the printed table too
        let m = measure(&options);
        assert_eq!(m.runs.len(), DEVICE_TAGS.len());
        for run in &m.runs {
            let r = &run.report;
            let rec = r.recovery.as_ref().expect("machine armed");
            // every scripted crash was sampled and every episode completed
            assert_eq!(rec.crashes, 5, "{}", run.device);
            assert!(!rec.recovery_frames.is_empty(), "{}", run.device);
            assert!(rec.safe_profile_fallback, "{}", run.device);
            // no permanent freeze: the storm's tail streams again
            assert!(
                !r.frames.last().unwrap().frozen,
                "{} ended frozen",
                run.device
            );
            assert!(
                r.longest_frozen_run() < r.frames.len() / 2,
                "{}: frozen {} of {} frames",
                run.device,
                r.longest_frozen_run(),
                r.frames.len()
            );
            assert!(
                r.drops_with_cause(DropCause::DecoderDown) > 0,
                "{}",
                run.device
            );
        }
    }
}
