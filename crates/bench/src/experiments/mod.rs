//! One module per paper table/figure.

pub mod ablation;
pub mod bigfleet;
pub mod common;
pub mod consolidate;
pub mod fig10;
pub mod fig11_12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig2;
pub mod fig3;
pub mod fig7;
pub mod fig9;
pub mod fleetwatch;
pub mod loss;
pub mod recovery;
pub mod resilience;
pub mod scaling;
pub mod server_side;
pub mod table1;
