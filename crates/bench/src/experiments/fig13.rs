//! Fig. 13 — transient PSNR across consecutive GOPs for G3: SOTA's quality
//! decays within each GOP (bilinear error accumulation) and snaps back at
//! keyframes; ours stays flat.

use crate::experiments::common::quality_cfg;
use crate::{table::f, RunOptions, Table};
use gamestreamsr::session::run_comparison;
use gss_platform::DeviceProfile;
use gss_render::GameId;

/// Prints the per-frame PSNR series for both pipelines over several GOPs.
pub fn run(options: &RunOptions) {
    let (gops, gop_size) = if options.quick { (1, 12) } else { (3, 60) };
    let mut cfg = quality_cfg(
        GameId::G3,
        DeviceProfile::pixel7_pro(),
        gops * gop_size,
        options,
    );
    cfg.gop_size = gop_size;
    let cmp = run_comparison(&cfg).expect("session");
    let ours = cmp.ours.psnr_series();
    let sota = cmp.sota.psnr_series();

    let mut t = Table::new(
        format!("Fig. 13: transient PSNR over {gops} GOPs, G3 (dB)"),
        &["frame", "in-GOP pos", "ours", "SOTA"],
    );
    for (i, (a, b)) in ours.iter().zip(sota.iter()).enumerate() {
        let pos = i % gop_size;
        // sample the series: GOP start, quartiles, GOP end
        if pos == 0
            || pos == gop_size / 4
            || pos == gop_size / 2
            || pos == 3 * gop_size / 4
            || pos == gop_size - 1
        {
            t.row(&[i.to_string(), pos.to_string(), f(*a, 2), f(*b, 2)]);
        }
    }
    t.print();

    let ours_min = ours.iter().cloned().fold(f64::INFINITY, f64::min);
    let sota_end: f64 = sota
        .iter()
        .enumerate()
        .filter(|(i, _)| i % gop_size == gop_size - 1)
        .map(|(_, v)| *v)
        .sum::<f64>()
        / gops as f64;
    println!(
        "ours minimum: {ours_min:.2} dB (consistently {} the 30 dB bar); SOTA end-of-GOP mean: {sota_end:.2} dB\n",
        if ours_min >= 30.0 { "above" } else { "BELOW" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_completes() {
        run(&RunOptions {
            quick: true,
            ..Default::default()
        });
    }
}
