//! Fig. 11 — overall energy savings per game and device; Fig. 12 — the
//! energy breakdown for G3 on the Pixel 7 Pro.

use crate::experiments::common::fast_cfg;
use crate::{table::f, RunOptions, Table};
use gamestreamsr::session::{run_comparison, run_session, Pipeline};
use gss_platform::{DeviceProfile, Stage};
use gss_render::GameId;

/// Fig. 11: per-game energy savings of GameStreamSR over SOTA.
pub fn run_savings(options: &RunOptions) {
    let frames = options.frames(60, 30);
    let games: &[GameId] = if options.quick {
        &[GameId::G3]
    } else {
        &GameId::ALL
    };
    let mut t = Table::new(
        "Fig. 11: overall energy savings w.r.t. SOTA (one GOP)",
        &["game", "S8 Tab", "Pixel 7 Pro"],
    );
    let mut sums = [0.0f64; 2];
    for &game in games {
        let mut cells = vec![game.label().to_string()];
        for (i, device) in DeviceProfile::all().into_iter().enumerate() {
            let cmp = run_comparison(&fast_cfg(game, device, frames, options)).expect("session");
            let savings = cmp.energy_savings();
            sums[i] += savings;
            cells.push(format!("{:.1}%", savings * 100.0));
        }
        t.row(&cells);
    }
    t.row(&[
        "MEAN".into(),
        format!("{:.1}%", sums[0] / games.len() as f64 * 100.0),
        format!("{:.1}%", sums[1] / games.len() as f64 * 100.0),
    ]);
    t.print();
}

/// Fig. 12: energy-consumption breakdown, G3 on the Pixel 7 Pro.
pub fn run_breakdown(options: &RunOptions) {
    let frames = options.frames(60, 30);
    let cfg = fast_cfg(GameId::G3, DeviceProfile::pixel7_pro(), frames, options);
    let ours = run_session(&cfg, Pipeline::GameStreamSr).expect("session");
    let sota = run_session(&cfg, Pipeline::Nemo).expect("session");
    let mut t = Table::new(
        "Fig. 12: energy breakdown, G3 on Pixel 7 Pro (one GOP)",
        &["stage", "ours mJ", "ours %", "SOTA mJ", "SOTA %"],
    );
    for stage in Stage::ALL {
        if stage == Stage::Other {
            continue;
        }
        t.row(&[
            stage.label().to_string(),
            f(ours.energy.stage_mj(stage), 0),
            format!("{:.1}%", ours.energy.fraction(stage) * 100.0),
            f(sota.energy.stage_mj(stage), 0),
            format!("{:.1}%", sota.energy.fraction(stage) * 100.0),
        ]);
    }
    t.row(&[
        "TOTAL".into(),
        f(ours.energy.total_mj, 0),
        "100%".into(),
        f(sota.energy.total_mj, 0),
        "100%".into(),
    ]);
    t.print();
    println!(
        "decode: {:.0}% of SOTA energy (software decoder) vs {:.0}% of ours (hardware decoder)\n",
        sota.energy.fraction(Stage::Decode) * 100.0,
        ours.energy.fraction(Stage::Decode) * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_runs_complete() {
        let q = RunOptions {
            quick: true,
            ..Default::default()
        };
        run_savings(&q);
        run_breakdown(&q);
    }
}
