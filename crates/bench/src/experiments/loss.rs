//! Packet-loss recovery study (extension): what the player sees when the
//! channel fades — frozen frames, a NACK-forced keyframe, and quality
//! snapping back.

use crate::experiments::common::quality_canvas;
use crate::{table::f, RunOptions, Table};
use gamestreamsr::session::{run_session, Pipeline, SessionConfig};
use gss_platform::DeviceProfile;
use gss_render::GameId;

/// Streams G3 over a fading link with loss recovery on and prints the
/// per-frame outcome trace.
pub fn run(options: &RunOptions) {
    let frames = options.frames(48, 16);
    let mut cfg = SessionConfig {
        frames,
        gop_size: frames,
        lr_size: quality_canvas(options),
        loss_recovery: true,
        telemetry: options.telemetry.clone(),
        ..SessionConfig::new(GameId::G3, DeviceProfile::pixel7_pro())
    };
    // a fading channel tight against the stream's bitrate
    cfg.link.bandwidth_mbps = 30.0;
    cfg.link.bandwidth_cv = 0.55;
    cfg.link_seed = 0x10;
    let report = run_session(&cfg, Pipeline::GameStreamSr).expect("session");

    let mut t = Table::new(
        "Loss recovery: per-frame outcomes over a fading link (G3)",
        &["frame", "type", "outcome", "PSNR dB"],
    );
    let mut shown = 0;
    for rec in &report.frames {
        let outcome = if rec.dropped {
            "DROPPED"
        } else if rec.frozen {
            "frozen (awaiting keyframe)"
        } else {
            "displayed"
        };
        // print drops, freezes, and their neighbourhood
        let interesting = rec.dropped
            || rec.frozen
            || report
                .frames
                .iter()
                .any(|o| (o.dropped || o.frozen) && rec.index.abs_diff(o.index) <= 1);
        if interesting && shown < 24 {
            shown += 1;
            t.row(&[
                rec.index.to_string(),
                format!("{:?}", rec.frame_type),
                outcome.to_string(),
                rec.psnr_db.map(|v| f(v, 2)).unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    t.print();
    let frozen = report.frames.iter().filter(|f| f.frozen).count();
    let dropped = report.frames.iter().filter(|f| f.dropped).count();
    println!(
        "{dropped} of {frames} frames dropped by the channel; {frozen} frames frozen; \
         decoding resumed at NACK-forced keyframes\n"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_completes() {
        run(&RunOptions {
            quick: true,
            ..Default::default()
        });
    }
}
