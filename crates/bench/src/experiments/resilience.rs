//! Resilience study (extension): GameStreamSR with and without the adaptive
//! degradation controller, and the NEMO baseline, all driven through the
//! same canonical fault timeline — a 10 s mid-session bandwidth collapse
//! overlapping an NPU thermal-throttle ramp, then a short full outage.
//!
//! The table compares what each configuration delivers through the storm:
//! effective FPS, the worst frozen-frame run the viewer sat through, how
//! deep the degradation ladder went, how long after fault clearance full
//! quality returned, and the drop/NACK ledgers.

use crate::experiments::common::FAST_CANVAS;
use crate::{table::f, RunOptions, Table};
use gamestreamsr::degrade::DegradationConfig;
use gamestreamsr::session::{run_session, Pipeline, SessionConfig, SessionReport};
use gss_codec::RateControlConfig;
use gss_net::{DropCause, FaultPlan};
use gss_platform::DeviceProfile;
use gss_render::GameId;
use gss_telemetry::{Counter, Gauge};

const FRAME_MS: f64 = 1000.0 / 60.0;

fn faulted_cfg(time_scale: f64, options: &RunOptions) -> SessionConfig {
    SessionConfig {
        frames: (FaultPlan::canonical_duration_ms(time_scale) / FRAME_MS).round() as usize,
        gop_size: 60,
        lr_size: FAST_CANVAS,
        rate_control: Some(RateControlConfig {
            min_quality: 10,
            ..RateControlConfig::for_bitrate_mbps(12.0)
        }),
        telemetry: options.telemetry.clone(),
        ..SessionConfig::new(GameId::G3, DeviceProfile::s8_tab())
    }
    .without_quality()
    .with_faults(FaultPlan::canonical_scaled(time_scale))
}

fn recovery_label(r: &SessionReport, clearance_frame: usize) -> String {
    if r.max_rung() == 0 {
        return "-".into();
    }
    match r.frames[clearance_frame.min(r.frames.len() - 1)..]
        .iter()
        .find(|rec| rec.rung == 0)
    {
        Some(rec) => format!(
            "{} ({} ms)",
            rec.index - clearance_frame,
            f((rec.index - clearance_frame) as f64 * FRAME_MS, 0)
        ),
        None => "never".into(),
    }
}

/// The three resilience sessions driven through the canonical storm, plus
/// the timeline parameters they shared. Produced by [`measure`]; consumed
/// by [`run`] (the printed table) and by the benchmark-regression harness.
#[derive(Debug)]
pub struct ResilienceRuns {
    /// Timeline compression factor (1.0 = the paper's full storm).
    pub time_scale: f64,
    /// First frame index after every fault has cleared.
    pub clearance_frame: usize,
    /// GameStreamSR with the adaptive degradation controller.
    pub controller: SessionReport,
    /// GameStreamSR with NACK recovery but no ladder.
    pub no_controller: SessionReport,
    /// The NEMO baseline on the same channel.
    pub nemo: SessionReport,
}

/// Streams the canonical fault timeline through the three configurations.
pub fn measure(options: &RunOptions) -> ResilienceRuns {
    // quick mode compresses the timeline 5x; the full run replays it 1:1
    let time_scale = if options.quick { 0.2 } else { 1.0 };
    let clearance_frame = (17_000.0 * time_scale / FRAME_MS).ceil() as usize;

    let on_cfg = faulted_cfg(time_scale, options).with_degradation(DegradationConfig::default());
    let mut off_cfg = faulted_cfg(time_scale, options);
    off_cfg.loss_recovery = true; // same NACK recovery, no ladder

    ResilienceRuns {
        time_scale,
        clearance_frame,
        controller: run_session(&on_cfg, Pipeline::GameStreamSr).expect("session"),
        no_controller: run_session(&off_cfg, Pipeline::GameStreamSr).expect("session"),
        nemo: run_session(&off_cfg, Pipeline::Nemo).expect("session"),
    }
}

/// Streams the canonical fault timeline through three configurations and
/// prints the recovery-time / quality-floor comparison.
pub fn run(options: &RunOptions) {
    let m = measure(options);
    let (time_scale, clearance_frame) = (m.time_scale, m.clearance_frame);
    let runs = [
        ("GameStreamSR + controller", &m.controller),
        ("GameStreamSR, no controller", &m.no_controller),
        ("NEMO (SOTA)", &m.nemo),
    ];

    let mut t = Table::new(
        format!(
            "Resilience under the canonical fault timeline ({} frames, {}x time scale)",
            runs[0].1.frames.len(),
            f(time_scale, 1)
        ),
        &[
            "configuration",
            "eff. FPS",
            "frozen run (max)",
            "max rung",
            "recovery after clear",
            "drops (queue/outage)",
            "NACKs (retries)",
            "quality (min)",
        ],
    );
    for (name, r) in &runs {
        let tl = &r.telemetry;
        t.row(&[
            (*name).to_string(),
            f(r.fps_effective(), 1),
            format!(
                "{} ({} ms)",
                r.longest_frozen_run(),
                f(r.longest_frozen_run() as f64 * FRAME_MS, 0)
            ),
            r.max_rung().to_string(),
            recovery_label(r, clearance_frame),
            format!(
                "{}/{}",
                r.drops_with_cause(DropCause::QueueOverflow),
                r.drops_with_cause(DropCause::Outage)
            ),
            format!(
                "{} ({})",
                tl.counter(Counter::Nacks),
                tl.counter(Counter::NackRetries)
            ),
            tl.gauge(Gauge::EncodeQuality)
                .map_or_else(|| "-".into(), |g| f(g.min, 0)),
        ]);
    }
    t.print();

    // compact rung trajectory of the controller run: where the ladder
    // moved, and the fault phases that drove it
    let (_, controlled) = &runs[0];
    let mut trajectory = String::new();
    let mut last = usize::MAX;
    for rec in &controlled.frames {
        if rec.rung != last {
            if !trajectory.is_empty() {
                trajectory.push_str(" -> ");
            }
            trajectory.push_str(&format!("r{}@{}", rec.rung, rec.index));
            last = rec.rung;
        }
    }
    println!("controller rung trajectory (rung@frame): {trajectory}");
    println!(
        "ladder transitions: {} down, {} up; all faults clear at frame {clearance_frame}\n",
        controlled.telemetry.counter(Counter::LadderDowngrades),
        controlled.telemetry.counter(Counter::LadderUpgrades),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_completes_and_controller_beats_frozen_runs() {
        // smoke-runs the whole experiment, then pins the headline claim on
        // the compressed timeline: the controller shortens the worst freeze
        let options = RunOptions {
            quick: true,
            ..Default::default()
        };
        run(&options);
        let on_cfg = faulted_cfg(0.2, &options).with_degradation(DegradationConfig::default());
        let mut off_cfg = faulted_cfg(0.2, &options);
        off_cfg.loss_recovery = true;
        let on = run_session(&on_cfg, Pipeline::GameStreamSr).unwrap();
        let off = run_session(&off_cfg, Pipeline::GameStreamSr).unwrap();
        assert!(on.fps_effective() >= 30.0);
        assert!(on.max_rung() > 0, "ladder never engaged");
        assert!(
            on.longest_frozen_run() <= off.longest_frozen_run(),
            "controller {} vs {} without",
            on.longest_frozen_run(),
            off.longest_frozen_run()
        );
    }
}
