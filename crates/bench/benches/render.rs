//! Criterion benches for the software rasterizer across the ten game
//! workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gss_render::{GameId, GameWorkload};
use std::hint::black_box;

fn bench_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("render");
    group.sample_size(10);
    // resolution scaling on one representative game
    let g3 = GameWorkload::new(GameId::G3);
    for (w, h) in [(320usize, 180usize), (640, 360)] {
        group.bench_with_input(
            BenchmarkId::new("g3", format!("{w}x{h}")),
            &(w, h),
            |b, &(w, h)| b.iter(|| black_box(g3.render_frame(0, w, h))),
        );
    }
    // all games at the quality canvas
    for id in GameId::ALL {
        let workload = GameWorkload::new(id);
        group.bench_with_input(
            BenchmarkId::new("game_320x180", id.label()),
            &workload,
            |b, w| b.iter(|| black_box(w.render_frame(0, 320, 180))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_render);
criterion_main!(benches);
