//! Criterion benches for the upscalers (Fig. 3's latency-vs-input-size
//! characterization, here measured on the actual Rust implementations) and
//! the EDSR forward pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gss_frame::Plane;
use gss_sr::edsr::{Edsr, EdsrConfig};
use gss_sr::{resize_plane, InterpKernel, InterpUpscaler, NeuralSr, NeuralSrConfig, Upscaler};
use std::hint::black_box;

fn textured(w: usize, h: usize) -> Plane<f32> {
    Plane::from_fn(w, h, |x, y| {
        let v = (x as f32 * 0.37).sin() * (y as f32 * 0.21).cos();
        128.0 + 90.0 * v
    })
}

fn bench_upscalers(c: &mut Criterion) {
    let mut group = c.benchmark_group("upscalers_x2");
    group.sample_size(20);
    for side in [64usize, 128, 256] {
        let plane = textured(side, side);
        for kernel in [
            InterpKernel::Nearest,
            InterpKernel::Bilinear,
            InterpKernel::Bicubic,
            InterpKernel::Lanczos3,
        ] {
            group.bench_with_input(BenchmarkId::new(kernel.name(), side), &plane, |b, p| {
                let up = InterpUpscaler::new(kernel, 2);
                b.iter(|| black_box(up.upscale_plane(p)))
            });
        }
        group.bench_with_input(BenchmarkId::new("neural_proxy", side), &plane, |b, p| {
            let sr = NeuralSr::new(NeuralSrConfig::default());
            b.iter(|| black_box(sr.upscale_plane(p)))
        });
    }
    group.finish();
}

fn bench_resize_factors(c: &mut Criterion) {
    // Fig. 3a's shape: cost falls as the input (for a fixed output) shrinks
    let mut group = c.benchmark_group("resize_to_fixed_output");
    group.sample_size(20);
    for factor in [2usize, 3, 4, 6] {
        let input = textured(288 / factor, 288 / factor);
        group.bench_with_input(
            BenchmarkId::new("bicubic_to_288", format!("x{factor}")),
            &input,
            |b, p| b.iter(|| black_box(resize_plane(p, 288, 288, InterpKernel::Bicubic))),
        );
    }
    group.finish();
}

fn bench_edsr(c: &mut Criterion) {
    let mut group = c.benchmark_group("edsr_forward");
    group.sample_size(10);
    // small configs: the full EDSR-16/64 on real frames is NPU territory;
    // these benches verify the implementation's scaling behaviour
    let model = Edsr::new(EdsrConfig {
        channels: 8,
        blocks: 4,
        scale: 2,
    });
    for side in [16usize, 32] {
        let frame = gss_frame::Frame::filled(side, side, [100.0, 128.0, 128.0]);
        group.bench_with_input(BenchmarkId::new("c8b4", side), &frame, |b, f| {
            b.iter(|| black_box(model.forward(f)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_upscalers, bench_resize_factors, bench_edsr);
criterion_main!(benches);
