//! Criterion benches for the codec substrate: intra/inter encode, decode,
//! and motion estimation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gss_codec::{estimate_motion, Decoder, Encoder, EncoderConfig};
use gss_frame::{Frame, Plane};
use gss_render::{GameId, GameWorkload};
use std::hint::black_box;

fn game_frame(t: usize, w: usize, h: usize) -> Frame {
    GameWorkload::new(GameId::G5).render_frame(t, w, h).frame
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_encode");
    group.sample_size(10);
    for (w, h) in [(320usize, 180usize), (640, 360)] {
        let f0 = game_frame(0, w, h);
        let f1 = game_frame(2, w, h);
        group.bench_with_input(
            BenchmarkId::new("intra", format!("{w}x{h}")),
            &f0,
            |b, f| {
                b.iter(|| {
                    let mut enc = Encoder::new(EncoderConfig::default());
                    black_box(enc.encode(f).unwrap())
                })
            },
        );
        group.bench_function(BenchmarkId::new("inter", format!("{w}x{h}")), |b| {
            b.iter(|| {
                let mut enc = Encoder::new(EncoderConfig::default());
                enc.encode(&f0).unwrap();
                black_box(enc.encode(&f1).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_decode");
    group.sample_size(10);
    let f0 = game_frame(0, 320, 180);
    let f1 = game_frame(2, 320, 180);
    let mut enc = Encoder::new(EncoderConfig::default());
    let p0 = enc.encode(&f0).unwrap();
    let p1 = enc.encode(&f1).unwrap();
    group.bench_function("intra_320x180", |b| {
        b.iter(|| {
            let mut dec = Decoder::new();
            black_box(dec.decode(&p0).unwrap())
        })
    });
    group.bench_function("gop2_320x180", |b| {
        b.iter(|| {
            let mut dec = Decoder::new();
            dec.decode(&p0).unwrap();
            black_box(dec.decode(&p1).unwrap())
        })
    });
    group.finish();
}

fn bench_motion(c: &mut Criterion) {
    let mut group = c.benchmark_group("motion_estimation");
    group.sample_size(10);
    let a: Plane<f32> = game_frame(0, 320, 180).y().clone();
    let b_: Plane<f32> = game_frame(2, 320, 180).y().clone();
    group.bench_function("three_step_320x180", |b| {
        b.iter(|| black_box(estimate_motion(&b_, &a, 7)))
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_motion);
criterion_main!(benches);
