//! Criterion benches for the two client pipelines' per-frame data paths
//! (Fig. 10a's subject, here as actual Rust wall-clock rather than the
//! calibrated platform model).

use criterion::{criterion_group, criterion_main, Criterion};
use gamestreamsr::decoder_ext::SrIntegratedDecoder;
use gamestreamsr::{GameStreamClient, GameStreamServer, NemoClient, ServerConfig};
use std::hint::black_box;

fn bench_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("client_pipelines");
    group.sample_size(10);

    // pre-encode a 2-frame stream once
    let mk_packets = || {
        let mut server = GameStreamServer::new(ServerConfig::new(
            gss_render::GameId::G3,
            (320, 180),
            (75, 75),
        ));
        let p0 = server.next_frame().unwrap();
        let p1 = server.next_frame().unwrap();
        (p0, p1)
    };
    let (p0, p1) = mk_packets();

    group.bench_function("ours_ref_frame_320x180", |b| {
        b.iter(|| {
            let mut client = GameStreamClient::new(2);
            black_box(client.process(&p0.encoded, p0.roi).unwrap())
        })
    });
    group.bench_function("ours_gop2_320x180", |b| {
        b.iter(|| {
            let mut client = GameStreamClient::new(2);
            client.process(&p0.encoded, p0.roi).unwrap();
            black_box(client.process(&p1.encoded, p1.roi).unwrap())
        })
    });
    group.bench_function("nemo_gop2_320x180", |b| {
        b.iter(|| {
            let mut nemo = NemoClient::new(2);
            nemo.process(&p0.encoded).unwrap();
            black_box(nemo.process(&p1.encoded).unwrap())
        })
    });
    group.bench_function("sr_integrated_decoder_gop2_320x180", |b| {
        b.iter(|| {
            let mut ext = SrIntegratedDecoder::new(2);
            ext.process(&p0.encoded, p0.roi).unwrap();
            black_box(ext.process(&p1.encoded, p1.roi).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
