//! Criterion benches for the server-side RoI machinery: depth-map
//! preprocessing and Algorithm 1's two-phase window search (coarse-only
//! ablation included).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gamestreamsr::roi::{preprocess, search_roi, PreprocessConfig, SearchConfig};
use gss_render::{GameId, GameWorkload};
use std::hint::black_box;

fn bench_roi(c: &mut Criterion) {
    let workload = GameWorkload::new(GameId::G3);
    let mut group = c.benchmark_group("roi");
    group.sample_size(20);

    for (w, h, win) in [
        (320usize, 180usize, 75usize),
        (640, 360, 150),
        (1280, 720, 300),
    ] {
        let depth = workload.render_frame(0, w, h).depth;
        group.bench_with_input(
            BenchmarkId::new("preprocess", format!("{w}x{h}")),
            &depth,
            |b, d| b.iter(|| black_box(preprocess(d, &PreprocessConfig::default()))),
        );
        let stages = preprocess(&depth, &PreprocessConfig::default());
        group.bench_with_input(
            BenchmarkId::new("search_two_phase", format!("{w}x{h}")),
            &stages.processed,
            |b, p| b.iter(|| black_box(search_roi(p, (win, win), &SearchConfig::default()))),
        );
        group.bench_with_input(
            BenchmarkId::new("search_coarse_only", format!("{w}x{h}")),
            &stages.processed,
            |b, p| {
                b.iter(|| {
                    black_box(search_roi(
                        p,
                        (win, win),
                        &SearchConfig {
                            coarse_only: true,
                            ..SearchConfig::default()
                        },
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_roi);
criterion_main!(benches);
