//! Integration tests for `figures triage`: the health report must be
//! byte-identical across reruns and worker counts, the controller-managed
//! storm must satisfy the CI health contract (>= 95% of misses
//! attributed, zero SLO breaches), and the unmanaged storm must be
//! distinguishable from it (it breaches).

use gss_bench::bench::Baseline;
use gss_bench::{triage, RunOptions};
use gss_platform::pool;
use gss_telemetry::json;

fn committed_ci_baseline() -> Baseline {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ci.json");
    let text = std::fs::read_to_string(path).expect("BENCH_ci.json is committed at the repo root");
    Baseline::from_json(&text).expect("committed baseline parses")
}

fn quick_report() -> triage::TriageReport {
    let baseline = committed_ci_baseline();
    triage::build(
        &RunOptions {
            quick: true,
            ..Default::default()
        },
        Some(("BENCH_ci.json", &baseline)),
    )
}

#[test]
fn triage_json_is_byte_identical_across_reruns_and_worker_counts() {
    let prev = pool::workers();
    let mut exports = Vec::new();
    for workers in [1usize, 8] {
        pool::set_workers(workers);
        exports.push(quick_report().to_json());
    }
    pool::set_workers(prev);
    exports.push(quick_report().to_json());
    for e in &exports[1..] {
        assert!(
            e == &exports[0],
            "triage JSON diverged across reruns / worker counts"
        );
    }
    // and the document is well-formed JSON with the expected skeleton
    let doc = json::parse(&exports[0]).expect("triage report parses");
    assert_eq!(
        doc.get("report").and_then(json::Json::as_str),
        Some("gss-triage")
    );
    let sessions = doc
        .get("sessions")
        .and_then(json::Json::as_arr)
        .expect("sessions array");
    assert_eq!(sessions.len(), 3);
    for s in sessions {
        assert!(s.get("attribution").is_some(), "session lacks attribution");
        assert!(s.get("slo").is_some(), "session lacks slo standings");
    }
    assert!(doc.get("drift").is_some());
    assert!(doc.get("gate").is_some());
}

#[test]
fn controller_storm_meets_the_health_contract() {
    let report = quick_report();
    let c = &report.runs.controller;
    assert!(
        c.attribution.attributed_fraction() >= triage::MIN_ATTRIBUTED_FRACTION,
        "only {:.1}% of controller misses attributed",
        c.attribution.attributed_fraction() * 100.0
    );
    assert_eq!(
        c.slo.total_breaches(),
        0,
        "the managed storm must not breach any SLO: {:?}",
        c.slo.objectives
    );
    assert!(
        report.gate_failures().is_empty(),
        "gate failures on a healthy storm: {:?}",
        report.gate_failures()
    );
}

#[test]
fn unmanaged_storms_breach_where_the_controller_does_not() {
    let report = quick_report();
    assert!(
        report.runs.no_controller.slo.total_breaches() > 0,
        "the unmanaged storm should breach at least one SLO"
    );
    assert!(
        report.runs.nemo.slo.total_breaches() > 0,
        "the NEMO baseline should breach at least one SLO"
    );
    // the blame tables discriminate too: without the ladder the misses
    // pile onto the throttle, with it they shrink to ladder lag
    let nc = &report.runs.no_controller;
    assert!(
        nc.telemetry.deadline_misses > report.runs.controller.telemetry.deadline_misses,
        "controller should reduce deadline misses"
    );
    assert!(
        nc.attribution.attributed_fraction() >= triage::MIN_ATTRIBUTED_FRACTION,
        "unmanaged misses must still be attributable"
    );
}

#[test]
fn prometheus_snapshot_is_deterministic_and_carries_the_gate_metrics() {
    let a = quick_report().prometheus();
    let b = quick_report().prometheus();
    assert_eq!(a, b, "prometheus snapshot diverged across reruns");
    for family in [
        "gss_deadline_misses_total",
        "gss_miss_cause_total",
        "gss_miss_attributed_fraction",
        "gss_slo_breaches_total",
        "gss_slo_breached",
    ] {
        assert!(a.contains(family), "snapshot lost {family}");
    }
    for session in ["controller", "no_controller", "nemo"] {
        assert!(
            a.contains(&format!("session=\"{session}\"")),
            "snapshot lost session {session}"
        );
    }
}
