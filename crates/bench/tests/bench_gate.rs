//! Integration tests for the benchmark-regression gate: the committed CI
//! baseline must stay loadable and internally consistent, perturbations
//! must trip the gate with a readable drift table, and the tracing layer
//! must stay under its overhead budget.

use gss_bench::bench::{self, Baseline, DriftVerdict};
use std::sync::{Mutex, MutexGuard};

/// The overhead assertions are wall-clock measurements; any other test in
/// this binary running concurrently steals CPU and inflates the on/off
/// timings past the 3% budget. Every test takes this guard so the timing
/// tests always measure on a quiet process (poison from an earlier
/// failure is ignored — serialization is all we want).
static SUITE_GATE: Mutex<()> = Mutex::new(());

fn quiet() -> MutexGuard<'static, ()> {
    SUITE_GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn committed_ci_baseline() -> Baseline {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ci.json");
    let text = std::fs::read_to_string(path).expect("BENCH_ci.json is committed at the repo root");
    Baseline::from_json(&text).expect("committed baseline parses")
}

#[test]
fn committed_ci_baseline_is_loadable_and_well_formed() {
    let _quiet = quiet();
    let b = committed_ci_baseline();
    assert_eq!(b.host, "ci");
    assert!(b.quick, "the CI gate runs in quick mode");
    assert!(b.metrics.len() >= 30, "only {} metrics", b.metrics.len());
    // every resilience configuration contributes its full metric family
    for run in ["controller", "no_controller", "nemo"] {
        for metric in [
            "fps_effective",
            "longest_frozen_run",
            "max_rung",
            "deadline_miss_rate",
            "drops_queue",
            "drops_outage",
            "nacks",
            "bytes_on_wire",
        ] {
            let name = format!("resilience.{run}.{metric}");
            assert!(
                b.metrics.iter().any(|m| m.name == name),
                "baseline lost {name}"
            );
        }
    }
    // the scaling ladder contributes speedup + determinism per width
    assert!(b.metrics.iter().any(|m| m.name == "scaling.w8.speedup"));
    assert!(b.metrics.iter().any(|m| m.name == "scaling.w8.identical"));
    // the big-fleet sampled storm contributes its retention ledger, and
    // the full-vs-sampled identities are pinned exactly
    for name in [
        "bigfleet.report_identical",
        "sampling.anomaly_coverage",
        "sampling.retention_ratio",
        "sampling.trace_byte_ratio",
        "sampling.budget_ok",
        "tracing.overhead_full.wall_ms",
        "tracing.overhead_sampled.wall_ms",
    ] {
        assert!(
            b.metrics.iter().any(|m| m.name == name),
            "baseline lost {name}"
        );
    }
    // wall-clock metrics are informational (no band), never gated
    for m in &b.metrics {
        if m.name.ends_with(".wall_ms") {
            assert!(
                m.abs_tol.is_none() && m.rel_tol.is_none(),
                "{} must be informational",
                m.name
            );
        } else {
            assert!(
                m.abs_tol.is_some() || m.rel_tol.is_some(),
                "{} has no tolerance band",
                m.name
            );
        }
    }
}

#[test]
fn committed_ci_baseline_round_trips_byte_identically() {
    let _quiet = quiet();
    let b = committed_ci_baseline();
    let reparsed = Baseline::from_json(&b.to_json()).expect("re-parse");
    assert_eq!(b.to_json(), reparsed.to_json());
}

#[test]
fn unperturbed_check_passes_and_perturbed_check_fails_with_a_drift_row() {
    let _quiet = quiet();
    let baseline = committed_ci_baseline();
    // a baseline checked against itself reports zero failures
    let self_check = baseline.check(&baseline);
    assert_eq!(self_check.len(), baseline.metrics.len());
    assert!(self_check.iter().all(|d| !d.is_failure()));

    // a collapsed fps metric must trip the gate and show up in the table
    let mut perturbed = baseline.clone();
    let m = perturbed
        .metrics
        .iter_mut()
        .find(|m| m.name == "resilience.controller.fps_effective")
        .expect("fps metric present");
    m.value -= 10.0;
    let drifts = baseline.check(&perturbed);
    let bad: Vec<_> = drifts.iter().filter(|d| d.is_failure()).collect();
    assert_eq!(bad.len(), 1, "exactly the perturbed metric fails");
    assert_eq!(bad[0].name, "resilience.controller.fps_effective");
    assert_eq!(bad[0].verdict, DriftVerdict::Failed);
    assert!((bad[0].abs_delta - 10.0).abs() < 1e-9);
    let table = bench::drift_table(&drifts);
    assert!(table.contains("resilience.controller.fps_effective"));
    assert!(table.contains("FAILED"));

    // dropping a metric entirely is a failure too, not a silent pass
    let mut shrunk = baseline.clone();
    shrunk.metrics.retain(|m| !m.name.starts_with("scaling."));
    let drifts = baseline.check(&shrunk);
    assert!(
        drifts
            .iter()
            .any(|d| d.verdict == DriftVerdict::Missing && d.is_failure()),
        "missing metrics must fail the gate"
    );
}

#[test]
fn tracing_overhead_stays_under_three_percent() {
    // the causal trace layer is meant to be always-on cheap: attaching a
    // TraceSink to the quick scaling ladder must cost < 3% wall-clock
    // (min-of-5 interleaved rounds rides out parallel-suite load spikes)
    let _quiet = quiet();
    let ratio = bench::trace_overhead_ratio(5);
    assert!(
        ratio < 0.03,
        "tracing overhead {:.2}% exceeds the 3% budget",
        ratio * 100.0
    );
}

#[test]
fn sampled_tracing_overhead_stays_under_three_percent() {
    // the tail sampler does strictly more per-frame work than the full
    // trace (classification + ring upkeep), yet must stay inside the
    // same always-on budget — that's the point of sampled telemetry
    let _quiet = quiet();
    let ratio = bench::trace_overhead_ratio_sampled(5);
    assert!(
        ratio < 0.03,
        "sampled tracing overhead {:.2}% exceeds the 3% budget",
        ratio * 100.0
    );
}
