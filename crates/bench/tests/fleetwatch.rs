//! Fleet-watch gate: the churn storm must trip every streaming detector
//! deterministically, and the watch layer's artifacts (report JSON with
//! the watch rollup, counter-track Chrome trace, Prometheus snapshot)
//! must be byte-identical at any worker count. Lives in its own test
//! binary because it runs several full fleets back to back.

use gss_bench::bench::fleetwatch_metrics;
use gss_bench::experiments::fleetwatch::{storm_config, FleetwatchRun, FLEET_NAME};
use gss_platform::pool::PoolHandle;
use gss_telemetry::prom::{render_fleet, PromFleet};

const TICKS: usize = 160; // the storm's --quick length

#[test]
fn churn_storm_trips_every_detector() {
    let report = gamestreamsr::run_fleet(storm_config(TICKS)).expect("storm fleet");
    let w = &report.watch;
    assert!(
        w.knee_tick.is_some(),
        "the storm must have a fairness/latency knee"
    );
    assert!(
        w.fairness_min < 0.9,
        "the outage victim must drag fairness below the knee threshold, got {}",
        w.fairness_min
    );
    assert!(
        w.starvation_events >= 1,
        "the outage victim must starve under its fair share"
    );
    assert!(
        w.starved_max_streak >= 12,
        "starvation must persist past the detector threshold, got {}",
        w.starved_max_streak
    );
    assert!(
        w.admission_storms >= 1,
        "the flash crowd must register as an admission storm"
    );
    assert!(
        !report.admission.rejected.is_empty(),
        "the flash crowd must overflow the wait queue"
    );
    // the knee must not predate the first outage window (fairness holds
    // while every session is served)
    let first_outage_tick = (TICKS as f64 * 0.25) as u64;
    assert!(
        report.watch.knee_tick.unwrap() >= first_outage_tick,
        "knee at tick {:?} predates the first outage window at {first_outage_tick}",
        report.watch.knee_tick
    );
}

#[test]
fn watch_artifacts_are_bit_identical_at_1_and_8_workers() {
    let run_at = |workers: usize| {
        let mut config = storm_config(TICKS);
        config.pool = PoolHandle::with_workers(workers);
        let mut sim = gamestreamsr::fleet::FleetSim::new(config);
        let report = sim.run_until_idle().expect("storm fleet");
        let trace = sim.to_chrome_json();
        let prom = render_fleet(&PromFleet {
            name: FLEET_NAME,
            series: &report.watch.series,
            anomalies: &report.watch.anomalies(),
            knee_tick: report.watch.knee_tick,
        });
        (report.to_json(), trace, prom)
    };
    let (report1, trace1, prom1) = run_at(1);
    let (report8, trace8, prom8) = run_at(8);
    assert_eq!(report1, report8, "watch report depends on the worker count");
    assert_eq!(
        trace1, trace8,
        "counter-track trace depends on the worker count"
    );
    assert_eq!(
        prom1, prom8,
        "prometheus snapshot depends on the worker count"
    );

    // the merged trace must actually carry the watch extensions: a pid-0
    // fleet process, counter samples and at least one anomaly marker
    assert!(trace1.contains("\"name\":\"fleet\""), "no fleet process");
    assert!(trace1.contains("\"ph\":\"C\""), "no counter events");
    assert!(trace1.contains("\"ph\":\"i\""), "no anomaly markers");
    assert!(
        prom1.contains("gss_fleet_series{"),
        "no fleet series family"
    );
    assert!(prom1.contains("gss_fleet_knee_tick{"), "no knee gauge");
}

#[test]
fn metric_set_is_fully_gated_and_prefixed() {
    let mut sim = gamestreamsr::fleet::FleetSim::new(storm_config(TICKS));
    let report = sim.run_until_idle().expect("storm fleet");
    let metrics = fleetwatch_metrics(&FleetwatchRun {
        ticks: TICKS,
        report,
        sim,
    });
    assert!(
        metrics.len() >= 20,
        "want at least 20 gated fleetwatch metrics, got {}",
        metrics.len()
    );
    for m in &metrics {
        assert!(
            m.name.starts_with("fleetwatch."),
            "metric {} escapes the fleetwatch namespace",
            m.name
        );
        assert!(
            m.abs_tol.is_some() || m.rel_tol.is_some(),
            "metric {} is not gated",
            m.name
        );
    }
}
