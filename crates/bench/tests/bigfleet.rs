//! Integration contracts for the big-fleet sampled storm: the sampled
//! run must export byte-identical traces and reports at any worker
//! count, keep every anomaly frame, stay under the retention budget,
//! and undercut the full trace's bytes — on the same 32-session config
//! `figures bigfleet` ships, shortened for test time.

use gss_bench::experiments::bigfleet;
use gss_platform::pool::PoolHandle;

const TICKS: usize = 90;

fn run(
    workers: usize,
    sampled: bool,
) -> (
    gamestreamsr::fleet::FleetSim,
    gamestreamsr::fleet::FleetReport,
) {
    let mut config = bigfleet::storm_config(TICKS);
    config.pool = PoolHandle::with_workers(workers);
    if sampled {
        config = config.with_sampling(bigfleet::policy());
    }
    let mut sim = gamestreamsr::fleet::FleetSim::new(config);
    let report = sim.run_until_idle().expect("fleet run");
    (sim, report)
}

#[test]
fn sampled_bigfleet_is_bit_identical_at_1_and_8_workers() {
    let (serial, serial_report) = run(1, true);
    let (wide, wide_report) = run(8, true);
    assert_eq!(serial_report.to_json(), wide_report.to_json());
    assert_eq!(serial.to_chrome_json(), wide.to_chrome_json());
    assert_eq!(
        serial.sampling_summary().expect("sampling on").to_json(),
        wide.sampling_summary().expect("sampling on").to_json()
    );
}

#[test]
fn sampled_bigfleet_covers_anomalies_within_budget_and_fewer_bytes() {
    let (full, full_report) = run(2, false);
    let (sampled, sampled_report) = run(2, true);
    assert_eq!(full_report.to_json(), sampled_report.to_json());
    let summary = sampled.sampling_summary().expect("sampling on");

    assert_eq!(
        summary.anomaly_coverage(),
        1.0,
        "every anomaly frame must be retained: {} of {}",
        summary.anomaly_kept,
        summary.anomaly_frames
    );
    assert!(summary.anomaly_frames > 0, "storm produced no anomalies");
    assert!(
        summary.retained <= bigfleet::policy().budget.fleet as u64,
        "retained {} frames over the {}-frame fleet budget",
        summary.retained,
        bigfleet::policy().budget.fleet
    );

    let full_bytes = full.to_chrome_json().len();
    let sampled_bytes = sampled.to_chrome_json().len();
    assert!(
        sampled_bytes < full_bytes,
        "sampled trace ({sampled_bytes} B) not smaller than full ({full_bytes} B)"
    );
}
