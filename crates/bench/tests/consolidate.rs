//! Consolidation-experiment gate: the N=4 sweep point must be
//! deterministic and hold every session healthy. Lives in its own test
//! binary because it saturates the worker pool for seconds — inside the
//! lib suite it would starve the scaling ladder's wall-clock speedup
//! assertion running in a sibling thread.

use gss_bench::experiments::consolidate::{fleet_config, ConsolidationPoint};

#[test]
fn four_session_point_is_deterministic_and_fully_healthy() {
    // a shortened N=4 point; the full sweep's numbers gate in
    // BENCH_ci.json and tests/fleet.rs pins worker-count identity
    let a = gamestreamsr::run_fleet(fleet_config(4, 45)).expect("fleet");
    let b = gamestreamsr::run_fleet(fleet_config(4, 45)).expect("fleet");
    assert_eq!(a.to_json(), b.to_json());
    let point = ConsolidationPoint { n: 4, report: a };
    assert!(
        point.healthy_sessions() >= 4,
        "want 4 healthy sessions at N=4, got {} (min fps {:.1})",
        point.healthy_sessions(),
        point.report.min_fps_effective()
    );
}
