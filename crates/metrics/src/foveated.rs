//! Region-weighted ("foveated") PSNR.
//!
//! The paper's whole premise is that quality *where the player looks*
//! matters more than frame-average quality. This metric makes that
//! measurable: squared error inside a designated region (the RoI / foveal
//! window) is weighted more heavily than error outside it, so a pipeline
//! that concentrates its quality budget on the RoI scores accordingly.
//! With `region_weight = 1.0` it reduces exactly to plain PSNR.

use crate::MetricError;
use gss_frame::{Frame, Rect};

/// PSNR with the squared error inside `region` weighted `region_weight`
/// times that of the rest of the frame, over the luma plane.
///
/// # Errors
///
/// Returns [`MetricError::SizeMismatch`] when the frames differ in size or
/// the region does not fit the frame.
///
/// # Panics
///
/// Panics when `region_weight` is not positive or `region` is empty.
///
/// ```
/// # use gss_frame::{Frame, Rect};
/// # use gss_metrics::region_weighted_psnr;
/// # fn main() -> Result<(), gss_metrics::MetricError> {
/// let a = Frame::filled(32, 32, [100.0, 128.0, 128.0]);
/// let roi = Rect::new(8, 8, 16, 16);
/// assert!(region_weighted_psnr(&a, &a, roi, 4.0)?.is_infinite());
/// # Ok(())
/// # }
/// ```
pub fn region_weighted_psnr(
    reference: &Frame,
    distorted: &Frame,
    region: Rect,
    region_weight: f64,
) -> Result<f64, MetricError> {
    assert!(region_weight > 0.0, "region weight must be positive");
    assert!(!region.is_empty(), "region must be nonempty");
    if reference.size() != distorted.size() {
        return Err(MetricError::SizeMismatch {
            reference: reference.size(),
            distorted: distorted.size(),
        });
    }
    let (w, h) = reference.size();
    if region.right() > w || region.bottom() > h {
        return Err(MetricError::SizeMismatch {
            reference: (w, h),
            distorted: (region.right(), region.bottom()),
        });
    }
    let a = reference.y();
    let b = distorted.y();
    // Row-partial accumulation under the pool determinism contract: the
    // fold association depends only on the frame height, so the rows can
    // run on workers with a bit-identical result at any worker count.
    let row_partials = gss_platform::pool::map_indexed(h, |y| {
        let mut weighted_err = 0.0f64;
        let mut weight_total = 0.0f64;
        for x in 0..w {
            let weight = if region.contains(x, y) {
                region_weight
            } else {
                1.0
            };
            let d = (a.get(x, y) - b.get(x, y)) as f64;
            weighted_err += weight * d * d;
            weight_total += weight;
        }
        (weighted_err, weight_total)
    });
    let (weighted_err, weight_total) = row_partials
        .iter()
        .fold((0.0f64, 0.0f64), |(e, t), &(re, rt)| (e + re, t + rt));
    let mse = weighted_err / weight_total;
    Ok(if mse <= 0.0 {
        f64::INFINITY
    } else {
        10.0 * ((255.0f64 * 255.0) / mse).log10()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psnr;
    use gss_frame::Plane;

    fn frame_with_error_at(region: Rect, err: f32) -> (Frame, Frame) {
        let a = Frame::filled(32, 32, [100.0, 128.0, 128.0]);
        let y = Plane::from_fn(32, 32, |x, yy| {
            if region.contains(x, yy) {
                100.0 + err
            } else {
                100.0
            }
        });
        let b = Frame::from_planes(
            y,
            Plane::filled(32, 32, 128.0),
            Plane::filled(32, 32, 128.0),
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn weight_one_equals_plain_psnr() {
        let roi = Rect::new(4, 4, 8, 8);
        let (a, b) = frame_with_error_at(roi, 5.0);
        let plain = psnr(&a, &b).unwrap();
        let weighted = region_weighted_psnr(&a, &b, roi, 1.0).unwrap();
        assert!((plain - weighted).abs() < 1e-9);
    }

    #[test]
    fn error_inside_the_region_hurts_more() {
        let roi = Rect::new(4, 4, 8, 8);
        let elsewhere = Rect::new(20, 20, 8, 8);
        let (a_in, b_in) = frame_with_error_at(roi, 6.0);
        let (a_out, b_out) = frame_with_error_at(elsewhere, 6.0);
        let inside = region_weighted_psnr(&a_in, &b_in, roi, 8.0).unwrap();
        let outside = region_weighted_psnr(&a_out, &b_out, roi, 8.0).unwrap();
        assert!(
            inside < outside - 3.0,
            "inside {inside:.2} vs outside {outside:.2}"
        );
        // plain PSNR cannot tell the two apart
        let p_in = psnr(&a_in, &b_in).unwrap();
        let p_out = psnr(&a_out, &b_out).unwrap();
        assert!((p_in - p_out).abs() < 1e-9);
    }

    #[test]
    fn identical_frames_are_infinite() {
        let f = Frame::filled(32, 32, [50.0, 128.0, 128.0]);
        let v = region_weighted_psnr(&f, &f, Rect::new(0, 0, 16, 16), 4.0).unwrap();
        assert!(v.is_infinite());
    }

    #[test]
    fn region_out_of_bounds_errors() {
        let f = Frame::filled(16, 16, [50.0, 128.0, 128.0]);
        assert!(region_weighted_psnr(&f, &f, Rect::new(10, 10, 10, 10), 2.0).is_err());
    }

    #[test]
    fn size_mismatch_errors() {
        let a = Frame::new(16, 16);
        let b = Frame::new(16, 18);
        assert!(region_weighted_psnr(&a, &b, Rect::new(0, 0, 8, 8), 2.0).is_err());
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn nonpositive_weight_rejected() {
        let f = Frame::new(16, 16);
        let _ = region_weighted_psnr(&f, &f, Rect::new(0, 0, 8, 8), 0.0);
    }
}
