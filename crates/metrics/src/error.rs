use std::fmt;

/// Errors produced by the metric functions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MetricError {
    /// The two inputs must share a size.
    SizeMismatch {
        /// Size of the reference input.
        reference: (usize, usize),
        /// Size of the distorted input.
        distorted: (usize, usize),
    },
    /// The inputs were too small for the metric's window.
    TooSmall {
        /// Minimum dimension required.
        min_dim: usize,
        /// Actual size.
        actual: (usize, usize),
    },
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::SizeMismatch {
                reference,
                distorted,
            } => write!(
                f,
                "size mismatch: reference {}x{} vs distorted {}x{}",
                reference.0, reference.1, distorted.0, distorted.1
            ),
            MetricError::TooSmall { min_dim, actual } => write!(
                f,
                "input {}x{} smaller than metric window {min_dim}",
                actual.0, actual.1
            ),
        }
    }
}

impl std::error::Error for MetricError {}
