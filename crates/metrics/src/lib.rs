//! Quality metrics for the GameStreamSR reproduction.
//!
//! Three full-reference metrics, matching the paper's evaluation:
//!
//! * [`psnr`] — peak signal-to-noise ratio over the luma plane (the paper's
//!   objective metric, Fig. 13/14a). Values ≥ 30 dB are conventionally
//!   acceptable for video frames.
//! * [`ssim`] / [`msssim`] — (multi-scale) structural similarity, used by
//!   the extra ablation studies.
//! * [`perceptual_distance`] — a deterministic stand-in for LPIPS
//!   (Fig. 14b): multi-scale gradient/structure dissimilarity in `[0, 1]`,
//!   lower is better. The substitution is documented in `DESIGN.md`; like
//!   LPIPS it is far more sensitive to the blur introduced by repeated
//!   bilinear interpolation than PSNR is.
//!
//! ```
//! use gss_frame::Frame;
//! use gss_metrics::psnr;
//!
//! let a = Frame::filled(16, 16, [100.0, 128.0, 128.0]);
//! let b = Frame::filled(16, 16, [102.0, 128.0, 128.0]);
//! let db = psnr(&a, &b).unwrap();
//! assert!(db > 40.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod foveated;
mod msssim;
mod perceptual;
mod psnr;
mod ssim;

pub use error::MetricError;
pub use foveated::region_weighted_psnr;
pub use msssim::{msssim, msssim_planes};
pub use perceptual::{perceptual_distance, perceptual_distance_planes, PerceptualConfig};
pub use psnr::{mse, psnr, psnr_planes, PsnrAccumulator};
pub use ssim::{ssim, ssim_planes};

/// Summary statistics over a per-frame metric series (one streaming session).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SeriesStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Fraction of samples at or above 30.0 (the PSNR acceptability bar).
    pub frac_at_least_30: f64,
}

impl SeriesStats {
    /// Computes summary statistics; returns `None` for an empty series.
    pub fn from_series(values: &[f64]) -> Option<SeriesStats> {
        if values.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut ok = 0usize;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
            if v >= 30.0 {
                ok += 1;
            }
        }
        Some(SeriesStats {
            mean: sum / values.len() as f64,
            min,
            max,
            frac_at_least_30: ok as f64 / values.len() as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_stats_empty_is_none() {
        assert!(SeriesStats::from_series(&[]).is_none());
    }

    #[test]
    fn series_stats_basics() {
        let s = SeriesStats::from_series(&[29.0, 31.0, 33.0, 27.0]).unwrap();
        assert_eq!(s.min, 27.0);
        assert_eq!(s.max, 33.0);
        assert!((s.mean - 30.0).abs() < 1e-12);
        assert!((s.frac_at_least_30 - 0.5).abs() < 1e-12);
    }
}
