//! Multi-scale structural similarity (Wang et al., 2003) over the luma
//! plane — a standard perceptual metric between plain SSIM and learned
//! metrics, used by the extended quality studies.

use crate::MetricError;
use gss_frame::{Frame, Plane};

const C1: f64 = 6.5025;
const C2: f64 = 58.5225;
const WINDOW: usize = 8;
/// Canonical per-scale weights from the MS-SSIM paper.
const WEIGHTS: [f64; 5] = [0.0448, 0.2856, 0.3001, 0.2363, 0.1333];

/// Per-window luminance (`l`) and contrast-structure (`cs`) means.
fn plane_terms(a: &Plane<f32>, b: &Plane<f32>) -> (f64, f64) {
    let (w, h) = a.size();
    let mut l_total = 0.0f64;
    let mut cs_total = 0.0f64;
    let mut count = 0usize;
    let n = (WINDOW * WINDOW) as f64;
    let mut by = 0;
    while by + WINDOW <= h {
        let mut bx = 0;
        while bx + WINDOW <= w {
            let mut sum_a = 0.0;
            let mut sum_b = 0.0;
            for y in by..by + WINDOW {
                for x in bx..bx + WINDOW {
                    sum_a += a.get(x, y) as f64;
                    sum_b += b.get(x, y) as f64;
                }
            }
            let mu_a = sum_a / n;
            let mu_b = sum_b / n;
            let mut var_a = 0.0;
            let mut var_b = 0.0;
            let mut cov = 0.0;
            for y in by..by + WINDOW {
                for x in bx..bx + WINDOW {
                    let da = a.get(x, y) as f64 - mu_a;
                    let db = b.get(x, y) as f64 - mu_b;
                    var_a += da * da;
                    var_b += db * db;
                    cov += da * db;
                }
            }
            var_a /= n - 1.0;
            var_b /= n - 1.0;
            cov /= n - 1.0;
            l_total += (2.0 * mu_a * mu_b + C1) / (mu_a * mu_a + mu_b * mu_b + C1);
            cs_total += (2.0 * cov + C2) / (var_a + var_b + C2);
            count += 1;
            bx += WINDOW;
        }
        by += WINDOW;
    }
    (l_total / count as f64, cs_total / count as f64)
}

fn downsample2(p: &Plane<f32>) -> Plane<f32> {
    let w = (p.width() / 2).max(1);
    let h = (p.height() / 2).max(1);
    Plane::from_fn(w, h, |x, y| {
        let x2 = (x * 2).min(p.width() - 1);
        let y2 = (y * 2).min(p.height() - 1);
        let x3 = (x2 + 1).min(p.width() - 1);
        let y3 = (y2 + 1).min(p.height() - 1);
        (p.get(x2, y2) + p.get(x3, y2) + p.get(x2, y3) + p.get(x3, y3)) * 0.25
    })
}

/// Multi-scale SSIM between two planes; uses as many of the canonical five
/// scales as the input size allows (each scale needs an 8-pixel window).
///
/// # Errors
///
/// Returns [`MetricError::SizeMismatch`] on differing sizes and
/// [`MetricError::TooSmall`] when even the first scale does not fit.
pub fn msssim_planes(reference: &Plane<f32>, distorted: &Plane<f32>) -> Result<f64, MetricError> {
    if reference.size() != distorted.size() {
        return Err(MetricError::SizeMismatch {
            reference: reference.size(),
            distorted: distorted.size(),
        });
    }
    let (w, h) = reference.size();
    if w < WINDOW || h < WINDOW {
        return Err(MetricError::TooSmall {
            min_dim: WINDOW,
            actual: (w, h),
        });
    }
    let mut a = reference.clone();
    let mut b = distorted.clone();
    let mut usable = 0usize;
    let mut cs_terms = [1.0f64; 5];
    let mut l_last = 1.0f64;
    for (scale, cs_term) in cs_terms.iter_mut().enumerate() {
        let (l, cs) = plane_terms(&a, &b);
        *cs_term = cs;
        l_last = l;
        usable = scale + 1;
        if scale + 1 == WEIGHTS.len() || a.width() / 2 < WINDOW || a.height() / 2 < WINDOW {
            break;
        }
        a = downsample2(&a);
        b = downsample2(&b);
    }
    // renormalize the weights over the scales that actually fit
    let weight_sum: f64 = WEIGHTS[..usable].iter().sum();
    let mut result = l_last.max(0.0).powf(WEIGHTS[usable - 1] / weight_sum);
    for (scale, &cs) in cs_terms[..usable].iter().enumerate() {
        result *= cs.max(0.0).powf(WEIGHTS[scale] / weight_sum);
    }
    Ok(result)
}

/// Luma-plane MS-SSIM between two frames.
///
/// # Errors
///
/// See [`msssim_planes`].
///
/// ```
/// # use gss_frame::Frame;
/// # use gss_metrics::msssim;
/// # fn main() -> Result<(), gss_metrics::MetricError> {
/// let f = Frame::filled(64, 64, [90.0, 128.0, 128.0]);
/// assert!((msssim(&f, &f)? - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn msssim(reference: &Frame, distorted: &Frame) -> Result<f64, MetricError> {
    msssim_planes(reference.y(), distorted.y())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize) -> Plane<f32> {
        Plane::from_fn(w, h, |x, y| {
            let v = (x as f32 * 0.6).sin() * (y as f32 * 0.4).cos();
            128.0 + 70.0 * v
        })
    }

    #[test]
    fn identical_is_one() {
        let p = textured(128, 128);
        assert!((msssim_planes(&p, &p).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degradation_lowers_score_monotonically() {
        let p = textured(128, 128);
        let blur1 = Plane::from_fn(128, 128, |x, y| {
            let mut acc = 0.0;
            for d in -1isize..=1 {
                acc += p.get_clamped(x as isize + d, y as isize);
            }
            acc / 3.0
        });
        let blur2 = Plane::from_fn(128, 128, |x, y| {
            let mut acc = 0.0;
            for dy in -2isize..=2 {
                for dx in -2isize..=2 {
                    acc += p.get_clamped(x as isize + dx, y as isize + dy);
                }
            }
            acc / 25.0
        });
        let s1 = msssim_planes(&p, &blur1).unwrap();
        let s2 = msssim_planes(&p, &blur2).unwrap();
        assert!(s1 < 1.0);
        assert!(s2 < s1, "{s2} vs {s1}");
    }

    #[test]
    fn small_inputs_use_fewer_scales_without_error() {
        let p = textured(16, 16);
        let s = msssim_planes(&p, &p).unwrap();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn too_small_errors() {
        let p = textured(8, 4);
        assert!(matches!(
            msssim_planes(&p, &p),
            Err(MetricError::TooSmall { .. })
        ));
    }

    #[test]
    fn size_mismatch_errors() {
        let a = textured(64, 64);
        let b = textured(64, 32);
        assert!(msssim_planes(&a, &b).is_err());
    }

    #[test]
    fn bounded_in_unit_interval_for_inverted_input() {
        let p = textured(64, 64);
        let q = p.map(|v| 255.0 - v);
        let s = msssim_planes(&p, &q).unwrap();
        assert!((0.0..=1.0).contains(&s), "{s}");
    }
}
