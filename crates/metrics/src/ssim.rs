use crate::MetricError;
use gss_frame::{Frame, Plane};

const C1: f64 = 6.5025; // (0.01 * 255)^2
const C2: f64 = 58.5225; // (0.03 * 255)^2
const WINDOW: usize = 8;

/// Structural similarity between two planes, computed over non-overlapping
/// 8x8 windows (the classic block variant). Returns a value in `[-1, 1]`,
/// `1.0` for identical inputs.
///
/// # Errors
///
/// Returns [`MetricError::SizeMismatch`] on differing sizes and
/// [`MetricError::TooSmall`] when either dimension is below the 8-pixel
/// window.
pub fn ssim_planes(reference: &Plane<f32>, distorted: &Plane<f32>) -> Result<f64, MetricError> {
    if reference.size() != distorted.size() {
        return Err(MetricError::SizeMismatch {
            reference: reference.size(),
            distorted: distorted.size(),
        });
    }
    let (w, h) = reference.size();
    if w < WINDOW || h < WINDOW {
        return Err(MetricError::TooSmall {
            min_dim: WINDOW,
            actual: (w, h),
        });
    }
    let mut total = 0.0f64;
    let mut count = 0usize;
    let mut by = 0;
    while by + WINDOW <= h {
        let mut bx = 0;
        while bx + WINDOW <= w {
            total += window_ssim(reference, distorted, bx, by);
            count += 1;
            bx += WINDOW;
        }
        by += WINDOW;
    }
    Ok(total / count as f64)
}

fn window_ssim(a: &Plane<f32>, b: &Plane<f32>, bx: usize, by: usize) -> f64 {
    let n = (WINDOW * WINDOW) as f64;
    let mut sum_a = 0.0;
    let mut sum_b = 0.0;
    for y in by..by + WINDOW {
        for x in bx..bx + WINDOW {
            sum_a += a.get(x, y) as f64;
            sum_b += b.get(x, y) as f64;
        }
    }
    let mu_a = sum_a / n;
    let mu_b = sum_b / n;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    let mut cov = 0.0;
    for y in by..by + WINDOW {
        for x in bx..bx + WINDOW {
            let da = a.get(x, y) as f64 - mu_a;
            let db = b.get(x, y) as f64 - mu_b;
            var_a += da * da;
            var_b += db * db;
            cov += da * db;
        }
    }
    var_a /= n - 1.0;
    var_b /= n - 1.0;
    cov /= n - 1.0;
    ((2.0 * mu_a * mu_b + C1) * (2.0 * cov + C2))
        / ((mu_a * mu_a + mu_b * mu_b + C1) * (var_a + var_b + C2))
}

/// Luma-plane SSIM between two frames.
///
/// # Errors
///
/// See [`ssim_planes`].
///
/// ```
/// # use gss_frame::Frame;
/// # use gss_metrics::ssim;
/// # fn main() -> Result<(), gss_metrics::MetricError> {
/// let f = Frame::filled(16, 16, [80.0, 128.0, 128.0]);
/// assert!((ssim(&f, &f)? - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn ssim(reference: &Frame, distorted: &Frame) -> Result<f64, MetricError> {
    ssim_planes(reference.y(), distorted.y())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize) -> Plane<f32> {
        Plane::from_fn(w, h, |x, y| {
            let v = (x as f32 * 0.7).sin() * (y as f32 * 0.5).cos();
            128.0 + 64.0 * v
        })
    }

    #[test]
    fn identical_is_one() {
        let p = textured(32, 32);
        assert!((ssim_planes(&p, &p).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn blur_lowers_ssim_more_than_brightness_shift() {
        let p = textured(64, 64);
        // 3x3 box blur
        let blurred = Plane::from_fn(64, 64, |x, y| {
            let mut acc = 0.0;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    acc += p.get_clamped(x as isize + dx as isize, y as isize + dy as isize);
                }
            }
            acc / 9.0
        });
        let shifted = p.map(|v| v + 2.0);
        let s_blur = ssim_planes(&p, &blurred).unwrap();
        let s_shift = ssim_planes(&p, &shifted).unwrap();
        assert!(s_blur < s_shift, "blur {s_blur} vs shift {s_shift}");
        assert!(s_blur < 1.0);
    }

    #[test]
    fn too_small_errors() {
        let p: Plane<f32> = Plane::new(4, 4);
        assert!(matches!(
            ssim_planes(&p, &p),
            Err(MetricError::TooSmall { .. })
        ));
    }

    #[test]
    fn mismatch_errors() {
        let a: Plane<f32> = Plane::new(16, 16);
        let b: Plane<f32> = Plane::new(16, 24);
        assert!(ssim_planes(&a, &b).is_err());
    }

    #[test]
    fn range_is_bounded() {
        let a = textured(32, 32);
        let b = a.map(|v| 255.0 - v);
        let s = ssim_planes(&a, &b).unwrap();
        assert!((-1.0..=1.0).contains(&s));
        assert!(s < 0.9);
    }
}
