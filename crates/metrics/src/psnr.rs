use crate::MetricError;
use gss_frame::{Frame, Plane};

/// Mean squared error between two same-sized planes.
///
/// The squared error is accumulated per row and the row partials are
/// folded in row order — a fixed association that depends only on the
/// plane size, so the rows can be computed by [`gss_platform::pool`]
/// workers while the result stays bit-identical at any worker count.
///
/// # Errors
///
/// Returns [`MetricError::SizeMismatch`] when the planes differ in size.
pub fn mse(reference: &Plane<f32>, distorted: &Plane<f32>) -> Result<f64, MetricError> {
    if reference.size() != distorted.size() {
        return Err(MetricError::SizeMismatch {
            reference: reference.size(),
            distorted: distorted.size(),
        });
    }
    let (w, h) = reference.size();
    if w == 0 || h == 0 {
        return Ok(0.0);
    }
    let row_partials = gss_platform::pool::map_indexed(h, |y| {
        let mut acc = 0.0f64;
        for (&a, &b) in reference.row(y).iter().zip(distorted.row(y)) {
            let d = (a - b) as f64;
            acc += d * d;
        }
        acc
    });
    Ok(row_partials.iter().sum::<f64>() / (w * h) as f64)
}

/// PSNR in decibels between two planes (8-bit peak, 255).
///
/// Identical planes yield `f64::INFINITY`.
///
/// # Errors
///
/// Returns [`MetricError::SizeMismatch`] when the planes differ in size.
pub fn psnr_planes(reference: &Plane<f32>, distorted: &Plane<f32>) -> Result<f64, MetricError> {
    let m = mse(reference, distorted)?;
    if m <= 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(10.0 * ((255.0f64 * 255.0) / m).log10())
}

/// Luma-plane PSNR between two frames, the paper's objective quality metric.
///
/// # Errors
///
/// Returns [`MetricError::SizeMismatch`] when the frames differ in size.
///
/// ```
/// # use gss_frame::Frame;
/// # use gss_metrics::psnr;
/// # fn main() -> Result<(), gss_metrics::MetricError> {
/// let reference = Frame::filled(8, 8, [50.0, 128.0, 128.0]);
/// assert!(psnr(&reference, &reference)?.is_infinite());
/// # Ok(())
/// # }
/// ```
pub fn psnr(reference: &Frame, distorted: &Frame) -> Result<f64, MetricError> {
    psnr_planes(reference.y(), distorted.y())
}

/// Incrementally accumulates squared error over many frames so a whole
/// session's PSNR can be reported without keeping frames alive.
///
/// ```
/// use gss_frame::Frame;
/// use gss_metrics::PsnrAccumulator;
///
/// let mut acc = PsnrAccumulator::new();
/// let a = Frame::filled(4, 4, [10.0, 128.0, 128.0]);
/// let b = Frame::filled(4, 4, [12.0, 128.0, 128.0]);
/// acc.push(&a, &b).unwrap();
/// assert!(acc.psnr().unwrap() > 40.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PsnrAccumulator {
    sq_err: f64,
    samples: u64,
    per_frame: Vec<f64>,
}

impl PsnrAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        PsnrAccumulator::default()
    }

    /// Adds one frame pair.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::SizeMismatch`] when the frames differ in size.
    pub fn push(&mut self, reference: &Frame, distorted: &Frame) -> Result<(), MetricError> {
        let m = mse(reference.y(), distorted.y())?;
        let n = reference.pixel_count() as u64;
        self.sq_err += m * n as f64;
        self.samples += n;
        self.per_frame.push(if m <= 0.0 {
            f64::INFINITY
        } else {
            10.0 * ((255.0f64 * 255.0) / m).log10()
        });
        Ok(())
    }

    /// Session PSNR over all accumulated samples; `None` when empty.
    pub fn psnr(&self) -> Option<f64> {
        if self.samples == 0 {
            return None;
        }
        let m = self.sq_err / self.samples as f64;
        Some(if m <= 0.0 {
            f64::INFINITY
        } else {
            10.0 * ((255.0f64 * 255.0) / m).log10()
        })
    }

    /// Per-frame PSNR series in push order.
    pub fn per_frame(&self) -> &[f64] {
        &self.per_frame
    }

    /// Number of frames pushed.
    pub fn frame_count(&self) -> usize {
        self.per_frame.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_frames_are_infinite() {
        let f = Frame::filled(8, 8, [77.0, 128.0, 128.0]);
        assert!(psnr(&f, &f).unwrap().is_infinite());
    }

    #[test]
    fn known_mse_gives_known_psnr() {
        // constant error of 1 → MSE 1 → PSNR = 20*log10(255) ≈ 48.13 dB
        let a = Frame::filled(16, 16, [100.0, 128.0, 128.0]);
        let b = Frame::filled(16, 16, [101.0, 128.0, 128.0]);
        let p = psnr(&a, &b).unwrap();
        assert!((p - 48.1308).abs() < 1e-3, "psnr = {p}");
    }

    #[test]
    fn psnr_decreases_with_error() {
        let a = Frame::filled(8, 8, [100.0, 128.0, 128.0]);
        let b = Frame::filled(8, 8, [105.0, 128.0, 128.0]);
        let c = Frame::filled(8, 8, [120.0, 128.0, 128.0]);
        assert!(psnr(&a, &b).unwrap() > psnr(&a, &c).unwrap());
    }

    #[test]
    fn mismatched_sizes_error() {
        let a = Frame::new(4, 4);
        let b = Frame::new(5, 4);
        assert!(matches!(
            psnr(&a, &b),
            Err(MetricError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn psnr_is_symmetric() {
        let a = Frame::filled(8, 8, [90.0, 128.0, 128.0]);
        let b = Frame::filled(8, 8, [110.0, 140.0, 120.0]);
        assert_eq!(psnr(&a, &b).unwrap(), psnr(&b, &a).unwrap());
    }

    #[test]
    fn accumulator_matches_single_frame() {
        let a = Frame::filled(8, 8, [100.0, 128.0, 128.0]);
        let b = Frame::filled(8, 8, [103.0, 128.0, 128.0]);
        let mut acc = PsnrAccumulator::new();
        acc.push(&a, &b).unwrap();
        let single = psnr(&a, &b).unwrap();
        assert!((acc.psnr().unwrap() - single).abs() < 1e-9);
        assert_eq!(acc.frame_count(), 1);
        assert!((acc.per_frame()[0] - single).abs() < 1e-9);
    }

    #[test]
    fn accumulator_weights_by_pixels() {
        // frame 1: zero error; frame 2: error 2 → pooled MSE = 2
        let a = Frame::filled(4, 4, [10.0, 128.0, 128.0]);
        let b = Frame::filled(4, 4, [12.0, 128.0, 128.0]);
        let mut acc = PsnrAccumulator::new();
        acc.push(&a, &a).unwrap();
        acc.push(&a, &b).unwrap();
        let expected = 10.0 * ((255.0f64 * 255.0) / 2.0).log10();
        assert!((acc.psnr().unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn empty_accumulator_is_none() {
        assert!(PsnrAccumulator::new().psnr().is_none());
    }
}
