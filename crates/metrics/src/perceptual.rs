//! A deterministic perceptual-distance metric standing in for LPIPS.
//!
//! LPIPS compares deep features of a trained network; we cannot ship trained
//! weights, so this module implements a multi-scale *gradient similarity*
//! distance instead (see `DESIGN.md` for the substitution rationale). The
//! key property we need from the paper's Fig. 14b is sensitivity to the
//! detail loss (blur) caused by repeated bilinear interpolation — gradient
//! magnitudes are exactly what blur destroys, so the metric separates the
//! two pipelines the same way LPIPS does, on the same `[0, 1]` /
//! lower-is-better scale.

use crate::MetricError;
use gss_frame::{Frame, Plane};

/// Tuning knobs for [`perceptual_distance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerceptualConfig {
    /// Number of dyadic scales evaluated (≥1). Each scale halves resolution.
    pub scales: usize,
    /// Stabilization constant of the gradient-similarity ratio.
    pub c: f64,
    /// Weight of the contrast (local variance) term versus the gradient term.
    pub contrast_weight: f64,
}

impl Default for PerceptualConfig {
    fn default() -> Self {
        PerceptualConfig {
            scales: 3,
            c: 25.0,
            contrast_weight: 0.1,
        }
    }
}

/// Perceptual distance between two frames in `[0, 1]`; lower is better,
/// `0.0` for identical inputs.
///
/// # Errors
///
/// Returns [`MetricError::SizeMismatch`] when the frames differ in size and
/// [`MetricError::TooSmall`] when a dimension is under 16 pixels.
///
/// ```
/// # use gss_frame::Frame;
/// # use gss_metrics::perceptual_distance;
/// # fn main() -> Result<(), gss_metrics::MetricError> {
/// let f = Frame::filled(32, 32, [90.0, 128.0, 128.0]);
/// assert_eq!(perceptual_distance(&f, &f)?, 0.0);
/// # Ok(())
/// # }
/// ```
pub fn perceptual_distance(reference: &Frame, distorted: &Frame) -> Result<f64, MetricError> {
    perceptual_distance_planes(reference.y(), distorted.y(), &PerceptualConfig::default())
}

/// Plane-level variant of [`perceptual_distance`] with explicit
/// configuration.
///
/// # Errors
///
/// See [`perceptual_distance`].
pub fn perceptual_distance_planes(
    reference: &Plane<f32>,
    distorted: &Plane<f32>,
    config: &PerceptualConfig,
) -> Result<f64, MetricError> {
    if reference.size() != distorted.size() {
        return Err(MetricError::SizeMismatch {
            reference: reference.size(),
            distorted: distorted.size(),
        });
    }
    let (w, h) = reference.size();
    if w < 16 || h < 16 {
        return Err(MetricError::TooSmall {
            min_dim: 16,
            actual: (w, h),
        });
    }
    let mut a = reference.clone();
    let mut b = distorted.clone();
    let mut total = 0.0f64;
    let mut weight_sum = 0.0f64;
    for scale in 0..config.scales.max(1) {
        let weight = 1.0 / (1 << scale) as f64;
        total += weight * scale_distance(&a, &b, config);
        weight_sum += weight;
        if a.width() < 32 || a.height() < 32 || scale + 1 == config.scales.max(1) {
            break;
        }
        a = half(&a);
        b = half(&b);
    }
    Ok((total / weight_sum).clamp(0.0, 1.0))
}

/// Distance at one scale: 1 − mean(gradient-similarity ⊗ contrast-similarity).
///
/// The mean is accumulated per row and the row partials are folded in
/// row order — a fixed association depending only on the plane size, so
/// the rows parallelize under the [`gss_platform::pool`] determinism
/// contract with bit-identical results at any worker count.
fn scale_distance(a: &Plane<f32>, b: &Plane<f32>, config: &PerceptualConfig) -> f64 {
    let ga = sobel_magnitude(a);
    let gb = sobel_magnitude(b);
    let (w, h) = a.size();
    let row_partials = gss_platform::pool::map_indexed(h, |y| {
        let mut acc = 0.0f64;
        for x in 0..w {
            let ma = ga.get(x, y) as f64;
            let mb = gb.get(x, y) as f64;
            let gms = (2.0 * ma * mb + config.c) / (ma * ma + mb * mb + config.c);
            let da = a.get(x, y) as f64;
            let db = b.get(x, y) as f64;
            let lum = (2.0 * da * db + config.c) / (da * da + db * db + config.c);
            let sim = gms * (1.0 - config.contrast_weight) + lum * config.contrast_weight;
            acc += 1.0 - sim;
        }
        acc
    });
    row_partials.iter().sum::<f64>() / (w * h) as f64
}

fn sobel_magnitude(p: &Plane<f32>) -> Plane<f32> {
    let (w, h) = p.size();
    let data = gss_platform::pool::build_rows(w, h, 0.0f32, |y, row| {
        let yi = y as isize;
        for (x, v) in row.iter_mut().enumerate() {
            let xi = x as isize;
            let s = |dx: isize, dy: isize| p.get_clamped(xi + dx, yi + dy);
            let gx = (s(1, -1) + 2.0 * s(1, 0) + s(1, 1)) - (s(-1, -1) + 2.0 * s(-1, 0) + s(-1, 1));
            let gy = (s(-1, 1) + 2.0 * s(0, 1) + s(1, 1)) - (s(-1, -1) + 2.0 * s(0, -1) + s(1, -1));
            *v = (gx * gx + gy * gy).sqrt();
        }
    });
    Plane::from_vec(w, h, data).expect("rows cover the plane")
}

fn half(p: &Plane<f32>) -> Plane<f32> {
    let w = (p.width() / 2).max(1);
    let h = (p.height() / 2).max(1);
    let data = gss_platform::pool::build_rows(w, h, 0.0f32, |y, row| {
        let y2 = (y * 2).min(p.height() - 1);
        let y3 = (y2 + 1).min(p.height() - 1);
        for (x, v) in row.iter_mut().enumerate() {
            let x2 = (x * 2).min(p.width() - 1);
            let x3 = (x2 + 1).min(p.width() - 1);
            *v = (p.get(x2, y2) + p.get(x3, y2) + p.get(x2, y3) + p.get(x3, y3)) * 0.25;
        }
    });
    Plane::from_vec(w, h, data).expect("rows cover the plane")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize) -> Plane<f32> {
        Plane::from_fn(w, h, |x, y| {
            128.0
                + 60.0 * ((x as f32 * 0.9).sin() * (y as f32 * 0.6).cos())
                + 20.0 * ((x as f32 * 0.23 + y as f32 * 0.31).sin())
        })
    }

    fn box_blur(p: &Plane<f32>, r: i32) -> Plane<f32> {
        let n = ((2 * r + 1) * (2 * r + 1)) as f32;
        Plane::from_fn(p.width(), p.height(), |x, y| {
            let mut acc = 0.0;
            for dy in -r..=r {
                for dx in -r..=r {
                    acc += p.get_clamped(x as isize + dx as isize, y as isize + dy as isize);
                }
            }
            acc / n
        })
    }

    #[test]
    fn identical_is_zero() {
        let p = textured(48, 48);
        let d = perceptual_distance_planes(&p, &p, &PerceptualConfig::default()).unwrap();
        assert_eq!(d, 0.0);
    }

    #[test]
    fn more_blur_means_more_distance() {
        let p = textured(64, 64);
        let cfg = PerceptualConfig::default();
        let d1 = perceptual_distance_planes(&p, &box_blur(&p, 1), &cfg).unwrap();
        let d2 = perceptual_distance_planes(&p, &box_blur(&p, 2), &cfg).unwrap();
        let d3 = perceptual_distance_planes(&p, &box_blur(&p, 4), &cfg).unwrap();
        assert!(d1 > 0.0);
        assert!(d2 > d1, "d2 {d2} vs d1 {d1}");
        assert!(d3 > d2, "d3 {d3} vs d2 {d2}");
    }

    #[test]
    fn range_is_unit_interval() {
        let p = textured(48, 48);
        let q = p.map(|v| 255.0 - v);
        let d = perceptual_distance_planes(&p, &q, &PerceptualConfig::default()).unwrap();
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn symmetric() {
        let p = textured(48, 48);
        let q = box_blur(&p, 2);
        let cfg = PerceptualConfig::default();
        let ab = perceptual_distance_planes(&p, &q, &cfg).unwrap();
        let ba = perceptual_distance_planes(&q, &p, &cfg).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn brightness_shift_is_mild() {
        // LPIPS is famously insensitive to small global luminance shifts;
        // blur of equal MSE should register as much worse.
        let p = textured(64, 64);
        let cfg = PerceptualConfig::default();
        let shift = p.map(|v| v + 4.0);
        let blur = box_blur(&p, 3);
        let d_shift = perceptual_distance_planes(&p, &shift, &cfg).unwrap();
        let d_blur = perceptual_distance_planes(&p, &blur, &cfg).unwrap();
        assert!(d_blur > 4.0 * d_shift, "blur {d_blur} shift {d_shift}");
    }

    #[test]
    fn too_small_errors() {
        let p: Plane<f32> = Plane::new(8, 8);
        assert!(matches!(
            perceptual_distance_planes(&p, &p, &PerceptualConfig::default()),
            Err(MetricError::TooSmall { .. })
        ));
    }

    #[test]
    fn frame_wrapper_works() {
        let f = Frame::filled(32, 32, [100.0, 128.0, 128.0]);
        assert_eq!(perceptual_distance(&f, &f).unwrap(), 0.0);
    }
}
