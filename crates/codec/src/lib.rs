//! A block-based hybrid video codec for the GameStreamSR reproduction.
//!
//! The paper's baseline (NEMO) requires access to codec internals — motion
//! vectors and residuals of non-reference frames — which is why it must use a
//! software VP9 decoder on the CPU, while GameStreamSR itself treats the
//! codec as a black box and can use the hardware decoder. To reproduce both
//! designs and the bitrate/quality dynamics between them, this crate
//! implements a real (if simplified) hybrid codec in the H.26x/VP9 mold:
//!
//! * **Intra (reference/key) frames** — per-block spatial prediction
//!   (DC / horizontal / vertical, H.26x-style), 8x8 type-II DCT of the
//!   prediction residual, JPEG-style quantization, zigzag + run-length +
//!   exponential-Golomb entropy coding.
//! * **Inter (non-reference) frames** — 16x16-macroblock motion estimation
//!   (three-step search) against the previously *reconstructed* frame
//!   (closed-loop), DCT-coded residuals, per-macroblock motion vectors.
//! * **4:2:0 chroma** — chroma planes are subsampled before coding, like
//!   every deployed streaming codec.
//! * **GOP structure** — one intra frame followed by `gop_size − 1` inter
//!   frames; the paper's client streams use a GOP of 60 (one keyframe per
//!   second at 60 FPS).
//!
//! The bitstream is a real, decodable byte stream (not just a size
//! estimate), so encoded-frame sizes give honest bandwidth numbers and the
//! decoder exposes exactly the internals ([`DecodeDetail`]) NEMO consumes.
//!
//! ```
//! use gss_codec::{Decoder, Encoder, EncoderConfig};
//! use gss_frame::Frame;
//!
//! let mut enc = Encoder::new(EncoderConfig::default());
//! let mut dec = Decoder::new();
//! let frame = Frame::filled(64, 32, [120.0, 128.0, 128.0]);
//! let packet = enc.encode(&frame).unwrap();
//! let decoded = dec.decode(&packet).unwrap();
//! assert_eq!(decoded.frame.size(), (64, 32));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod dct;
mod decoder;
mod encoder;
mod entropy;
mod error;
mod intra;
mod motion;
mod quant;
mod rate;

pub use bits::{BitReader, BitWriter};
pub use dct::{dct8_forward, dct8_inverse, Block8};
pub use decoder::{DecodeDetail, DecodedFrame, Decoder};
pub use encoder::{EncodedFrame, Encoder, EncoderConfig, FrameType};
pub use entropy::{decode_plane, encode_plane};
pub use error::CodecError;
pub use intra::{decode_plane_intra, encode_plane_intra, IntraMode};
pub use motion::{compensate, estimate_motion, MotionField, MotionVector, MB_SIZE};
pub use quant::{dequantize, quantize, QuantMatrix};
pub use rate::{RateControlConfig, RateController};
