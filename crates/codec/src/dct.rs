//! 8x8 type-II discrete cosine transform, the transform stage of the codec.

/// An 8x8 block of samples or coefficients, row-major.
pub type Block8 = [f32; 64];

/// Precomputed `cos((2x+1) uπ / 16)` basis, scaled for orthonormality.
fn basis() -> &'static [[f32; 8]; 8] {
    use std::sync::OnceLock;
    static BASIS: OnceLock<[[f32; 8]; 8]> = OnceLock::new();
    BASIS.get_or_init(|| {
        let mut b = [[0.0f32; 8]; 8];
        for (u, row) in b.iter_mut().enumerate() {
            let cu = if u == 0 {
                (1.0f32 / 8.0).sqrt()
            } else {
                (2.0f32 / 8.0).sqrt()
            };
            for (x, v) in row.iter_mut().enumerate() {
                *v = cu * ((2.0 * x as f32 + 1.0) * u as f32 * std::f32::consts::PI / 16.0).cos();
            }
        }
        b
    })
}

/// Forward 8x8 DCT (orthonormal). Input samples are conventionally centered
/// (e.g. pixel − 128) but any range works.
pub fn dct8_forward(block: &Block8) -> Block8 {
    let b = basis();
    // rows
    let mut tmp = [0.0f32; 64];
    for y in 0..8 {
        for u in 0..8 {
            let mut acc = 0.0;
            for x in 0..8 {
                acc += block[y * 8 + x] * b[u][x];
            }
            tmp[y * 8 + u] = acc;
        }
    }
    // columns
    let mut out = [0.0f32; 64];
    for v in 0..8 {
        for u in 0..8 {
            let mut acc = 0.0;
            for y in 0..8 {
                acc += tmp[y * 8 + u] * b[v][y];
            }
            out[v * 8 + u] = acc;
        }
    }
    out
}

/// Inverse 8x8 DCT; exact inverse of [`dct8_forward`] up to float rounding.
pub fn dct8_inverse(coeffs: &Block8) -> Block8 {
    let b = basis();
    // columns
    let mut tmp = [0.0f32; 64];
    for y in 0..8 {
        for u in 0..8 {
            let mut acc = 0.0;
            for v in 0..8 {
                acc += coeffs[v * 8 + u] * b[v][y];
            }
            tmp[y * 8 + u] = acc;
        }
    }
    // rows
    let mut out = [0.0f32; 64];
    for y in 0..8 {
        for x in 0..8 {
            let mut acc = 0.0;
            for u in 0..8 {
                acc += tmp[y * 8 + u] * b[u][x];
            }
            out[y * 8 + x] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block(f: impl Fn(usize, usize) -> f32) -> Block8 {
        let mut b = [0.0f32; 64];
        for y in 0..8 {
            for x in 0..8 {
                b[y * 8 + x] = f(x, y);
            }
        }
        b
    }

    #[test]
    fn roundtrip_is_near_exact() {
        let block = sample_block(|x, y| ((x * 13 + y * 29) % 255) as f32 - 128.0);
        let back = dct8_inverse(&dct8_forward(&block));
        for (a, b) in block.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn constant_block_has_only_dc() {
        let block = sample_block(|_, _| 80.0);
        let coeffs = dct8_forward(&block);
        assert!((coeffs[0] - 80.0 * 8.0).abs() < 1e-3, "dc = {}", coeffs[0]);
        for &c in &coeffs[1..] {
            assert!(c.abs() < 1e-3);
        }
    }

    #[test]
    fn transform_is_orthonormal_energy_preserving() {
        let block = sample_block(|x, y| (x as f32 - 3.5) * (y as f32 - 3.5));
        let coeffs = dct8_forward(&block);
        let e_space: f32 = block.iter().map(|v| v * v).sum();
        let e_freq: f32 = coeffs.iter().map(|v| v * v).sum();
        assert!((e_space - e_freq).abs() / e_space.max(1.0) < 1e-4);
    }

    #[test]
    fn smooth_block_concentrates_energy_in_low_frequencies() {
        let block = sample_block(|x, y| x as f32 * 4.0 + y as f32 * 2.0);
        let coeffs = dct8_forward(&block);
        let low: f32 = (0..2)
            .flat_map(|v| (0..2).map(move |u| coeffs[v * 8 + u].powi(2)))
            .sum();
        let total: f32 = coeffs.iter().map(|v| v * v).sum();
        assert!(low / total > 0.95, "low-frequency share {}", low / total);
    }

    #[test]
    fn linearity() {
        let a = sample_block(|x, _| x as f32);
        let b = sample_block(|_, y| y as f32 * 3.0);
        let sum = sample_block(|x, y| x as f32 + y as f32 * 3.0);
        let ca = dct8_forward(&a);
        let cb = dct8_forward(&b);
        let cs = dct8_forward(&sum);
        for i in 0..64 {
            assert!((ca[i] + cb[i] - cs[i]).abs() < 1e-3);
        }
    }
}
