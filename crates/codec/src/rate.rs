//! Closed-loop bitrate control.
//!
//! Streaming deployments do not run at a fixed quantizer: the encoder
//! adapts quality so the stream fits the channel (the paper's motivation —
//! §II-A's frame drops — is exactly what happens when it does not). This
//! proportional controller steers the intra quality and the inter residual
//! step toward a target bytes-per-frame, with an integral term on the
//! accumulated debt so persistent overshoot is paid back.

use crate::EncoderConfig;
use serde::{Deserialize, Serialize};

/// Rate-controller tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateControlConfig {
    /// Budget per frame in bytes (bitrate / (8 · fps)).
    pub target_bytes_per_frame: usize,
    /// Proportional gain on the per-frame error (quality steps per 100%
    /// overshoot).
    pub gain: f64,
    /// Intra quality bounds.
    pub min_quality: u8,
    /// Upper intra quality bound.
    pub max_quality: u8,
    /// Inter residual-step bounds.
    pub min_residual_step: u16,
    /// Upper residual-step bound (coarser = fewer bits).
    pub max_residual_step: u16,
}

impl RateControlConfig {
    /// A config targeting `mbps` megabits per second at 60 FPS.
    pub fn for_bitrate_mbps(mbps: f64) -> Self {
        RateControlConfig {
            target_bytes_per_frame: (mbps * 1e6 / 8.0 / 60.0) as usize,
            gain: 18.0,
            min_quality: 25,
            max_quality: 92,
            min_residual_step: 6,
            max_residual_step: 40,
        }
    }
}

/// The controller state: call [`RateController::observe`] after each encoded
/// frame and apply [`RateController::quantizers`] before the next.
#[derive(Debug, Clone)]
pub struct RateController {
    config: RateControlConfig,
    base_target_bytes: usize,
    quality: f64,
    residual_step: f64,
    debt_bytes: f64,
}

impl RateController {
    /// Creates a controller starting from the encoder's current settings.
    ///
    /// # Panics
    ///
    /// Panics when the target is zero or the bounds are inverted.
    pub fn new(config: RateControlConfig, start: &EncoderConfig) -> Self {
        assert!(config.target_bytes_per_frame > 0, "target must be nonzero");
        assert!(
            config.min_quality <= config.max_quality,
            "quality bounds inverted"
        );
        assert!(
            config.min_residual_step <= config.max_residual_step,
            "residual bounds inverted"
        );
        RateController {
            base_target_bytes: config.target_bytes_per_frame,
            config,
            quality: start.quality as f64,
            residual_step: start.residual_step as f64,
            debt_bytes: 0.0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> RateControlConfig {
        self.config
    }

    /// Rescales the per-frame byte budget to `scale` times the budget the
    /// controller was constructed with. The degradation controller uses
    /// this to cut the stream's bitrate while the channel is collapsed and
    /// to restore it afterwards (`scale = 1.0`); the controller's integral
    /// state is preserved so the quantizers glide rather than jump.
    ///
    /// # Panics
    ///
    /// Panics when `scale` is not positive.
    pub fn set_target_scale(&mut self, scale: f64) {
        assert!(scale > 0.0, "target scale must be positive");
        self.config.target_bytes_per_frame =
            ((self.base_target_bytes as f64 * scale) as usize).max(1);
    }

    /// Records the size of the frame just encoded and updates the
    /// quantizer trajectory. Intra frames are allowed 4x the per-frame
    /// budget (they are rare and pay for the whole GOP).
    pub fn observe(&mut self, bytes: usize, was_intra: bool) {
        let budget = self.config.target_bytes_per_frame as f64 * if was_intra { 4.0 } else { 1.0 };
        let err = (bytes as f64 - budget) / budget; // +1 = 100% overshoot
        self.debt_bytes += bytes as f64 - self.config.target_bytes_per_frame as f64;
        self.debt_bytes = self.debt_bytes.clamp(-16.0 * budget, 16.0 * budget);
        let integral = self.debt_bytes / (8.0 * self.config.target_bytes_per_frame as f64);
        let step = self.config.gain * err + 2.0 * integral;
        self.quality = (self.quality - step).clamp(
            self.config.min_quality as f64,
            self.config.max_quality as f64,
        );
        // residual step moves opposite to quality (coarser when over budget)
        self.residual_step = (self.residual_step + step * 0.45).clamp(
            self.config.min_residual_step as f64,
            self.config.max_residual_step as f64,
        );
    }

    /// [`RateController::observe`] plus telemetry: reports the resulting
    /// quantizer decisions as `EncodeQuality` / `EncodeResidualStep` gauges.
    /// The control trajectory is identical to an untraced observation.
    pub fn observe_traced(
        &mut self,
        bytes: usize,
        was_intra: bool,
        rec: &mut gss_telemetry::Recorder,
    ) {
        self.observe(bytes, was_intra);
        let (quality, residual_step) = self.quantizers();
        rec.gauge(gss_telemetry::Gauge::EncodeQuality, quality as f64);
        rec.gauge(
            gss_telemetry::Gauge::EncodeResidualStep,
            residual_step as f64,
        );
    }

    /// The `(intra quality, inter residual step)` to use for the next frame.
    pub fn quantizers(&self) -> (u8, u16) {
        (
            self.quality.round() as u8,
            self.residual_step.round() as u16,
        )
    }

    /// Applies the current quantizers to an encoder configuration.
    pub fn apply(&self, config: &mut EncoderConfig) {
        let (q, r) = self.quantizers();
        config.quality = q;
        config.residual_step = r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Encoder, FrameType};
    use gss_frame::{Frame, Plane};

    fn textured_frame(w: usize, h: usize, t: f32) -> Frame {
        Frame::from_planes(
            Plane::from_fn(w, h, |x, y| {
                let fx = x as f32 + t;
                (128.0
                    + 70.0 * ((fx * 0.4).sin() * (y as f32 * 0.3).cos())
                    + 30.0 * ((fx * 1.1 + y as f32 * 0.9).sin()))
                .clamp(0.0, 255.0)
            }),
            Plane::filled(w, h, 120.0),
            Plane::filled(w, h, 135.0),
        )
        .unwrap()
    }

    /// Streams frames through an encoder governed by the controller and
    /// returns the mean non-intra bytes per frame.
    fn govern(target_bytes: usize, frames: usize) -> f64 {
        let mut enc_cfg = EncoderConfig {
            gop_size: 1000,
            ..EncoderConfig::default()
        };
        let mut rc = RateController::new(
            RateControlConfig {
                target_bytes_per_frame: target_bytes,
                ..RateControlConfig::for_bitrate_mbps(10.0)
            },
            &enc_cfg,
        );
        let mut total = 0usize;
        let mut counted = 0usize;
        let mut encoder = Encoder::new(enc_cfg);
        for t in 0..frames {
            rc.apply(&mut enc_cfg);
            // rebuild the encoder's quantizers in place: the encoder reads
            // its config at construction, so emulate by a fresh instance
            // carrying over the reference via re-encoding order
            // (simpler: Encoder exposes config at new(); we re-create per
            // GOP in real use — here quality changes apply to residuals via
            // a new encoder every frame would break the reference chain, so
            // we accept stepwise application per observation window)
            let packet = encoder
                .encode(&textured_frame(160, 96, t as f32 * 2.0))
                .unwrap();
            rc.observe(packet.size_bytes(), packet.frame_type == FrameType::Intra);
            if packet.frame_type == FrameType::Inter && t > frames / 2 {
                total += packet.size_bytes();
                counted += 1;
            }
            // apply the new quantizers to the running encoder
            encoder.set_quantizers(rc.quantizers().0, rc.quantizers().1);
        }
        total as f64 / counted.max(1) as f64
    }

    #[test]
    fn converges_near_target_from_above() {
        // default quality overshoots a tight budget; controller reins it in
        let target = 1200usize;
        let steady = govern(target, 60);
        assert!(
            steady < target as f64 * 1.6,
            "steady {steady:.0} vs target {target}"
        );
    }

    #[test]
    fn loose_budget_raises_quality() {
        let tight = govern(900, 60);
        let loose = govern(6000, 60);
        assert!(loose > tight, "loose {loose:.0} vs tight {tight:.0}");
    }

    #[test]
    fn quantizers_stay_in_bounds() {
        let cfg = RateControlConfig::for_bitrate_mbps(0.5); // brutally tight
        let mut rc = RateController::new(cfg, &EncoderConfig::default());
        for _ in 0..200 {
            rc.observe(100_000, false); // constant massive overshoot
        }
        let (q, r) = rc.quantizers();
        assert_eq!(q, cfg.min_quality);
        assert_eq!(r, cfg.max_residual_step);
        for _ in 0..400 {
            rc.observe(10, false); // constant undershoot
        }
        let (q, r) = rc.quantizers();
        assert_eq!(q, cfg.max_quality);
        assert_eq!(r, cfg.min_residual_step);
    }

    #[test]
    fn traced_observation_matches_untraced_and_gauges_decisions() {
        use gss_telemetry::{Gauge, Recorder};
        let cfg = RateControlConfig::for_bitrate_mbps(5.0);
        let mut plain = RateController::new(cfg, &EncoderConfig::default());
        let mut traced = RateController::new(cfg, &EncoderConfig::default());
        let mut rec = Recorder::new("rc-test", 16.67);
        for i in 0..20 {
            let bytes = 4000 + i * 500;
            plain.observe(bytes, false);
            traced.observe_traced(bytes, false, &mut rec);
            assert_eq!(plain.quantizers(), traced.quantizers());
        }
        let s = rec.summary();
        let quality = s.gauge(Gauge::EncodeQuality).expect("quality gauged");
        assert_eq!(quality.count, 20);
        assert_eq!(quality.last, traced.quantizers().0 as f64);
        assert_eq!(
            s.gauge(Gauge::EncodeResidualStep).unwrap().last,
            traced.quantizers().1 as f64
        );
    }

    #[test]
    fn intra_frames_get_headroom() {
        let cfg = RateControlConfig::for_bitrate_mbps(5.0);
        let mut a = RateController::new(cfg, &EncoderConfig::default());
        let mut b = RateController::new(cfg, &EncoderConfig::default());
        let bytes = cfg.target_bytes_per_frame * 3;
        a.observe(bytes, true); // within the 4x intra allowance
        b.observe(bytes, false); // 3x overshoot for an inter frame
        assert!(a.quantizers().0 > b.quantizers().0);
    }

    #[test]
    fn target_scale_cuts_and_restores_the_budget() {
        let cfg = RateControlConfig::for_bitrate_mbps(25.0);
        let mut rc = RateController::new(cfg, &EncoderConfig::default());
        let base = rc.config().target_bytes_per_frame;
        rc.set_target_scale(0.3);
        assert_eq!(
            rc.config().target_bytes_per_frame,
            (base as f64 * 0.3) as usize
        );
        // a scaled-down controller drives quality lower for the same stream
        let mut full = RateController::new(cfg, &EncoderConfig::default());
        for _ in 0..30 {
            rc.observe(base, false);
            full.observe(base, false);
        }
        assert!(rc.quantizers().0 < full.quantizers().0);
        // restoring the scale restores the original budget exactly
        rc.set_target_scale(1.0);
        assert_eq!(rc.config().target_bytes_per_frame, base);
    }

    #[test]
    #[should_panic(expected = "target")]
    fn zero_target_rejected() {
        let _ = RateController::new(
            RateControlConfig {
                target_bytes_per_frame: 0,
                ..RateControlConfig::for_bitrate_mbps(1.0)
            },
            &EncoderConfig::default(),
        );
    }
}
