//! The hybrid encoder: intra keyframes + motion-compensated inter frames in
//! a fixed GOP structure, with closed-loop reconstruction (the encoder
//! predicts from the frames the decoder will actually see).

use crate::bits::BitWriter;
use crate::entropy::encode_plane;
use crate::intra::encode_plane_intra;
use crate::motion::{compensate, estimate_motion, MotionField, MB_SIZE};
use crate::quant::QuantMatrix;
use crate::{decoder, CodecError};
use bytes::Bytes;
use gss_frame::{Frame, Plane};
use gss_platform::plane_ops;
use serde::{Deserialize, Serialize};

/// Whether a frame is a reference (key/intra) frame or depends on one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameType {
    /// A self-contained reference frame (keyframe).
    Intra,
    /// A motion-compensated non-reference frame.
    Inter,
}

/// Encoder tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderConfig {
    /// Intra quantization quality, `1..=100` (higher = finer).
    pub quality: u8,
    /// Flat quantizer step for inter residuals.
    pub residual_step: u16,
    /// GOP length: one intra frame every `gop_size` frames. The paper's
    /// game streams use 60 (a keyframe every second at 60 FPS).
    pub gop_size: usize,
    /// Motion search range in pixels.
    pub search_range: u8,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            quality: 75,
            residual_step: 10,
            gop_size: 60,
            search_range: 7,
        }
    }
}

/// One coded frame: a real decodable bitstream plus stream metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedFrame {
    /// Intra or inter.
    pub frame_type: FrameType,
    /// Coded width in pixels.
    pub width: usize,
    /// Coded height in pixels.
    pub height: usize,
    /// Frame index within the stream.
    pub sequence: u64,
    /// Entropy-coded payload (motion vectors + coefficient planes).
    pub payload: Bytes,
    /// Intra quality / residual step the payload was coded with.
    pub quant: QuantSelection,
}

/// The quantizer parameters a packet was coded with (needed to decode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantSelection {
    /// Intra quality (`1..=100`).
    pub quality: u8,
    /// Residual flat step.
    pub residual_step: u16,
}

impl EncodedFrame {
    /// Total transmitted size in bytes, including a nominal 16-byte packet
    /// header (type, dims, sequence, quant).
    pub fn size_bytes(&self) -> usize {
        self.payload.len() + 16
    }
}

/// The streaming encoder.
///
/// ```
/// use gss_codec::{Encoder, EncoderConfig, FrameType};
/// use gss_frame::Frame;
///
/// let mut enc = Encoder::new(EncoderConfig { gop_size: 4, ..EncoderConfig::default() });
/// let f = Frame::filled(32, 32, [128.0, 128.0, 128.0]);
/// assert_eq!(enc.encode(&f).unwrap().frame_type, FrameType::Intra);
/// assert_eq!(enc.encode(&f).unwrap().frame_type, FrameType::Inter);
/// ```
#[derive(Debug)]
pub struct Encoder {
    config: EncoderConfig,
    reference: Option<Frame>,
    frame_count: u64,
    /// Set by [`Encoder::request_keyframe`], consumed by the next intra
    /// encode; distinguishes loss-recovery keyframes from GOP boundaries
    /// and resolution changes in the telemetry.
    forced_pending: bool,
}

impl Encoder {
    /// Creates an encoder; the first frame will be intra.
    ///
    /// # Panics
    ///
    /// Panics when `gop_size` is zero or `quality`/`residual_step` are out
    /// of range.
    pub fn new(config: EncoderConfig) -> Self {
        assert!(config.gop_size > 0, "gop_size must be nonzero");
        assert!(
            (1..=100).contains(&config.quality),
            "quality must be 1..=100"
        );
        assert!(config.residual_step > 0, "residual_step must be nonzero");
        assert!(config.search_range > 0, "search_range must be nonzero");
        Encoder {
            config,
            reference: None,
            frame_count: 0,
            forced_pending: false,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> EncoderConfig {
        self.config
    }

    /// `true` when the next [`Encoder::encode`] call will emit a keyframe.
    pub fn next_is_keyframe(&self) -> bool {
        self.reference.is_none() || self.frame_count.is_multiple_of(self.config.gop_size as u64)
    }

    /// Forces the next frame to be coded intra (e.g. after a scene cut or
    /// packet loss).
    pub fn request_keyframe(&mut self) {
        self.reference = None;
        self.forced_pending = true;
    }

    /// Adjusts the quantizers mid-stream (rate control); takes effect from
    /// the next encoded frame. The reference chain is unaffected — decoders
    /// read the quantizer selection from each packet.
    ///
    /// # Panics
    ///
    /// Panics when `quality` is outside `1..=100` or `residual_step` is
    /// zero.
    pub fn set_quantizers(&mut self, quality: u8, residual_step: u16) {
        assert!((1..=100).contains(&quality), "quality must be 1..=100");
        assert!(residual_step > 0, "residual_step must be nonzero");
        self.config.quality = quality;
        self.config.residual_step = residual_step;
    }

    /// Encodes the next frame of the stream, choosing intra/inter from the
    /// GOP position.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadFrameSize`] for odd or zero dimensions (the
    /// 4:2:0 chroma path needs even sizes).
    pub fn encode(&mut self, frame: &Frame) -> Result<EncodedFrame, CodecError> {
        let (w, h) = frame.size();
        if w == 0 || h == 0 || w % 2 != 0 || h % 2 != 0 {
            return Err(CodecError::BadFrameSize {
                width: w,
                height: h,
            });
        }
        if let Some(reference) = &self.reference {
            if reference.size() != frame.size() {
                // resolution change forces a new keyframe
                self.reference = None;
            }
        }
        let sequence = self.frame_count;
        let intra = self.next_is_keyframe();
        self.frame_count += 1;
        if intra {
            self.forced_pending = false;
            self.encode_intra(frame, sequence)
        } else {
            self.encode_inter(frame, sequence)
        }
    }

    /// [`Encoder::encode`] plus telemetry: bumps `FramesEncoded`, and
    /// `KeyframesForced` when the keyframe was requested via
    /// [`Encoder::request_keyframe`] (loss recovery) rather than falling on
    /// a GOP boundary. The bitstream is identical to an untraced encode.
    ///
    /// # Errors
    ///
    /// Same as [`Encoder::encode`].
    pub fn encode_traced(
        &mut self,
        frame: &Frame,
        rec: &mut gss_telemetry::Recorder,
    ) -> Result<EncodedFrame, CodecError> {
        let forced = self.forced_pending;
        let packet = self.encode(frame)?;
        rec.incr(gss_telemetry::Counter::FramesEncoded);
        if forced && packet.frame_type == FrameType::Intra {
            rec.incr(gss_telemetry::Counter::KeyframesForced);
        }
        Ok(packet)
    }

    fn quant(&self) -> QuantSelection {
        QuantSelection {
            quality: self.config.quality,
            residual_step: self.config.residual_step,
        }
    }

    fn encode_intra(&mut self, frame: &Frame, sequence: u64) -> Result<EncodedFrame, CodecError> {
        let (w, h) = frame.size();
        let q = QuantMatrix::from_quality(self.config.quality);
        let mut writer = BitWriter::new();
        encode_plane_intra(&plane_ops::map(frame.y(), |v| v - 128.0), &q, &mut writer);
        encode_plane_intra(
            &plane_ops::map(&plane_ops::downsample_box(frame.cb(), 2), |v| v - 128.0),
            &q,
            &mut writer,
        );
        encode_plane_intra(
            &plane_ops::map(&plane_ops::downsample_box(frame.cr(), 2), |v| v - 128.0),
            &q,
            &mut writer,
        );
        let packet = EncodedFrame {
            frame_type: FrameType::Intra,
            width: w,
            height: h,
            sequence,
            payload: writer.finish(),
            quant: self.quant(),
        };
        // closed loop: the encoder's reference is the decoder's output
        let recon = decoder::decode_intra_payload(&packet)?;
        self.reference = Some(recon);
        Ok(packet)
    }

    fn encode_inter(&mut self, frame: &Frame, sequence: u64) -> Result<EncodedFrame, CodecError> {
        let (w, h) = frame.size();
        let reference = self
            .reference
            .as_ref()
            .ok_or(CodecError::MissingReference)?;
        let motion = estimate_motion(frame.y(), reference.y(), self.config.search_range);

        // predictions: luma at full size, chroma on the subsampled grid
        let pred_y = compensate(reference.y(), &motion, MB_SIZE);
        let ref_cb = plane_ops::downsample_box(reference.cb(), 2);
        let ref_cr = plane_ops::downsample_box(reference.cr(), 2);
        let chroma_motion = halved(&motion);
        let pred_cb = compensate(&ref_cb, &chroma_motion, MB_SIZE / 2);
        let pred_cr = compensate(&ref_cr, &chroma_motion, MB_SIZE / 2);

        let res_y = plane_ops::zip_map(frame.y(), &pred_y, |c, p| c - p);
        let res_cb = plane_ops::zip_map(
            &plane_ops::downsample_box(frame.cb(), 2),
            &pred_cb,
            |c, p| c - p,
        );
        let res_cr = plane_ops::zip_map(
            &plane_ops::downsample_box(frame.cr(), 2),
            &pred_cr,
            |c, p| c - p,
        );

        let rq = QuantMatrix::flat(self.config.residual_step);
        let mut writer = BitWriter::new();
        for v in motion.vectors() {
            writer.put_se(v.dx as i32);
            writer.put_se(v.dy as i32);
        }
        encode_plane(&res_y, &rq, &mut writer);
        encode_plane(&res_cb, &rq, &mut writer);
        encode_plane(&res_cr, &rq, &mut writer);

        let packet = EncodedFrame {
            frame_type: FrameType::Inter,
            width: w,
            height: h,
            sequence,
            payload: writer.finish(),
            quant: self.quant(),
        };
        let recon = decoder::decode_inter_payload(&packet, reference)?.0;
        self.reference = Some(recon);
        Ok(packet)
    }
}

/// Halves a motion field's vectors for the 4:2:0 chroma grid.
pub(crate) fn halved(motion: &MotionField) -> MotionField {
    let (cols, rows) = motion.grid();
    MotionField::from_vectors(
        cols,
        rows,
        motion
            .vectors()
            .iter()
            .map(|v| crate::motion::MotionVector {
                dx: v.dx / 2,
                dy: v.dy / 2,
            })
            .collect(),
    )
}

/// Bilinear 2x upsampling used to restore 4:2:0 chroma to full resolution.
/// Row-parallel; every output pixel is an independent 4-tap blend, so the
/// result is bit-identical at any worker count.
pub(crate) fn upsample2_bilinear(p: &Plane<f32>) -> Plane<f32> {
    let (w, h) = p.size();
    let (ow, oh) = (w * 2, h * 2);
    let data = gss_platform::pool::build_rows(ow, oh, 0.0f32, |y, row| {
        let sy = (y as f32 + 0.5) * 0.5 - 0.5;
        let y0 = sy.floor();
        let fy = sy - y0;
        let yi = y0 as isize;
        for (x, v) in row.iter_mut().enumerate() {
            let sx = (x as f32 + 0.5) * 0.5 - 0.5;
            let x0 = sx.floor();
            let fx = sx - x0;
            let xi = x0 as isize;
            let a = p.get_clamped(xi, yi);
            let b = p.get_clamped(xi + 1, yi);
            let c = p.get_clamped(xi, yi + 1);
            let d = p.get_clamped(xi + 1, yi + 1);
            *v = a * (1.0 - fx) * (1.0 - fy)
                + b * fx * (1.0 - fy)
                + c * (1.0 - fx) * fy
                + d * fx * fy;
        }
    });
    Plane::from_vec(ow, oh, data).expect("rows cover the output plane")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured_frame(w: usize, h: usize, phase: f32) -> Frame {
        Frame::from_planes(
            Plane::from_fn(w, h, |x, y| {
                128.0 + 70.0 * ((x as f32 * 0.3 + phase).sin() * (y as f32 * 0.22).cos())
            }),
            Plane::filled(w, h, 120.0),
            Plane::filled(w, h, 135.0),
        )
        .unwrap()
    }

    #[test]
    fn gop_structure_is_respected() {
        let mut enc = Encoder::new(EncoderConfig {
            gop_size: 3,
            ..EncoderConfig::default()
        });
        let f = textured_frame(32, 32, 0.0);
        let types: Vec<FrameType> = (0..7).map(|_| enc.encode(&f).unwrap().frame_type).collect();
        use FrameType::*;
        assert_eq!(types, vec![Intra, Inter, Inter, Intra, Inter, Inter, Intra]);
    }

    #[test]
    fn odd_dimensions_rejected() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let f = Frame::new(31, 32);
        assert!(matches!(
            enc.encode(&f),
            Err(CodecError::BadFrameSize { .. })
        ));
    }

    #[test]
    fn request_keyframe_forces_intra() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let f = textured_frame(32, 32, 0.0);
        enc.encode(&f).unwrap();
        assert_eq!(enc.encode(&f).unwrap().frame_type, FrameType::Inter);
        enc.request_keyframe();
        assert_eq!(enc.encode(&f).unwrap().frame_type, FrameType::Intra);
    }

    #[test]
    fn traced_encode_counts_frames_and_forced_keyframes() {
        use gss_telemetry::{Counter, Recorder};
        let mut enc = Encoder::new(EncoderConfig {
            gop_size: 1000,
            ..EncoderConfig::default()
        });
        let mut rec = Recorder::new("codec-test", 16.67);
        let f = textured_frame(32, 32, 0.0);
        enc.encode_traced(&f, &mut rec).unwrap(); // natural GOP-start intra
        enc.encode_traced(&f, &mut rec).unwrap(); // inter
        enc.request_keyframe();
        enc.encode_traced(&f, &mut rec).unwrap(); // forced intra
        assert_eq!(rec.counter(Counter::FramesEncoded), 3);
        assert_eq!(rec.counter(Counter::KeyframesForced), 1);
    }

    #[test]
    fn traced_encode_matches_untraced_bitstream() {
        use gss_telemetry::Recorder;
        let mut plain = Encoder::new(EncoderConfig::default());
        let mut traced = Encoder::new(EncoderConfig::default());
        let mut rec = Recorder::new("codec-test", 16.67);
        for t in 0..4 {
            let f = textured_frame(32, 32, t as f32 * 0.1);
            assert_eq!(
                plain.encode(&f).unwrap(),
                traced.encode_traced(&f, &mut rec).unwrap()
            );
        }
    }

    #[test]
    fn resolution_change_forces_intra() {
        let mut enc = Encoder::new(EncoderConfig::default());
        enc.encode(&textured_frame(32, 32, 0.0)).unwrap();
        let p = enc.encode(&textured_frame(64, 32, 0.0)).unwrap();
        assert_eq!(p.frame_type, FrameType::Intra);
    }

    #[test]
    fn inter_frames_are_smaller_than_intra_for_similar_content() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let a = textured_frame(64, 64, 0.0);
        let b = textured_frame(64, 64, 0.05);
        let intra = enc.encode(&a).unwrap();
        let inter = enc.encode(&b).unwrap();
        assert!(
            inter.size_bytes() * 2 < intra.size_bytes(),
            "inter {} vs intra {}",
            inter.size_bytes(),
            intra.size_bytes()
        );
    }

    #[test]
    fn upsample2_preserves_constant() {
        let p = Plane::filled(5, 4, 42.0f32);
        let up = upsample2_bilinear(&p);
        assert_eq!(up.size(), (10, 8));
        assert!(up.iter().all(|&v| (v - 42.0).abs() < 1e-4));
    }
}
