//! Bit-level I/O and exponential-Golomb coding, the entropy layer's
//! foundation.
//!
//! Both directions are word-packed: the writer accumulates into a 64-bit
//! register and spills whole bytes, the reader peeks a 64-bit window and
//! consumes whole codes with one shift. The emitted stream is identical
//! bit-for-bit to a naive bit-at-a-time implementation — only the cursor
//! bookkeeping changed — which keeps the entropy layer off the serial
//! hot path of the closed-loop encode.

use crate::CodecError;
use bytes::{BufMut, Bytes, BytesMut};

/// Writes individual bits MSB-first into a growable byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: BytesMut,
    /// Pending bits in the low `filled` positions (high bits are stale).
    acc: u64,
    /// Number of pending bits; kept below 8 between calls.
    filled: u8,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the `count` low bits of `value`, MSB first. `count` must be
    /// at most 57 so the accumulator never overflows; public entry points
    /// split longer codes.
    fn put_bits_raw(&mut self, value: u64, count: u8) {
        debug_assert!(count <= 57);
        let masked = if count == 0 {
            return;
        } else {
            value & (u64::MAX >> (64 - count))
        };
        self.acc = (self.acc << count) | masked;
        self.filled += count;
        while self.filled >= 8 {
            self.filled -= 8;
            self.buf.put_u8((self.acc >> self.filled) as u8);
        }
    }

    /// Appends a single bit.
    pub fn put_bit(&mut self, bit: bool) {
        self.put_bits_raw(bit as u64, 1);
    }

    /// Appends the `count` low bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics when `count > 32`.
    pub fn put_bits(&mut self, value: u32, count: u8) {
        assert!(count <= 32, "at most 32 bits at a time");
        self.put_bits_raw(value as u64, count);
    }

    /// Unsigned exponential-Golomb code (as in H.264/H.265).
    pub fn put_ue(&mut self, value: u32) {
        let v = value + 1;
        let bits = 32 - v.leading_zeros() as u8;
        self.put_bits_raw(0, bits - 1);
        self.put_bits_raw(v as u64, bits);
    }

    /// Signed exponential-Golomb code (0, 1, −1, 2, −2, …).
    pub fn put_se(&mut self, value: i32) {
        let mapped = if value > 0 {
            (value as u32) * 2 - 1
        } else {
            (-value as u32) * 2
        };
        self.put_ue(mapped);
    }

    /// Appends every bit of `other` after this writer's bits, exactly as if
    /// the same `put_*` calls had been replayed here. This is what lets
    /// independent workers entropy-code disjoint block rows into private
    /// writers and still produce the canonical serial stream: concatenation
    /// in row order is bit-identical to one cursor writing straight through.
    pub fn append(&mut self, other: &BitWriter) {
        if self.filled == 0 {
            self.buf.put_slice(&other.buf);
        } else {
            for &byte in other.buf.iter() {
                self.put_bits_raw(byte as u64, 8);
            }
        }
        if other.filled > 0 {
            self.put_bits_raw(other.acc, other.filled);
        }
    }

    /// Pads with zero bits to a byte boundary and returns the stream.
    pub fn finish(mut self) -> Bytes {
        if self.filled != 0 {
            let pad = 8 - self.filled;
            self.put_bits_raw(0, pad);
        }
        self.buf.freeze()
    }

    /// Bits written so far (excluding final padding).
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.filled as usize
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    /// Bits left between the cursor and the end of the slice.
    fn avail(&self) -> usize {
        self.data.len() * 8 - self.pos
    }

    /// The next up-to-64 bits, MSB-aligned, zero-padded past the end of
    /// the data. Only the first `64 - pos % 8` bits are trustworthy;
    /// callers bound their reads accordingly.
    fn peek64(&self) -> u64 {
        let byte = self.pos / 8;
        let word = if byte + 8 <= self.data.len() {
            u64::from_be_bytes(self.data[byte..byte + 8].try_into().expect("8-byte window"))
        } else {
            let mut padded = [0u8; 8];
            if byte < self.data.len() {
                let tail = &self.data[byte..];
                padded[..tail.len()].copy_from_slice(tail);
            }
            u64::from_be_bytes(padded)
        };
        word << (self.pos % 8)
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::CorruptStream`] at end of data.
    pub fn get_bit(&mut self) -> Result<bool, CodecError> {
        let byte = self.pos / 8;
        if byte >= self.data.len() {
            return Err(CodecError::CorruptStream {
                context: "unexpected end of stream",
            });
        }
        let bit = 7 - (self.pos % 8);
        self.pos += 1;
        Ok((self.data[byte] >> bit) & 1 == 1)
    }

    /// Reads `count` bits MSB-first.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::CorruptStream`] at end of data.
    ///
    /// # Panics
    ///
    /// Panics when `count > 32`.
    pub fn get_bits(&mut self, count: u8) -> Result<u32, CodecError> {
        assert!(count <= 32, "at most 32 bits at a time");
        if count == 0 {
            return Ok(0);
        }
        if count as usize > self.avail() {
            return Err(CodecError::CorruptStream {
                context: "unexpected end of stream",
            });
        }
        // count + pos % 8 <= 39, well inside the trustworthy window.
        let v = (self.peek64() >> (64 - count)) as u32;
        self.pos += count as usize;
        Ok(v)
    }

    /// Reads an unsigned exponential-Golomb code.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::CorruptStream`] on malformed or truncated data.
    pub fn get_ue(&mut self) -> Result<u32, CodecError> {
        let avail = self.avail();
        let peek = self.peek64();
        let zeros = peek.leading_zeros() as usize;
        if zeros > 31 {
            // All-zero tails read as an endless prefix; report whichever
            // failure a bit-at-a-time reader would have hit first.
            return Err(CodecError::CorruptStream {
                context: if avail <= 32 {
                    "unexpected end of stream"
                } else {
                    "exp-golomb prefix too long"
                },
            });
        }
        let len = 2 * zeros + 1;
        if len > avail {
            return Err(CodecError::CorruptStream {
                context: "unexpected end of stream",
            });
        }
        if len + self.pos % 8 > 64 {
            // The code's tail runs past the peek window (only reachable
            // with prefixes far longer than any level we emit); take the
            // bit-at-a-time path for exactness.
            return self.get_ue_slow();
        }
        let v = (peek >> (64 - len)) as u32;
        self.pos += len;
        Ok(v - 1)
    }

    /// Bit-at-a-time fallback for codes too long for the peek window.
    fn get_ue_slow(&mut self) -> Result<u32, CodecError> {
        let mut zeros = 0u8;
        while !self.get_bit()? {
            zeros += 1;
            if zeros > 31 {
                return Err(CodecError::CorruptStream {
                    context: "exp-golomb prefix too long",
                });
            }
        }
        let tail = self.get_bits(zeros)?;
        Ok(((1u32 << zeros) | tail) - 1)
    }

    /// Reads a signed exponential-Golomb code.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::CorruptStream`] on malformed or truncated data.
    pub fn get_se(&mut self) -> Result<i32, CodecError> {
        let v = self.get_ue()?;
        Ok(if v % 2 == 1 {
            (v / 2 + 1) as i32
        } else {
            -((v / 2) as i32)
        })
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b1011, 4);
        w.put_bits(0xABCD, 16);
        w.put_bit(true);
        let data = w.finish();
        let mut r = BitReader::new(&data);
        assert_eq!(r.get_bits(4).unwrap(), 0b1011);
        assert_eq!(r.get_bits(16).unwrap(), 0xABCD);
        assert!(r.get_bit().unwrap());
    }

    #[test]
    fn ue_roundtrip_small_and_large() {
        let values = [0u32, 1, 2, 3, 7, 8, 100, 1_000_000];
        let mut w = BitWriter::new();
        for &v in &values {
            w.put_ue(v);
        }
        let data = w.finish();
        let mut r = BitReader::new(&data);
        for &v in &values {
            assert_eq!(r.get_ue().unwrap(), v);
        }
    }

    #[test]
    fn se_roundtrip() {
        let values = [0i32, 1, -1, 2, -2, 17, -300, 4096, -4096];
        let mut w = BitWriter::new();
        for &v in &values {
            w.put_se(v);
        }
        let data = w.finish();
        let mut r = BitReader::new(&data);
        for &v in &values {
            assert_eq!(r.get_se().unwrap(), v);
        }
    }

    #[test]
    fn ue_code_lengths_grow_logarithmically() {
        let mut w0 = BitWriter::new();
        w0.put_ue(0);
        assert_eq!(w0.bit_len(), 1);
        let mut w1 = BitWriter::new();
        w1.put_ue(1);
        assert_eq!(w1.bit_len(), 3);
        let mut w6 = BitWriter::new();
        w6.put_ue(6);
        assert_eq!(w6.bit_len(), 5);
    }

    #[test]
    fn huge_ue_values_roundtrip_via_the_slow_path() {
        // u32::MAX - 1 codes as 31 prefix zeros + 32 value bits = 63 bits;
        // pushed off byte alignment this exercises get_ue_slow.
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.put_ue(u32::MAX - 1);
        w.put_ue(7);
        let data = w.finish();
        let mut r = BitReader::new(&data);
        assert_eq!(r.get_bits(3).unwrap(), 0b101);
        assert_eq!(r.get_ue().unwrap(), u32::MAX - 1);
        assert_eq!(r.get_ue().unwrap(), 7);
    }

    #[test]
    fn append_matches_straight_through_writes() {
        // Write the same symbol sequence (a) with one cursor and (b) split
        // across three writers stitched with append, at several split
        // points so both the aligned and misaligned branches run.
        let symbols: Vec<u32> = (0..97).map(|i| (i * 37) % 211).collect();
        let mut straight = BitWriter::new();
        for &s in &symbols {
            straight.put_ue(s);
        }
        let want = straight.finish();
        for split in [1usize, 13, 40, 96] {
            let mut a = BitWriter::new();
            let mut b = BitWriter::new();
            let mut c = BitWriter::new();
            for (i, &s) in symbols.iter().enumerate() {
                let w = if i < split {
                    &mut a
                } else if i < 2 * split.min(60) {
                    &mut b
                } else {
                    &mut c
                };
                w.put_ue(s);
            }
            let mut stitched = BitWriter::new();
            stitched.append(&a);
            stitched.append(&b);
            stitched.append(&c);
            assert_eq!(stitched.finish(), want, "split {split}");
        }
    }

    #[test]
    fn append_onto_empty_and_of_empty() {
        let mut w = BitWriter::new();
        let empty = BitWriter::new();
        w.append(&empty);
        assert_eq!(w.bit_len(), 0);
        let mut part = BitWriter::new();
        part.put_bits(0x2A, 7);
        w.append(&part);
        assert_eq!(w.bit_len(), 7);
        let data = w.finish();
        assert_eq!(BitReader::new(&data).get_bits(7).unwrap(), 0x2A);
    }

    #[test]
    fn reading_past_end_errors() {
        let data = [0xFFu8];
        let mut r = BitReader::new(&data);
        assert_eq!(r.get_bits(8).unwrap(), 0xFF);
        assert!(matches!(r.get_bit(), Err(CodecError::CorruptStream { .. })));
    }

    #[test]
    fn empty_stream_errors_cleanly() {
        let mut r = BitReader::new(&[]);
        assert!(r.get_ue().is_err());
    }

    #[test]
    fn all_zero_stream_errors_cleanly() {
        // 40 bits of zeros: a bit-at-a-time reader overruns its 31-zero
        // prefix budget; the windowed reader must also reject it.
        let mut r = BitReader::new(&[0u8; 5]);
        assert!(matches!(r.get_ue(), Err(CodecError::CorruptStream { .. })));
    }
}
