//! Bit-level I/O and exponential-Golomb coding, the entropy layer's
//! foundation.

use crate::CodecError;
use bytes::{BufMut, Bytes, BytesMut};

/// Writes individual bits MSB-first into a growable byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: BytesMut,
    current: u8,
    filled: u8,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends a single bit.
    pub fn put_bit(&mut self, bit: bool) {
        self.current = (self.current << 1) | bit as u8;
        self.filled += 1;
        if self.filled == 8 {
            self.buf.put_u8(self.current);
            self.current = 0;
            self.filled = 0;
        }
    }

    /// Appends the `count` low bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics when `count > 32`.
    pub fn put_bits(&mut self, value: u32, count: u8) {
        assert!(count <= 32, "at most 32 bits at a time");
        for i in (0..count).rev() {
            self.put_bit((value >> i) & 1 == 1);
        }
    }

    /// Unsigned exponential-Golomb code (as in H.264/H.265).
    pub fn put_ue(&mut self, value: u32) {
        let v = value + 1;
        let bits = 32 - v.leading_zeros() as u8;
        for _ in 0..bits - 1 {
            self.put_bit(false);
        }
        self.put_bits(v, bits);
    }

    /// Signed exponential-Golomb code (0, 1, −1, 2, −2, …).
    pub fn put_se(&mut self, value: i32) {
        let mapped = if value > 0 {
            (value as u32) * 2 - 1
        } else {
            (-value as u32) * 2
        };
        self.put_ue(mapped);
    }

    /// Pads with zero bits to a byte boundary and returns the stream.
    pub fn finish(mut self) -> Bytes {
        while self.filled != 0 {
            self.put_bit(false);
        }
        self.buf.freeze()
    }

    /// Bits written so far (excluding final padding).
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.filled as usize
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::CorruptStream`] at end of data.
    pub fn get_bit(&mut self) -> Result<bool, CodecError> {
        let byte = self.pos / 8;
        if byte >= self.data.len() {
            return Err(CodecError::CorruptStream {
                context: "unexpected end of stream",
            });
        }
        let bit = 7 - (self.pos % 8);
        self.pos += 1;
        Ok((self.data[byte] >> bit) & 1 == 1)
    }

    /// Reads `count` bits MSB-first.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::CorruptStream`] at end of data.
    ///
    /// # Panics
    ///
    /// Panics when `count > 32`.
    pub fn get_bits(&mut self, count: u8) -> Result<u32, CodecError> {
        assert!(count <= 32, "at most 32 bits at a time");
        let mut v = 0u32;
        for _ in 0..count {
            v = (v << 1) | self.get_bit()? as u32;
        }
        Ok(v)
    }

    /// Reads an unsigned exponential-Golomb code.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::CorruptStream`] on malformed or truncated data.
    pub fn get_ue(&mut self) -> Result<u32, CodecError> {
        let mut zeros = 0u8;
        while !self.get_bit()? {
            zeros += 1;
            if zeros > 31 {
                return Err(CodecError::CorruptStream {
                    context: "exp-golomb prefix too long",
                });
            }
        }
        let tail = self.get_bits(zeros)?;
        Ok(((1u32 << zeros) | tail) - 1)
    }

    /// Reads a signed exponential-Golomb code.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::CorruptStream`] on malformed or truncated data.
    pub fn get_se(&mut self) -> Result<i32, CodecError> {
        let v = self.get_ue()?;
        Ok(if v % 2 == 1 {
            (v / 2 + 1) as i32
        } else {
            -((v / 2) as i32)
        })
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b1011, 4);
        w.put_bits(0xABCD, 16);
        w.put_bit(true);
        let data = w.finish();
        let mut r = BitReader::new(&data);
        assert_eq!(r.get_bits(4).unwrap(), 0b1011);
        assert_eq!(r.get_bits(16).unwrap(), 0xABCD);
        assert!(r.get_bit().unwrap());
    }

    #[test]
    fn ue_roundtrip_small_and_large() {
        let values = [0u32, 1, 2, 3, 7, 8, 100, 1_000_000];
        let mut w = BitWriter::new();
        for &v in &values {
            w.put_ue(v);
        }
        let data = w.finish();
        let mut r = BitReader::new(&data);
        for &v in &values {
            assert_eq!(r.get_ue().unwrap(), v);
        }
    }

    #[test]
    fn se_roundtrip() {
        let values = [0i32, 1, -1, 2, -2, 17, -300, 4096, -4096];
        let mut w = BitWriter::new();
        for &v in &values {
            w.put_se(v);
        }
        let data = w.finish();
        let mut r = BitReader::new(&data);
        for &v in &values {
            assert_eq!(r.get_se().unwrap(), v);
        }
    }

    #[test]
    fn ue_code_lengths_grow_logarithmically() {
        let mut w0 = BitWriter::new();
        w0.put_ue(0);
        assert_eq!(w0.bit_len(), 1);
        let mut w1 = BitWriter::new();
        w1.put_ue(1);
        assert_eq!(w1.bit_len(), 3);
        let mut w6 = BitWriter::new();
        w6.put_ue(6);
        assert_eq!(w6.bit_len(), 5);
    }

    #[test]
    fn reading_past_end_errors() {
        let data = [0xFFu8];
        let mut r = BitReader::new(&data);
        assert_eq!(r.get_bits(8).unwrap(), 0xFF);
        assert!(matches!(r.get_bit(), Err(CodecError::CorruptStream { .. })));
    }

    #[test]
    fn empty_stream_errors_cleanly() {
        let mut r = BitReader::new(&[]);
        assert!(r.get_ue().is_err());
    }
}
