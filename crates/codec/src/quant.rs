//! Quantization of DCT coefficient blocks.

use crate::dct::Block8;

/// The JPEG Annex-K luminance quantization table — a perceptually-derived
/// base matrix scaled by the encoder's quality setting.
const BASE_LUMA: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// A quantization matrix derived from a quality factor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantMatrix {
    steps: [u16; 64],
}

impl QuantMatrix {
    /// Builds the matrix for `quality` in `1..=100` (JPEG-style scaling:
    /// 50 is the base table, higher is finer).
    ///
    /// # Panics
    ///
    /// Panics when `quality` is outside `1..=100`.
    pub fn from_quality(quality: u8) -> Self {
        assert!((1..=100).contains(&quality), "quality must be 1..=100");
        let scale = if quality < 50 {
            5000 / quality as u32
        } else {
            200 - 2 * quality as u32
        };
        let mut steps = [0u16; 64];
        for (s, &b) in steps.iter_mut().zip(BASE_LUMA.iter()) {
            *s = (((b as u32 * scale) + 50) / 100).clamp(1, 4096) as u16;
        }
        QuantMatrix { steps }
    }

    /// A flat matrix with a single step size (used for residual coding,
    /// whose statistics are not JPEG-like).
    ///
    /// # Panics
    ///
    /// Panics when `step` is zero.
    pub fn flat(step: u16) -> Self {
        assert!(step > 0, "step must be nonzero");
        QuantMatrix { steps: [step; 64] }
    }

    /// Step size at coefficient index `i`.
    pub fn step(&self, i: usize) -> u16 {
        self.steps[i]
    }
}

/// Quantizes a coefficient block to integer levels.
pub fn quantize(coeffs: &Block8, q: &QuantMatrix) -> [i16; 64] {
    let mut out = [0i16; 64];
    for i in 0..64 {
        out[i] = (coeffs[i] / q.steps[i] as f32)
            .round()
            .clamp(-32768.0, 32767.0) as i16;
    }
    out
}

/// Reconstructs coefficients from quantized levels.
pub fn dequantize(levels: &[i16; 64], q: &QuantMatrix) -> Block8 {
    let mut out = [0.0f32; 64];
    for i in 0..64 {
        out[i] = levels[i] as f32 * q.steps[i] as f32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_orders_step_sizes() {
        let lo = QuantMatrix::from_quality(20);
        let mid = QuantMatrix::from_quality(50);
        let hi = QuantMatrix::from_quality(90);
        for i in 0..64 {
            assert!(lo.step(i) >= mid.step(i));
            assert!(mid.step(i) >= hi.step(i));
        }
    }

    #[test]
    fn quality_50_is_base_table() {
        let q = QuantMatrix::from_quality(50);
        for (i, &base) in BASE_LUMA.iter().enumerate() {
            assert_eq!(q.step(i), base);
        }
    }

    #[test]
    fn quantize_dequantize_error_is_bounded_by_half_step() {
        let q = QuantMatrix::from_quality(50);
        let mut coeffs = [0.0f32; 64];
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = (i as f32 * 7.3) - 200.0;
        }
        let levels = quantize(&coeffs, &q);
        let back = dequantize(&levels, &q);
        for i in 0..64 {
            assert!(
                (coeffs[i] - back[i]).abs() <= q.step(i) as f32 * 0.5 + 1e-3,
                "coeff {i}"
            );
        }
    }

    #[test]
    fn zero_block_stays_zero() {
        let q = QuantMatrix::from_quality(75);
        let levels = quantize(&[0.0; 64], &q);
        assert!(levels.iter().all(|&l| l == 0));
    }

    #[test]
    fn flat_matrix_is_uniform() {
        let q = QuantMatrix::flat(8);
        assert!((0..64).all(|i| q.step(i) == 8));
    }

    #[test]
    #[should_panic(expected = "quality")]
    fn quality_zero_rejected() {
        let _ = QuantMatrix::from_quality(0);
    }

    #[test]
    fn higher_frequencies_quantized_more_coarsely() {
        let q = QuantMatrix::from_quality(50);
        assert!(q.step(63) > q.step(0));
    }
}
