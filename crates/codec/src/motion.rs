//! Macroblock motion estimation and compensation for inter frames.

use gss_frame::Plane;
use serde::{Deserialize, Serialize};

/// Macroblock side length in pixels.
pub const MB_SIZE: usize = 16;

/// A per-macroblock displacement into the reference frame, in pixels.
///
/// Components are `i16`: raw search results fit `i8`, but NEMO's
/// "upscale the motion vectors" step multiplies them by the SR factor,
/// which must not saturate (a ±127 clamp used to silently truncate large
/// motions and corrupt the reconstruction-path prediction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MotionVector {
    /// Horizontal displacement (reference x = block x + dx).
    pub dx: i16,
    /// Vertical displacement.
    pub dy: i16,
}

/// The motion vectors of one frame, in macroblock raster order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MotionField {
    mb_cols: usize,
    mb_rows: usize,
    vectors: Vec<MotionVector>,
}

impl MotionField {
    /// Creates a zero-motion field for a `width x height` frame.
    pub fn zero(width: usize, height: usize) -> Self {
        let mb_cols = width.div_ceil(MB_SIZE);
        let mb_rows = height.div_ceil(MB_SIZE);
        MotionField {
            mb_cols,
            mb_rows,
            vectors: vec![MotionVector::default(); mb_cols * mb_rows],
        }
    }

    /// Wraps existing vectors.
    ///
    /// # Panics
    ///
    /// Panics when `vectors.len() != mb_cols * mb_rows`.
    pub fn from_vectors(mb_cols: usize, mb_rows: usize, vectors: Vec<MotionVector>) -> Self {
        assert_eq!(vectors.len(), mb_cols * mb_rows, "vector count mismatch");
        MotionField {
            mb_cols,
            mb_rows,
            vectors,
        }
    }

    /// Macroblock grid size `(cols, rows)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.mb_cols, self.mb_rows)
    }

    /// Vector for macroblock `(bx, by)`.
    pub fn get(&self, bx: usize, by: usize) -> MotionVector {
        self.vectors[by * self.mb_cols + bx]
    }

    /// All vectors in raster order.
    pub fn vectors(&self) -> &[MotionVector] {
        &self.vectors
    }

    /// Mean vector magnitude in pixels — a scene-motion statistic the
    /// benchmarks report per game.
    pub fn mean_magnitude(&self) -> f64 {
        if self.vectors.is_empty() {
            return 0.0;
        }
        self.vectors
            .iter()
            .map(|v| ((v.dx as f64).powi(2) + (v.dy as f64).powi(2)).sqrt())
            .sum::<f64>()
            / self.vectors.len() as f64
    }

    /// Scales every vector by an integer factor — this is NEMO's "upscale
    /// the motion vectors" step. The wide `i16` representation keeps every
    /// realistic product exact (search range ±127 × scale ≤ 4 fits with
    /// room to spare); pathological factors saturate at the `i16` limits
    /// instead of wrapping.
    pub fn scaled(&self, factor: usize) -> MotionField {
        MotionField {
            mb_cols: self.mb_cols,
            mb_rows: self.mb_rows,
            vectors: self
                .vectors
                .iter()
                .map(|v| MotionVector {
                    dx: (v.dx as i32 * factor as i32).clamp(i16::MIN as i32, i16::MAX as i32)
                        as i16,
                    dy: (v.dy as i32 * factor as i32).clamp(i16::MIN as i32, i16::MAX as i32)
                        as i16,
                })
                .collect(),
        }
    }
}

/// Sum of absolute differences between a block of `cur` at `(x, y)` and a
/// displaced block of `reference`, with border replication.
fn sad(
    cur: &Plane<f32>,
    reference: &Plane<f32>,
    x: usize,
    y: usize,
    dx: i32,
    dy: i32,
    block: usize,
) -> f64 {
    let mut acc = 0.0f64;
    for by in 0..block {
        let cy = y + by;
        if cy >= cur.height() {
            break;
        }
        for bx in 0..block {
            let cx = x + bx;
            if cx >= cur.width() {
                break;
            }
            let r = reference.get_clamped(cx as isize + dx as isize, cy as isize + dy as isize);
            acc += (cur.get(cx, cy) - r).abs() as f64;
        }
    }
    acc
}

/// Estimates the motion field of `current` against `reference` using
/// three-step search over a `±search_range` window on the luma plane.
///
/// Macroblocks are independent, so rows of the macroblock grid are
/// searched in parallel through [`gss_platform::pool`]; the per-row
/// results are merged in raster order, keeping the field bit-identical
/// to a scalar search at any worker count.
///
/// # Panics
///
/// Panics when the planes differ in size or `search_range` is zero.
pub fn estimate_motion(
    current: &Plane<f32>,
    reference: &Plane<f32>,
    search_range: u8,
) -> MotionField {
    assert_eq!(current.size(), reference.size(), "plane size mismatch");
    assert!(search_range > 0, "search range must be nonzero");
    let (width, height) = current.size();
    let mb_cols = width.div_ceil(MB_SIZE);
    let mb_rows = height.div_ceil(MB_SIZE);
    let rows = gss_platform::pool::map_indexed(mb_rows, |by| {
        let mut row = Vec::with_capacity(mb_cols);
        for bx in 0..mb_cols {
            row.push(search_block(current, reference, bx, by, search_range));
        }
        row
    });
    let vectors = rows.into_iter().flatten().collect();
    MotionField::from_vectors(mb_cols, mb_rows, vectors)
}

/// Three-step search for one macroblock.
fn search_block(
    current: &Plane<f32>,
    reference: &Plane<f32>,
    bx: usize,
    by: usize,
    search_range: u8,
) -> MotionVector {
    let x = bx * MB_SIZE;
    let y = by * MB_SIZE;
    let mut best = (0i32, 0i32);
    let mut best_cost = sad(current, reference, x, y, 0, 0, MB_SIZE);
    let mut step = ((search_range as i32 + 1) / 2).max(1);
    while step >= 1 {
        let center = best;
        for (sx, sy) in [
            (-step, -step),
            (0, -step),
            (step, -step),
            (-step, 0),
            (step, 0),
            (-step, step),
            (0, step),
            (step, step),
        ] {
            let cand = (center.0 + sx, center.1 + sy);
            if cand.0.unsigned_abs() > search_range as u32
                || cand.1.unsigned_abs() > search_range as u32
            {
                continue;
            }
            let cost = sad(current, reference, x, y, cand.0, cand.1, MB_SIZE);
            if cost < best_cost {
                best_cost = cost;
                best = cand;
            }
        }
        step /= 2;
    }
    MotionVector {
        dx: best.0 as i16,
        dy: best.1 as i16,
    }
}

/// Builds the motion-compensated prediction of a frame plane from
/// `reference` and a motion field. `block` is the macroblock size in this
/// plane's resolution (16 for luma at coded size, 32 after 2x upscaling).
///
/// # Panics
///
/// Panics when the motion grid does not cover the plane at the given block
/// size.
pub fn compensate(reference: &Plane<f32>, motion: &MotionField, block: usize) -> Plane<f32> {
    let (width, height) = reference.size();
    let (mb_cols, mb_rows) = motion.grid();
    assert!(
        mb_cols * block >= width && mb_rows * block >= height,
        "motion grid {mb_cols}x{mb_rows} with block {block} cannot cover {width}x{height}"
    );
    let data = gss_platform::pool::build_rows(width, height, 0.0f32, |y, row| {
        let brow = y / block;
        for (x, out) in row.iter_mut().enumerate() {
            let v = motion.get(x / block, brow);
            *out = reference.get_clamped(x as isize + v.dx as isize, y as isize + v.dy as isize);
        }
    });
    Plane::from_vec(width, height, data).expect("row count matches plane size")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize) -> Plane<f32> {
        Plane::from_fn(w, h, |x, y| {
            128.0 + 80.0 * ((x as f32 * 0.33).sin() * (y as f32 * 0.21).cos())
        })
    }

    fn shifted(p: &Plane<f32>, dx: isize, dy: isize) -> Plane<f32> {
        Plane::from_fn(p.width(), p.height(), |x, y| {
            p.get_clamped(x as isize - dx, y as isize - dy)
        })
    }

    #[test]
    fn global_shift_is_recovered() {
        let reference = textured(64, 64);
        let current = shifted(&reference, 3, -2);
        let mf = estimate_motion(&current, &reference, 7);
        // interior macroblocks should find (dx=3, dy=-2): ref x = cur x + (-3)?
        // convention: reference x = block x + dx, so dx = -3, dy = 2
        let v = mf.get(1, 1);
        assert_eq!((v.dx, v.dy), (-3, 2), "{v:?}");
    }

    #[test]
    fn identical_frames_give_zero_motion() {
        let p = textured(48, 48);
        let mf = estimate_motion(&p, &p, 7);
        assert!(mf.vectors().iter().all(|v| v.dx == 0 && v.dy == 0));
        assert_eq!(mf.mean_magnitude(), 0.0);
    }

    #[test]
    fn compensation_reconstructs_shifted_frame() {
        let reference = textured(64, 64);
        let current = shifted(&reference, 4, 1);
        let mf = estimate_motion(&current, &reference, 7);
        let pred = compensate(&reference, &mf, MB_SIZE);
        // interior pixels should match near-exactly
        let mut max_err = 0.0f32;
        for y in 8..56 {
            for x in 8..56 {
                max_err = max_err.max((pred.get(x, y) - current.get(x, y)).abs());
            }
        }
        assert!(max_err < 1e-3, "max interior error {max_err}");
    }

    #[test]
    fn scaled_field_doubles_vectors() {
        let mf = MotionField::from_vectors(
            2,
            1,
            vec![
                MotionVector { dx: 3, dy: -2 },
                MotionVector { dx: -60, dy: 100 },
            ],
        );
        let s = mf.scaled(2);
        assert_eq!(s.get(0, 0), MotionVector { dx: 6, dy: -4 });
        // large vectors scale exactly — no ±127 saturation
        assert_eq!(s.get(1, 0), MotionVector { dx: -120, dy: 200 });
    }

    #[test]
    fn near_range_vectors_scale_without_truncation() {
        // regression: (±127, ∓127) × 2 used to clamp to ±127 and corrupt
        // the NEMO reconstruction prediction
        let mf = MotionField::from_vectors(
            2,
            1,
            vec![
                MotionVector { dx: 127, dy: -127 },
                MotionVector { dx: -128, dy: 64 },
            ],
        );
        let s2 = mf.scaled(2);
        assert_eq!(s2.get(0, 0), MotionVector { dx: 254, dy: -254 });
        assert_eq!(s2.get(1, 0), MotionVector { dx: -256, dy: 128 });
        let s4 = mf.scaled(4);
        assert_eq!(s4.get(0, 0), MotionVector { dx: 508, dy: -508 });
    }

    #[test]
    fn parallel_search_matches_scalar_field() {
        let reference = textured(96, 64);
        let current = shifted(&reference, -5, 3);
        let scalar = {
            let mb_cols = 96usize.div_ceil(MB_SIZE);
            let mb_rows = 64usize.div_ceil(MB_SIZE);
            let mut vectors = Vec::new();
            for by in 0..mb_rows {
                for bx in 0..mb_cols {
                    vectors.push(search_block(&current, &reference, bx, by, 7));
                }
            }
            MotionField::from_vectors(mb_cols, mb_rows, vectors)
        };
        assert_eq!(estimate_motion(&current, &reference, 7), scalar);
    }

    #[test]
    fn mean_magnitude_matches_hand_value() {
        let mf = MotionField::from_vectors(
            2,
            1,
            vec![MotionVector { dx: 3, dy: 4 }, MotionVector { dx: 0, dy: 0 }],
        );
        assert!((mf.mean_magnitude() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn non_mb_aligned_dimensions_work() {
        let reference = textured(50, 34);
        let current = shifted(&reference, 2, 2);
        let mf = estimate_motion(&current, &reference, 7);
        assert_eq!(mf.grid(), (4, 3));
        let pred = compensate(&reference, &mf, MB_SIZE);
        assert_eq!(pred.size(), (50, 34));
    }
}
