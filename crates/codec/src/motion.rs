//! Macroblock motion estimation and compensation for inter frames.

use gss_frame::Plane;
use serde::{Deserialize, Serialize};

/// Macroblock side length in pixels.
pub const MB_SIZE: usize = 16;

/// A per-macroblock displacement into the reference frame, in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MotionVector {
    /// Horizontal displacement (reference x = block x + dx).
    pub dx: i8,
    /// Vertical displacement.
    pub dy: i8,
}

/// The motion vectors of one frame, in macroblock raster order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MotionField {
    mb_cols: usize,
    mb_rows: usize,
    vectors: Vec<MotionVector>,
}

impl MotionField {
    /// Creates a zero-motion field for a `width x height` frame.
    pub fn zero(width: usize, height: usize) -> Self {
        let mb_cols = width.div_ceil(MB_SIZE);
        let mb_rows = height.div_ceil(MB_SIZE);
        MotionField {
            mb_cols,
            mb_rows,
            vectors: vec![MotionVector::default(); mb_cols * mb_rows],
        }
    }

    /// Wraps existing vectors.
    ///
    /// # Panics
    ///
    /// Panics when `vectors.len() != mb_cols * mb_rows`.
    pub fn from_vectors(mb_cols: usize, mb_rows: usize, vectors: Vec<MotionVector>) -> Self {
        assert_eq!(vectors.len(), mb_cols * mb_rows, "vector count mismatch");
        MotionField {
            mb_cols,
            mb_rows,
            vectors,
        }
    }

    /// Macroblock grid size `(cols, rows)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.mb_cols, self.mb_rows)
    }

    /// Vector for macroblock `(bx, by)`.
    pub fn get(&self, bx: usize, by: usize) -> MotionVector {
        self.vectors[by * self.mb_cols + bx]
    }

    /// All vectors in raster order.
    pub fn vectors(&self) -> &[MotionVector] {
        &self.vectors
    }

    /// Mean vector magnitude in pixels — a scene-motion statistic the
    /// benchmarks report per game.
    pub fn mean_magnitude(&self) -> f64 {
        if self.vectors.is_empty() {
            return 0.0;
        }
        self.vectors
            .iter()
            .map(|v| ((v.dx as f64).powi(2) + (v.dy as f64).powi(2)).sqrt())
            .sum::<f64>()
            / self.vectors.len() as f64
    }

    /// Scales every vector by an integer factor, saturating at i8 range —
    /// this is NEMO's "upscale the motion vectors" step.
    pub fn scaled(&self, factor: usize) -> MotionField {
        MotionField {
            mb_cols: self.mb_cols,
            mb_rows: self.mb_rows,
            vectors: self
                .vectors
                .iter()
                .map(|v| MotionVector {
                    dx: (v.dx as i32 * factor as i32).clamp(-128, 127) as i8,
                    dy: (v.dy as i32 * factor as i32).clamp(-128, 127) as i8,
                })
                .collect(),
        }
    }
}

/// Sum of absolute differences between a block of `cur` at `(x, y)` and a
/// displaced block of `reference`, with border replication.
fn sad(
    cur: &Plane<f32>,
    reference: &Plane<f32>,
    x: usize,
    y: usize,
    dx: i32,
    dy: i32,
    block: usize,
) -> f64 {
    let mut acc = 0.0f64;
    for by in 0..block {
        let cy = y + by;
        if cy >= cur.height() {
            break;
        }
        for bx in 0..block {
            let cx = x + bx;
            if cx >= cur.width() {
                break;
            }
            let r = reference.get_clamped(cx as isize + dx as isize, cy as isize + dy as isize);
            acc += (cur.get(cx, cy) - r).abs() as f64;
        }
    }
    acc
}

/// Estimates the motion field of `current` against `reference` using
/// three-step search over a `±search_range` window on the luma plane.
///
/// # Panics
///
/// Panics when the planes differ in size or `search_range` is zero.
pub fn estimate_motion(
    current: &Plane<f32>,
    reference: &Plane<f32>,
    search_range: u8,
) -> MotionField {
    assert_eq!(current.size(), reference.size(), "plane size mismatch");
    assert!(search_range > 0, "search range must be nonzero");
    let (width, height) = current.size();
    let mb_cols = width.div_ceil(MB_SIZE);
    let mb_rows = height.div_ceil(MB_SIZE);
    let mut vectors = Vec::with_capacity(mb_cols * mb_rows);
    for by in 0..mb_rows {
        for bx in 0..mb_cols {
            let x = bx * MB_SIZE;
            let y = by * MB_SIZE;
            let mut best = (0i32, 0i32);
            let mut best_cost = sad(current, reference, x, y, 0, 0, MB_SIZE);
            let mut step = ((search_range as i32 + 1) / 2).max(1);
            while step >= 1 {
                let center = best;
                for (sx, sy) in [
                    (-step, -step),
                    (0, -step),
                    (step, -step),
                    (-step, 0),
                    (step, 0),
                    (-step, step),
                    (0, step),
                    (step, step),
                ] {
                    let cand = (center.0 + sx, center.1 + sy);
                    if cand.0.unsigned_abs() > search_range as u32
                        || cand.1.unsigned_abs() > search_range as u32
                    {
                        continue;
                    }
                    let cost = sad(current, reference, x, y, cand.0, cand.1, MB_SIZE);
                    if cost < best_cost {
                        best_cost = cost;
                        best = cand;
                    }
                }
                step /= 2;
            }
            vectors.push(MotionVector {
                dx: best.0 as i8,
                dy: best.1 as i8,
            });
        }
    }
    MotionField::from_vectors(mb_cols, mb_rows, vectors)
}

/// Builds the motion-compensated prediction of a frame plane from
/// `reference` and a motion field. `block` is the macroblock size in this
/// plane's resolution (16 for luma at coded size, 32 after 2x upscaling).
///
/// # Panics
///
/// Panics when the motion grid does not cover the plane at the given block
/// size.
pub fn compensate(reference: &Plane<f32>, motion: &MotionField, block: usize) -> Plane<f32> {
    let (width, height) = reference.size();
    let (mb_cols, mb_rows) = motion.grid();
    assert!(
        mb_cols * block >= width && mb_rows * block >= height,
        "motion grid {mb_cols}x{mb_rows} with block {block} cannot cover {width}x{height}"
    );
    Plane::from_fn(width, height, |x, y| {
        let v = motion.get(x / block, y / block);
        reference.get_clamped(x as isize + v.dx as isize, y as isize + v.dy as isize)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize) -> Plane<f32> {
        Plane::from_fn(w, h, |x, y| {
            128.0 + 80.0 * ((x as f32 * 0.33).sin() * (y as f32 * 0.21).cos())
        })
    }

    fn shifted(p: &Plane<f32>, dx: isize, dy: isize) -> Plane<f32> {
        Plane::from_fn(p.width(), p.height(), |x, y| {
            p.get_clamped(x as isize - dx, y as isize - dy)
        })
    }

    #[test]
    fn global_shift_is_recovered() {
        let reference = textured(64, 64);
        let current = shifted(&reference, 3, -2);
        let mf = estimate_motion(&current, &reference, 7);
        // interior macroblocks should find (dx=3, dy=-2): ref x = cur x + (-3)?
        // convention: reference x = block x + dx, so dx = -3, dy = 2
        let v = mf.get(1, 1);
        assert_eq!((v.dx, v.dy), (-3, 2), "{v:?}");
    }

    #[test]
    fn identical_frames_give_zero_motion() {
        let p = textured(48, 48);
        let mf = estimate_motion(&p, &p, 7);
        assert!(mf.vectors().iter().all(|v| v.dx == 0 && v.dy == 0));
        assert_eq!(mf.mean_magnitude(), 0.0);
    }

    #[test]
    fn compensation_reconstructs_shifted_frame() {
        let reference = textured(64, 64);
        let current = shifted(&reference, 4, 1);
        let mf = estimate_motion(&current, &reference, 7);
        let pred = compensate(&reference, &mf, MB_SIZE);
        // interior pixels should match near-exactly
        let mut max_err = 0.0f32;
        for y in 8..56 {
            for x in 8..56 {
                max_err = max_err.max((pred.get(x, y) - current.get(x, y)).abs());
            }
        }
        assert!(max_err < 1e-3, "max interior error {max_err}");
    }

    #[test]
    fn scaled_field_doubles_vectors() {
        let mf = MotionField::from_vectors(
            2,
            1,
            vec![
                MotionVector { dx: 3, dy: -2 },
                MotionVector { dx: -60, dy: 100 },
            ],
        );
        let s = mf.scaled(2);
        assert_eq!(s.get(0, 0), MotionVector { dx: 6, dy: -4 });
        // saturation
        assert_eq!(s.get(1, 0), MotionVector { dx: -120, dy: 127 });
    }

    #[test]
    fn mean_magnitude_matches_hand_value() {
        let mf = MotionField::from_vectors(
            2,
            1,
            vec![MotionVector { dx: 3, dy: 4 }, MotionVector { dx: 0, dy: 0 }],
        );
        assert!((mf.mean_magnitude() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn non_mb_aligned_dimensions_work() {
        let reference = textured(50, 34);
        let current = shifted(&reference, 2, 2);
        let mf = estimate_motion(&current, &reference, 7);
        assert_eq!(mf.grid(), (4, 3));
        let pred = compensate(&reference, &mf, MB_SIZE);
        assert_eq!(pred.size(), (50, 34));
    }
}
