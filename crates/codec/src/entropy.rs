//! Plane-level transform coding: block split, DCT, quantization, zigzag
//! run-length entropy coding — fully invertible into a real bitstream.

use crate::bits::{BitReader, BitWriter};
use crate::dct::{dct8_forward, dct8_inverse};
use crate::quant::{dequantize, quantize, QuantMatrix};
use crate::CodecError;
use gss_frame::Plane;

/// Zigzag scan order for an 8x8 block (JPEG/H.26x order).
const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, //
    17, 24, 32, 25, 18, 11, 4, 5, //
    12, 19, 26, 33, 40, 48, 41, 34, //
    27, 20, 13, 6, 7, 14, 21, 28, //
    35, 42, 49, 56, 57, 50, 43, 36, //
    29, 22, 15, 23, 30, 37, 44, 51, //
    58, 59, 52, 45, 38, 31, 39, 46, //
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// End-of-block sentinel in the run alphabet (real runs are `0..=63`).
const EOB: u32 = 64;

/// Transform-codes one plane into the bit stream. Samples are taken as-is
/// (the caller centers intra samples; residuals are naturally centered).
/// The plane is padded to a multiple of 8 by edge replication.
///
/// The 8×8 blocks are independent and exp-Golomb codes are
/// self-delimiting, so each [`gss_platform::pool`] task gathers,
/// transforms, quantizes, and entropy-codes one block row into a private
/// [`BitWriter`]; the row streams are then stitched in raster order with
/// [`BitWriter::append`], which is bit-identical to one cursor writing
/// straight through at any worker count.
pub fn encode_plane(plane: &Plane<f32>, q: &QuantMatrix, w: &mut BitWriter) {
    let (width, height) = plane.size();
    let bw = width.div_ceil(8);
    let bh = height.div_ceil(8);
    let row_streams = gss_platform::pool::map_indexed(bh, |by| {
        let mut row_w = BitWriter::new();
        for bx in 0..bw {
            let mut block = [0.0f32; 64];
            for y in 0..8 {
                for x in 0..8 {
                    block[y * 8 + x] =
                        plane.get_clamped((bx * 8 + x) as isize, (by * 8 + y) as isize);
                }
            }
            encode_block(&quantize(&dct8_forward(&block), q), &mut row_w);
        }
        row_w
    });
    for row_w in &row_streams {
        w.append(row_w);
    }
}

pub(crate) fn encode_block(levels: &[i16; 64], w: &mut BitWriter) {
    let mut run = 0u32;
    for &zi in ZIGZAG.iter() {
        let level = levels[zi];
        if level == 0 {
            run += 1;
        } else {
            w.put_ue(run);
            w.put_se(level as i32);
            run = 0;
        }
    }
    w.put_ue(EOB);
}

/// Decodes a plane previously written by [`encode_plane`].
///
/// The mirror of [`encode_plane`]'s stage split: the bitstream parse is
/// serial (one bit cursor), then dequantization + inverse DCT + pixel
/// writes fan out one 8-row band per [`gss_platform::pool`] task — each
/// band is a disjoint slab of the output plane, so the result is
/// bit-identical to a scalar decode at any worker count.
///
/// # Errors
///
/// Returns [`CodecError::CorruptStream`] on truncated or invalid data and
/// [`CodecError::BadFrameSize`] for zero dimensions.
pub fn decode_plane(
    width: usize,
    height: usize,
    q: &QuantMatrix,
    r: &mut BitReader<'_>,
) -> Result<Plane<f32>, CodecError> {
    if width == 0 || height == 0 {
        return Err(CodecError::BadFrameSize { width, height });
    }
    let bw = width.div_ceil(8);
    let bh = height.div_ceil(8);
    let mut all_levels = Vec::with_capacity(bw * bh);
    for _ in 0..bw * bh {
        all_levels.push(decode_block(r)?);
    }
    let mut data = vec![0.0f32; width * height];
    gss_platform::pool::for_each_band_mut(&mut data, width * 8, |by, band| {
        let band_rows = band.len() / width;
        for bx in 0..bw {
            let block = dct8_inverse(&dequantize(&all_levels[by * bw + bx], q));
            for y in 0..8.min(band_rows) {
                for x in 0..8 {
                    let px = bx * 8 + x;
                    if px >= width {
                        break;
                    }
                    band[y * width + px] = block[y * 8 + x];
                }
            }
        }
    });
    Ok(Plane::from_vec(width, height, data).expect("buffer matches plane size"))
}

pub(crate) fn decode_block(r: &mut BitReader<'_>) -> Result<[i16; 64], CodecError> {
    let mut levels = [0i16; 64];
    let mut pos = 0usize;
    loop {
        let run = r.get_ue()?;
        if run == EOB {
            return Ok(levels);
        }
        pos += run as usize;
        if pos >= 64 {
            return Err(CodecError::CorruptStream {
                context: "run past end of block",
            });
        }
        let level = r.get_se()?;
        if level == 0 {
            return Err(CodecError::CorruptStream {
                context: "zero level in run-length pair",
            });
        }
        levels[ZIGZAG[pos]] = level.clamp(i16::MIN as i32, i16::MAX as i32) as i16;
        pos += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &z in ZIGZAG.iter() {
            assert!(!seen[z]);
            seen[z] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    fn textured(w: usize, h: usize) -> Plane<f32> {
        Plane::from_fn(w, h, |x, y| {
            let v = 90.0 * ((x as f32 * 0.35).sin() + (y as f32 * 0.2).cos());
            v.clamp(-128.0, 127.0)
        })
    }

    #[test]
    fn plane_roundtrip_quality_is_high() {
        let p = textured(40, 24);
        let q = QuantMatrix::from_quality(90);
        let mut w = BitWriter::new();
        encode_plane(&p, &q, &mut w);
        let data = w.finish();
        let mut r = BitReader::new(&data);
        let back = decode_plane(40, 24, &q, &mut r).unwrap();
        let mse = p.zip_map(&back, |a, b| (a - b) * (a - b)).unwrap().mean();
        assert!(mse < 12.0, "mse {mse}");
    }

    #[test]
    fn lower_quality_means_fewer_bits_and_more_error() {
        let p = textured(64, 64);
        let sizes: Vec<(usize, f64)> = [25u8, 50, 90]
            .iter()
            .map(|&quality| {
                let q = QuantMatrix::from_quality(quality);
                let mut w = BitWriter::new();
                encode_plane(&p, &q, &mut w);
                let bits = w.bit_len();
                let data = w.finish();
                let back = decode_plane(64, 64, &q, &mut BitReader::new(&data)).unwrap();
                let mse = p.zip_map(&back, |a, b| (a - b) * (a - b)).unwrap().mean();
                (bits, mse)
            })
            .collect();
        assert!(
            sizes[0].0 < sizes[1].0 && sizes[1].0 < sizes[2].0,
            "{sizes:?}"
        );
        assert!(
            sizes[0].1 > sizes[1].1 && sizes[1].1 > sizes[2].1,
            "{sizes:?}"
        );
    }

    #[test]
    fn zero_plane_is_tiny() {
        let p = Plane::filled(64, 64, 0.0f32);
        let q = QuantMatrix::from_quality(50);
        let mut w = BitWriter::new();
        encode_plane(&p, &q, &mut w);
        // 64 blocks, one EOB symbol each
        assert!(w.bit_len() <= 64 * 16, "bits {}", w.bit_len());
    }

    #[test]
    fn non_multiple_of_eight_dimensions_roundtrip() {
        let p = textured(37, 19);
        let q = QuantMatrix::from_quality(95);
        let mut w = BitWriter::new();
        encode_plane(&p, &q, &mut w);
        let data = w.finish();
        let back = decode_plane(37, 19, &q, &mut BitReader::new(&data)).unwrap();
        assert_eq!(back.size(), (37, 19));
    }

    #[test]
    fn truncated_stream_errors() {
        let p = textured(16, 16);
        let q = QuantMatrix::from_quality(50);
        let mut w = BitWriter::new();
        encode_plane(&p, &q, &mut w);
        let data = w.finish();
        let truncated = &data[..data.len() / 2];
        let mut r = BitReader::new(truncated);
        assert!(decode_plane(16, 16, &q, &mut r).is_err());
    }

    #[test]
    fn zero_dimension_rejected() {
        let q = QuantMatrix::from_quality(50);
        let mut r = BitReader::new(&[]);
        assert!(matches!(
            decode_plane(0, 8, &q, &mut r),
            Err(CodecError::BadFrameSize { .. })
        ));
    }
}
