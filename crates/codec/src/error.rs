use std::fmt;

/// Errors produced while encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// Frame dimensions must be positive multiples of two (for 4:2:0
    /// chroma subsampling).
    BadFrameSize {
        /// Offending width.
        width: usize,
        /// Offending height.
        height: usize,
    },
    /// The bitstream ended prematurely or contained an invalid symbol.
    CorruptStream {
        /// Human-readable context of the failure.
        context: &'static str,
    },
    /// An inter frame arrived before any intra frame established a
    /// reference.
    MissingReference,
    /// The packet's dimensions do not match the decoder's reference state.
    ReferenceMismatch {
        /// Size of the held reference.
        reference: (usize, usize),
        /// Size declared by the packet.
        packet: (usize, usize),
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadFrameSize { width, height } => {
                write!(f, "frame size {width}x{height} must be even and nonzero")
            }
            CodecError::CorruptStream { context } => {
                write!(f, "corrupt bitstream: {context}")
            }
            CodecError::MissingReference => {
                write!(f, "inter frame received before any intra frame")
            }
            CodecError::ReferenceMismatch { reference, packet } => write!(
                f,
                "reference {}x{} does not match packet {}x{}",
                reference.0, reference.1, packet.0, packet.1
            ),
        }
    }
}

impl std::error::Error for CodecError {}
