//! The decoder, including the codec-internal view (motion vectors and
//! residuals) that the NEMO baseline depends on.

use crate::bits::BitReader;
use crate::encoder::{halved, upsample2_bilinear, EncodedFrame, FrameType};
use crate::entropy::decode_plane;
use crate::intra::decode_plane_intra;
use crate::motion::{compensate, MotionField, MotionVector, MB_SIZE};
use crate::quant::QuantMatrix;
use crate::CodecError;
use gss_frame::Frame;
#[cfg(test)]
use gss_frame::Plane;
use gss_platform::plane_ops;

/// Codec internals exposed per decoded frame.
///
/// GameStreamSR treats the decoder as a black box (so it can run on the
/// hardware decoder); NEMO needs the [`DecodeDetail::Inter`] contents, which
/// is why it is stuck with a software decode path.
#[derive(Debug, Clone)]
pub enum DecodeDetail {
    /// The frame was self-contained.
    Intra,
    /// The frame was predicted; carries the transmitted motion field and
    /// the decoded residual (luma at coded size, chroma upsampled).
    Inter {
        /// Per-macroblock motion vectors.
        motion: MotionField,
        /// Decoded residual as a full-resolution frame (chroma upsampled
        /// from the 4:2:0 grid; `Y` plane residual is exact).
        residual: Frame,
    },
}

/// A decoded frame plus its codec-internal detail.
#[derive(Debug, Clone)]
pub struct DecodedFrame {
    /// The reconstructed picture.
    pub frame: Frame,
    /// Intra/inter internals.
    pub detail: DecodeDetail,
}

/// The streaming decoder; holds the reference frame between packets.
#[derive(Debug, Default)]
pub struct Decoder {
    reference: Option<Frame>,
}

impl Decoder {
    /// Creates a decoder with no reference state.
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Decodes the next packet of the stream.
    ///
    /// # Errors
    ///
    /// * [`CodecError::MissingReference`] — an inter packet arrived first.
    /// * [`CodecError::ReferenceMismatch`] — packet size differs from the
    ///   held reference.
    /// * [`CodecError::CorruptStream`] — malformed payload.
    pub fn decode(&mut self, packet: &EncodedFrame) -> Result<DecodedFrame, CodecError> {
        match packet.frame_type {
            FrameType::Intra => {
                let frame = decode_intra_payload(packet)?;
                self.reference = Some(frame.clone());
                Ok(DecodedFrame {
                    frame,
                    detail: DecodeDetail::Intra,
                })
            }
            FrameType::Inter => {
                let reference = self
                    .reference
                    .as_ref()
                    .ok_or(CodecError::MissingReference)?;
                if reference.size() != (packet.width, packet.height) {
                    return Err(CodecError::ReferenceMismatch {
                        reference: reference.size(),
                        packet: (packet.width, packet.height),
                    });
                }
                let (frame, motion, residual) = decode_inter_payload(packet, reference)?;
                self.reference = Some(frame.clone());
                Ok(DecodedFrame {
                    frame,
                    detail: DecodeDetail::Inter { motion, residual },
                })
            }
        }
    }

    /// [`Decoder::decode`] plus telemetry: bumps `FramesReconstructed` for
    /// inter packets (frames rebuilt from motion + residual against the
    /// reference). The output is identical to an untraced decode.
    ///
    /// # Errors
    ///
    /// Same as [`Decoder::decode`].
    pub fn decode_traced(
        &mut self,
        packet: &EncodedFrame,
        rec: &mut gss_telemetry::Recorder,
    ) -> Result<DecodedFrame, CodecError> {
        let decoded = self.decode(packet)?;
        if packet.frame_type == FrameType::Inter {
            rec.incr(gss_telemetry::Counter::FramesReconstructed);
        }
        Ok(decoded)
    }

    /// The decoder's current reference frame, if any.
    pub fn reference(&self) -> Option<&Frame> {
        self.reference.as_ref()
    }
}

/// Decodes an intra payload into a frame (shared with the encoder's closed
/// loop).
pub(crate) fn decode_intra_payload(packet: &EncodedFrame) -> Result<Frame, CodecError> {
    let (w, h) = (packet.width, packet.height);
    let q = QuantMatrix::from_quality(packet.quant.quality);
    let mut r = BitReader::new(&packet.payload);
    let unshift = |v: f32| (v + 128.0).clamp(0.0, 255.0);
    let y = plane_ops::map(&decode_plane_intra(w, h, &q, &mut r)?, unshift);
    let cb_half = plane_ops::map(&decode_plane_intra(w / 2, h / 2, &q, &mut r)?, unshift);
    let cr_half = plane_ops::map(&decode_plane_intra(w / 2, h / 2, &q, &mut r)?, unshift);
    Frame::from_planes(
        y,
        upsample2_bilinear(&cb_half),
        upsample2_bilinear(&cr_half),
    )
    .map_err(|_| CodecError::CorruptStream {
        context: "plane sizes diverged",
    })
}

/// Decodes an inter payload against `reference`, returning the
/// reconstruction, the motion field and the residual frame.
pub(crate) fn decode_inter_payload(
    packet: &EncodedFrame,
    reference: &Frame,
) -> Result<(Frame, MotionField, Frame), CodecError> {
    let (w, h) = (packet.width, packet.height);
    let mb_cols = w.div_ceil(MB_SIZE);
    let mb_rows = h.div_ceil(MB_SIZE);
    let mut r = BitReader::new(&packet.payload);
    let mut vectors = Vec::with_capacity(mb_cols * mb_rows);
    for _ in 0..mb_cols * mb_rows {
        let dx = r.get_se()?;
        let dy = r.get_se()?;
        // the encoder's search range is u8, so coded vectors fit i16 with
        // a wide margin; anything outside is stream corruption
        let range = i16::MIN as i32..=i16::MAX as i32;
        if !range.contains(&dx) || !range.contains(&dy) {
            return Err(CodecError::CorruptStream {
                context: "motion vector out of range",
            });
        }
        vectors.push(MotionVector {
            dx: dx as i16,
            dy: dy as i16,
        });
    }
    let motion = MotionField::from_vectors(mb_cols, mb_rows, vectors);

    let rq = QuantMatrix::flat(packet.quant.residual_step);
    let res_y = decode_plane(w, h, &rq, &mut r)?;
    let res_cb = decode_plane(w / 2, h / 2, &rq, &mut r)?;
    let res_cr = decode_plane(w / 2, h / 2, &rq, &mut r)?;

    let pred_y = compensate(reference.y(), &motion, MB_SIZE);
    let chroma_motion = halved(&motion);
    let pred_cb = compensate(
        &plane_ops::downsample_box(reference.cb(), 2),
        &chroma_motion,
        MB_SIZE / 2,
    );
    let pred_cr = compensate(
        &plane_ops::downsample_box(reference.cr(), 2),
        &chroma_motion,
        MB_SIZE / 2,
    );

    let add = |p: f32, d: f32| (p + d).clamp(0.0, 255.0);
    let y = plane_ops::zip_map(&pred_y, &res_y, add);
    let cb_half = plane_ops::zip_map(&pred_cb, &res_cb, add);
    let cr_half = plane_ops::zip_map(&pred_cr, &res_cr, add);

    let frame = Frame::from_planes(
        y,
        upsample2_bilinear(&cb_half),
        upsample2_bilinear(&cr_half),
    )
    .expect("plane sizes agree");
    let residual = Frame::from_planes(
        res_y,
        upsample2_bilinear(&res_cb),
        upsample2_bilinear(&res_cr),
    )
    .expect("plane sizes agree");
    Ok((frame, motion, residual))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{Encoder, EncoderConfig};
    use gss_metrics::psnr;

    fn moving_frame(w: usize, h: usize, t: f32) -> Frame {
        Frame::from_planes(
            Plane::from_fn(w, h, |x, y| {
                let fx = x as f32 - t * 2.0;
                (128.0 + 70.0 * ((fx * 0.25).sin() * (y as f32 * 0.2).cos())).clamp(0.0, 255.0)
            }),
            Plane::from_fn(w, h, |x, _| 110.0 + (x % 16) as f32),
            Plane::filled(w, h, 140.0),
        )
        .unwrap()
    }

    #[test]
    fn intra_roundtrip_psnr_is_high() {
        let mut enc = Encoder::new(EncoderConfig {
            quality: 90,
            ..EncoderConfig::default()
        });
        let mut dec = Decoder::new();
        let f = moving_frame(64, 48, 0.0);
        let d = dec.decode(&enc.encode(&f).unwrap()).unwrap();
        let p = psnr(&f, &d.frame).unwrap();
        assert!(p > 35.0, "psnr {p:.2}");
        assert!(matches!(d.detail, DecodeDetail::Intra));
    }

    #[test]
    fn gop_decodes_with_stable_quality() {
        let mut enc = Encoder::new(EncoderConfig {
            gop_size: 10,
            ..EncoderConfig::default()
        });
        let mut dec = Decoder::new();
        let mut min_psnr = f64::INFINITY;
        for t in 0..10 {
            let f = moving_frame(64, 48, t as f32);
            let d = dec.decode(&enc.encode(&f).unwrap()).unwrap();
            min_psnr = min_psnr.min(psnr(&f, &d.frame).unwrap());
        }
        assert!(min_psnr > 30.0, "min psnr {min_psnr:.2}");
    }

    #[test]
    fn encoder_and_decoder_references_agree() {
        // the closed loop means the encoder's internal reference equals the
        // decoder's output exactly
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut dec = Decoder::new();
        for t in 0..3 {
            let f = moving_frame(48, 32, t as f32);
            let d = dec.decode(&enc.encode(&f).unwrap()).unwrap();
            let _ = d;
        }
        // encode one more and check prediction consistency via quality
        let f = moving_frame(48, 32, 3.0);
        let d = dec.decode(&enc.encode(&f).unwrap()).unwrap();
        assert!(psnr(&f, &d.frame).unwrap() > 28.0);
    }

    #[test]
    fn inter_detail_exposes_motion_and_residual() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut dec = Decoder::new();
        dec.decode(&enc.encode(&moving_frame(64, 48, 0.0)).unwrap())
            .unwrap();
        let d = dec
            .decode(&enc.encode(&moving_frame(64, 48, 1.0)).unwrap())
            .unwrap();
        match d.detail {
            DecodeDetail::Inter { motion, residual } => {
                assert_eq!(motion.grid(), (4, 3));
                assert_eq!(residual.size(), (64, 48));
                // content moves left 2 px/frame, so motion should be nonzero
                assert!(motion.mean_magnitude() > 0.5, "{}", motion.mean_magnitude());
            }
            DecodeDetail::Intra => panic!("expected inter"),
        }
    }

    #[test]
    fn inter_before_intra_errors() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let f = moving_frame(32, 32, 0.0);
        enc.encode(&f).unwrap();
        let inter = enc.encode(&f).unwrap();
        let mut fresh = Decoder::new();
        assert!(matches!(
            fresh.decode(&inter),
            Err(CodecError::MissingReference)
        ));
    }

    #[test]
    fn reference_mismatch_errors() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut dec = Decoder::new();
        dec.decode(&enc.encode(&moving_frame(32, 32, 0.0)).unwrap())
            .unwrap();
        // craft a decoder with a different-size reference
        let mut enc2 = Encoder::new(EncoderConfig::default());
        let mut dec2 = Decoder::new();
        dec2.decode(&enc2.encode(&moving_frame(64, 32, 0.0)).unwrap())
            .unwrap();
        enc2.encode(&moving_frame(64, 32, 1.0)).unwrap();
        // feed an inter packet for 32x32 into dec2 (reference is 64x32)
        let inter32 = enc.encode(&moving_frame(32, 32, 1.0)).unwrap();
        assert!(matches!(
            dec2.decode(&inter32),
            Err(CodecError::ReferenceMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_payload_is_detected() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut dec = Decoder::new();
        let mut packet = enc.encode(&moving_frame(32, 32, 0.0)).unwrap();
        packet.payload = packet.payload.slice(0..packet.payload.len() / 3);
        assert!(dec.decode(&packet).is_err());
    }
}
