//! Intra (spatial) prediction for keyframe blocks, in the H.26x mold.
//!
//! Each 8×8 block is predicted from its already-reconstructed neighbours —
//! DC (mean), horizontal (replicate the left column) or vertical (replicate
//! the top row) — and only the prediction *residual* is transform-coded.
//! Smooth regions (sky, fog, shaded walls) collapse to near-zero residuals,
//! which is where real encoders win most of their intra compression.
//!
//! The encoder runs a closed reconstruction loop block-by-block so its
//! predictions always match what the decoder will see.

use crate::bits::{BitReader, BitWriter};
use crate::dct::{dct8_forward, dct8_inverse, Block8};
use crate::entropy::{decode_block, encode_block};
use crate::quant::{dequantize, quantize, QuantMatrix};
use crate::CodecError;
use gss_frame::Plane;

/// Spatial prediction mode of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntraMode {
    /// Predict every sample as the mean of the available neighbours.
    Dc,
    /// Replicate the reconstructed column left of the block.
    Horizontal,
    /// Replicate the reconstructed row above the block.
    Vertical,
}

impl IntraMode {
    const ALL: [IntraMode; 3] = [IntraMode::Dc, IntraMode::Horizontal, IntraMode::Vertical];

    fn code(self) -> u32 {
        match self {
            IntraMode::Dc => 0,
            IntraMode::Horizontal => 1,
            IntraMode::Vertical => 2,
        }
    }

    fn from_code(code: u32) -> Result<Self, CodecError> {
        match code {
            0 => Ok(IntraMode::Dc),
            1 => Ok(IntraMode::Horizontal),
            2 => Ok(IntraMode::Vertical),
            _ => Err(CodecError::CorruptStream {
                context: "invalid intra prediction mode",
            }),
        }
    }
}

/// Builds the prediction block for `(bx, by)` from the reconstruction
/// plane. Samples are in the centered domain (−128..=127); unavailable
/// neighbours (frame edges) predict 0 (mid-grey).
fn predict(recon: &Plane<f32>, bx: usize, by: usize, mode: IntraMode) -> Block8 {
    let x0 = bx * 8;
    let y0 = by * 8;
    let left_available = x0 > 0;
    let top_available = y0 > 0;
    let mut out = [0.0f32; 64];
    match mode {
        IntraMode::Dc => {
            let mut acc = 0.0f32;
            let mut n = 0usize;
            if left_available {
                for dy in 0..8 {
                    if y0 + dy < recon.height() {
                        acc += recon.get(x0 - 1, y0 + dy);
                        n += 1;
                    }
                }
            }
            if top_available {
                for dx in 0..8 {
                    if x0 + dx < recon.width() {
                        acc += recon.get(x0 + dx, y0 - 1);
                        n += 1;
                    }
                }
            }
            let dc = if n > 0 { acc / n as f32 } else { 0.0 };
            out.fill(dc);
        }
        IntraMode::Horizontal => {
            for dy in 0..8 {
                let v = if left_available {
                    recon.get_clamped(x0 as isize - 1, (y0 + dy) as isize)
                } else {
                    0.0
                };
                for dx in 0..8 {
                    out[dy * 8 + dx] = v;
                }
            }
        }
        IntraMode::Vertical => {
            for dx in 0..8 {
                let v = if top_available {
                    recon.get_clamped((x0 + dx) as isize, y0 as isize - 1)
                } else {
                    0.0
                };
                for dy in 0..8 {
                    out[dy * 8 + dx] = v;
                }
            }
        }
    }
    out
}

fn load_block(plane: &Plane<f32>, bx: usize, by: usize) -> Block8 {
    let mut b = [0.0f32; 64];
    for y in 0..8 {
        for x in 0..8 {
            b[y * 8 + x] = plane.get_clamped((bx * 8 + x) as isize, (by * 8 + y) as isize);
        }
    }
    b
}

fn ssd(a: &Block8, b: &Block8) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum()
}

/// Intra-codes a plane (centered domain, −128..=127) with per-block mode
/// selection, writing modes + residual coefficients into the stream.
pub fn encode_plane_intra(plane: &Plane<f32>, q: &QuantMatrix, w: &mut BitWriter) {
    let (width, height) = plane.size();
    let bw = width.div_ceil(8);
    let bh = height.div_ceil(8);
    let mut recon = Plane::filled(width, height, 0.0f32);
    for by in 0..bh {
        for bx in 0..bw {
            let source = load_block(plane, bx, by);
            // pick the mode with minimal prediction error
            let (mode, pred) = IntraMode::ALL
                .into_iter()
                .map(|m| (m, predict(&recon, bx, by, m)))
                .min_by(|(_, a), (_, b)| ssd(&source, a).total_cmp(&ssd(&source, b)))
                .expect("non-empty mode set");
            let mut residual = [0.0f32; 64];
            for i in 0..64 {
                residual[i] = source[i] - pred[i];
            }
            let levels = quantize(&dct8_forward(&residual), q);
            w.put_bits(mode.code(), 2);
            encode_block(&levels, w);
            // closed-loop reconstruction for the next blocks' predictions
            let rec_res = dct8_inverse(&dequantize(&levels, q));
            for y in 0..8 {
                let py = by * 8 + y;
                if py >= height {
                    break;
                }
                for x in 0..8 {
                    let px = bx * 8 + x;
                    if px >= width {
                        break;
                    }
                    recon.set(
                        px,
                        py,
                        (pred[y * 8 + x] + rec_res[y * 8 + x]).clamp(-128.0, 127.0),
                    );
                }
            }
        }
    }
}

/// Decodes a plane written by [`encode_plane_intra`].
///
/// # Errors
///
/// Returns [`CodecError::CorruptStream`] on malformed data and
/// [`CodecError::BadFrameSize`] for zero dimensions.
pub fn decode_plane_intra(
    width: usize,
    height: usize,
    q: &QuantMatrix,
    r: &mut BitReader<'_>,
) -> Result<Plane<f32>, CodecError> {
    if width == 0 || height == 0 {
        return Err(CodecError::BadFrameSize { width, height });
    }
    let bw = width.div_ceil(8);
    let bh = height.div_ceil(8);
    let mut recon = Plane::filled(width, height, 0.0f32);
    for by in 0..bh {
        for bx in 0..bw {
            let mode = IntraMode::from_code(r.get_bits(2)?)?;
            let pred = predict(&recon, bx, by, mode);
            let levels = decode_block(r)?;
            let rec_res = dct8_inverse(&dequantize(&levels, q));
            for y in 0..8 {
                let py = by * 8 + y;
                if py >= height {
                    break;
                }
                for x in 0..8 {
                    let px = bx * 8 + x;
                    if px >= width {
                        break;
                    }
                    recon.set(
                        px,
                        py,
                        (pred[y * 8 + x] + rec_res[y * 8 + x]).clamp(-128.0, 127.0),
                    );
                }
            }
        }
    }
    Ok(recon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::encode_plane;

    fn roundtrip(p: &Plane<f32>, quality: u8) -> (Plane<f32>, usize) {
        let q = QuantMatrix::from_quality(quality);
        let mut w = BitWriter::new();
        encode_plane_intra(p, &q, &mut w);
        let bits = w.bit_len();
        let data = w.finish();
        let mut r = BitReader::new(&data);
        let back = decode_plane_intra(p.width(), p.height(), &q, &mut r).unwrap();
        (back, bits)
    }

    fn textured(w: usize, h: usize) -> Plane<f32> {
        Plane::from_fn(w, h, |x, y| {
            let v = 80.0 * ((x as f32 * 0.3).sin() + (y as f32 * 0.17).cos());
            v.clamp(-128.0, 127.0)
        })
    }

    #[test]
    fn roundtrip_quality_is_high() {
        let p = textured(48, 32);
        let (back, _) = roundtrip(&p, 90);
        let mse = p.zip_map(&back, |a, b| (a - b) * (a - b)).unwrap().mean();
        assert!(mse < 12.0, "mse {mse}");
    }

    #[test]
    fn prediction_beats_no_prediction_on_smooth_content() {
        // content varying only vertically: horizontal prediction replicates
        // the left column exactly, so residuals vanish for every block with
        // a left neighbour — far fewer bits than the prediction-free path
        let p = Plane::from_fn(64, 64, |_, y| (y as f32 * 9.0) % 200.0 - 100.0);
        let q = QuantMatrix::from_quality(75);
        let (_, bits_pred) = roundtrip(&p, 75);
        let mut w = BitWriter::new();
        encode_plane(&p, &q, &mut w);
        let bits_plain = w.bit_len();
        assert!(
            (bits_pred as f64) < bits_plain as f64 * 0.6,
            "pred {bits_pred} vs plain {bits_plain}"
        );
    }

    #[test]
    fn prediction_never_costs_much_on_diagonal_content() {
        // a diagonal ramp fits none of the three modes perfectly; the mode
        // bits must still not blow up the stream
        let p = Plane::from_fn(64, 64, |x, y| (x as f32 + y as f32) * 0.8 - 50.0);
        let q = QuantMatrix::from_quality(75);
        let (_, bits_pred) = roundtrip(&p, 75);
        let mut w = BitWriter::new();
        encode_plane(&p, &q, &mut w);
        let bits_plain = w.bit_len();
        assert!(
            (bits_pred as f64) < bits_plain as f64 * 1.05,
            "pred {bits_pred} vs plain {bits_plain}"
        );
    }

    #[test]
    fn horizontal_stripes_pick_cheap_modes() {
        // rows of constant value: vertical prediction makes residuals ~0
        let p = Plane::from_fn(32, 32, |_, y| (y as f32 * 7.0) - 100.0);
        let (back, bits) = roundtrip(&p, 75);
        let mse = p.zip_map(&back, |a, b| (a - b) * (a - b)).unwrap().mean();
        assert!(mse < 8.0, "mse {mse}");
        // 16 blocks; a handful of bits each once the first column is paid for
        assert!(bits < 2600, "bits {bits}");
    }

    #[test]
    fn non_multiple_of_eight_dimensions_roundtrip() {
        let p = textured(37, 21);
        let (back, _) = roundtrip(&p, 95);
        assert_eq!(back.size(), (37, 21));
    }

    #[test]
    fn truncated_stream_errors() {
        let p = textured(32, 32);
        let q = QuantMatrix::from_quality(60);
        let mut w = BitWriter::new();
        encode_plane_intra(&p, &q, &mut w);
        let data = w.finish();
        let mut r = BitReader::new(&data[..data.len() / 2]);
        assert!(decode_plane_intra(32, 32, &q, &mut r).is_err());
    }

    #[test]
    fn invalid_mode_code_is_rejected() {
        // mode code 3 is invalid; craft a stream starting with it
        let mut w = BitWriter::new();
        w.put_bits(3, 2);
        w.put_ue(64); // EOB
        let data = w.finish();
        let q = QuantMatrix::from_quality(50);
        let mut r = BitReader::new(&data);
        assert!(matches!(
            decode_plane_intra(8, 8, &q, &mut r),
            Err(CodecError::CorruptStream { .. })
        ));
    }

    #[test]
    fn first_block_has_no_neighbours_and_still_roundtrips() {
        let p = Plane::filled(8, 8, 55.0f32);
        let (back, _) = roundtrip(&p, 90);
        let mse = p.zip_map(&back, |a, b| (a - b) * (a - b)).unwrap().mean();
        assert!(mse < 4.0, "mse {mse}");
    }

    #[test]
    fn zero_dimension_rejected() {
        let q = QuantMatrix::from_quality(50);
        let mut r = BitReader::new(&[]);
        assert!(matches!(
            decode_plane_intra(0, 8, &q, &mut r),
            Err(CodecError::BadFrameSize { .. })
        ));
    }
}
