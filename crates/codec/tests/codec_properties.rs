//! Property-based robustness tests for the codec: roundtrip error bounds,
//! decoder behaviour on hostile bitstreams, and bitstream-layer fuzzing.

use gss_codec::{BitReader, BitWriter, Decoder, EncodedFrame, Encoder, EncoderConfig, FrameType};
use gss_frame::{Frame, Plane};
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = Frame> {
    // even dimensions (4:2:0), textured with seeded pseudo-random content
    (2usize..20, 2usize..14, 0u64..10_000).prop_map(|(hw, hh, seed)| {
        let (w, h) = (hw * 2, hh * 2);
        let lum = Plane::from_fn(w, h, |x, y| {
            let v = (x as u64)
                .wrapping_mul(seed.wrapping_add(7))
                .wrapping_add((y as u64).wrapping_mul(13))
                .wrapping_mul(2654435761);
            (v % 256) as f32
        });
        Frame::from_planes(lum, Plane::filled(w, h, 120.0), Plane::filled(w, h, 136.0))
            .expect("planes share size")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn intra_roundtrip_error_is_bounded(frame in arb_frame(), quality in 30u8..=95) {
        let mut enc = Encoder::new(EncoderConfig { quality, ..EncoderConfig::default() });
        let mut dec = Decoder::new();
        let packet = enc.encode(&frame).unwrap();
        prop_assert_eq!(packet.frame_type, FrameType::Intra);
        let out = dec.decode(&packet).unwrap();
        prop_assert_eq!(out.frame.size(), frame.size());
        // worst-case per-pixel error is bounded by quantizer coarseness;
        // white-noise content is the adversarial case, so the bound is loose
        let max_err = frame
            .y()
            .zip_map(out.frame.y(), |a, b| (a - b).abs())
            .unwrap()
            .min_max()
            .1;
        prop_assert!(max_err < 230.0, "max err {max_err}");
    }

    #[test]
    fn gop_roundtrip_never_fails(frame in arb_frame(), gop in 1usize..5) {
        let mut enc = Encoder::new(EncoderConfig { gop_size: gop, ..EncoderConfig::default() });
        let mut dec = Decoder::new();
        for _ in 0..(gop + 2) {
            let packet = enc.encode(&frame).unwrap();
            let out = dec.decode(&packet).unwrap();
            prop_assert_eq!(out.frame.size(), frame.size());
        }
    }

    #[test]
    fn decoder_never_panics_on_corrupt_payloads(
        frame in arb_frame(),
        cut in 0.0f64..1.0,
        flip_byte in 0usize..4096,
        flip_mask in 1u8..=255,
    ) {
        // produce a real packet, then mutilate it: truncate and bit-flip
        let mut enc = Encoder::new(EncoderConfig::default());
        let packet = enc.encode(&frame).unwrap();
        let mut bytes = packet.payload.to_vec();
        let keep = ((bytes.len() as f64) * cut) as usize;
        bytes.truncate(keep);
        if !bytes.is_empty() {
            let i = flip_byte % bytes.len();
            bytes[i] ^= flip_mask;
        }
        let hostile = EncodedFrame {
            payload: bytes::Bytes::from(bytes),
            ..packet
        };
        let mut dec = Decoder::new();
        // must return Ok (lucky decode) or Err — never panic
        let _ = dec.decode(&hostile);
    }

    #[test]
    fn exp_golomb_stream_roundtrips(values in proptest::collection::vec(-50_000i32..50_000, 0..200)) {
        let mut w = BitWriter::new();
        for &v in &values {
            w.put_se(v);
        }
        let data = w.finish();
        let mut r = BitReader::new(&data);
        for &v in &values {
            prop_assert_eq!(r.get_se().unwrap(), v);
        }
    }

    #[test]
    fn encoding_is_deterministic(frame in arb_frame()) {
        let mk = || {
            let mut enc = Encoder::new(EncoderConfig::default());
            enc.encode(&frame).unwrap().payload
        };
        prop_assert_eq!(mk(), mk());
    }

    #[test]
    fn inter_frames_decode_to_encoder_reference(frame in arb_frame()) {
        // closed loop: decoding the stream reproduces exactly what the
        // encoder predicted from (verified indirectly by a second inter
        // frame decoding without drift explosions)
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut dec = Decoder::new();
        dec.decode(&enc.encode(&frame).unwrap()).unwrap();
        let first = dec.decode(&enc.encode(&frame).unwrap()).unwrap();
        let second = dec.decode(&enc.encode(&frame).unwrap()).unwrap();
        // a static scene: successive inter frames must not diverge
        let drift = first
            .frame
            .y()
            .zip_map(second.frame.y(), |a, b| (a - b).abs())
            .unwrap()
            .mean();
        prop_assert!(drift < 4.0, "drift {drift}");
    }
}
