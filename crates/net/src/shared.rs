//! Shared-uplink simulation: one bottleneck, many per-session flows.
//!
//! A consolidation server multiplexes every session's downlink traffic
//! through one radio/backhaul bottleneck. [`SharedLink`] models that: a
//! single token-bucket queue, bandwidth trace, and RNG — shared by all
//! flows — plus per-flow fault timelines and per-flow accounting. The
//! shared queue is what couples sessions: one session's burst steals
//! serialization capacity from everyone, so a frame can be tail-dropped
//! even though its own flow is healthy.
//!
//! **Drop attribution contract.** Every drop is charged to exactly one
//! cause in the *victim* flow's ledger:
//!
//! - an outage window (shared or flow-local) active at send time charges
//!   [`DropCause::Outage`] — checked first, like [`Link`];
//! - otherwise a tail drop charges [`DropCause::QueueOverflow`] to the
//!   flow whose frame was refused, even when the queue was filled by
//!   *other* flows' traffic (cross-session contention is congestion, not
//!   an outage, from the victim's point of view).
//!
//! The per-flow ledgers partition the per-flow drop totals by
//! construction ([`FlowStats::consistent`]), so fleet-level attribution
//! can sum them without double counting.
//!
//! Determinism matches [`Link`]: one seed fixes the bandwidth trace and
//! jitter stream, and callers that present sends in a deterministic order
//! (the fleet steps sessions in session-id order) replay bit-identically
//! at any worker count.

use crate::{draw_bandwidth, DropCause, FaultPlan, Link, LinkProfile, Transfer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-flow transmission accounting, with drops partitioned by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowStats {
    /// Frames this flow offered to the link.
    pub sent: u64,
    /// Frames of this flow the link did not deliver.
    pub dropped: u64,
    /// Drops charged to queue overflow (congestion, including
    /// cross-session contention on the shared queue).
    pub drops_queue_overflow: u64,
    /// Drops charged to an outage window (shared or flow-local).
    pub drops_outage: u64,
    /// Payload bytes this flow offered (delivered or not).
    pub bytes: u64,
    /// Payload bytes the link actually delivered for this flow — the
    /// numerator of the flow's *consumed* rate, as opposed to `bytes`
    /// (offered) and the allocated rate below.
    pub bytes_delivered: u64,
    /// Sum of per-tick fair-share allocations granted to this flow, in
    /// kbit/s fixed point (f64 rates rounded to whole kbit/s keep the
    /// struct `Eq` and the ledger bit-deterministic).
    pub allocated_kbps_sum: u64,
    /// Ticks over which an allocation was recorded (the denominator of
    /// [`FlowStats::mean_allocated_mbps`]).
    pub alloc_ticks: u64,
}

impl FlowStats {
    /// Fraction of this flow's frames that were dropped.
    pub fn drop_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.dropped as f64 / self.sent as f64
        }
    }

    /// Mean fair-share rate allocated to this flow across the recorded
    /// ticks, Mbit/s. `None` when no allocation was ever recorded.
    pub fn mean_allocated_mbps(&self) -> Option<f64> {
        if self.alloc_ticks == 0 {
            None
        } else {
            Some(self.allocated_kbps_sum as f64 / self.alloc_ticks as f64 / 1000.0)
        }
    }

    /// The ledger invariant: cause-specific counts partition the total
    /// (no drop is lost, none is double-counted under two causes).
    pub fn consistent(&self) -> bool {
        self.drops_queue_overflow + self.drops_outage == self.dropped
    }
}

#[derive(Debug, Clone)]
struct Flow {
    fault_plan: FaultPlan,
    stats: FlowStats,
}

/// A shared bottleneck uplink carrying one flow per session.
///
/// Mirrors [`Link`]'s channel model — token-bucket queue, coherence-
/// interval bandwidth re-rolls, half-normal jitter, tail drop — but the
/// queue, bandwidth trace and RNG are shared across flows, while fault
/// timelines and accounting are per flow. A flow-local
/// [`BandwidthCollapse`](crate::FaultKind::BandwidthCollapse) throttles
/// that flow's access rate into the shared bottleneck (a degraded last
/// hop); shaping the bottleneck itself is the shared plan's job.
#[derive(Debug, Clone)]
pub struct SharedLink {
    profile: LinkProfile,
    rng: SmallRng,
    queue_bits: f64,
    clock_ms: f64,
    current_mbps: f64,
    next_reroll_ms: f64,
    shared_faults: FaultPlan,
    flows: Vec<Flow>,
}

impl SharedLink {
    /// Creates a shared link; identical seeds give identical channel
    /// traces for identical send sequences.
    pub fn new(profile: LinkProfile, seed: u64) -> Self {
        SharedLink::with_faults(profile, seed, FaultPlan::default())
    }

    /// Creates a shared link whose bottleneck follows a scripted fault
    /// timeline (bandwidth collapses and outages hitting every flow).
    pub fn with_faults(profile: LinkProfile, seed: u64, shared_faults: FaultPlan) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let current_mbps = draw_bandwidth(&profile, &mut rng);
        SharedLink {
            next_reroll_ms: profile.coherence_ms,
            profile,
            rng,
            queue_bits: 0.0,
            clock_ms: 0.0,
            current_mbps,
            shared_faults,
            flows: Vec::new(),
        }
    }

    /// Registers a flow with its own fault timeline; returns the flow id
    /// used by [`send`](Self::send).
    pub fn add_flow(&mut self, fault_plan: FaultPlan) -> usize {
        self.flows.push(Flow {
            fault_plan,
            stats: FlowStats::default(),
        });
        self.flows.len() - 1
    }

    /// Number of registered flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// The link profile of the shared bottleneck.
    pub fn profile(&self) -> &LinkProfile {
        &self.profile
    }

    /// This flow's transmission accounting so far.
    pub fn stats(&self, flow: usize) -> FlowStats {
        self.flows[flow].stats
    }

    /// Records the fair-share rate allocated to `flow` for one tick. The
    /// allocator (the fleet loop) calls this every tick for every active
    /// flow, so the ledger carries allocated-vs-consumed alongside the
    /// drop causes. Rates are rounded to whole kbit/s (fixed point keeps
    /// [`FlowStats`] `Eq`).
    pub fn note_allocation(&mut self, flow: usize, mbps: f64) {
        let stats = &mut self.flows[flow].stats;
        stats.allocated_kbps_sum += (mbps.max(0.0) * 1000.0).round() as u64;
        stats.alloc_ticks += 1;
    }

    /// The bottleneck goodput at the link's current clock, with any active
    /// shared bandwidth fault applied.
    pub fn effective_mbps(&self) -> f64 {
        self.current_mbps * self.shared_faults.bandwidth_factor(self.clock_ms)
    }

    /// Aggregate drop rate across all flows.
    pub fn total_drop_rate(&self) -> f64 {
        let sent: u64 = self.flows.iter().map(|f| f.stats.sent).sum();
        let dropped: u64 = self.flows.iter().map(|f| f.stats.dropped).sum();
        if sent == 0 {
            0.0
        } else {
            dropped as f64 / sent as f64
        }
    }

    /// One-way latency sample for a tiny (input/control) packet of `flow`.
    pub fn control_latency_ms(&mut self, flow: usize) -> f64 {
        let jitter =
            self.jitter_sample() * self.flows[flow].fault_plan.jitter_factor(self.clock_ms);
        self.profile.rtt_ms / 2.0 + jitter
    }

    fn jitter_sample(&mut self) -> f64 {
        // half-normal approximation from the mean of uniforms (same
        // construction as [`Link`])
        let u: f64 = (0..4).map(|_| self.rng.gen::<f64>()).sum::<f64>() / 4.0;
        (u - 0.5).abs() * 4.0 * self.profile.jitter_ms
    }

    fn advance_to(&mut self, now_ms: f64) {
        let now_ms = now_ms.max(self.clock_ms);
        let mut t = self.clock_ms;
        while t < now_ms {
            let step_end = now_ms.min(self.next_reroll_ms);
            let dt = step_end - t;
            let factor = self.shared_faults.bandwidth_factor((t + step_end) / 2.0);
            let drained = self.current_mbps * factor * 1000.0 * dt; // mbps · ms = bits
            self.queue_bits = (self.queue_bits - drained).max(0.0);
            t = step_end;
            if t >= self.next_reroll_ms {
                self.current_mbps = draw_bandwidth(&self.profile, &mut self.rng);
                self.next_reroll_ms += self.profile.coherence_ms;
            }
        }
        self.clock_ms = now_ms;
    }

    /// Sends a frame of `bytes` on `flow` at `send_time_ms`. Send times
    /// must be non-decreasing across calls (across *all* flows — the
    /// bottleneck has one clock).
    pub fn send(&mut self, flow: usize, bytes: usize, send_time_ms: f64) -> Transfer {
        self.advance_to(send_time_ms);
        let stats = &mut self.flows[flow].stats;
        stats.sent += 1;
        stats.bytes += bytes as u64;
        // Outage first — exactly one cause per drop. A flow inside an
        // outage window records Outage even if the queue is also full.
        if self.shared_faults.is_outage(send_time_ms)
            || self.flows[flow].fault_plan.is_outage(send_time_ms)
        {
            let stats = &mut self.flows[flow].stats;
            stats.dropped += 1;
            stats.drops_outage += 1;
            return Transfer {
                drop_cause: Some(DropCause::Outage),
                arrival_ms: f64::NAN,
                transit_ms: f64::NAN,
            };
        }
        let bits = bytes as f64 * 8.0;
        // The flow's access rate into the shared bottleneck: the shared
        // rate shaped by the shared plan, throttled by any flow-local
        // collapse (a degraded last hop slows *this* flow's admission
        // without speeding or slowing anyone else's drain).
        let rate_bits_per_ms = self.current_mbps
            * self.shared_faults.bandwidth_factor(send_time_ms)
            * self.flows[flow].fault_plan.bandwidth_factor(send_time_ms)
            * 1000.0;
        let queue_after_ms = (self.queue_bits + bits) / rate_bits_per_ms;
        if queue_after_ms > self.profile.queue_limit_ms {
            // Cross-session contention lands here too: the queue may be
            // full of other flows' bits, but the refused frame is charged
            // to the victim as congestion — never as an outage.
            let stats = &mut self.flows[flow].stats;
            stats.dropped += 1;
            stats.drops_queue_overflow += 1;
            return Transfer {
                drop_cause: Some(DropCause::QueueOverflow),
                arrival_ms: f64::NAN,
                transit_ms: f64::NAN,
            };
        }
        self.queue_bits += bits;
        self.flows[flow].stats.bytes_delivered += bytes as u64;
        let jitter = self.jitter_sample() * self.flows[flow].fault_plan.jitter_factor(send_time_ms);
        let transit = queue_after_ms + self.profile.rtt_ms / 2.0 + jitter;
        Transfer {
            drop_cause: None,
            arrival_ms: send_time_ms + transit,
            transit_ms: transit,
        }
    }

    /// [`SharedLink::send`] plus telemetry into the flow's own recorder,
    /// mirroring [`Link::send_traced`]: a `LinkTransfer` span on delivery,
    /// `BytesOnWire`, and on a loss `FramesDropped` plus the cause-specific
    /// counter and a causal drop instant. The channel trace is identical
    /// to an untraced send.
    pub fn send_traced(
        &mut self,
        flow: usize,
        bytes: usize,
        send_time_ms: f64,
        rec: &mut gss_telemetry::Recorder,
    ) -> Transfer {
        let transfer = self.send(flow, bytes, send_time_ms);
        rec.gauge(
            gss_telemetry::Gauge::LinkBandwidthMbps,
            self.effective_mbps(),
        );
        rec.add(gss_telemetry::Counter::BytesOnWire, bytes as u64);
        match transfer.drop_cause {
            None => rec.record_span(
                gss_telemetry::Stage::LinkTransfer,
                send_time_ms,
                transfer.transit_ms,
            ),
            Some(cause) => {
                rec.incr(gss_telemetry::Counter::FramesDropped);
                rec.incr(match cause {
                    DropCause::QueueOverflow => gss_telemetry::Counter::DropsQueueOverflow,
                    DropCause::DecoderDown => gss_telemetry::Counter::DropsDecoderDown,
                    DropCause::Outage => gss_telemetry::Counter::DropsOutage,
                });
                rec.instant(
                    gss_telemetry::InstantKind::Drop,
                    send_time_ms,
                    format!("frame dropped: {}", cause.label()),
                );
            }
        }
        transfer
    }
}

/// A single-flow [`SharedLink`] reproduces [`Link`]'s channel model; this
/// helper builds both from one seed for equivalence tests.
pub fn paired_single_flow(profile: LinkProfile, seed: u64) -> (Link, SharedLink) {
    let single = Link::new(profile.clone(), seed);
    let mut shared = SharedLink::new(profile, seed);
    let _ = shared.add_flow(FaultPlan::default());
    (single, shared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultEvent, FaultKind};

    #[test]
    fn single_flow_matches_the_single_session_link_exactly() {
        let (mut single, mut shared) = paired_single_flow(LinkProfile::wifi(), 77);
        for i in 0..200 {
            let t = i as f64 * 16.66;
            let a = single.send(24_000, t);
            let b = shared.send(0, 24_000, t);
            assert_eq!(a.drop_cause, b.drop_cause, "t={t}");
            if a.delivered() {
                assert_eq!(a.transit_ms.to_bits(), b.transit_ms.to_bits(), "t={t}");
            }
        }
        assert!(shared.stats(0).consistent());
    }

    #[test]
    fn contention_charges_the_victim_with_queue_overflow_not_outage() {
        // Flow 0 streams small frames that fit a quiet link easily; flow 1
        // floods the shared queue. Flow 0's drops must be congestion.
        let profile = LinkProfile {
            bandwidth_cv: 0.0,
            jitter_ms: 0.0,
            ..LinkProfile::wifi()
        };
        let mut alone = SharedLink::new(profile.clone(), 5);
        let a = alone.add_flow(FaultPlan::default());
        let mut contended = SharedLink::new(profile, 5);
        let v = contended.add_flow(FaultPlan::default());
        let bully = contended.add_flow(FaultPlan::default());
        for i in 0..240 {
            let t = i as f64 * 16.66;
            assert!(alone.send(a, 40_000, t).delivered(), "uncontended at {t}");
            let victim = contended.send(v, 40_000, t);
            // the bully offers ~2.5x the line rate spread across the tick,
            // keeping the shared queue pinned at its cap right up to the
            // victim's next send
            for k in 0..8 {
                let _ = contended.send(bully, 40_000, t + k as f64 * 16.66 / 8.0);
            }
            if let Some(cause) = victim.drop_cause {
                assert_eq!(cause, DropCause::QueueOverflow, "t={t}");
            }
        }
        let vs = contended.stats(v);
        assert!(
            vs.drops_queue_overflow > 0,
            "contention never overflowed on the victim"
        );
        assert_eq!(vs.drops_outage, 0);
        assert!(vs.consistent(), "ledger double-counted or lost a drop");
        assert!(contended.stats(bully).consistent());
        assert_eq!(alone.stats(a).dropped, 0);
    }

    #[test]
    fn outage_wins_over_a_full_queue_and_is_counted_once() {
        // The victim's flow is in an outage window while the bully keeps
        // the queue saturated: each drop carries exactly one cause.
        let profile = LinkProfile {
            bandwidth_cv: 0.0,
            jitter_ms: 0.0,
            ..LinkProfile::wifi()
        };
        let mut link = SharedLink::new(profile, 9);
        let v = link.add_flow(FaultPlan::new(vec![FaultEvent {
            start_ms: 0.0,
            end_ms: 2_000.0,
            kind: FaultKind::Outage,
        }]));
        let bully = link.add_flow(FaultPlan::default());
        for i in 0..120 {
            let t = i as f64 * 16.66;
            let tv = link.send(v, 20_000, t);
            let _ = link.send(bully, 400_000, t);
            assert_eq!(tv.drop_cause, Some(DropCause::Outage), "t={t}");
        }
        let vs = link.stats(v);
        assert_eq!(vs.drops_outage, vs.dropped);
        assert_eq!(vs.drops_queue_overflow, 0);
        assert!(vs.consistent());
    }

    #[test]
    fn flow_local_outage_does_not_touch_other_flows() {
        let plan = FaultPlan::new(vec![FaultEvent {
            start_ms: 100.0,
            end_ms: 500.0,
            kind: FaultKind::Outage,
        }]);
        let mut link = SharedLink::new(LinkProfile::wifi(), 13);
        let faulty = link.add_flow(plan);
        let healthy = link.add_flow(FaultPlan::default());
        for i in 0..60 {
            let t = i as f64 * 16.66;
            let tf = link.send(faulty, 2_000, t);
            let th = link.send(healthy, 2_000, t);
            if (100.0..500.0).contains(&t) {
                assert_eq!(tf.drop_cause, Some(DropCause::Outage), "t={t}");
            } else {
                assert!(tf.delivered(), "t={t}");
            }
            assert!(th.delivered(), "healthy flow dropped at {t}");
        }
    }

    #[test]
    fn identical_seeds_and_send_orders_replay_identically() {
        let run = || {
            let mut link = SharedLink::new(LinkProfile::mmwave_5g(), 21);
            let f0 = link.add_flow(FaultPlan::default());
            let f1 = link.add_flow(FaultPlan::default());
            let mut out = Vec::new();
            for i in 0..120 {
                let t = i as f64 * 16.66;
                for f in [f0, f1] {
                    let tr = link.send(f, 60_000, t);
                    out.push((tr.drop_cause, tr.arrival_ms.to_bits()));
                }
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ledger_tracks_delivered_bytes_and_allocated_rate() {
        let profile = LinkProfile {
            bandwidth_cv: 0.0,
            jitter_ms: 0.0,
            ..LinkProfile::wifi()
        };
        let mut link = SharedLink::new(profile, 11);
        let f = link.add_flow(FaultPlan::new(vec![FaultEvent {
            start_ms: 200.0,
            end_ms: 400.0,
            kind: FaultKind::Outage,
        }]));
        for i in 0..60 {
            let t = i as f64 * 16.66;
            link.note_allocation(f, 18.0);
            let _ = link.send(f, 10_000, t);
        }
        let s = link.stats(f);
        assert!(s.dropped > 0, "the outage window must drop frames");
        assert_eq!(
            s.bytes_delivered,
            s.bytes - s.dropped * 10_000,
            "delivered bytes must exclude exactly the dropped frames"
        );
        assert_eq!(s.alloc_ticks, 60);
        assert_eq!(s.allocated_kbps_sum, 60 * 18_000);
        assert_eq!(s.mean_allocated_mbps(), Some(18.0));
        assert_eq!(FlowStats::default().mean_allocated_mbps(), None);
        assert!(s.consistent());
    }

    #[test]
    fn traced_send_matches_untraced_and_records_per_flow() {
        use gss_telemetry::{Counter, Recorder};
        let mut plain = SharedLink::new(LinkProfile::wifi(), 7);
        let p0 = plain.add_flow(FaultPlan::default());
        let p1 = plain.add_flow(FaultPlan::default());
        let mut traced = SharedLink::new(LinkProfile::wifi(), 7);
        let t0 = traced.add_flow(FaultPlan::default());
        let t1 = traced.add_flow(FaultPlan::default());
        let mut rec0 = Recorder::new("flow-0", 16.67);
        let mut rec1 = Recorder::new("flow-1", 16.67);
        for i in 0..80 {
            let t = i as f64 * 16.66;
            assert_eq!(
                plain.send(p0, 90_000, t).drop_cause,
                traced.send_traced(t0, 90_000, t, &mut rec0).drop_cause
            );
            assert_eq!(
                plain.send(p1, 90_000, t).drop_cause,
                traced.send_traced(t1, 90_000, t, &mut rec1).drop_cause
            );
        }
        let s0 = rec0.summary();
        let s1 = rec1.summary();
        assert_eq!(s0.counter(Counter::BytesOnWire), 80 * 90_000);
        assert_eq!(
            s0.counter(Counter::FramesDropped),
            traced.stats(t0).dropped,
            "recorder and ledger disagree for flow 0"
        );
        assert_eq!(s1.counter(Counter::FramesDropped), traced.stats(t1).dropped);
        assert_eq!(
            s0.counter(Counter::DropsQueueOverflow) + s0.counter(Counter::DropsOutage),
            s0.counter(Counter::FramesDropped),
            "a drop was double-counted under two causes"
        );
    }
}
