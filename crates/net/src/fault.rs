//! Deterministic, scriptable fault injection.
//!
//! A [`FaultPlan`] is a timeline of [`FaultEvent`]s scheduled at session
//! times: bandwidth-collapse bursts, full outage windows, jitter spikes,
//! NPU thermal-throttle ramps and decoder stalls. The plan itself holds no
//! randomness — given the same plan and the same link seed, a session
//! replays the exact same trace, which is what makes resilience
//! experiments and the CI soak reproducible.
//!
//! Network faults ([`FaultKind::BandwidthCollapse`], [`FaultKind::Outage`],
//! [`FaultKind::JitterSpike`]) are consumed by [`crate::Link`]; platform
//! faults ([`FaultKind::NpuThrottle`], [`FaultKind::DecoderStall`],
//! [`FaultKind::DecoderCrash`]) are queried by the session simulator and
//! fed into the device timing models and the recovery state machine.
//!
//! ```
//! use gss_net::{FaultEvent, FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::new(vec![FaultEvent {
//!     start_ms: 1000.0,
//!     end_ms: 2000.0,
//!     kind: FaultKind::BandwidthCollapse { factor: 0.1 },
//! }]);
//! assert_eq!(plan.bandwidth_factor(1500.0), 0.1);
//! assert_eq!(plan.bandwidth_factor(2500.0), 1.0);
//! ```

use serde::{Deserialize, Serialize};

/// One class of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The channel's bandwidth is multiplied by `factor` (< 1) for the
    /// window — a deep fade / congestion burst.
    BandwidthCollapse {
        /// Multiplier on the drawn bandwidth, in `(0, 1]`.
        factor: f64,
    },
    /// The channel delivers nothing at all: every send in the window is
    /// dropped with [`crate::DropCause::Outage`].
    Outage,
    /// One-way jitter is multiplied by `factor` (> 1) for the window.
    JitterSpike {
        /// Multiplier on the sampled jitter.
        factor: f64,
    },
    /// The NPU thermally throttles: its latency is multiplied by a factor
    /// ramping linearly from 1 at the window start up to `peak_slowdown`
    /// at the window end (heat soaks in gradually; clearing is abrupt, as
    /// when the governor steps the clock back up).
    NpuThrottle {
        /// Latency multiplier reached at the end of the window (≥ 1).
        peak_slowdown: f64,
    },
    /// The client decoder stalls, adding `extra_ms` to every decode in
    /// the window (pipeline flush / DRM renegotiation hiccup).
    DecoderStall {
        /// Added decode latency, ms.
        extra_ms: f64,
    },
    /// The client hardware decoder crashes outright: for the window the
    /// crash signal is asserted and nothing can be decoded until the
    /// session's recovery state machine has drained, reconfigured the
    /// codec and resynchronized on a keyframe. Unlike
    /// [`FaultKind::DecoderStall`] this is not extra latency — it is a
    /// hard loss of the decode capability, the failure mode production
    /// clients dedicate a recovery manager to.
    DecoderCrash,
}

impl FaultKind {
    /// Kebab-case label for telemetry events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::BandwidthCollapse { .. } => "bandwidth-collapse",
            FaultKind::Outage => "outage",
            FaultKind::JitterSpike { .. } => "jitter-spike",
            FaultKind::NpuThrottle { .. } => "npu-throttle",
            FaultKind::DecoderStall { .. } => "decoder-stall",
            FaultKind::DecoderCrash => "decoder-crash",
        }
    }
}

/// One scheduled fault window on the session timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Window start, in session milliseconds (inclusive).
    pub start_ms: f64,
    /// Window end, in session milliseconds (exclusive).
    pub end_ms: f64,
    /// What goes wrong.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Whether the window covers session time `t_ms`.
    pub fn is_active(&self, t_ms: f64) -> bool {
        t_ms >= self.start_ms && t_ms < self.end_ms
    }

    /// Fraction of the window elapsed at `t_ms`, clamped to `[0, 1]`
    /// (used by ramped faults).
    fn progress(&self, t_ms: f64) -> f64 {
        let len = (self.end_ms - self.start_ms).max(f64::MIN_POSITIVE);
        ((t_ms - self.start_ms) / len).clamp(0.0, 1.0)
    }
}

/// A deterministic timeline of scheduled faults.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Builds a plan from scheduled events (any order).
    ///
    /// # Panics
    ///
    /// Panics on an event whose window starts before the session (a
    /// negative `start_ms`), whose window is empty or inverted, a
    /// collapse factor outside `(0, 1]`, a jitter factor below 1, a
    /// throttle slowdown below 1, or a negative stall. Silently accepting
    /// such events would skew the timed integrations (e.g.
    /// [`FaultPlan::decoder_stall_ms`]) without any visible error.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        for e in &events {
            assert!(
                e.start_ms >= 0.0,
                "fault window must start at or after session time 0"
            );
            assert!(e.end_ms > e.start_ms, "fault window must be non-empty");
            match e.kind {
                FaultKind::BandwidthCollapse { factor } => {
                    assert!(
                        factor > 0.0 && factor <= 1.0,
                        "collapse factor must be in (0, 1]"
                    );
                }
                FaultKind::JitterSpike { factor } => {
                    assert!(factor >= 1.0, "jitter factor must be >= 1");
                }
                FaultKind::NpuThrottle { peak_slowdown } => {
                    assert!(peak_slowdown >= 1.0, "slowdown must be >= 1");
                }
                FaultKind::DecoderStall { extra_ms } => {
                    assert!(extra_ms >= 0.0, "stall must be non-negative");
                }
                FaultKind::Outage | FaultKind::DecoderCrash => {}
            }
        }
        FaultPlan { events }
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` when no fault is ever scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Combined bandwidth multiplier at `t_ms` (product of active
    /// collapses; 1.0 when none is active).
    pub fn bandwidth_factor(&self, t_ms: f64) -> f64 {
        self.events
            .iter()
            .filter(|e| e.is_active(t_ms))
            .filter_map(|e| match e.kind {
                FaultKind::BandwidthCollapse { factor } => Some(factor),
                _ => None,
            })
            .product()
    }

    /// Whether any outage window covers `t_ms`.
    pub fn is_outage(&self, t_ms: f64) -> bool {
        self.events
            .iter()
            .any(|e| e.is_active(t_ms) && e.kind == FaultKind::Outage)
    }

    /// Combined jitter multiplier at `t_ms` (1.0 when quiet).
    pub fn jitter_factor(&self, t_ms: f64) -> f64 {
        self.events
            .iter()
            .filter(|e| e.is_active(t_ms))
            .filter_map(|e| match e.kind {
                FaultKind::JitterSpike { factor } => Some(factor),
                _ => None,
            })
            .product()
    }

    /// NPU latency multiplier at `t_ms`: each active throttle ramps
    /// linearly from 1 up to its peak across its window; overlapping
    /// throttles multiply. 1.0 when quiet.
    pub fn npu_slowdown(&self, t_ms: f64) -> f64 {
        self.events
            .iter()
            .filter(|e| e.is_active(t_ms))
            .filter_map(|e| match e.kind {
                FaultKind::NpuThrottle { peak_slowdown } => {
                    Some(1.0 + (peak_slowdown - 1.0) * e.progress(t_ms))
                }
                _ => None,
            })
            .product()
    }

    /// Added decoder latency at `t_ms`, ms (sum of active stalls).
    pub fn decoder_stall_ms(&self, t_ms: f64) -> f64 {
        self.events
            .iter()
            .filter(|e| e.is_active(t_ms))
            .filter_map(|e| match e.kind {
                FaultKind::DecoderStall { extra_ms } => Some(extra_ms),
                _ => None,
            })
            .sum()
    }

    /// Whether the decoder crash signal is asserted at `t_ms` — i.e. any
    /// [`FaultKind::DecoderCrash`] window covers the instant. The session's
    /// recovery state machine reacts to the *rising edge* of this signal;
    /// the window length only controls how long the crash keeps firing.
    pub fn decoder_crashed(&self, t_ms: f64) -> bool {
        self.events
            .iter()
            .any(|e| e.is_active(t_ms) && e.kind == FaultKind::DecoderCrash)
    }

    /// Whether the plan scripts any decoder crash at all — the session
    /// arms its recovery state machine only when this holds, so crash-free
    /// plans replay byte-identically to builds that predate recovery.
    pub fn has_decoder_crashes(&self) -> bool {
        self.events
            .iter()
            .any(|e| e.kind == FaultKind::DecoderCrash)
    }

    /// Labels of the faults active at `t_ms`, in schedule order (for
    /// structured telemetry when the active set changes).
    pub fn active_labels(&self, t_ms: f64) -> Vec<&'static str> {
        self.events
            .iter()
            .filter(|e| e.is_active(t_ms))
            .map(|e| e.kind.label())
            .collect()
    }

    /// The canonical resilience timeline used by the integration tests,
    /// the bench resilience experiment and the CI soak: a 20 s session
    /// with a jitter spike and a decoder stall early on, a 10 s
    /// mid-session bandwidth collapse overlapping an NPU thermal-throttle
    /// ramp, and a short full outage after the channel recovers.
    pub fn canonical() -> Self {
        FaultPlan::canonical_scaled(1.0)
    }

    /// [`FaultPlan::canonical`] with every timestamp multiplied by
    /// `time_scale`, so tests can replay the same shape on a compressed
    /// clock. The session it is meant for lasts `20_000 · time_scale` ms.
    ///
    /// # Panics
    ///
    /// Panics when `time_scale` is not positive.
    pub fn canonical_scaled(time_scale: f64) -> Self {
        assert!(time_scale > 0.0, "time scale must be positive");
        let s = time_scale;
        FaultPlan::new(vec![
            FaultEvent {
                start_ms: 2_000.0 * s,
                end_ms: 3_000.0 * s,
                kind: FaultKind::JitterSpike { factor: 4.0 },
            },
            FaultEvent {
                start_ms: 3_500.0 * s,
                end_ms: 4_200.0 * s,
                kind: FaultKind::DecoderStall { extra_ms: 3.0 },
            },
            FaultEvent {
                start_ms: 5_000.0 * s,
                end_ms: 15_000.0 * s,
                kind: FaultKind::BandwidthCollapse { factor: 0.10 },
            },
            FaultEvent {
                start_ms: 5_000.0 * s,
                end_ms: 15_000.0 * s,
                kind: FaultKind::NpuThrottle { peak_slowdown: 3.0 },
            },
            FaultEvent {
                start_ms: 16_500.0 * s,
                end_ms: 17_000.0 * s,
                kind: FaultKind::Outage,
            },
        ])
    }

    /// Duration of the session the canonical timeline is scripted for, ms.
    pub fn canonical_duration_ms(time_scale: f64) -> f64 {
        20_000.0 * time_scale
    }

    /// The canonical *crash storm*: the full [`FaultPlan::canonical`]
    /// timeline plus decoder crashes layered on top. An isolated early
    /// crash at 1 s exercises a clean single recovery; a burst of four
    /// rapid crashes from 6 s onward — inside the throttle/collapse
    /// window, each landing before the previous recovery's stability
    /// period expires — drives the recovery state machine through
    /// exponential backoff into the permanent safe-profile fallback.
    /// Deterministic like everything else in this module.
    pub fn crash_storm() -> Self {
        FaultPlan::crash_storm_scaled(1.0)
    }

    /// [`FaultPlan::crash_storm`] with every timestamp multiplied by
    /// `time_scale` (same compressed-clock contract as
    /// [`FaultPlan::canonical_scaled`]).
    ///
    /// # Panics
    ///
    /// Panics when `time_scale` is not positive.
    pub fn crash_storm_scaled(time_scale: f64) -> Self {
        assert!(time_scale > 0.0, "time scale must be positive");
        let s = time_scale;
        let mut events = FaultPlan::canonical_scaled(s).events;
        // 100 ms windows so even a 0.2x compressed clock (20 ms windows,
        // 16.67 ms frame period) samples every crash at least once.
        for (start, end) in [
            (1_000.0, 1_100.0),
            (6_000.0, 6_100.0),
            (6_600.0, 6_700.0),
            (7_200.0, 7_300.0),
            (7_800.0, 7_900.0),
        ] {
            events.push(FaultEvent {
                start_ms: start * s,
                end_ms: end * s,
                kind: FaultKind::DecoderCrash,
            });
        }
        FaultPlan::new(events)
    }

    /// Duration of the session the crash storm is scripted for, ms (same
    /// clock as [`FaultPlan::canonical_duration_ms`]).
    pub fn crash_storm_duration_ms(time_scale: f64) -> f64 {
        FaultPlan::canonical_duration_ms(time_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_quiet_everywhere() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        for t in [0.0, 1e3, 1e6] {
            assert_eq!(p.bandwidth_factor(t), 1.0);
            assert!(!p.is_outage(t));
            assert_eq!(p.jitter_factor(t), 1.0);
            assert_eq!(p.npu_slowdown(t), 1.0);
            assert_eq!(p.decoder_stall_ms(t), 0.0);
            assert!(p.active_labels(t).is_empty());
        }
    }

    #[test]
    fn windows_are_half_open() {
        let p = FaultPlan::new(vec![FaultEvent {
            start_ms: 100.0,
            end_ms: 200.0,
            kind: FaultKind::Outage,
        }]);
        assert!(!p.is_outage(99.9));
        assert!(p.is_outage(100.0));
        assert!(p.is_outage(199.9));
        assert!(!p.is_outage(200.0));
    }

    #[test]
    fn throttle_ramps_linearly_to_its_peak() {
        let p = FaultPlan::new(vec![FaultEvent {
            start_ms: 0.0,
            end_ms: 1000.0,
            kind: FaultKind::NpuThrottle { peak_slowdown: 3.0 },
        }]);
        assert!((p.npu_slowdown(0.0) - 1.0).abs() < 1e-12);
        assert!((p.npu_slowdown(500.0) - 2.0).abs() < 1e-12);
        assert!((p.npu_slowdown(999.999) - 3.0).abs() < 1e-2);
        assert_eq!(p.npu_slowdown(1000.0), 1.0);
    }

    #[test]
    fn overlapping_faults_compose() {
        let p = FaultPlan::new(vec![
            FaultEvent {
                start_ms: 0.0,
                end_ms: 100.0,
                kind: FaultKind::BandwidthCollapse { factor: 0.5 },
            },
            FaultEvent {
                start_ms: 50.0,
                end_ms: 150.0,
                kind: FaultKind::BandwidthCollapse { factor: 0.4 },
            },
            FaultEvent {
                start_ms: 0.0,
                end_ms: 150.0,
                kind: FaultKind::DecoderStall { extra_ms: 2.0 },
            },
            FaultEvent {
                start_ms: 0.0,
                end_ms: 150.0,
                kind: FaultKind::DecoderStall { extra_ms: 1.5 },
            },
        ]);
        assert!((p.bandwidth_factor(75.0) - 0.2).abs() < 1e-12);
        assert!((p.bandwidth_factor(125.0) - 0.4).abs() < 1e-12);
        assert!((p.decoder_stall_ms(10.0) - 3.5).abs() < 1e-12);
        assert_eq!(p.active_labels(75.0).len(), 4);
    }

    #[test]
    fn canonical_scaled_compresses_the_timeline() {
        let full = FaultPlan::canonical();
        let half = FaultPlan::canonical_scaled(0.5);
        assert_eq!(full.events().len(), half.events().len());
        // mid-collapse at full scale maps to the same phase at half scale
        assert_eq!(
            full.bandwidth_factor(10_000.0),
            half.bandwidth_factor(5_000.0)
        );
        assert!((full.npu_slowdown(10_000.0) - half.npu_slowdown(5_000.0)).abs() < 1e-12);
        assert!(full.is_outage(16_700.0));
        assert!(half.is_outage(8_350.0));
        assert_eq!(FaultPlan::canonical_duration_ms(0.5), 10_000.0);
    }

    #[test]
    #[should_panic(expected = "collapse factor")]
    fn zero_collapse_rejected() {
        let _ = FaultPlan::new(vec![FaultEvent {
            start_ms: 0.0,
            end_ms: 1.0,
            kind: FaultKind::BandwidthCollapse { factor: 0.0 },
        }]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_window_rejected() {
        let _ = FaultPlan::new(vec![FaultEvent {
            start_ms: 5.0,
            end_ms: 5.0,
            kind: FaultKind::Outage,
        }]);
    }

    #[test]
    #[should_panic(expected = "session time 0")]
    fn negative_start_rejected() {
        let _ = FaultPlan::new(vec![FaultEvent {
            start_ms: -1.0,
            end_ms: 10.0,
            kind: FaultKind::Outage,
        }]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn negative_duration_rejected() {
        let _ = FaultPlan::new(vec![FaultEvent {
            start_ms: 10.0,
            end_ms: 5.0,
            kind: FaultKind::DecoderStall { extra_ms: 1.0 },
        }]);
    }

    #[test]
    fn overlapping_same_kind_events_compose_without_double_counting_edges() {
        // two stalls overlapping on [50, 100): the sum integrates both in
        // the overlap and exactly one outside it, and the half-open edges
        // keep adjacent windows from double-counting their shared instant
        let p = FaultPlan::new(vec![
            FaultEvent {
                start_ms: 0.0,
                end_ms: 100.0,
                kind: FaultKind::DecoderStall { extra_ms: 2.0 },
            },
            FaultEvent {
                start_ms: 50.0,
                end_ms: 150.0,
                kind: FaultKind::DecoderStall { extra_ms: 1.0 },
            },
            FaultEvent {
                start_ms: 150.0,
                end_ms: 200.0,
                kind: FaultKind::DecoderStall { extra_ms: 4.0 },
            },
        ]);
        assert!((p.decoder_stall_ms(25.0) - 2.0).abs() < 1e-12);
        assert!((p.decoder_stall_ms(75.0) - 3.0).abs() < 1e-12);
        assert!((p.decoder_stall_ms(125.0) - 1.0).abs() < 1e-12);
        // t = 150 is the boundary: the second window has closed, only the
        // third is active — never 1.0 + 4.0
        assert!((p.decoder_stall_ms(150.0) - 4.0).abs() < 1e-12);
        // overlapping crash windows behave as one asserted signal
        let c = FaultPlan::new(vec![
            FaultEvent {
                start_ms: 0.0,
                end_ms: 60.0,
                kind: FaultKind::DecoderCrash,
            },
            FaultEvent {
                start_ms: 40.0,
                end_ms: 100.0,
                kind: FaultKind::DecoderCrash,
            },
        ]);
        assert!(c.decoder_crashed(50.0));
        assert!(c.decoder_crashed(99.9));
        assert!(!c.decoder_crashed(100.0));
        assert_eq!(c.active_labels(50.0), vec!["decoder-crash"; 2]);
    }

    #[test]
    fn crash_storm_extends_the_canonical_timeline() {
        let canonical = FaultPlan::canonical();
        let storm = FaultPlan::crash_storm();
        // the storm is a strict superset: the canonical events are intact,
        // so it perturbs none of the canonical-plan metrics
        assert_eq!(
            &storm.events()[..canonical.events().len()],
            canonical.events()
        );
        let crashes = storm
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::DecoderCrash)
            .count();
        assert_eq!(crashes, 5);
        assert!(storm.decoder_crashed(1_050.0));
        assert!(!storm.decoder_crashed(2_000.0));
        assert!(storm.decoder_crashed(7_850.0));
        assert!(!canonical.decoder_crashed(1_050.0));
        // compressed clock keeps every crash window at least one 60 FPS
        // frame period wide
        let quick = FaultPlan::crash_storm_scaled(0.2);
        for e in quick
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::DecoderCrash)
        {
            assert!(e.end_ms - e.start_ms >= 1000.0 / 60.0);
        }
        assert_eq!(FaultPlan::crash_storm_duration_ms(0.5), 10_000.0);
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = FaultPlan::canonical()
            .events()
            .iter()
            .map(|e| e.kind.label())
            .collect();
        assert_eq!(
            labels,
            vec![
                "jitter-spike",
                "decoder-stall",
                "bandwidth-collapse",
                "npu-throttle",
                "outage"
            ]
        );
    }

    #[test]
    fn fault_labels_stay_aligned_with_the_attribution_taxonomy() {
        // the attributor keys on fault labels carried by trace instants:
        // faults that can eat a stage's budget must reuse the miss-cause
        // label verbatim, and the outage label must match the string the
        // attributor's decision tree tests for. A rename on either side
        // breaks root-cause attribution silently — this pins the contract.
        use gss_telemetry::MissCause;
        assert_eq!(
            FaultKind::NpuThrottle { peak_slowdown: 2.0 }.label(),
            MissCause::NpuThrottle.label()
        );
        assert_eq!(
            FaultKind::JitterSpike { factor: 2.0 }.label(),
            MissCause::JitterSpike.label()
        );
        assert_eq!(
            FaultKind::DecoderStall { extra_ms: 1.0 }.label(),
            MissCause::DecoderStall.label()
        );
        assert_eq!(FaultKind::Outage.label(), "outage");
        assert_eq!(
            FaultKind::DecoderCrash.label(),
            MissCause::DecoderCrash.label()
        );
        assert_eq!(
            crate::DropCause::QueueOverflow.label(),
            MissCause::QueueOverflow.label()
        );
        assert_eq!(crate::DropCause::DecoderDown.label(), "decoder-down");
    }
}
