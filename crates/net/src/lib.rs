//! Wireless link simulation for the GameStreamSR reproduction.
//!
//! The paper's motivation rests on a network observation: streaming 2K game
//! frames over live 5G mmWave or WiFi drops a large fraction of frames
//! (§II-A cites ≈44% and ≈90%), while 720p streams fit comfortably — which
//! is what makes client-side super-resolution attractive. This crate
//! provides a deterministic-given-seed link simulator with token-bucket
//! queueing, bandwidth volatility, propagation jitter and tail drops, so the
//! bandwidth experiments regenerate that motivation from first principles.
//!
//! ```
//! use gss_net::{Link, LinkProfile};
//!
//! let mut link = Link::new(LinkProfile::wifi(), 42);
//! let t = link.send(12_000, 0.0);
//! assert!(t.delivered());
//! assert!(t.arrival_ms > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod shared;

pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use shared::{paired_single_flow, FlowStats, SharedLink};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Statistical description of a wireless link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Profile name for reports.
    pub name: &'static str,
    /// Mean downlink bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
    /// Coefficient of variation of the bandwidth across coherence
    /// intervals (0 = perfectly stable).
    pub bandwidth_cv: f64,
    /// How often the channel re-draws its bandwidth, ms.
    pub coherence_ms: f64,
    /// Base round-trip time, ms.
    pub rtt_ms: f64,
    /// One-way jitter standard deviation, ms.
    pub jitter_ms: f64,
    /// Bottleneck queue limit expressed as milliseconds of line rate;
    /// frames that would overflow it are dropped (tail drop).
    pub queue_limit_ms: f64,
}

impl LinkProfile {
    /// A home/office WiFi link: moderate bandwidth, moderate stability.
    pub fn wifi() -> Self {
        LinkProfile {
            name: "WiFi",
            bandwidth_mbps: 60.0,
            bandwidth_cv: 0.35,
            coherence_ms: 200.0,
            rtt_ms: 16.0,
            jitter_ms: 2.5,
            queue_limit_ms: 50.0,
        }
    }

    /// A fixed-access fiber uplink: fat and stable, the last hop of a
    /// consolidation rack serving many sessions (see `gamestreamsr::fleet`).
    /// Congestion on this profile is self-inflicted — the fleet's own
    /// offered load, not channel fades.
    pub fn fiber() -> Self {
        LinkProfile {
            name: "Fiber",
            bandwidth_mbps: 100.0,
            bandwidth_cv: 0.05,
            coherence_ms: 1000.0,
            rtt_ms: 10.0,
            jitter_ms: 1.0,
            queue_limit_ms: 50.0,
        }
    }

    /// A live 5G mmWave link: high mean bandwidth but deep fades
    /// (blockage), matching the volatility reported by the paper's
    /// characterization reference.
    pub fn mmwave_5g() -> Self {
        LinkProfile {
            name: "5G mmWave",
            bandwidth_mbps: 120.0,
            bandwidth_cv: 0.75,
            coherence_ms: 120.0,
            rtt_ms: 22.0,
            jitter_ms: 4.0,
            queue_limit_ms: 50.0,
        }
    }
}

/// Why the link dropped a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropCause {
    /// The frame would have overflowed the bottleneck queue (tail drop —
    /// the channel is alive but too slow for the offered load).
    QueueOverflow,
    /// The frame arrived but the client's decoder was down (crashed or
    /// mid-reconfigure), so the payload was discarded undecoded. Emitted
    /// by the session simulator's recovery state machine, never by
    /// [`Link`] itself — the network delivered the frame; the client could
    /// not use it.
    DecoderDown,
    /// An injected outage window: the channel delivered nothing at all.
    Outage,
}

impl DropCause {
    /// Kebab-case label for telemetry and reports.
    pub fn label(self) -> &'static str {
        match self {
            DropCause::QueueOverflow => "queue-overflow",
            DropCause::DecoderDown => "decoder-down",
            DropCause::Outage => "outage",
        }
    }
}

/// The outcome of one frame transmission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    /// `None` when the frame arrived; otherwise why the link dropped it.
    pub drop_cause: Option<DropCause>,
    /// Arrival timestamp at the client, ms (send time + transit), when
    /// delivered.
    pub arrival_ms: f64,
    /// One-way transit latency (queueing + serialization + propagation),
    /// ms, when delivered.
    pub transit_ms: f64,
}

impl Transfer {
    /// `false` when the link dropped the frame.
    pub fn delivered(&self) -> bool {
        self.drop_cause.is_none()
    }
}

/// A stateful simulated downlink.
#[derive(Debug, Clone)]
pub struct Link {
    profile: LinkProfile,
    rng: SmallRng,
    queue_bits: f64,
    clock_ms: f64,
    current_mbps: f64,
    next_reroll_ms: f64,
    sent: u64,
    dropped: u64,
    fault_plan: FaultPlan,
}

impl Link {
    /// Creates a link; identical seeds give identical channel traces.
    pub fn new(profile: LinkProfile, seed: u64) -> Self {
        Link::with_faults(profile, seed, FaultPlan::default())
    }

    /// Creates a link with a scripted fault timeline. Faults modulate the
    /// channel *after* the seeded random draws, so the same seed gives the
    /// same underlying trace with and without the plan.
    pub fn with_faults(profile: LinkProfile, seed: u64, fault_plan: FaultPlan) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let current_mbps = draw_bandwidth(&profile, &mut rng);
        Link {
            next_reroll_ms: profile.coherence_ms,
            profile,
            rng,
            queue_bits: 0.0,
            clock_ms: 0.0,
            current_mbps,
            sent: 0,
            dropped: 0,
            fault_plan,
        }
    }

    /// Replaces the link's fault timeline.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// The link's fault timeline.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// The link profile.
    pub fn profile(&self) -> &LinkProfile {
        &self.profile
    }

    /// The channel goodput at the link's current clock, with any active
    /// bandwidth fault applied.
    pub fn effective_mbps(&self) -> f64 {
        self.current_mbps * self.fault_plan.bandwidth_factor(self.clock_ms)
    }

    /// One-way latency sample for a tiny (input/control) packet.
    pub fn control_latency_ms(&mut self) -> f64 {
        self.profile.rtt_ms / 2.0 + self.jitter_sample()
    }

    fn jitter_sample(&mut self) -> f64 {
        // half-normal approximation from the mean of uniforms
        let u: f64 = (0..4).map(|_| self.rng.gen::<f64>()).sum::<f64>() / 4.0;
        (u - 0.5).abs() * 4.0 * self.profile.jitter_ms
    }

    fn advance_to(&mut self, now_ms: f64) {
        let now_ms = now_ms.max(self.clock_ms);
        let mut t = self.clock_ms;
        while t < now_ms {
            let step_end = now_ms.min(self.next_reroll_ms);
            let dt = step_end - t;
            // drain at the faulted rate, sampled at the step midpoint (the
            // coherence interval bounds the approximation error)
            let factor = self.fault_plan.bandwidth_factor((t + step_end) / 2.0);
            let drained = self.current_mbps * factor * 1000.0 * dt; // mbps · ms = bits
            self.queue_bits = (self.queue_bits - drained).max(0.0);
            t = step_end;
            if t >= self.next_reroll_ms {
                self.current_mbps = draw_bandwidth(&self.profile, &mut self.rng);
                self.next_reroll_ms += self.profile.coherence_ms;
            }
        }
        self.clock_ms = now_ms;
    }

    /// Sends a frame of `bytes` at `send_time_ms`. Send times must be
    /// non-decreasing across calls.
    pub fn send(&mut self, bytes: usize, send_time_ms: f64) -> Transfer {
        self.advance_to(send_time_ms);
        self.sent += 1;
        if self.fault_plan.is_outage(send_time_ms) {
            self.dropped += 1;
            return Transfer {
                drop_cause: Some(DropCause::Outage),
                arrival_ms: f64::NAN,
                transit_ms: f64::NAN,
            };
        }
        let bits = bytes as f64 * 8.0;
        let rate_bits_per_ms =
            self.current_mbps * self.fault_plan.bandwidth_factor(send_time_ms) * 1000.0;
        let queue_after_ms = (self.queue_bits + bits) / rate_bits_per_ms;
        if queue_after_ms > self.profile.queue_limit_ms {
            self.dropped += 1;
            return Transfer {
                drop_cause: Some(DropCause::QueueOverflow),
                arrival_ms: f64::NAN,
                transit_ms: f64::NAN,
            };
        }
        self.queue_bits += bits;
        let jitter = self.jitter_sample() * self.fault_plan.jitter_factor(send_time_ms);
        let transit = queue_after_ms + self.profile.rtt_ms / 2.0 + jitter;
        Transfer {
            drop_cause: None,
            arrival_ms: send_time_ms + transit,
            transit_ms: transit,
        }
    }

    /// [`Link::send`] plus telemetry: records the transfer as a
    /// [`Stage::LinkTransfer`] span over `[send_time, arrival]`, counts the
    /// payload toward `BytesOnWire`, bumps `FramesDropped` plus a
    /// cause-specific drop counter and emits a causal drop instant on a
    /// loss, and reports the channel's effective (fault-adjusted) goodput
    /// as a gauge. The channel trace is identical to an untraced send.
    pub fn send_traced(
        &mut self,
        bytes: usize,
        send_time_ms: f64,
        rec: &mut gss_telemetry::Recorder,
    ) -> Transfer {
        let transfer = self.send(bytes, send_time_ms);
        rec.gauge(
            gss_telemetry::Gauge::LinkBandwidthMbps,
            self.effective_mbps(),
        );
        rec.add(gss_telemetry::Counter::BytesOnWire, bytes as u64);
        match transfer.drop_cause {
            None => rec.record_span(
                gss_telemetry::Stage::LinkTransfer,
                send_time_ms,
                transfer.transit_ms,
            ),
            Some(cause) => {
                rec.incr(gss_telemetry::Counter::FramesDropped);
                rec.incr(match cause {
                    DropCause::QueueOverflow => gss_telemetry::Counter::DropsQueueOverflow,
                    DropCause::DecoderDown => gss_telemetry::Counter::DropsDecoderDown,
                    DropCause::Outage => gss_telemetry::Counter::DropsOutage,
                });
                rec.instant(
                    gss_telemetry::InstantKind::Drop,
                    send_time_ms,
                    format!("frame dropped: {}", cause.label()),
                );
            }
        }
        transfer
    }

    /// Fraction of sent frames dropped so far.
    pub fn drop_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.dropped as f64 / self.sent as f64
        }
    }

    /// Frames sent so far.
    pub fn sent_count(&self) -> u64 {
        self.sent
    }
}

pub(crate) fn draw_bandwidth(profile: &LinkProfile, rng: &mut SmallRng) -> f64 {
    // uniform draw scaled so the factor's standard deviation equals the
    // CV, floored at 5% of the mean so the link never fully dies
    let u: f64 = rng.gen::<f64>();
    let factor = 1.0 + (u - 0.5) * 2.0 * profile.bandwidth_cv * 1.732;
    (profile.bandwidth_mbps * factor).max(profile.bandwidth_mbps * 0.05)
}

/// Streams `frame_bytes`-sized frames at `fps` for `frames` frames and
/// reports the drop rate — the paper's §II-A experiment in miniature.
pub fn stream_drop_rate(
    profile: &LinkProfile,
    seed: u64,
    frame_bytes: usize,
    fps: f64,
    frames: usize,
) -> f64 {
    let mut link = Link::new(profile.clone(), seed);
    let interval = 1000.0 / fps;
    for i in 0..frames {
        let _ = link.send(frame_bytes, i as f64 * interval);
    }
    link.drop_rate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_give_identical_traces() {
        let mut a = Link::new(LinkProfile::wifi(), 7);
        let mut b = Link::new(LinkProfile::wifi(), 7);
        for i in 0..50 {
            let ta = a.send(10_000, i as f64 * 16.66);
            let tb = b.send(10_000, i as f64 * 16.66);
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn small_frames_on_idle_link_always_arrive() {
        let mut link = Link::new(LinkProfile::wifi(), 3);
        for i in 0..100 {
            let t = link.send(2_000, i as f64 * 16.66);
            assert!(t.delivered());
            assert!(t.transit_ms >= link.profile().rtt_ms / 2.0);
        }
        assert_eq!(link.drop_rate(), 0.0);
    }

    #[test]
    fn oversized_stream_gets_dropped() {
        // 2K-class frames (~210 KB each at 60 FPS ≈ 100 Mbps) overwhelm a
        // link whose fades dip well below that; 720p-class frames fit
        let drop_hi = stream_drop_rate(&LinkProfile::wifi(), 11, 210_000, 60.0, 600);
        let drop_lo = stream_drop_rate(&LinkProfile::wifi(), 11, 62_000, 60.0, 600);
        assert!(drop_hi > 0.2, "high-res drop rate {drop_hi:.3}");
        assert!(drop_lo < 0.05, "low-res drop rate {drop_lo:.3}");
    }

    #[test]
    fn queue_drains_over_time() {
        let mut link = Link::new(
            LinkProfile {
                bandwidth_cv: 0.0,
                jitter_ms: 0.0,
                ..LinkProfile::wifi()
            },
            1,
        );
        // back-to-back sends at the same instant queue up
        let t1 = link.send(40_000, 0.0);
        let t2 = link.send(40_000, 0.0);
        assert!(t2.transit_ms > t1.transit_ms);
        // after a long idle gap the queue is empty again
        let t3 = link.send(40_000, 1000.0);
        assert!((t3.transit_ms - t1.transit_ms).abs() < 1e-6);
    }

    #[test]
    fn drop_rate_counts_correctly() {
        let mut link = Link::new(
            LinkProfile {
                bandwidth_mbps: 1.0,
                bandwidth_cv: 0.0,
                queue_limit_ms: 10.0,
                ..LinkProfile::wifi()
            },
            1,
        );
        // 10 KB at 1 Mbps = 80 ms of serialization > 10 ms queue limit
        let t = link.send(10_000, 0.0);
        assert_eq!(t.drop_cause, Some(DropCause::QueueOverflow));
        assert_eq!(link.drop_rate(), 1.0);
        assert_eq!(link.sent_count(), 1);
    }

    #[test]
    fn control_latency_is_half_rtt_plus_jitter() {
        let mut link = Link::new(
            LinkProfile {
                jitter_ms: 0.0,
                ..LinkProfile::wifi()
            },
            9,
        );
        assert!((link.control_latency_ms() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn traced_send_matches_untraced_and_records_the_transfer() {
        use gss_telemetry::{Counter, Gauge, Recorder, Stage};
        let mut plain = Link::new(LinkProfile::wifi(), 7);
        let mut traced = Link::new(LinkProfile::wifi(), 7);
        let mut rec = Recorder::new("net-test", 16.67);
        for i in 0..50 {
            let t = i as f64 * 16.66;
            assert_eq!(
                plain.send(10_000, t),
                traced.send_traced(10_000, t, &mut rec)
            );
        }
        let s = rec.summary();
        assert_eq!(s.counter(Counter::BytesOnWire), 50 * 10_000);
        let link = s.stage(Stage::LinkTransfer).expect("link spans recorded");
        assert_eq!(link.dist.count + s.counter(Counter::FramesDropped), 50);
        assert!(s.gauge(Gauge::LinkBandwidthMbps).unwrap().count == 50);
    }

    #[test]
    fn outage_window_drops_everything_with_the_outage_cause() {
        let plan = FaultPlan::new(vec![FaultEvent {
            start_ms: 100.0,
            end_ms: 300.0,
            kind: FaultKind::Outage,
        }]);
        let mut link = Link::with_faults(LinkProfile::wifi(), 3, plan);
        for i in 0..30 {
            let t = i as f64 * 16.66;
            let transfer = link.send(2_000, t);
            if (100.0..300.0).contains(&t) {
                assert_eq!(transfer.drop_cause, Some(DropCause::Outage), "t={t}");
            } else {
                assert!(transfer.delivered(), "t={t}");
            }
        }
    }

    #[test]
    fn bandwidth_collapse_induces_queue_overflow_drops() {
        // a stream that fits the healthy link comfortably overflows the
        // queue once the collapse leaves a tenth of the bandwidth
        let plan = FaultPlan::new(vec![FaultEvent {
            start_ms: 1000.0,
            end_ms: 4000.0,
            kind: FaultKind::BandwidthCollapse { factor: 0.05 },
        }]);
        let mut clean = Link::new(LinkProfile::wifi(), 11);
        let mut faulted = Link::with_faults(LinkProfile::wifi(), 11, plan);
        let mut overflow_in_window = 0u32;
        for i in 0..360 {
            let t = i as f64 * 16.66;
            assert!(clean.send(50_000, t).delivered(), "clean link drops at {t}");
            let transfer = faulted.send(50_000, t);
            if transfer.drop_cause == Some(DropCause::QueueOverflow)
                && (1000.0..4000.0).contains(&t)
            {
                overflow_in_window += 1;
            }
        }
        assert!(
            overflow_in_window > 60,
            "only {overflow_in_window} overflow drops during the collapse"
        );
        assert!(faulted.drop_rate() > clean.drop_rate());
    }

    #[test]
    fn faulted_links_are_deterministic_and_share_the_seed_trace() {
        let plan = || {
            FaultPlan::new(vec![
                FaultEvent {
                    start_ms: 500.0,
                    end_ms: 900.0,
                    kind: FaultKind::BandwidthCollapse { factor: 0.2 },
                },
                FaultEvent {
                    start_ms: 1200.0,
                    end_ms: 1400.0,
                    kind: FaultKind::JitterSpike { factor: 3.0 },
                },
            ])
        };
        // NaN-valued drop fields defeat PartialEq, so compare bitwise
        let same = |x: &Transfer, y: &Transfer| {
            x.drop_cause == y.drop_cause
                && x.arrival_ms.to_bits() == y.arrival_ms.to_bits()
                && x.transit_ms.to_bits() == y.transit_ms.to_bits()
        };
        let mut a = Link::with_faults(LinkProfile::mmwave_5g(), 21, plan());
        let mut b = Link::with_faults(LinkProfile::mmwave_5g(), 21, plan());
        let mut unfaulted = Link::new(LinkProfile::mmwave_5g(), 21);
        for i in 0..120 {
            let t = i as f64 * 16.66;
            let ta = a.send(30_000, t);
            let tb = b.send(30_000, t);
            assert!(same(&ta, &tb), "t={t}: {ta:?} vs {tb:?}");
            let tu = unfaulted.send(30_000, t);
            // outside every fault window, before the first one perturbs the
            // queue, the faulted link matches the bare-seed trace exactly
            if t < 500.0 {
                assert!(same(&ta, &tu), "t={t}: {ta:?} vs {tu:?}");
            }
        }
    }

    #[test]
    fn traced_send_counts_drop_causes() {
        use gss_telemetry::{Counter, Recorder};
        let plan = FaultPlan::new(vec![FaultEvent {
            start_ms: 0.0,
            end_ms: 200.0,
            kind: FaultKind::Outage,
        }]);
        let mut link = Link::with_faults(LinkProfile::wifi(), 5, plan);
        let mut rec = Recorder::new("net-cause-test", 16.67);
        for i in 0..24 {
            let _ = link.send_traced(2_000, i as f64 * 16.66, &mut rec);
        }
        let s = rec.summary();
        assert_eq!(s.counter(Counter::DropsOutage), 13); // sends at t < 200
        assert_eq!(s.counter(Counter::DropsQueueOverflow), 0);
        assert_eq!(
            s.counter(Counter::FramesDropped),
            s.counter(Counter::DropsOutage)
        );
    }

    #[test]
    fn mmwave_is_more_volatile_than_wifi() {
        // same moderately-sized stream: mmWave's deep fades drop more
        // frames than steadier WiFi once the stream approaches capacity
        let wifi = stream_drop_rate(&LinkProfile::wifi(), 5, 30_000, 60.0, 1200);
        let mm = stream_drop_rate(&LinkProfile::mmwave_5g(), 5, 110_000, 60.0, 1200);
        assert!(mm > 0.05, "mmWave drops {mm:.3}");
        let _ = wifi;
    }
}
