//! Adaptive degradation under faults — the client's resilience controller.
//!
//! The paper evaluates GameStreamSR on healthy channels and a cool NPU; a
//! deployment sees neither. This module adds the control loop that keeps
//! the stream at 60 FPS when the world turns hostile: a rolling window of
//! deadline misses and link drops drives a **degradation ladder**, and a
//! NACK manager with exponential backoff bounds how long a lost reference
//! frame can freeze the display.
//!
//! # The ladder
//!
//! Each rung pairs an SR model tier with the *fraction of the 16.66 ms
//! frame budget the NPU pass may occupy at nominal clocks* and a rate-
//! controller scale. Descending a rung shrinks the RoI window so the NPU
//! pass fits the reduced occupancy — which is exactly what absorbs a
//! thermal slowdown: a rung whose pass occupies 35% of the budget still
//! meets the deadline when the NPU runs 2.5× slower. The bottom rung
//! unloads the NPU entirely (GPU bilinear of the whole frame — the quality
//! floor that can never miss). The rate scale rides along so a collapsed
//! link sees a stream it can actually carry.
//!
//! Climbing back is hysteretic: a full streak of clean frames per rung,
//! with a cooldown between transitions, so a marginal channel does not
//! make the ladder oscillate.

use gss_platform::{DeviceProfile, REALTIME_BUDGET_MS};
use gss_sr::ModelTier;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One rung of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LadderRung {
    /// SR model on the NPU; `None` is the bilinear-only floor.
    pub tier: Option<ModelTier>,
    /// Fraction of [`REALTIME_BUDGET_MS`] the NPU pass may occupy at
    /// nominal clocks (0 on the floor).
    pub npu_budget_fraction: f64,
    /// Scale applied to the rate controller's byte budget.
    pub rate_scale: f64,
}

impl LadderRung {
    /// The RoI side (deployment-scale pixels) this rung runs: the largest
    /// window whose NPU pass fits the rung's budget share under the rung's
    /// model, never exceeding `base_side` (the session's step-0 plan).
    pub fn roi_side(&self, device: &DeviceProfile, base_side: usize) -> usize {
        match self.tier {
            None => 0,
            Some(tier) => device
                .max_realtime_roi_side_for_model(
                    REALTIME_BUDGET_MS * self.npu_budget_fraction,
                    tier.cost_ratio(),
                )
                .min(base_side),
        }
    }

    /// Kebab-case label of the rung's model for reports.
    pub fn tier_label(&self) -> &'static str {
        self.tier.map_or("bilinear", ModelTier::label)
    }
}

/// The degradation ladder, full quality first. Occupancy fractions chosen
/// so each descent absorbs roughly an extra 1.8× of NPU slowdown before
/// the deadline is at risk again (rung r meets the deadline while
/// `fraction × slowdown ≲ 0.9`).
pub const LADDER: [LadderRung; 5] = [
    LadderRung {
        tier: Some(ModelTier::Edsr64),
        npu_budget_fraction: 1.0,
        rate_scale: 1.0,
    },
    LadderRung {
        tier: Some(ModelTier::Edsr64),
        npu_budget_fraction: 0.55,
        rate_scale: 0.8,
    },
    LadderRung {
        tier: Some(ModelTier::Edsr16),
        npu_budget_fraction: 0.35,
        rate_scale: 0.6,
    },
    LadderRung {
        tier: Some(ModelTier::Fsrcnn),
        npu_budget_fraction: 0.2,
        rate_scale: 0.45,
    },
    LadderRung {
        tier: None,
        npu_budget_fraction: 0.0,
        rate_scale: 0.3,
    },
];

/// Tuning of the [`DegradationController`] and the NACK backoff.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationConfig {
    /// Rolling window of frames the miss count is judged over.
    pub window: usize,
    /// Bad frames within the window that trigger a downgrade.
    pub degrade_misses: usize,
    /// Consecutive clean frames required per upgrade step (hysteresis).
    pub recover_frames: usize,
    /// Minimum frames between any two ladder transitions.
    pub cooldown_frames: usize,
    /// Frames a NACK waits for its keyframe before re-requesting.
    pub nack_timeout_frames: usize,
    /// Upper bound of the NACK retry backoff, in frames.
    pub nack_backoff_max_frames: usize,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            window: 12,
            degrade_misses: 4,
            recover_frames: 18,
            cooldown_frames: 6,
            nack_timeout_frames: 3,
            nack_backoff_max_frames: 24,
        }
    }
}

/// A ladder step taken by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LadderStep {
    /// Stepped one rung down (cheaper).
    Downgrade,
    /// Stepped one rung up (toward full quality).
    Upgrade,
}

/// Watches per-frame health and walks the degradation ladder.
#[derive(Debug, Clone)]
pub struct DegradationController {
    config: DegradationConfig,
    rung: usize,
    ceiling: usize,
    window: VecDeque<bool>,
    misses_in_window: usize,
    clean_streak: usize,
    cooldown: usize,
}

impl DegradationController {
    /// Creates a controller at the top rung.
    ///
    /// # Panics
    ///
    /// Panics when the window is empty or the degrade threshold does not
    /// fit it.
    pub fn new(config: DegradationConfig) -> Self {
        assert!(config.window > 0, "window must be nonzero");
        assert!(
            (1..=config.window).contains(&config.degrade_misses),
            "degrade threshold must fit the window"
        );
        assert!(config.recover_frames > 0, "recovery streak must be nonzero");
        DegradationController {
            config,
            rung: 0,
            ceiling: 0,
            window: VecDeque::with_capacity(config.window),
            misses_in_window: 0,
            clean_streak: 0,
            cooldown: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> DegradationConfig {
        self.config
    }

    /// Current rung index (0 = full quality).
    pub fn rung(&self) -> usize {
        self.rung
    }

    /// The current rung's parameters.
    pub fn rung_params(&self) -> LadderRung {
        LADDER[self.rung]
    }

    /// Whether the controller sits below full quality.
    pub fn is_degraded(&self) -> bool {
        self.rung > 0
    }

    /// The best (lowest-index) rung the controller may climb to. 0 unless
    /// clamped by capability negotiation or the safe-profile fallback.
    pub fn ceiling(&self) -> usize {
        self.ceiling
    }

    /// Ratchets the ceiling: the controller will never climb above
    /// `rung` again. Tightening only — a looser value than the current
    /// ceiling is ignored, so the safe-profile fallback cannot be undone
    /// by a later negotiation. Returns `true` when the *current* rung had
    /// to move down to respect the new ceiling.
    pub fn clamp_ceiling(&mut self, rung: usize) -> bool {
        self.ceiling = self.ceiling.max(rung.min(LADDER.len() - 1));
        if self.rung < self.ceiling {
            self.rung = self.ceiling;
            self.window.clear();
            self.misses_in_window = 0;
            self.clean_streak = 0;
            true
        } else {
            false
        }
    }

    /// Forces the controller to `rung` immediately (clamped to the
    /// ceiling and the ladder), clearing the rolling window — recovery
    /// uses this to engage the ladder floor the moment the decoder dies
    /// rather than waiting for the miss window to fill. Returns `true`
    /// when the rung changed.
    pub fn force_rung(&mut self, rung: usize) -> bool {
        let target = rung.clamp(self.ceiling, LADDER.len() - 1);
        if target == self.rung {
            return false;
        }
        self.rung = target;
        self.window.clear();
        self.misses_in_window = 0;
        self.clean_streak = 0;
        self.cooldown = self.config.cooldown_frames;
        true
    }

    /// Folds one frame's health into the rolling window and returns the
    /// ladder step taken, if any. `bad` means the frame missed its
    /// real-time deadline or the link dropped it.
    pub fn observe(&mut self, bad: bool) -> Option<LadderStep> {
        if self.window.len() == self.config.window && self.window.pop_front() == Some(true) {
            self.misses_in_window -= 1;
        }
        self.window.push_back(bad);
        if bad {
            self.misses_in_window += 1;
            self.clean_streak = 0;
        } else {
            self.clean_streak += 1;
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        if self.misses_in_window >= self.config.degrade_misses && self.rung + 1 < LADDER.len() {
            self.rung += 1;
            self.cooldown = self.config.cooldown_frames;
            // stale misses belong to the rung that caused them
            self.window.clear();
            self.misses_in_window = 0;
            self.clean_streak = 0;
            return Some(LadderStep::Downgrade);
        }
        if self.clean_streak >= self.config.recover_frames && self.rung > self.ceiling {
            self.rung -= 1;
            self.cooldown = self.config.cooldown_frames;
            // hysteresis: a fresh streak is required for the next step up
            self.clean_streak = 0;
            return Some(LadderStep::Upgrade);
        }
        None
    }
}

/// What a [`NackManager::begin_frame`] poll asks the session to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NackSignal {
    /// First request for this loss: NACK the server now.
    Fresh,
    /// The previous request timed out: NACK again (backoff doubled).
    Retry,
}

/// Keyframe-request state machine: one NACK per loss, re-issued with
/// exponential backoff while the keyframe fails to arrive.
///
/// The retry schedule is keyed on the manager's **own** frame counter:
/// every [`begin_frame`](Self::begin_frame) poll is one frame of this
/// session's timeline, counted internally. Earlier revisions took the
/// caller's frame index, which silently coupled the backoff window to
/// whatever counter the caller happened to share — two sessions polled
/// from one loop at different frame phases would stretch or collapse each
/// other's retry windows. Per-session isolation now holds by construction.
#[derive(Debug, Clone)]
pub struct NackManager {
    timeout_frames: usize,
    backoff_max_frames: usize,
    awaiting: bool,
    pending_request: bool,
    /// Frames observed by this manager (incremented per poll).
    frame: usize,
    /// Retry deadline on the internal frame counter.
    deadline: Option<usize>,
    backoff: usize,
}

impl NackManager {
    /// Creates the manager.
    ///
    /// # Panics
    ///
    /// Panics when the timeout is zero or exceeds the backoff bound.
    pub fn new(timeout_frames: usize, backoff_max_frames: usize) -> Self {
        assert!(timeout_frames > 0, "timeout must be nonzero");
        assert!(
            timeout_frames <= backoff_max_frames,
            "backoff bound must cover the timeout"
        );
        NackManager {
            timeout_frames,
            backoff_max_frames,
            awaiting: false,
            pending_request: false,
            frame: 0,
            deadline: None,
            backoff: timeout_frames,
        }
    }

    /// Frames this manager has observed (one per
    /// [`begin_frame`](Self::begin_frame) poll).
    pub fn frames_observed(&self) -> usize {
        self.frame
    }

    /// Whether a keyframe is still outstanding.
    pub fn awaiting(&self) -> bool {
        self.awaiting
    }

    /// The current retry backoff, in frames.
    pub fn backoff_frames(&self) -> usize {
        self.backoff
    }

    /// Records that the link lost a frame the client needed.
    pub fn on_loss(&mut self) {
        if !self.awaiting {
            self.awaiting = true;
            self.pending_request = true;
        }
    }

    /// Records that a keyframe arrived intact; resets the backoff.
    pub fn on_keyframe_delivered(&mut self) {
        self.awaiting = false;
        self.pending_request = false;
        self.deadline = None;
        self.backoff = self.timeout_frames;
    }

    /// Polled once at the start of every frame of this session, before the
    /// server encodes: says whether to send a (re-)request this frame.
    /// Each call advances the manager's internal frame counter by one.
    pub fn begin_frame(&mut self) -> Option<NackSignal> {
        let now = self.frame;
        self.frame += 1;
        if !self.awaiting {
            return None;
        }
        if self.pending_request {
            self.pending_request = false;
            self.deadline = Some(now + self.backoff);
            return Some(NackSignal::Fresh);
        }
        if self.deadline.is_some_and(|d| now >= d) {
            self.backoff = (self.backoff * 2).min(self.backoff_max_frames);
            self.deadline = Some(now + self.backoff);
            return Some(NackSignal::Retry);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_descends_monotonically_in_cost_and_rate() {
        for pair in LADDER.windows(2) {
            assert!(pair[1].npu_budget_fraction < pair[0].npu_budget_fraction);
            assert!(pair[1].rate_scale < pair[0].rate_scale);
            let cost = |r: &LadderRung| r.tier.map_or(0.0, |t| t.cost_ratio());
            assert!(cost(&pair[1]) <= cost(&pair[0]));
        }
        assert_eq!(LADDER[0].tier, Some(ModelTier::Edsr64));
        assert_eq!(LADDER[0].npu_budget_fraction, 1.0);
        assert_eq!(LADDER.last().unwrap().tier, None);
    }

    #[test]
    fn rung_windows_fit_their_budget_share_and_never_grow() {
        // note the side is NOT monotone down the ladder: a cheaper model
        // can afford the full base window again (it is clamped there), it
        // just runs it in a fraction of the time
        let device = DeviceProfile::s8_tab();
        let base = device.max_realtime_roi_side(REALTIME_BUDGET_MS);
        for rung in &LADDER {
            let side = rung.roi_side(&device, base);
            assert!(side <= base, "side {side} exceeds the base plan");
            if let Some(tier) = rung.tier {
                let npu = device.npu_sr_ms_for_model(side * side, tier.cost_ratio());
                assert!(
                    npu <= REALTIME_BUDGET_MS * rung.npu_budget_fraction + 1e-9,
                    "{}: {npu:.2} ms over {:.0}% share",
                    rung.tier_label(),
                    rung.npu_budget_fraction * 100.0
                );
            }
        }
        assert_eq!(LADDER[0].roi_side(&device, base), base);
        assert_eq!(LADDER[4].roi_side(&device, base), 0);
    }

    #[test]
    fn descending_rungs_absorb_increasing_slowdown() {
        // the whole point of the ladder: at rung r the NPU pass still fits
        // the frame budget under a slowdown rung 0 cannot survive
        let device = DeviceProfile::s8_tab();
        let base = device.max_realtime_roi_side(REALTIME_BUDGET_MS);
        let fits = |rung: &LadderRung, slowdown: f64| -> bool {
            let side = rung.roi_side(&device, base);
            match rung.tier {
                None => true,
                Some(tier) => {
                    device.npu_sr_ms_throttled(side * side, tier.cost_ratio(), slowdown)
                        <= REALTIME_BUDGET_MS
                }
            }
        };
        assert!(!fits(&LADDER[0], 1.5));
        assert!(fits(&LADDER[1], 1.5));
        assert!(!fits(&LADDER[1], 2.5));
        assert!(fits(&LADDER[2], 2.5));
        assert!(fits(&LADDER[3], 4.0));
        assert!(fits(&LADDER[4], 100.0));
    }

    #[test]
    fn controller_degrades_on_misses_and_recovers_with_hysteresis() {
        let cfg = DegradationConfig::default();
        let mut ctl = DegradationController::new(cfg);
        assert_eq!(ctl.rung(), 0);
        // a burst of bad frames walks one rung down
        let mut steps = Vec::new();
        for _ in 0..cfg.degrade_misses {
            if let Some(s) = ctl.observe(true) {
                steps.push(s);
            }
        }
        assert_eq!(steps, vec![LadderStep::Downgrade]);
        assert_eq!(ctl.rung(), 1);
        // clean frames within the cooldown do nothing
        for _ in 0..cfg.cooldown_frames {
            assert_eq!(ctl.observe(false), None);
        }
        // a full clean streak climbs back exactly one rung
        let mut upgrades = 0;
        for _ in 0..cfg.recover_frames {
            if ctl.observe(false) == Some(LadderStep::Upgrade) {
                upgrades += 1;
            }
        }
        assert_eq!(upgrades, 1);
        assert_eq!(ctl.rung(), 0);
        assert!(!ctl.is_degraded());
    }

    #[test]
    fn sustained_faults_reach_the_floor_and_stop() {
        let cfg = DegradationConfig::default();
        let mut ctl = DegradationController::new(cfg);
        for _ in 0..200 {
            ctl.observe(true);
        }
        assert_eq!(ctl.rung(), LADDER.len() - 1);
        assert_eq!(ctl.rung_params().tier, None);
    }

    #[test]
    fn one_bad_frame_resets_the_recovery_streak() {
        let cfg = DegradationConfig {
            window: 6,
            degrade_misses: 2,
            recover_frames: 10,
            cooldown_frames: 0,
            ..DegradationConfig::default()
        };
        let mut ctl = DegradationController::new(cfg);
        ctl.observe(true);
        ctl.observe(true);
        assert_eq!(ctl.rung(), 1);
        for _ in 0..9 {
            assert_eq!(ctl.observe(false), None);
        }
        ctl.observe(true); // streak dies at 9/10
        for _ in 0..9 {
            assert_eq!(ctl.observe(false), None);
        }
        assert_eq!(ctl.rung(), 1, "a marginal channel must not oscillate");
        assert_eq!(ctl.observe(false), Some(LadderStep::Upgrade));
    }

    /// Polls `nack` for `n` frames, asserting every poll stays quiet.
    fn quiet_frames(nack: &mut NackManager, n: usize) {
        for _ in 0..n {
            assert_eq!(
                nack.begin_frame(),
                None,
                "unexpected signal at frame {}",
                nack.frames_observed()
            );
        }
    }

    #[test]
    fn nack_retries_with_exponential_backoff() {
        let mut nack = NackManager::new(3, 24);
        assert_eq!(nack.begin_frame(), None); // frame 0: nothing lost
        nack.on_loss();
        assert_eq!(nack.begin_frame(), Some(NackSignal::Fresh)); // frame 1
                                                                 // waits out the timeout (frames 2-3)...
        quiet_frames(&mut nack, 2);
        // ...then retries with doubled backoff: 3 → 6 → 12 → 24 → 24
        assert_eq!(nack.begin_frame(), Some(NackSignal::Retry)); // frame 4
        assert_eq!(nack.backoff_frames(), 6);
        quiet_frames(&mut nack, 5); // frames 5-9
        assert_eq!(nack.begin_frame(), Some(NackSignal::Retry)); // frame 10
        assert_eq!(nack.backoff_frames(), 12);
        quiet_frames(&mut nack, 11); // frames 11-21
        assert_eq!(nack.begin_frame(), Some(NackSignal::Retry)); // frame 22
        assert_eq!(nack.backoff_frames(), 24);
        quiet_frames(&mut nack, 23); // frames 23-45
        assert_eq!(nack.begin_frame(), Some(NackSignal::Retry)); // frame 46
        assert_eq!(nack.backoff_frames(), 24, "backoff is bounded");
        // delivery resets everything
        nack.on_keyframe_delivered();
        assert!(!nack.awaiting());
        assert_eq!(nack.backoff_frames(), 3);
        assert_eq!(nack.begin_frame(), None); // frame 47
                                              // a second loss starts from the base timeout again
        nack.on_loss();
        assert_eq!(nack.begin_frame(), Some(NackSignal::Fresh)); // frame 48
        assert_eq!(nack.backoff_frames(), 3);
    }

    #[test]
    fn nack_schedules_are_isolated_between_sessions_at_different_phases() {
        // Two sessions polled from one loop, the second joining 17 frames
        // late: each manager's backoff window must be keyed on its own
        // frame counter, so the phase offset cannot perturb either
        // schedule. Signals are recorded relative to each session's own
        // loss and must match exactly.
        let schedule_of = |phase_lag: usize| {
            let mut nack = NackManager::new(3, 24);
            for _ in 0..phase_lag {
                assert_eq!(nack.begin_frame(), None);
            }
            nack.on_loss();
            (0..40).map(|_| nack.begin_frame()).collect::<Vec<_>>()
        };
        let a = schedule_of(0);
        let b = schedule_of(17);
        assert_eq!(a, b, "phase lag leaked into the retry schedule");
        assert_eq!(a[0], Some(NackSignal::Fresh));
        assert!(a.contains(&Some(NackSignal::Retry)));

        // And interleaved polling of two live managers cannot cross-talk:
        // session B's schedule is identical whether A exists or not.
        let mut a_live = NackManager::new(3, 24);
        let mut b_live = NackManager::new(3, 24);
        for _ in 0..17 {
            let _ = a_live.begin_frame();
        }
        a_live.on_loss();
        b_live.on_loss();
        let mut b_signals = Vec::new();
        for _ in 0..40 {
            let _ = a_live.begin_frame();
            b_signals.push(b_live.begin_frame());
        }
        assert_eq!(b_signals, schedule_of(0));
    }

    #[test]
    fn a_clamped_ceiling_caps_recovery_and_only_ratchets_down() {
        let cfg = DegradationConfig {
            cooldown_frames: 0,
            ..DegradationConfig::default()
        };
        let mut ctl = DegradationController::new(cfg);
        // negotiation says this client tops out at rung 2
        assert!(ctl.clamp_ceiling(2), "the rung must move to the ceiling");
        assert_eq!(ctl.rung(), 2);
        assert_eq!(ctl.ceiling(), 2);
        // no amount of clean frames climbs above the ceiling
        for _ in 0..10 * cfg.recover_frames {
            assert_eq!(ctl.observe(false), None);
        }
        assert_eq!(ctl.rung(), 2);
        // misses still walk down below the ceiling, and recovery returns
        // exactly to it
        for _ in 0..cfg.degrade_misses {
            ctl.observe(true);
        }
        assert_eq!(ctl.rung(), 3);
        for _ in 0..2 * cfg.recover_frames {
            ctl.observe(false);
        }
        assert_eq!(ctl.rung(), 2);
        // loosening is ignored: the fallback cannot be undone
        assert!(!ctl.clamp_ceiling(0));
        assert_eq!(ctl.ceiling(), 2);
        // out-of-range values clamp to the floor
        ctl.clamp_ceiling(99);
        assert_eq!(ctl.ceiling(), LADDER.len() - 1);
        assert_eq!(ctl.rung(), LADDER.len() - 1);
    }

    #[test]
    fn force_rung_jumps_immediately_and_respects_the_ceiling() {
        let cfg = DegradationConfig::default();
        let mut ctl = DegradationController::new(cfg);
        assert!(ctl.force_rung(LADDER.len() - 1), "jump to the floor");
        assert_eq!(ctl.rung(), LADDER.len() - 1);
        assert!(!ctl.force_rung(LADDER.len() - 1), "no-op reports false");
        // forcing upward respects a clamped ceiling
        ctl.clamp_ceiling(2);
        assert!(ctl.force_rung(0));
        assert_eq!(ctl.rung(), 2, "force cannot pierce the ceiling");
    }

    #[test]
    fn nack_backoff_saturates_exactly_at_its_bound() {
        // timeout == max: the very first retry is already saturated and
        // every further retry stays pinned there
        let mut nack = NackManager::new(24, 24);
        nack.on_loss();
        assert_eq!(nack.begin_frame(), Some(NackSignal::Fresh)); // frame 0
        assert_eq!(nack.backoff_frames(), 24);
        quiet_frames(&mut nack, 23); // frames 1-23
        assert_eq!(nack.begin_frame(), Some(NackSignal::Retry)); // frame 24
        assert_eq!(nack.backoff_frames(), 24, "2x24 clamps back to 24");
        quiet_frames(&mut nack, 23); // frames 25-47
        assert_eq!(nack.begin_frame(), Some(NackSignal::Retry)); // frame 48
        assert_eq!(nack.backoff_frames(), 24);
    }

    #[test]
    fn keyframe_mid_backoff_window_resets_the_schedule() {
        let mut nack = NackManager::new(3, 24);
        nack.on_loss();
        assert_eq!(nack.begin_frame(), Some(NackSignal::Fresh)); // frame 0
        quiet_frames(&mut nack, 2); // frames 1-2
        assert_eq!(nack.begin_frame(), Some(NackSignal::Retry)); // frame 3
        assert_eq!(nack.backoff_frames(), 6);
        // the keyframe lands while the 6-frame retry window is still open
        nack.on_keyframe_delivered();
        assert!(!nack.awaiting());
        assert_eq!(nack.backoff_frames(), 3, "backoff resets to the base");
        // the stale deadline must not fire a ghost retry later
        quiet_frames(&mut nack, 36); // frames 4-39
                                     // and a fresh loss starts a brand-new schedule from the base
        nack.on_loss();
        assert_eq!(nack.begin_frame(), Some(NackSignal::Fresh)); // frame 40
        quiet_frames(&mut nack, 2); // frames 41-42
        assert_eq!(nack.begin_frame(), Some(NackSignal::Retry)); // frame 43
    }

    #[test]
    fn loss_and_keyframe_in_the_same_frame() {
        // the session processes the transfer outcome before polling the
        // next frame: a loss followed by a keyframe in the same frame
        // leaves no outstanding request...
        let mut nack = NackManager::new(3, 24);
        nack.on_loss();
        nack.on_keyframe_delivered();
        assert!(!nack.awaiting());
        assert_eq!(nack.begin_frame(), None, "nothing outstanding");
        // ...while the reverse order (keyframe then a same-frame loss)
        // leaves exactly one fresh request for the next poll
        nack.on_keyframe_delivered();
        nack.on_loss();
        assert!(nack.awaiting());
        assert_eq!(nack.begin_frame(), Some(NackSignal::Fresh));
        assert_eq!(nack.begin_frame(), None);
    }

    #[test]
    fn duplicate_losses_do_not_stack_requests() {
        let mut nack = NackManager::new(3, 24);
        nack.on_loss();
        nack.on_loss();
        nack.on_loss();
        assert_eq!(nack.begin_frame(), Some(NackSignal::Fresh));
        assert_eq!(nack.begin_frame(), None);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn empty_window_rejected() {
        DegradationController::new(DegradationConfig {
            window: 0,
            ..DegradationConfig::default()
        });
    }
}
