//! The paper's §VI future-work prototype (Fig. 15): an RoI-guided
//! **SR-integrated video decoder**.
//!
//! Key ideas reproduced here:
//!
//! * the RoI-based upscale engine runs only for **reference** frames, whose
//!   upscaled result is cached in the decoder buffer;
//! * **non-reference** frames *bypass* the upscale engine (the "frame
//!   dispatcher" routes them by frame type): the decoder reconstructs them
//!   directly in high-resolution space from the cached reference, upscaled
//!   motion vectors and **RoI-guided residual interpolation** — bicubic
//!   inside the RoI for quality, bilinear outside for speed;
//! * reconstruction happens in (modeled) fixed-function decoder hardware,
//!   skipping the NPU entirely for 59 of every 60 frames — the source of
//!   the paper's projected "up to 50%" additional energy saving.

use crate::client::GameStreamClient;
use crate::GssError;
use gss_codec::{compensate, DecodeDetail, Decoder, EncodedFrame, FrameType, MB_SIZE};
use gss_frame::{Frame, Rect};
use gss_platform::DeviceProfile;
use gss_sr::{InterpKernel, InterpUpscaler, Upscaler};

/// One frame out of the SR-integrated decoder.
#[derive(Debug, Clone)]
pub struct ExtOutput {
    /// The high-resolution frame.
    pub frame: Frame,
    /// Reference or non-reference.
    pub frame_type: FrameType,
    /// `true` when the frame dispatcher bypassed the upscale engine
    /// (non-reference path).
    pub bypassed_upscale_engine: bool,
}

/// The prototype SR-integrated decoder.
///
/// ```
/// use gamestreamsr::decoder_ext::SrIntegratedDecoder;
/// use gss_codec::{Encoder, EncoderConfig};
/// use gss_frame::{Frame, Rect};
///
/// let mut enc = Encoder::new(EncoderConfig::default());
/// let mut dec = SrIntegratedDecoder::new(2);
/// let packet = enc.encode(&Frame::filled(64, 32, [90.0, 128.0, 128.0])).unwrap();
/// let out = dec.process(&packet, Rect::new(16, 8, 24, 16)).unwrap();
/// assert!(!out.bypassed_upscale_engine); // keyframes go through the engine
/// ```
#[derive(Debug)]
pub struct SrIntegratedDecoder {
    decoder: Decoder,
    upscale_engine: GameStreamClient,
    bilinear: InterpUpscaler,
    bicubic: InterpUpscaler,
    scale: usize,
    cached_reference_hr: Option<Frame>,
}

impl SrIntegratedDecoder {
    /// Creates the prototype for an upscale factor.
    ///
    /// # Panics
    ///
    /// Panics when `scale` is zero.
    pub fn new(scale: usize) -> Self {
        assert!(scale > 0, "scale must be nonzero");
        SrIntegratedDecoder {
            decoder: Decoder::new(),
            upscale_engine: GameStreamClient::new(scale),
            bilinear: InterpUpscaler::new(InterpKernel::Bilinear, scale),
            bicubic: InterpUpscaler::new(InterpKernel::Bicubic, scale),
            scale,
            cached_reference_hr: None,
        }
    }

    /// Processes the next packet with its RoI coordinates.
    ///
    /// # Errors
    ///
    /// Propagates codec errors.
    pub fn process(&mut self, packet: &EncodedFrame, roi: Rect) -> Result<ExtOutput, GssError> {
        let decoded = self.decoder.decode(packet)?;
        match decoded.detail {
            DecodeDetail::Intra => {
                // dispatcher → upscale engine (step-1), result cached (step-2)
                let out = self.upscale_engine.upscale(&decoded.frame, roi);
                self.cached_reference_hr = Some(out.frame.clone());
                Ok(ExtOutput {
                    frame: out.frame,
                    frame_type: FrameType::Intra,
                    bypassed_upscale_engine: false,
                })
            }
            DecodeDetail::Inter { motion, residual } => {
                let reference = self
                    .cached_reference_hr
                    .as_ref()
                    .ok_or(gss_codec::CodecError::MissingReference)?;
                // step-3: RoI-guided residual interpolation
                let (lw, lh) = residual.size();
                let roi_lr = roi.clamp_to(lw, lh);
                let residual_bilinear = self.bilinear.upscale(&residual);
                let residual_roi_bicubic = self.bicubic.upscale(&residual.crop(roi_lr));
                let mut residual_hr = residual_bilinear;
                residual_hr.paste(
                    &residual_roi_bicubic,
                    roi_lr.x * self.scale,
                    roi_lr.y * self.scale,
                );
                // step-4: reconstruct in HR space from the cached reference
                let motion_hr = motion.scaled(self.scale);
                let block_hr = MB_SIZE * self.scale;
                let rec = |refp: &gss_frame::Plane<f32>, resp: &gss_frame::Plane<f32>| {
                    compensate(refp, &motion_hr, block_hr)
                        .zip_map(resp, |p, r| (p + r).clamp(0.0, 255.0))
                        .expect("hr planes share dimensions")
                };
                let frame = Frame::from_planes(
                    rec(reference.y(), residual_hr.y()),
                    rec(reference.cb(), residual_hr.cb()),
                    rec(reference.cr(), residual_hr.cr()),
                )
                .expect("planes share dimensions");
                self.cached_reference_hr = Some(frame.clone());
                Ok(ExtOutput {
                    frame,
                    frame_type: FrameType::Inter,
                    bypassed_upscale_engine: true,
                })
            }
        }
    }
}

/// Modeled per-GOP energy of the upscale+decode stages, in millijoules,
/// comparing this work's client against the SR-integrated decoder
/// prototype. `bytes_per_frame` sets the network share; `roi_side` is the
/// deployment-scale RoI side.
pub fn gop_energy_projection(
    device: &DeviceProfile,
    gop_size: usize,
    roi_side: usize,
    bytes_per_frame: usize,
) -> EnergyProjection {
    use crate::mtp::{ours_upscale, FULL_HR, FULL_LR};
    let upscale = ours_upscale(device, roi_side);
    let lr_px = FULL_LR.pixels();
    let hr_px = FULL_HR.pixels();

    // per-frame energy of this work's client (Fig. 9 pipeline)
    let ours_frame = device.npu_w * upscale.npu_ms
        + device.gpu_w * (upscale.gpu_ms + upscale.merge_ms)
        + device.hw_decoder_w * device.hw_decode_ms(lr_px);
    // prototype: reference frames keep the full pipeline; non-reference
    // frames run entirely in the (extended) fixed-function decoder, which
    // performs HR motion compensation + RoI-guided residual interpolation
    // at roughly half the per-pixel cost of a full decode
    let ext_ref_frame = ours_frame;
    let ext_nonref_frame =
        device.hw_decoder_w * (device.hw_decode_ms(lr_px) + 0.5 * device.hw_decode_ms(hr_px));

    let shared = (device.net_uj_per_byte * bytes_per_frame as f64 / 1000.0
        + device.display_mj_per_frame)
        * gop_size as f64;
    let n_nonref = gop_size.saturating_sub(1) as f64;
    EnergyProjection {
        ours_gop_mj: ours_frame * gop_size as f64 + shared,
        ext_gop_mj: ext_ref_frame + ext_nonref_frame * n_nonref + shared,
    }
}

/// Per-GOP energy of the current client versus the prototype.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyProjection {
    /// This work's client, mJ per GOP.
    pub ours_gop_mj: f64,
    /// SR-integrated decoder prototype, mJ per GOP.
    pub ext_gop_mj: f64,
}

impl EnergyProjection {
    /// Fractional saving of the prototype over this work's client.
    pub fn savings(&self) -> f64 {
        1.0 - self.ext_gop_mj / self.ours_gop_mj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_codec::{Encoder, EncoderConfig};
    use gss_frame::Plane;
    use gss_metrics::psnr;
    use gss_platform::REALTIME_BUDGET_MS;

    fn moving_scene(w: usize, h: usize, t: f32) -> Frame {
        Frame::from_planes(
            Plane::from_fn(w, h, |x, y| {
                let fx = x as f32 + t * 1.2;
                let stripes = if ((fx / 7.0).floor() as i32 + (y / 6) as i32) % 2 == 0 {
                    75.0
                } else {
                    180.0
                };
                (stripes + 15.0 * ((fx * 0.5).sin() * (y as f32 * 0.4).cos())).clamp(0.0, 255.0)
            }),
            Plane::filled(w, h, 120.0),
            Plane::filled(w, h, 132.0),
        )
        .unwrap()
    }

    #[test]
    fn dispatcher_routes_by_frame_type() {
        let mut enc = Encoder::new(EncoderConfig {
            gop_size: 3,
            ..EncoderConfig::default()
        });
        let mut dec = SrIntegratedDecoder::new(2);
        let roi = Rect::new(16, 12, 24, 24);
        let mut bypassed = Vec::new();
        for t in 0..6 {
            let lr = moving_scene(64, 48, t as f32);
            let out = dec.process(&enc.encode(&lr).unwrap(), roi).unwrap();
            bypassed.push(out.bypassed_upscale_engine);
        }
        assert_eq!(bypassed, vec![false, true, true, false, true, true]);
    }

    #[test]
    fn quality_tracks_the_stream_within_a_gop() {
        let mut enc = Encoder::new(EncoderConfig {
            gop_size: 6,
            ..EncoderConfig::default()
        });
        let mut dec = SrIntegratedDecoder::new(2);
        let roi = Rect::new(20, 16, 28, 28);
        for t in 0..6 {
            let hr = moving_scene(128, 96, t as f32);
            let lr = hr.downsample_box(2);
            let out = dec.process(&enc.encode(&lr).unwrap(), roi).unwrap();
            let p = psnr(&hr, &out.frame).unwrap();
            assert!(p > 20.0, "frame {t}: psnr {p:.2}");
            assert_eq!(out.frame.size(), (128, 96));
        }
    }

    #[test]
    fn projected_savings_reach_about_half() {
        // the paper projects "as high as 50%" extra energy saving
        let s8 = gss_platform::DeviceProfile::s8_tab();
        let side = s8.max_realtime_roi_side(REALTIME_BUDGET_MS);
        let proj = gop_energy_projection(&s8, 60, side, 12_000);
        assert!(
            (0.35..0.60).contains(&proj.savings()),
            "savings {:.3}",
            proj.savings()
        );
    }

    #[test]
    fn savings_grow_with_gop_length() {
        let d = gss_platform::DeviceProfile::pixel7_pro();
        let side = d.max_realtime_roi_side(REALTIME_BUDGET_MS);
        let short = gop_energy_projection(&d, 10, side, 12_000).savings();
        let long = gop_energy_projection(&d, 120, side, 12_000).savings();
        assert!(long > short);
    }

    #[test]
    fn inter_before_intra_errors() {
        let mut enc = Encoder::new(EncoderConfig::default());
        enc.encode(&moving_scene(64, 48, 0.0)).unwrap();
        let inter = enc.encode(&moving_scene(64, 48, 1.0)).unwrap();
        let mut dec = SrIntegratedDecoder::new(2);
        assert!(dec.process(&inter, Rect::new(0, 0, 16, 16)).is_err());
    }
}
