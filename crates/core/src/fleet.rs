//! Fleet-scale consolidation simulator: many sessions, one server, one
//! shared uplink.
//!
//! A consolidation server runs N concurrent [`session`](crate::session)-
//! style pipelines behind a single bottleneck uplink with a global
//! bandwidth budget. [`FleetSim`] is the discrete-event driver: logical
//! time advances in 60 Hz ticks ([`FleetSim::step`]), and each tick runs
//! five phases in a fixed order:
//!
//! 1. **Departures** — sessions whose scripted `leave_tick` arrived are
//!    finalized (their last frame is `leave_tick - 1`).
//! 2. **Admission** — arrivals whose `join_tick` arrived enter a FIFO
//!    queue; the head of the queue is admitted while concurrency is below
//!    [`AdmissionPolicy::capacity`]; joins beyond
//!    [`AdmissionPolicy::queue_limit`] waiting slots are rejected.
//! 3. **Allocation** — the shared budget
//!    (`bandwidth_mbps × uplink_utilization`) is split fairly across the
//!    admitted sessions; each session's encoder rate target is actuated
//!    through [`GameStreamServer::set_rate_target_scale`], *composed* with
//!    its degradation-ladder rung scale. Server-side stage latencies are
//!    stretched by the consolidation factor `ceil(n / server_slots)` —
//!    sessions time-share the render/encode GPU.
//! 4. **Produce** (parallel) — every admitted session renders, detects its
//!    RoI and encodes its frame. Sessions are batched across the worker
//!    pool via [`PoolHandle::for_each_mut`]; each session owns its
//!    recorder, trace sink and RNG-free pipeline state, so the phase is
//!    embarrassingly parallel and bit-deterministic at any worker count.
//! 5. **Transport + control** (serial) — staged packets cross the
//!    [`SharedLink`] in session order (the bottleneck has one clock and
//!    one RNG, so the serial order *is* the determinism contract), then
//!    each session runs its client model, NACK/recovery machines,
//!    SLO engine and degradation controller.
//!
//! Determinism: one seed fixes the shared channel; per-session pipelines
//! consume no shared mutable state in the parallel phase; phases 1–3 and
//! 5 are serial. Two runs with the same [`FleetConfig`] produce
//! byte-identical [`FleetReport::to_json`] output at any worker count —
//! `tests/fleet.rs` pins this.

use std::collections::VecDeque;

use crate::degrade::{
    DegradationConfig, DegradationController, LadderRung, LadderStep, NackManager, NackSignal,
    LADDER,
};
use crate::mtp::{self, MtpBreakdown, FULL_LR};
use crate::negotiate::negotiate;
use crate::recovery::{RecoveryConfig, RecoveryEvent, RecoveryMachine, RecoverySummary};
use crate::roi::{plan_roi_window, RoiDetectorConfig};
use crate::server::{GameStreamServer, ServerConfig};
use crate::GssError;
use gss_codec::{EncoderConfig, FrameType, RateControlConfig};
use gss_net::{DropCause, FaultPlan, FlowStats, LinkProfile, SharedLink};
use gss_platform::pool::PoolHandle;
use gss_platform::{DeviceProfile, ServerModel, REALTIME_BUDGET_MS};
use gss_render::GameId;
use gss_telemetry::timeseries::{
    jain_fairness, AdmissionStormDetector, RungFlapDetector, SeriesSet, StarvationDetector,
    DEFAULT_CAPACITY,
};
use gss_telemetry::{
    chrome_trace_json_ext, enforce_fleet_cap, Attributor, Counter, CounterTrack, FrameHealth,
    Gauge, InstantKind, Level, Recorder, SamplingPolicy, SamplingSummary, SamplingTraceSink,
    SessionAttribution, SinkHandle, SloEngine, SloSummary, TelemetrySummary, TraceInstant,
    TraceSession, TraceSink,
};

/// One session's place in the fleet timeline.
#[derive(Debug, Clone)]
pub struct FleetSessionSpec {
    /// Game workload.
    pub game: GameId,
    /// Client device model.
    pub device: DeviceProfile,
    /// Session-local fault timeline: outages/jitter/bandwidth events shape
    /// this session's last hop into the shared bottleneck; decoder
    /// crash/stall and NPU-throttle events hit this session's client.
    pub fault_plan: FaultPlan,
    /// Fleet tick at which the session requests admission.
    pub join_tick: usize,
    /// Fleet tick at which the session departs (its last frame is
    /// `leave_tick - 1`); `None` streams until the fleet run ends.
    pub leave_tick: Option<usize>,
}

impl FleetSessionSpec {
    /// A session joining at tick 0 and staying until the run ends.
    pub fn new(game: GameId, device: DeviceProfile) -> Self {
        FleetSessionSpec {
            game,
            device,
            fault_plan: FaultPlan::default(),
            join_tick: 0,
            leave_tick: None,
        }
    }

    /// Sets the admission-request tick.
    pub fn joining_at(mut self, tick: usize) -> Self {
        self.join_tick = tick;
        self
    }

    /// Sets the departure tick.
    pub fn leaving_at(mut self, tick: usize) -> Self {
        self.leave_tick = Some(tick);
        self
    }

    /// Attaches a session-local fault timeline.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }
}

/// Join admission control for the consolidation server.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// Maximum concurrently admitted sessions (the capacity estimate).
    pub capacity: usize,
    /// Joins allowed to wait in the FIFO queue; arrivals beyond this are
    /// rejected outright.
    pub queue_limit: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            capacity: 8,
            queue_limit: 4,
        }
    }
}

/// Full configuration of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Shared-bottleneck profile (its `bandwidth_mbps` is the uplink's
    /// nominal capacity).
    pub link: LinkProfile,
    /// Channel seed; one seed fixes the whole fleet's bandwidth trace and
    /// jitter stream.
    pub link_seed: u64,
    /// Fault timeline shaping the shared bottleneck itself (hits every
    /// flow at once — a staggered storm is per-session plans instead).
    pub shared_faults: FaultPlan,
    /// Fleet ticks to run (60 ticks = 1 s logical).
    pub ticks: usize,
    /// Low-resolution canvas every session's data path runs on.
    pub lr_size: (usize, usize),
    /// GOP length per session.
    pub gop_size: usize,
    /// Intra quality of each session's encoder.
    pub encoder_quality: u8,
    /// Per-session nominal rate target, Mbps at deployment scale. The
    /// allocator scales this down when the fleet oversubscribes the
    /// budget.
    pub session_rate_mbps: f64,
    /// Fraction of the bottleneck's nominal bandwidth the allocator hands
    /// out (headroom for keyframes, jitter and bandwidth fades).
    pub uplink_utilization: f64,
    /// Concurrent render/encode slots on the consolidation server:
    /// server-side stage latencies stretch by `ceil(n / server_slots)`.
    pub server_slots: usize,
    /// Server timing model (per slot).
    pub server_model: ServerModel,
    /// Degradation-ladder configuration shared by every session; `None`
    /// pins each session to its negotiated rung.
    pub degradation: Option<DegradationConfig>,
    /// Join admission control.
    pub admission: AdmissionPolicy,
    /// Worker-pool capacity for the produce phase, captured once at
    /// construction (see [`PoolHandle`]).
    pub pool: PoolHandle,
    /// Tail-based trace sampling policy. `None` keeps every frame's span
    /// tree (full traces); `Some` retains only anomaly/context/baseline
    /// frames under the policy's [`gss_telemetry::TraceBudget`], with the
    /// fleet-wide cap enforced serially each tick in the phase-6 watch.
    pub sampling: Option<SamplingPolicy>,
    /// The fleet timeline.
    pub sessions: Vec<FleetSessionSpec>,
}

impl FleetConfig {
    /// A fleet on the given shared link with no sessions yet: 120 ticks,
    /// fast canvas, adaptive degradation, default admission policy.
    pub fn new(link: LinkProfile, link_seed: u64) -> Self {
        FleetConfig {
            link,
            link_seed,
            shared_faults: FaultPlan::default(),
            ticks: 120,
            lr_size: (128, 72),
            gop_size: 60,
            encoder_quality: 75,
            session_rate_mbps: 8.0,
            uplink_utilization: 0.7,
            server_slots: 4,
            server_model: ServerModel::default(),
            degradation: Some(DegradationConfig::default()),
            admission: AdmissionPolicy::default(),
            pool: PoolHandle::current(),
            sampling: None,
            sessions: Vec::new(),
        }
    }

    /// Enables tail-based trace sampling under `policy`.
    pub fn with_sampling(mut self, policy: SamplingPolicy) -> Self {
        self.sampling = Some(policy);
        self
    }

    /// Adds a session spec.
    pub fn with_session(mut self, spec: FleetSessionSpec) -> Self {
        self.sessions.push(spec);
        self
    }

    /// Sets the tick count.
    pub fn with_ticks(mut self, ticks: usize) -> Self {
        self.ticks = ticks;
        self
    }

    /// The bandwidth budget the allocator splits across admitted
    /// sessions, Mbps.
    pub fn budget_mbps(&self) -> f64 {
        self.link.bandwidth_mbps * self.uplink_utilization
    }

    fn canvas_to_full(&self) -> f64 {
        let ratio = FULL_LR.pixels() as f64 / (self.lr_size.0 * self.lr_size.1) as f64;
        ratio.powf(0.835)
    }
}

/// Packet staged by the parallel produce phase for the serial transport
/// phase.
struct StagedPacket {
    bytes_full: usize,
    frame_type: FrameType,
    rung: usize,
    slowdown: f64,
    stall_ms: f64,
}

/// One admitted session's live pipeline state.
struct ActiveSession {
    spec_idx: usize,
    device: DeviceProfile,
    fault_plan: FaultPlan,
    joined_tick: usize,
    flow: usize,
    frame: usize,
    server: GameStreamServer,
    rec: Recorder,
    trace: TraceSink,
    /// Tail-sampling collector fed the same event stream as `trace` when
    /// [`FleetConfig::sampling`] is on. The full sink stays for
    /// attribution replay at finalize; only the sampler's retained frames
    /// survive into the merged trace.
    sampler: Option<SamplingTraceSink>,
    slo: SloEngine,
    controller: Option<DegradationController>,
    pinned_rung: usize,
    nack: NackManager,
    recovery: Option<RecoveryMachine>,
    base_side: usize,
    active_side: usize,
    active_cost: f64,
    decode_pixels: usize,
    alloc_scale: f64,
    active_faults: Vec<&'static str>,
    staged: Option<StagedPacket>,
    error: Option<GssError>,
    // accumulators
    frames_total: u64,
    frames_ok: u64,
    frames_frozen: u64,
    deadline_misses: u64,
    drops_decoder_down: u64,
    max_rung: usize,
    mtp_totals: Vec<f64>,
    // per-tick observability, fed by the serial transport phase and read
    // by the fleet-watch sampler after it
    prev_delivered: u64,
    last_rung: usize,
    last_critical_ms: f64,
    last_alloc_mbps: f64,
    last_consumed_mbps: f64,
    // EMA of consumed rate (time constant ~16 ticks): fairness must not
    // dip on GOP phase (a keyframe tick delivers several times a delta
    // tick), only on sustained under-service
    consumed_ema: f64,
    flap: RungFlapDetector,
    starve: StarvationDetector,
    alloc_track: Vec<(f64, f64)>,
    consumed_track: Vec<(f64, f64)>,
}

impl ActiveSession {
    /// The rung the session should currently be running (controller rung,
    /// or the negotiated pin without a controller).
    fn current_rung(&self) -> LadderRung {
        match &self.controller {
            Some(ctl) => ctl.rung_params(),
            None => LADDER[self.pinned_rung],
        }
    }

    /// Applies one ladder rung to the live pipeline, composing the rate
    /// scale with the fleet allocator's share (the session-level analogue
    /// of `session::apply_rung_params`; the client tier is implied by
    /// `active_cost` since fleet sessions skip the pixel data path).
    fn apply_rung(&mut self, rung: &LadderRung, lr_size: (usize, usize)) {
        self.active_side = rung.roi_side(&self.device, self.base_side);
        self.active_cost = rung.tier.map_or(1.0, |t| t.cost_ratio());
        self.server
            .set_rate_target_scale(rung.rate_scale * self.alloc_scale);
        let canvas_side = ((self.active_side * lr_size.0) / FULL_LR.width())
            .max(8)
            .min(lr_size.0.min(lr_size.1));
        self.server.set_roi_window((canvas_side, canvas_side));
    }

    /// Folds recovery-machine transitions into the live session (the
    /// fleet-local analogue of `session::apply_recovery_events`).
    fn apply_recovery(&mut self, events: &[RecoveryEvent], now_ms: f64, lr_size: (usize, usize)) {
        for ev in events {
            self.rec.instant(InstantKind::Recovery, now_ms, ev.detail());
            match ev {
                RecoveryEvent::CrashDetected { .. } => {
                    self.rec.incr(Counter::DecoderCrashes);
                    self.rec.log(Level::Warn, ev.detail());
                    if let Some(ctl) = self.controller.as_mut() {
                        if ctl.force_rung(LADDER.len() - 1) {
                            let rung = ctl.rung_params();
                            self.apply_rung(&rung, lr_size);
                        }
                    }
                }
                RecoveryEvent::Reconfiguring { .. } => {
                    self.rec.incr(Counter::DecoderReconfigures);
                }
                RecoveryEvent::AwaitingKeyframe => {
                    self.nack.on_keyframe_delivered();
                    self.nack.on_loss();
                }
                RecoveryEvent::AttemptFailed { .. } => {
                    self.rec.log(Level::Warn, ev.detail());
                }
                RecoveryEvent::SafeProfileFallback => {
                    self.rec.log(Level::Error, ev.detail());
                    if let Some(ctl) = self.controller.as_mut() {
                        if ctl.clamp_ceiling(LADDER.len() - 1) {
                            let rung = ctl.rung_params();
                            self.apply_rung(&rung, lr_size);
                        }
                    }
                }
                RecoveryEvent::Recovered { .. } => {
                    self.rec.log(Level::Info, ev.detail());
                }
            }
        }
    }

    /// Parallel phase: open the frame, walk the fault/recovery/NACK
    /// machinery, render + detect + encode, and stage the packet for the
    /// serial transport phase. Touches only `self`.
    fn produce(&mut self, now_ms: f64, config: &FleetConfig) {
        self.rec.begin_frame(self.frame as u64);
        let faults_now = self.fault_plan.active_labels(now_ms);
        if faults_now != self.active_faults {
            let msg = if faults_now.is_empty() {
                "faults cleared".to_owned()
            } else {
                format!("faults active: {}", faults_now.join("+"))
            };
            self.rec.log(Level::Warn, msg.clone());
            self.rec.instant(InstantKind::Fault, now_ms, msg);
            self.active_faults = faults_now;
        }
        let slowdown = self.fault_plan.npu_slowdown(now_ms);
        if slowdown > 1.0 {
            self.rec.gauge(Gauge::NpuSlowdown, slowdown);
        }
        if self.recovery.is_some() {
            let crashed = self.fault_plan.decoder_crashed(now_ms);
            let events = self
                .recovery
                .as_mut()
                .map(|rm| rm.begin_frame(crashed))
                .unwrap_or_default();
            self.apply_recovery(&events, now_ms, config.lr_size);
            if let Some(rm) = &self.recovery {
                self.rec
                    .gauge(Gauge::RecoveryState, rm.state().gauge_value());
            }
        }
        let rung_now = self.controller.as_ref().map_or(self.pinned_rung, |c| {
            self.rec.gauge(Gauge::LadderRung, c.rung() as f64);
            c.rung()
        });
        if let Some(signal) = self.nack.begin_frame() {
            self.server.request_keyframe();
            self.rec.incr(Counter::Nacks);
            self.rec.instant(
                InstantKind::Nack,
                now_ms,
                if signal == NackSignal::Retry {
                    "keyframe re-request (retry)"
                } else {
                    "keyframe request"
                },
            );
            if signal == NackSignal::Retry {
                self.rec.incr(Counter::NackRetries);
            }
        }
        match self.server.next_frame_traced(&mut self.rec) {
            Ok(packet) => {
                let byte_scale = config.canvas_to_full();
                self.staged = Some(StagedPacket {
                    bytes_full: (packet.encoded.size_bytes() as f64 * byte_scale) as usize,
                    frame_type: packet.frame_type,
                    rung: rung_now,
                    slowdown,
                    stall_ms: self.fault_plan.decoder_stall_ms(now_ms),
                });
            }
            Err(e) => self.error = Some(e),
        }
    }

    /// Serial phase: cross the shared link, run the client/recovery/SLO
    /// models, close the frame and let the controller renegotiate.
    fn transport(
        &mut self,
        link: &mut SharedLink,
        now_ms: f64,
        server_factor: f64,
        config: &FleetConfig,
    ) {
        let Some(staged) = self.staged.take() else {
            return;
        };
        let input_uplink_ms = link.control_latency_ms(self.flow);
        let transfer = link.send_traced(self.flow, staged.bytes_full, now_ms, &mut self.rec);
        let (mut dropped, downlink_ms) = if transfer.delivered() {
            (false, transfer.transit_ms)
        } else {
            (true, config.link.queue_limit_ms + config.link.rtt_ms / 2.0)
        };
        let mut drop_cause = transfer.drop_cause;
        let is_intra = staged.frame_type == FrameType::Intra;
        if let Some(rm) = &self.recovery {
            if !dropped && !rm.can_decode(is_intra) {
                dropped = true;
                drop_cause = Some(DropCause::DecoderDown);
                self.rec.incr(Counter::FramesDropped);
                self.rec.incr(Counter::DropsDecoderDown);
                self.rec.instant(
                    InstantKind::Drop,
                    now_ms,
                    format!("frame dropped: {}", DropCause::DecoderDown.label()),
                );
            }
        }
        let frozen = dropped || (self.nack.awaiting() && staged.frame_type == FrameType::Inter);
        if frozen {
            self.rec.incr(Counter::FramesFrozen);
        }
        if dropped {
            self.nack.on_loss();
        } else if is_intra {
            self.nack.on_keyframe_delivered();
        }
        if self.recovery.is_some() {
            let events = {
                let rm = self.recovery.as_mut().expect("recovery present");
                if frozen && rm.in_recovery() {
                    rm.note_frozen();
                }
                rm.end_frame(!dropped && !frozen && is_intra)
            };
            self.apply_recovery(&events, now_ms, config.lr_size);
        }

        let (decode_ms, upscale) = if frozen {
            (0.0, mtp::UpscaleTiming::default())
        } else {
            let decode = self.device.hw_decode_ms(self.decode_pixels) + staged.stall_ms;
            let t = mtp::ours_upscale_degraded(
                &self.device,
                self.active_side,
                self.active_cost,
                staged.slowdown,
            );
            (decode, t)
        };

        let sm = &config.server_model;
        let mtp_breakdown = MtpBreakdown {
            input_uplink_ms,
            engine_ms: sm.engine_tick_ms * server_factor,
            render_ms: sm.render_ms(FULL_LR) * server_factor,
            roi_extra_ms: (sm.roi_detect_ms(FULL_LR) - sm.encode_ms(FULL_LR)).max(0.0)
                * server_factor,
            encode_ms: sm.encode_ms(FULL_LR) * server_factor,
            downlink_ms,
            decode_ms,
            upscale_ms: upscale.critical_ms,
            display_ms: self.device.display_present_ms,
        };
        let server_side_ms = input_uplink_ms
            + mtp_breakdown.engine_ms
            + mtp_breakdown.render_ms
            + mtp_breakdown.roi_extra_ms
            + mtp_breakdown.encode_ms;
        let upscale_start = mtp_breakdown.record_spans(&mut self.rec, now_ms - server_side_ms);
        {
            let render_end = now_ms - mtp_breakdown.roi_extra_ms - mtp_breakdown.encode_ms;
            let depth_ms = sm.depth_capture_ms(FULL_LR) * server_factor;
            self.rec
                .record_span(gss_telemetry::Stage::DepthCapture, render_end, depth_ms);
            self.rec.record_span(
                gss_telemetry::Stage::RoiDetect,
                render_end + depth_ms,
                sm.roi_search_ms(FULL_LR) * server_factor,
            );
        }
        upscale.record_spans(&mut self.rec, upscale_start);

        let met_now = gss_telemetry::deadline_met(upscale.critical_ms, self.rec.budget_ms());
        if !met_now {
            self.rec.instant(
                InstantKind::DeadlineMiss,
                upscale_start + upscale.critical_ms,
                format!(
                    "critical path {:.2} ms > budget {:.2} ms",
                    upscale.critical_ms,
                    self.rec.budget_ms()
                ),
            );
        }
        for ev in self.slo.observe(&FrameHealth {
            critical_ms: upscale.critical_ms,
            deadline_met: met_now,
            frozen,
        }) {
            self.rec.instant(
                InstantKind::SloBreach,
                now_ms - server_side_ms + mtp_breakdown.total_ms(),
                ev.detail,
            );
        }
        let deadline_met = self
            .rec
            .end_frame(
                mtp_breakdown.total_ms(),
                upscale.critical_ms,
                staged.bytes_full as u64,
            )
            .expect("fleet sessions record one-shot spans only");

        self.frames_total += 1;
        if deadline_met && !frozen {
            self.frames_ok += 1;
        }
        if frozen {
            self.frames_frozen += 1;
        }
        if !deadline_met {
            self.deadline_misses += 1;
        }
        if drop_cause == Some(DropCause::DecoderDown) {
            self.drops_decoder_down += 1;
        }
        self.max_rung = self.max_rung.max(staged.rung);
        self.mtp_totals.push(mtp_breakdown.total_ms());

        // per-tick observability: delivered-byte delta against the shared
        // ledger, the allocator's grant, and the streaming anomaly
        // detectors (all serial-phase, modeled values only)
        let delivered = link.stats(self.flow).bytes_delivered;
        let consumed_mbps = (delivered - self.prev_delivered) as f64 * 8.0 * 60.0 / 1e6;
        self.prev_delivered = delivered;
        let alloc_mbps = config.session_rate_mbps * self.alloc_scale;
        self.last_rung = staged.rung;
        self.last_critical_ms = upscale.critical_ms;
        self.last_alloc_mbps = alloc_mbps;
        self.last_consumed_mbps = consumed_mbps;
        self.consumed_ema += (consumed_mbps - self.consumed_ema) / 16.0;
        self.alloc_track.push((now_ms, alloc_mbps));
        self.consumed_track.push((now_ms, consumed_mbps));
        if let Some(msg) = self.flap.observe(self.frame as u64, staged.rung) {
            self.rec.incr(Counter::AnomalyRungFlap);
            self.rec.log(Level::Warn, msg.clone());
            self.rec.instant(InstantKind::Anomaly, now_ms, msg);
        }
        if let Some(msg) = self.starve.observe(consumed_mbps, alloc_mbps) {
            self.rec.incr(Counter::AnomalyStarvation);
            self.rec.log(Level::Warn, msg.clone());
            self.rec.instant(InstantKind::Anomaly, now_ms, msg);
        }

        if let Some(ctl) = &mut self.controller {
            if let Some(step) = ctl.observe(dropped || !deadline_met) {
                let rung = ctl.rung_params();
                let to = ctl.rung();
                self.rec.incr(match step {
                    LadderStep::Downgrade => Counter::LadderDowngrades,
                    LadderStep::Upgrade => Counter::LadderUpgrades,
                });
                self.apply_rung(&rung, config.lr_size);
                let shift_msg = format!(
                    "ladder {}: rung {} -> {} ({}, roi {} px, rate x{:.2})",
                    match step {
                        LadderStep::Downgrade => "down",
                        LadderStep::Upgrade => "up",
                    },
                    staged.rung,
                    to,
                    rung.tier_label(),
                    self.active_side,
                    rung.rate_scale
                );
                self.rec.log(
                    match step {
                        LadderStep::Downgrade => Level::Warn,
                        LadderStep::Upgrade => Level::Info,
                    },
                    shift_msg.clone(),
                );
                self.rec.instant(
                    InstantKind::LadderShift,
                    now_ms - server_side_ms + mtp_breakdown.total_ms(),
                    shift_msg,
                );
            }
        }
        self.frame += 1;
    }
}

/// Aggregate report for one fleet session.
#[derive(Debug, Clone)]
pub struct FleetSessionReport {
    /// Index into [`FleetConfig::sessions`].
    pub spec: usize,
    /// Session label (`game @ device`).
    pub label: String,
    /// Tick the session was admitted.
    pub joined_tick: usize,
    /// Tick the session stopped streaming.
    pub left_tick: usize,
    /// Frames streamed.
    pub frames: u64,
    /// Frames that met the deadline and were not frozen.
    pub frames_ok: u64,
    /// Frozen (repeated) display slots.
    pub frames_frozen: u64,
    /// Critical-path deadline misses.
    pub deadline_misses: u64,
    /// Frames discarded while this session's decoder was down.
    pub drops_decoder_down: u64,
    /// Deepest degradation rung visited.
    pub max_rung: usize,
    /// Aggregated per-session telemetry.
    pub telemetry: TelemetrySummary,
    /// SLO standings.
    pub slo: SloSummary,
    /// Deadline-miss / stall attribution replayed from the trace.
    pub attribution: SessionAttribution,
    /// This session's ledger on the shared link.
    pub flow: FlowStats,
    /// Decoder-crash recovery history, when the spec scripted crashes.
    pub recovery: Option<RecoverySummary>,
}

impl FleetSessionReport {
    /// Effective display rate: 60 FPS times the fraction of frames that
    /// met the deadline *and* were actually new (not frozen repeats) —
    /// the honest per-viewer rate under consolidation.
    pub fn fps_effective(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            60.0 * self.frames_ok as f64 / self.frames as f64
        }
    }

    fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"spec\":{},\"label\":\"{}\",\"joined_tick\":{},\"left_tick\":{},\
             \"frames\":{},\"frames_ok\":{},\"frames_frozen\":{},\"deadline_misses\":{},\
             \"drops_decoder_down\":{},\"max_rung\":{},\"fps_effective\":{},\
             \"flow\":{{\"sent\":{},\"dropped\":{},\"queue_overflow\":{},\"outage\":{},\"bytes\":{}}}",
            self.spec,
            json_escape(&self.label),
            self.joined_tick,
            self.left_tick,
            self.frames,
            self.frames_ok,
            self.frames_frozen,
            self.deadline_misses,
            self.drops_decoder_down,
            self.max_rung,
            jnum(self.fps_effective()),
            self.flow.sent,
            self.flow.dropped,
            self.flow.drops_queue_overflow,
            self.flow.drops_outage,
            self.flow.bytes,
        );
        let _ = write!(
            out,
            ",\"telemetry\":{},\"slo\":{},\"attribution\":{}}}",
            self.telemetry.to_json(),
            self.slo.to_json(),
            self.attribution.to_json()
        );
        out
    }
}

/// Admission-control outcome of one fleet run.
#[derive(Debug, Clone, Default)]
pub struct AdmissionSummary {
    /// Sessions admitted (possibly after queueing).
    pub admitted: usize,
    /// Sessions rejected because the wait queue was full.
    pub rejected: Vec<usize>,
    /// Sessions that left (or the run ended) before they were admitted.
    pub abandoned: Vec<usize>,
    /// Deepest the wait queue ever got.
    pub peak_queue: usize,
    /// Most sessions ever concurrently admitted.
    pub peak_concurrency: usize,
}

/// Per-rung occupancy series names, one per [`LADDER`] rung (the array
/// length is pinned to the ladder at compile time).
const RUNG_SERIES: [&str; LADDER.len()] = [
    "rung-occupancy-0",
    "rung-occupancy-1",
    "rung-occupancy-2",
    "rung-occupancy-3",
    "rung-occupancy-4",
];

/// Fleet series mirrored into full-resolution Chrome counter tracks
/// (pid 0 of the merged trace); everything else lives only in the
/// downsampled [`SeriesSet`].
const FLEET_TRACKS: [&str; 7] = [
    "active-sessions",
    "fairness-jain",
    "alloc-mbps",
    "consumed-mbps",
    "p99-critical-ms",
    "slo-burn-fast",
    // Fleet-wide retained-frame count; only sampled (and thus only
    // exported) when `FleetConfig::sampling` is on.
    "sampling-retained",
];

/// Streaming fleet-watch state: the downsampled time-series rings, the
/// admission-storm detector, full-resolution counter-track samples for
/// the merged trace, anomaly tallies and the knee tick. Sampled once per
/// tick in the serial phase, so it is bit-deterministic at any worker
/// count.
#[derive(Debug, Clone)]
struct FleetWatch {
    series: SeriesSet,
    storm: AdmissionStormDetector,
    markers: Vec<TraceInstant>,
    tracks: Vec<(&'static str, Vec<(f64, f64)>)>,
    knee_tick: Option<u64>,
    fairness_min: f64,
    fairness_sum: f64,
    fairness_ticks: u64,
    rung_flaps: u64,
    starvation_events: u64,
    starved_max_streak: u64,
}

impl FleetWatch {
    fn new() -> Self {
        FleetWatch {
            series: SeriesSet::new(DEFAULT_CAPACITY),
            storm: AdmissionStormDetector::new(),
            markers: Vec::new(),
            tracks: FLEET_TRACKS.iter().map(|&n| (n, Vec::new())).collect(),
            knee_tick: None,
            fairness_min: 1.0,
            fairness_sum: 0.0,
            fairness_ticks: 0,
            rung_flaps: 0,
            starvation_events: 0,
            starved_max_streak: 0,
        }
    }

    fn track(&mut self, name: &str, ts_ms: f64, value: f64) {
        if let Some((_, samples)) = self.tracks.iter_mut().find(|(n, _)| *n == name) {
            samples.push((ts_ms, value));
        }
    }

    fn summarize(&self) -> FleetWatchSummary {
        FleetWatchSummary {
            knee_tick: self.knee_tick,
            fairness_min: self.fairness_min,
            fairness_mean: if self.fairness_ticks == 0 {
                1.0
            } else {
                self.fairness_sum / self.fairness_ticks as f64
            },
            rung_flaps: self.rung_flaps,
            starvation_events: self.starvation_events,
            starved_max_streak: self.starved_max_streak,
            admission_storms: self.storm.events,
            series: self.series.clone(),
        }
    }
}

/// Fleet-watch rollup carried on [`FleetReport`]: knee, fairness
/// extremes, anomaly tallies and the downsampled series rings.
#[derive(Debug, Clone)]
pub struct FleetWatchSummary {
    /// First tick where Jain fairness fell below 0.9 or the fleet p99
    /// critical path missed the realtime budget; `None` if neither
    /// happened.
    pub knee_tick: Option<u64>,
    /// Worst per-tick Jain fairness over consumed/allocated shares.
    pub fairness_min: f64,
    /// Mean per-tick Jain fairness (1.0 when no tick had active
    /// sessions).
    pub fairness_mean: f64,
    /// Rung-flap anomalies across every session.
    pub rung_flaps: u64,
    /// Starvation anomalies across every session.
    pub starvation_events: u64,
    /// Longest starved-tick streak any session saw.
    pub starved_max_streak: u64,
    /// Admission-storm anomalies (flash-crowd joins).
    pub admission_storms: u64,
    /// The downsampled fleet series (min/max/last per bucket).
    pub series: SeriesSet,
}

impl FleetWatchSummary {
    /// Anomaly tallies as `(kind, count)` pairs, for the Prometheus
    /// fleet snapshot.
    pub fn anomalies(&self) -> [(&'static str, u64); 3] {
        [
            ("rung-flap", self.rung_flaps),
            ("starvation", self.starvation_events),
            ("admission-storm", self.admission_storms),
        ]
    }

    /// Deterministic single-line JSON object.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"knee_tick\":{},\"fairness_min\":{},\"fairness_mean\":{},\
             \"rung_flaps\":{},\"starvation_events\":{},\"starved_max_streak\":{},\
             \"admission_storms\":{},\"series\":{}}}",
            self.knee_tick
                .map_or_else(|| "null".to_owned(), |t| t.to_string()),
            jnum(self.fairness_min),
            jnum(self.fairness_mean),
            self.rung_flaps,
            self.starvation_events,
            self.starved_max_streak,
            self.admission_storms,
            self.series.summary_json(),
        );
        out
    }
}

/// The fleet-aggregate report: per-session reports plus cross-session
/// rollups. [`FleetReport::to_json`] is byte-deterministic.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Shared-link name.
    pub link: String,
    /// Allocator budget, Mbps.
    pub budget_mbps: f64,
    /// Admission capacity.
    pub capacity: usize,
    /// Ticks the fleet ran.
    pub ticks: usize,
    /// Admission-control outcome.
    pub admission: AdmissionSummary,
    /// Per-session reports, in spec order.
    pub sessions: Vec<FleetSessionReport>,
    /// Exact fleet-wide MTP p50, ms (pooled over every frame of every
    /// session, not a percentile-of-percentiles).
    pub mtp_p50_ms: f64,
    /// Exact fleet-wide MTP p99, ms.
    pub mtp_p99_ms: f64,
    /// Fleet-watch rollup: knee, fairness, anomalies, series rings.
    pub watch: FleetWatchSummary,
    /// Tail-sampling ledger when [`FleetConfig::sampling`] was on.
    /// Deliberately *not* part of [`FleetReport::to_json`]: a sampled run
    /// must report byte-identically to a full-trace run of the same
    /// config (sampling observes the fleet, it never perturbs it); the
    /// ledger exports separately via [`SamplingSummary::to_json`].
    pub sampling: Option<SamplingSummary>,
}

impl FleetReport {
    /// Total frames streamed across the fleet.
    pub fn total_frames(&self) -> u64 {
        self.sessions.iter().map(|s| s.frames).sum()
    }

    /// Total deadline misses across the fleet.
    pub fn total_deadline_misses(&self) -> u64 {
        self.sessions.iter().map(|s| s.deadline_misses).sum()
    }

    /// Total frozen display slots across the fleet.
    pub fn total_frozen(&self) -> u64 {
        self.sessions.iter().map(|s| s.frames_frozen).sum()
    }

    /// Summed shared-link ledgers (the per-flow ledgers partition each
    /// flow's drops, so the sum never double counts).
    pub fn total_flow(&self) -> FlowStats {
        let mut total = FlowStats::default();
        for s in &self.sessions {
            total.sent += s.flow.sent;
            total.dropped += s.flow.dropped;
            total.drops_queue_overflow += s.flow.drops_queue_overflow;
            total.drops_outage += s.flow.drops_outage;
            total.bytes += s.flow.bytes;
        }
        total
    }

    /// Worst per-session effective FPS (sessions that streamed at least
    /// one frame).
    pub fn min_fps_effective(&self) -> f64 {
        self.sessions
            .iter()
            .filter(|s| s.frames > 0)
            .map(FleetSessionReport::fps_effective)
            .fold(f64::INFINITY, f64::min)
    }

    /// Mean per-session effective FPS.
    pub fn mean_fps_effective(&self) -> f64 {
        let streamed: Vec<f64> = self
            .sessions
            .iter()
            .filter(|s| s.frames > 0)
            .map(FleetSessionReport::fps_effective)
            .collect();
        if streamed.is_empty() {
            0.0
        } else {
            streamed.iter().sum::<f64>() / streamed.len() as f64
        }
    }

    /// Fleet-wide fraction of deadline misses with a known root cause.
    pub fn attributed_fraction(&self) -> f64 {
        let misses: u64 = self.sessions.iter().map(|s| s.attribution.misses).sum();
        if misses == 0 {
            return 1.0;
        }
        let attributed: u64 = self
            .sessions
            .iter()
            .map(|s| s.attribution.attributed())
            .sum();
        attributed as f64 / misses as f64
    }

    /// Every per-flow ledger partitions its drops by cause.
    pub fn flows_consistent(&self) -> bool {
        self.sessions.iter().all(|s| s.flow.consistent())
    }

    /// Deterministic single-line JSON: identical fleet runs produce
    /// byte-identical output at any worker count.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let total = self.total_flow();
        let _ = write!(
            out,
            "{{\"link\":\"{}\",\"budget_mbps\":{},\"capacity\":{},\"ticks\":{},\
             \"admission\":{{\"admitted\":{},\"rejected\":{:?},\"abandoned\":{:?},\
             \"peak_queue\":{},\"peak_concurrency\":{}}},\
             \"fleet\":{{\"frames\":{},\"deadline_misses\":{},\"frozen\":{},\
             \"mtp_p50_ms\":{},\"mtp_p99_ms\":{},\"min_fps_effective\":{},\
             \"mean_fps_effective\":{},\"attributed_fraction\":{},\
             \"drops\":{{\"sent\":{},\"dropped\":{},\"queue_overflow\":{},\"outage\":{},\"bytes\":{}}}}}",
            json_escape(&self.link),
            jnum(self.budget_mbps),
            self.capacity,
            self.ticks,
            self.admission.admitted,
            self.admission.rejected,
            self.admission.abandoned,
            self.admission.peak_queue,
            self.admission.peak_concurrency,
            self.total_frames(),
            self.total_deadline_misses(),
            self.total_frozen(),
            jnum(self.mtp_p50_ms),
            jnum(self.mtp_p99_ms),
            jnum(self.min_fps_effective()),
            jnum(self.mean_fps_effective()),
            jnum(self.attributed_fraction()),
            total.sent,
            total.dropped,
            total.drops_queue_overflow,
            total.drops_outage,
            total.bytes,
        );
        out.push_str(",\"watch\":");
        out.push_str(&self.watch.to_json());
        out.push_str(",\"sessions\":[");
        for (i, s) in self.sessions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push_str("]}");
        out
    }
}

fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Exact percentile of a sample set (nearest-rank), deterministic for
/// identical inputs in any order.
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// One finished session's trace plus its counter-track samples, keyed by
/// spec index for pid assignment at export time. Exactly one of `session`
/// (full trace) and `sampler` (tail-sampled trace, kept live so the fleet
/// cap can still evict its baselines) is populated, per
/// [`FleetConfig::sampling`].
#[derive(Debug, Clone)]
struct SessionTrace {
    spec: usize,
    session: Option<TraceSession>,
    sampler: Option<SamplingTraceSink>,
    tracks: Vec<(&'static str, Vec<(f64, f64)>)>,
}

/// The discrete-event fleet driver. See the module docs for the per-tick
/// phase order and the determinism contract.
pub struct FleetSim {
    config: FleetConfig,
    link: SharedLink,
    tick: usize,
    wait_queue: VecDeque<usize>,
    active: Vec<ActiveSession>,
    finished: Vec<FleetSessionReport>,
    traces: Vec<SessionTrace>,
    admission: AdmissionSummary,
    fleet_mtp: Vec<f64>,
    server_factor: f64,
    watch: FleetWatch,
}

impl FleetSim {
    /// Builds the fleet; no session is admitted until its join tick.
    pub fn new(config: FleetConfig) -> Self {
        let link = SharedLink::with_faults(
            config.link.clone(),
            config.link_seed,
            config.shared_faults.clone(),
        );
        FleetSim {
            config,
            link,
            tick: 0,
            wait_queue: VecDeque::new(),
            active: Vec::new(),
            finished: Vec::new(),
            traces: Vec::new(),
            admission: AdmissionSummary::default(),
            fleet_mtp: Vec::new(),
            server_factor: 1.0,
            watch: FleetWatch::new(),
        }
    }

    /// The current logical tick.
    pub fn tick(&self) -> usize {
        self.tick
    }

    /// Currently admitted sessions.
    pub fn concurrency(&self) -> usize {
        self.active.len()
    }

    fn spawn_session(&mut self, spec_idx: usize, tick: usize) -> ActiveSession {
        let config = &self.config;
        let spec = &config.sessions[spec_idx];
        let plan = plan_roi_window(&spec.device, 2, FULL_LR.width(), FULL_LR.height());
        let roi_window = plan.scaled_to_canvas(config.lr_size.0, FULL_LR.width());
        let byte_scale = config.canvas_to_full();
        // consolidation needs the controller to actually reach small
        // per-session shares, so open the quantizer range all the way down
        let mut rate = RateControlConfig {
            min_quality: 10,
            ..RateControlConfig::for_bitrate_mbps(config.session_rate_mbps)
        };
        rate.target_bytes_per_frame =
            ((rate.target_bytes_per_frame as f64 / byte_scale) as usize).max(1);
        let server = GameStreamServer::new(ServerConfig {
            game: spec.game,
            lr_size: config.lr_size,
            scale: 2,
            encoder: EncoderConfig {
                quality: config.encoder_quality,
                gop_size: config.gop_size,
                ..EncoderConfig::default()
            },
            detector: RoiDetectorConfig::default(),
            roi_window,
            time_stride: (FULL_LR.width() / config.lr_size.0.max(1)).max(1),
            tracker: None,
            rate_control: Some(rate),
        });

        let trace = TraceSink::new();
        let sampler = config.sampling.map(SamplingTraceSink::new);
        let sink = match &sampler {
            // The sampler tees off the same event stream; the full sink
            // stays so attribution replay at finalize sees every frame.
            Some(sampler) => SinkHandle::fanout(vec![
                SinkHandle::new(trace.clone()),
                SinkHandle::new(sampler.clone()),
            ]),
            None => SinkHandle::new(trace.clone()),
        };
        let rec = Recorder::new(
            format!(
                "fleet#{spec_idx} {:?} @ {} ({})",
                spec.game, spec.device.name, config.link.name
            ),
            REALTIME_BUDGET_MS,
        )
        .with_sink(sink);

        let mut controller = config.degradation.map(DegradationController::new);
        let nack_cfg = config.degradation.unwrap_or_default();
        let nack = NackManager::new(
            nack_cfg.nack_timeout_frames,
            nack_cfg.nack_backoff_max_frames,
        );

        let mut session = ActiveSession {
            spec_idx,
            device: spec.device.clone(),
            fault_plan: spec.fault_plan.clone(),
            joined_tick: tick,
            flow: 0, // assigned below, after negotiation settles
            frame: 0,
            rec,
            trace,
            sampler,
            slo: SloEngine::standard(REALTIME_BUDGET_MS),
            pinned_rung: 0,
            nack,
            recovery: spec
                .fault_plan
                .has_decoder_crashes()
                .then(|| RecoveryMachine::new(RecoveryConfig::default())),
            base_side: plan.chosen_side,
            active_side: plan.chosen_side,
            active_cost: 1.0,
            decode_pixels: 0,
            alloc_scale: 1.0,
            active_faults: Vec::new(),
            staged: None,
            error: None,
            frames_total: 0,
            frames_ok: 0,
            frames_frozen: 0,
            deadline_misses: 0,
            drops_decoder_down: 0,
            max_rung: 0,
            mtp_totals: Vec::new(),
            prev_delivered: 0,
            last_rung: 0,
            last_critical_ms: 0.0,
            last_alloc_mbps: 0.0,
            last_consumed_mbps: 0.0,
            consumed_ema: config.session_rate_mbps,
            flap: RungFlapDetector::new(),
            starve: StarvationDetector::new(),
            alloc_track: Vec::new(),
            consumed_track: Vec::new(),
            controller: None,
            server: GameStreamServer::new(ServerConfig::new(spec.game, config.lr_size, roi_window)),
        };
        // capability negotiation (step 0), as in `run_session`
        let negotiated = negotiate(&server.offer(), &spec.device.capabilities);
        if negotiated.clamped {
            session.rec.log(Level::Info, negotiated.describe());
        }
        session.decode_pixels = negotiated.decode_pixels;
        session.server = server;
        session.controller = controller.take();
        if negotiated.top_rung > 0 {
            match &mut session.controller {
                Some(ctl) => {
                    if ctl.clamp_ceiling(negotiated.top_rung) {
                        let rung = ctl.rung_params();
                        session.apply_rung(&rung, config.lr_size);
                    }
                }
                None => {
                    session.pinned_rung = negotiated.top_rung;
                    let rung = LADDER[negotiated.top_rung];
                    session.apply_rung(&rung, config.lr_size);
                }
            }
        }
        session.flow = self.link.add_flow(spec.fault_plan.clone());
        session
    }

    fn finalize_session(&mut self, mut s: ActiveSession, left_tick: usize) {
        let telemetry = s.rec.finish();
        let trace_sessions = s.trace.sessions();
        let attribution = trace_sessions
            .last()
            .map(|sess| Attributor::new(REALTIME_BUDGET_MS).attribute(sess))
            .unwrap_or_default();
        if let Some(sampler) = s.sampler.take() {
            // Sampled mode: the full trace (and the full-resolution
            // per-session rate tracks) are dropped here — only the
            // sampler's retained frames and its sampling counter tracks
            // survive into the merged export. That is the entire point.
            self.traces.push(SessionTrace {
                spec: s.spec_idx,
                session: None,
                sampler: Some(sampler),
                tracks: Vec::new(),
            });
        } else if let Some(sess) = trace_sessions.into_iter().last() {
            self.traces.push(SessionTrace {
                spec: s.spec_idx,
                session: Some(sess),
                sampler: None,
                tracks: vec![
                    ("alloc-mbps", std::mem::take(&mut s.alloc_track)),
                    ("consumed-mbps", std::mem::take(&mut s.consumed_track)),
                ],
            });
        }
        self.watch.rung_flaps += s.flap.events;
        self.watch.starvation_events += s.starve.events;
        self.watch.starved_max_streak = self.watch.starved_max_streak.max(s.starve.max_streak);
        self.fleet_mtp.append(&mut s.mtp_totals);
        let spec = &self.config.sessions[s.spec_idx];
        self.finished.push(FleetSessionReport {
            spec: s.spec_idx,
            label: format!("{:?} @ {}", spec.game, spec.device.name),
            joined_tick: s.joined_tick,
            left_tick,
            frames: s.frames_total,
            frames_ok: s.frames_ok,
            frames_frozen: s.frames_frozen,
            deadline_misses: s.deadline_misses,
            drops_decoder_down: s.drops_decoder_down,
            max_rung: s.max_rung,
            telemetry,
            slo: s.slo.summary(),
            attribution,
            flow: self.link.stats(s.flow),
            recovery: s.recovery.map(RecoveryMachine::into_summary),
        });
    }

    /// Advances the fleet one 60 Hz tick through the five phases.
    ///
    /// # Errors
    ///
    /// Propagates codec failures from any session (which would indicate a
    /// bug, as in [`crate::session::run_session`]).
    pub fn step(&mut self) -> Result<(), GssError> {
        let tick = self.tick;
        let now_ms = tick as f64 * 1000.0 / 60.0;

        // ---- phase 1: departures -----------------------------------------
        let mut i = 0;
        while i < self.active.len() {
            if self.config.sessions[self.active[i].spec_idx].leave_tick == Some(tick) {
                let s = self.active.remove(i);
                self.finalize_session(s, tick);
            } else {
                i += 1;
            }
        }

        // ---- phase 2: admission ------------------------------------------
        let mut joins_this_tick = 0usize;
        for idx in 0..self.config.sessions.len() {
            if self.config.sessions[idx].join_tick == tick {
                self.wait_queue.push_back(idx);
                joins_this_tick += 1;
            }
        }
        // queued sessions whose departure tick already passed gave up
        self.wait_queue.retain(|&idx| {
            let gone = self.config.sessions[idx]
                .leave_tick
                .is_some_and(|l| l <= tick);
            if gone {
                self.admission.abandoned.push(idx);
            }
            !gone
        });
        while self.active.len() < self.config.admission.capacity {
            let Some(idx) = self.wait_queue.pop_front() else {
                break;
            };
            let s = self.spawn_session(idx, tick);
            self.active.push(s);
            self.admission.admitted += 1;
        }
        while self.wait_queue.len() > self.config.admission.queue_limit {
            let idx = self.wait_queue.pop_back().expect("queue non-empty");
            self.admission.rejected.push(idx);
        }
        self.admission.peak_queue = self.admission.peak_queue.max(self.wait_queue.len());
        self.admission.peak_concurrency = self.admission.peak_concurrency.max(self.active.len());

        // ---- phase 3: fair-share rate allocation -------------------------
        let n = self.active.len();
        if n > 0 {
            self.server_factor = n.div_ceil(self.config.server_slots.max(1)) as f64;
            let share = self.config.budget_mbps() / n as f64;
            let alloc = (share / self.config.session_rate_mbps.max(1e-9)).min(1.0);
            let lr_size = self.config.lr_size;
            let alloc_mbps = self.config.session_rate_mbps * alloc;
            for s in &mut self.active {
                self.link.note_allocation(s.flow, alloc_mbps);
                if (s.alloc_scale - alloc).abs() > 1e-12 {
                    s.alloc_scale = alloc;
                    let rung = s.current_rung();
                    s.apply_rung(&rung, lr_size);
                }
            }
        }

        // ---- phase 4: produce (parallel, per-session isolated) -----------
        {
            let config = &self.config;
            config.pool.for_each_mut(&mut self.active, |_, s| {
                s.produce(now_ms, config);
            });
        }
        for s in &mut self.active {
            if let Some(e) = s.error.take() {
                return Err(e);
            }
        }

        // ---- phase 5: transport + control (serial, session order) --------
        let server_factor = self.server_factor;
        for i in 0..self.active.len() {
            let (link, config) = (&mut self.link, &self.config);
            self.active[i].transport(link, now_ms, server_factor, config);
        }

        // ---- phase 6: fleet-watch sampling (serial) ----------------------
        self.sample_watch(tick, now_ms, joins_this_tick);

        self.tick += 1;
        Ok(())
    }

    /// Samples the fleet time-series, runs the admission-storm detector
    /// and checks the knee condition. Serial and modeled-values-only, so
    /// every series, marker and counter track is bit-deterministic at any
    /// worker count.
    fn sample_watch(&mut self, tick: usize, now_ms: f64, joins_this_tick: usize) {
        let t = tick as u64;
        if let Some(msg) = self.watch.storm.observe(t, joins_this_tick) {
            self.watch.markers.push(TraceInstant {
                kind: InstantKind::Anomaly,
                ts_ms: now_ms,
                detail: msg,
            });
        }
        let n = self.active.len();
        self.watch.series.push("active-sessions", t, n as f64);
        self.watch
            .series
            .push("admission-admitted", t, self.admission.admitted as f64);
        self.watch.series.push(
            "admission-rejected",
            t,
            self.admission.rejected.len() as f64,
        );
        self.watch.series.push(
            "admission-abandoned",
            t,
            self.admission.abandoned.len() as f64,
        );
        self.watch.track("active-sessions", now_ms, n as f64);
        if let Some(policy) = self.config.sampling {
            // Fleet-wide retention budget: enforced serially here so
            // eviction order (and the resulting trace bytes) are
            // bit-deterministic at any worker count.
            let sinks = self.samplers();
            enforce_fleet_cap(&sinks, policy.budget.fleet, now_ms);
            let retained: usize = sinks.iter().map(SamplingTraceSink::retained_count).sum();
            self.watch
                .track("sampling-retained", now_ms, retained as f64);
        }
        if n == 0 {
            return;
        }

        // service share: smoothed consumed over allocated, capped at 1 —
        // over-consumption (a keyframe burst) is not unfairness, only
        // sustained under-service drags Jain's index down
        let shares: Vec<f64> = self
            .active
            .iter()
            .map(|s| {
                if s.last_alloc_mbps > 0.0 {
                    (s.consumed_ema / s.last_alloc_mbps).min(1.0)
                } else {
                    0.0
                }
            })
            .collect();
        let fairness = jain_fairness(&shares);
        let alloc_sum: f64 = self.active.iter().map(|s| s.last_alloc_mbps).sum();
        let consumed_sum: f64 = self.active.iter().map(|s| s.last_consumed_mbps).sum();
        let mut crits: Vec<f64> = self.active.iter().map(|s| s.last_critical_ms).collect();
        let p50 = percentile(&mut crits, 0.50);
        let p99 = percentile(&mut crits, 0.99);
        let (mut burn_fast, mut burn_slow) = (0.0, 0.0);
        for s in &self.active {
            if let Some((fast, slow)) = s.slo.current_burn("effective-fps") {
                burn_fast += fast;
                burn_slow += slow;
            }
        }
        burn_fast /= n as f64;
        burn_slow /= n as f64;
        let mut occupancy = [0u64; LADDER.len()];
        for s in &self.active {
            occupancy[s.last_rung.min(LADDER.len() - 1)] += 1;
        }

        self.watch.series.push("fairness-jain", t, fairness);
        self.watch.series.push("alloc-mbps", t, alloc_sum);
        self.watch.series.push("consumed-mbps", t, consumed_sum);
        self.watch.series.push("p50-critical-ms", t, p50);
        self.watch.series.push("p99-critical-ms", t, p99);
        self.watch.series.push("slo-burn-fast", t, burn_fast);
        self.watch.series.push("slo-burn-slow", t, burn_slow);
        for (r, &count) in occupancy.iter().enumerate() {
            self.watch.series.push(RUNG_SERIES[r], t, count as f64);
        }
        self.watch.track("fairness-jain", now_ms, fairness);
        self.watch.track("alloc-mbps", now_ms, alloc_sum);
        self.watch.track("consumed-mbps", now_ms, consumed_sum);
        self.watch.track("p99-critical-ms", now_ms, p99);
        self.watch.track("slo-burn-fast", now_ms, burn_fast);

        self.watch.fairness_min = self.watch.fairness_min.min(fairness);
        self.watch.fairness_sum += fairness;
        self.watch.fairness_ticks += 1;

        if self.watch.knee_tick.is_none()
            && (fairness < 0.9 || !gss_telemetry::deadline_met(p99, REALTIME_BUDGET_MS))
        {
            self.watch.knee_tick = Some(t);
            self.watch.markers.push(TraceInstant {
                kind: InstantKind::Anomaly,
                ts_ms: now_ms,
                detail: format!(
                    "fleet knee at tick {t}: fairness {fairness:.3}, p99 critical {p99:.2} ms"
                ),
            });
        }
    }

    /// Runs every remaining tick, finalizes every session, and returns
    /// the fleet report (sessions in spec order).
    ///
    /// # Errors
    ///
    /// Propagates the first session error.
    pub fn run_until_idle(&mut self) -> Result<FleetReport, GssError> {
        while self.tick < self.config.ticks {
            self.step()?;
        }
        let end = self.config.ticks;
        while let Some(s) = self.active.pop() {
            self.finalize_session(s, end);
        }
        while let Some(idx) = self.wait_queue.pop_front() {
            self.admission.abandoned.push(idx);
        }
        self.finished.sort_by_key(|s| s.spec);
        self.admission.rejected.sort_unstable();
        self.admission.abandoned.sort_unstable();
        let mut mtp = std::mem::take(&mut self.fleet_mtp);
        let report = FleetReport {
            link: self.config.link.name.to_owned(),
            budget_mbps: self.config.budget_mbps(),
            capacity: self.config.admission.capacity,
            ticks: self.config.ticks,
            admission: self.admission.clone(),
            sessions: self.finished.clone(),
            mtp_p50_ms: percentile(&mut mtp, 0.50),
            mtp_p99_ms: percentile(&mut mtp, 0.99),
            watch: self.watch.summarize(),
            sampling: self.sampling_summary(),
        };
        self.fleet_mtp = mtp;
        Ok(report)
    }

    /// Every session's tail sampler in deterministic order: finished
    /// sessions spec-sorted first, then still-active sessions in join
    /// order. Sinks are `Arc`-shared clones, so mutating through them
    /// (fleet-cap eviction) acts on the live sessions.
    fn samplers(&self) -> Vec<SamplingTraceSink> {
        let mut finished: Vec<&SessionTrace> = self.traces.iter().collect();
        finished.sort_by_key(|st| st.spec);
        finished
            .into_iter()
            .filter_map(|st| st.sampler.clone())
            .chain(self.active.iter().filter_map(|s| s.sampler.clone()))
            .collect()
    }

    /// Sampling roll-up across every session's tail sampler, or `None`
    /// when the fleet runs without sampling. Deliberately not part of
    /// [`FleetReport::to_json`] — a sampled run must report
    /// byte-identically to a full-trace run; export this separately via
    /// [`SamplingSummary::to_json`].
    pub fn sampling_summary(&self) -> Option<SamplingSummary> {
        self.config
            .sampling
            .map(|_| SamplingSummary::collect(&self.samplers()))
    }

    /// Retained trace sessions in merged-trace order (spec-sorted, pid
    /// `i + 1`, trace ids re-keyed to the fleet pid — the same ids the
    /// merged Chrome trace carries), when sampling is on. Pairs
    /// index-for-index with [`FleetReport::sessions`] after
    /// [`FleetSim::run_until_idle`]; empty without sampling.
    pub fn sampled_sessions(&self) -> Vec<TraceSession> {
        let mut traces: Vec<&SessionTrace> = self.traces.iter().collect();
        traces.sort_by_key(|st| st.spec);
        traces
            .iter()
            .enumerate()
            .filter_map(|(i, st)| {
                let sampler = st.sampler.as_ref()?;
                let pid = (i + 1) as u64;
                let mut sess = sampler.sessions().pop()?;
                sess.pid = pid;
                for f in &mut sess.frames {
                    f.trace_id = pid * 1_000_000 + f.frame;
                }
                Some(sess)
            })
            .collect()
    }

    /// Merged Perfetto/Chrome trace of every finished session — one
    /// Chrome process per fleet session, pids in spec order, plus a
    /// pid-0 `fleet` process carrying the fleet counter tracks
    /// (Perfetto counter rows) and anomaly markers. Per-session
    /// allocated/consumed counter tracks ride on each session's pid.
    /// Call after [`FleetSim::run_until_idle`]. Byte-deterministic.
    pub fn to_chrome_json(&self) -> String {
        let mut traces = self.traces.clone();
        traces.sort_by_key(|st| st.spec);
        let mut counters: Vec<CounterTrack> = self
            .watch
            .tracks
            .iter()
            .filter(|(_, samples)| !samples.is_empty())
            .map(|(name, samples)| CounterTrack {
                pid: 0,
                name: (*name).to_owned(),
                samples: samples.clone(),
            })
            .collect();
        let sessions: Vec<TraceSession> = traces
            .into_iter()
            .enumerate()
            .map(|(i, st)| {
                let pid = (i + 1) as u64;
                let mut sess = match (st.session, &st.sampler) {
                    // Sampled mode: only the retained frames survive,
                    // plus the per-session sampling counter tracks.
                    (None, Some(sampler)) => {
                        for mut track in sampler.counter_tracks() {
                            track.pid = pid;
                            counters.push(track);
                        }
                        sampler.sessions().pop().unwrap_or_else(|| TraceSession {
                            label: String::new(),
                            pid,
                            frames: Vec::new(),
                        })
                    }
                    (sess, _) => sess.expect("full-trace session present"),
                };
                sess.pid = pid;
                for f in &mut sess.frames {
                    f.trace_id = pid * 1_000_000 + f.frame;
                }
                for (name, samples) in st.tracks {
                    if !samples.is_empty() {
                        counters.push(CounterTrack {
                            pid,
                            name: name.to_owned(),
                            samples,
                        });
                    }
                }
                sess
            })
            .collect();
        let markers: Vec<(u64, TraceInstant)> = self
            .watch
            .markers
            .iter()
            .map(|m| (0u64, m.clone()))
            .collect();
        chrome_trace_json_ext(&sessions, &[(0, "fleet")], &counters, &markers)
    }
}

/// Builds and runs a fleet to completion.
///
/// # Errors
///
/// Propagates the first session error.
pub fn run_fleet(config: FleetConfig) -> Result<FleetReport, GssError> {
    FleetSim::new(config).run_until_idle()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_net::{FaultEvent, FaultKind};

    fn two_session_config(ticks: usize) -> FleetConfig {
        FleetConfig::new(LinkProfile::wifi(), 0x0f1ee7)
            .with_ticks(ticks)
            .with_session(FleetSessionSpec::new(GameId::G1, DeviceProfile::s8_tab()))
            .with_session(FleetSessionSpec::new(
                GameId::G4,
                DeviceProfile::pixel7_pro(),
            ))
    }

    #[test]
    fn fleet_runs_and_reports_every_session() {
        let report = run_fleet(two_session_config(60)).expect("fleet run");
        assert_eq!(report.sessions.len(), 2);
        for s in &report.sessions {
            assert_eq!(s.frames, 60, "session {} frame count", s.spec);
            assert!(s.flow.consistent());
        }
        assert_eq!(report.admission.admitted, 2);
        assert!(report.admission.rejected.is_empty());
        assert!(report.mtp_p99_ms >= report.mtp_p50_ms);
    }

    #[test]
    fn reports_are_deterministic_for_one_config() {
        let a = run_fleet(two_session_config(45)).expect("run a");
        let b = run_fleet(two_session_config(45)).expect("run b");
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn admission_queues_then_rejects_past_the_policy() {
        let mut config = FleetConfig::new(LinkProfile::wifi(), 1)
            .with_ticks(30)
            .with_session(FleetSessionSpec::new(GameId::G1, DeviceProfile::s8_tab()));
        config.admission = AdmissionPolicy {
            capacity: 1,
            queue_limit: 1,
        };
        // three more arrivals at tick 0: one queued, the rest rejected
        for _ in 0..3 {
            config = config.with_session(FleetSessionSpec::new(
                GameId::G2,
                DeviceProfile::pixel7_pro(),
            ));
        }
        let report = run_fleet(config).expect("fleet run");
        assert_eq!(report.admission.admitted, 1);
        assert_eq!(report.admission.rejected.len(), 2);
        assert_eq!(report.admission.abandoned.len(), 1, "queued but never ran");
        assert_eq!(report.sessions.len(), 1);
    }

    #[test]
    fn a_leaver_frees_a_slot_for_the_queue() {
        let mut config = FleetConfig::new(LinkProfile::wifi(), 2)
            .with_ticks(40)
            .with_session(FleetSessionSpec::new(GameId::G1, DeviceProfile::s8_tab()).leaving_at(20))
            .with_session(
                FleetSessionSpec::new(GameId::G2, DeviceProfile::pixel7_pro()).joining_at(5),
            );
        config.admission = AdmissionPolicy {
            capacity: 1,
            queue_limit: 2,
        };
        let report = run_fleet(config).expect("fleet run");
        assert_eq!(report.admission.admitted, 2);
        let late = &report.sessions[1];
        assert_eq!(late.joined_tick, 20, "admitted the tick the slot freed");
        assert_eq!(late.frames, 20);
        assert_eq!(report.admission.peak_concurrency, 1);
    }

    #[test]
    fn oversubscription_throttles_the_allocation_and_keeps_flows_consistent() {
        // 8 sessions × 8 Mbps over a 60 Mbps bottleneck at 0.7 utilization
        // oversubscribes; the allocator must shed rate rather than melt.
        let mut config = FleetConfig::new(LinkProfile::wifi(), 3).with_ticks(45);
        for i in 0..8 {
            let dev = if i % 2 == 0 {
                DeviceProfile::s8_tab()
            } else {
                DeviceProfile::pixel7_pro()
            };
            config = config.with_session(FleetSessionSpec::new(GameId::ALL[i], dev));
        }
        let report = run_fleet(config).expect("fleet run");
        assert_eq!(report.sessions.len(), 8);
        assert!(report.flows_consistent());
        let total = report.total_flow();
        assert_eq!(total.sent, 8 * 45);
    }

    #[test]
    fn shared_outage_freezes_every_session_and_attributes_outage() {
        let mut config = two_session_config(60);
        config.shared_faults = FaultPlan::new(vec![FaultEvent {
            start_ms: 200.0,
            end_ms: 400.0,
            kind: FaultKind::Outage,
        }]);
        let report = run_fleet(config).expect("fleet run");
        for s in &report.sessions {
            assert!(s.flow.drops_outage > 0, "session {} saw no outage", s.spec);
            assert!(s.frames_frozen > 0);
            assert!(s.flow.consistent());
        }
    }

    #[test]
    fn chrome_export_has_one_process_per_session() {
        let mut sim = FleetSim::new(two_session_config(30));
        sim.run_until_idle().expect("fleet run");
        let json = sim.to_chrome_json();
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"pid\":2"));
        assert!(!json.contains("\"pid\":3"));
    }
}
