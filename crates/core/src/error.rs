use std::fmt;

/// Top-level error of the GameStreamSR pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum GssError {
    /// Codec failure (encode/decode).
    Codec(gss_codec::CodecError),
    /// Frame/plane geometry failure.
    Frame(gss_frame::FrameError),
    /// Quality-metric failure.
    Metric(gss_metrics::MetricError),
    /// The requested RoI window does not fit inside the frame.
    WindowTooLarge {
        /// Requested window `(width, height)`.
        window: (usize, usize),
        /// Frame size `(width, height)`.
        frame: (usize, usize),
    },
}

impl fmt::Display for GssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GssError::Codec(e) => write!(f, "codec error: {e}"),
            GssError::Frame(e) => write!(f, "frame error: {e}"),
            GssError::Metric(e) => write!(f, "metric error: {e}"),
            GssError::WindowTooLarge { window, frame } => write!(
                f,
                "roi window {}x{} exceeds frame {}x{}",
                window.0, window.1, frame.0, frame.1
            ),
        }
    }
}

impl std::error::Error for GssError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GssError::Codec(e) => Some(e),
            GssError::Frame(e) => Some(e),
            GssError::Metric(e) => Some(e),
            GssError::WindowTooLarge { .. } => None,
        }
    }
}

impl From<gss_codec::CodecError> for GssError {
    fn from(e: gss_codec::CodecError) -> Self {
        GssError::Codec(e)
    }
}

impl From<gss_frame::FrameError> for GssError {
    fn from(e: gss_frame::FrameError) -> Self {
        GssError::Frame(e)
    }
}

impl From<gss_metrics::MetricError> for GssError {
    fn from(e: gss_metrics::MetricError) -> Self {
        GssError::Metric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_work() {
        let e = GssError::from(gss_codec::CodecError::MissingReference);
        assert!(e.to_string().contains("codec"));
        assert!(std::error::Error::source(&e).is_some());
        let w = GssError::WindowTooLarge {
            window: (500, 500),
            frame: (320, 180),
        };
        assert!(w.to_string().contains("500x500"));
        assert!(std::error::Error::source(&w).is_none());
    }
}
