//! Session-start capability negotiation.
//!
//! Before the first frame, [`crate::server::GameStreamServer`] publishes a
//! [`StreamOffer`] — the stream it would like to send — and the client
//! answers with its [`DeviceCapabilities`]. [`negotiate`] intersects the
//! two into a [`NegotiatedStream`]: the decode resolution is clamped to
//! what the client's hardware decoder sustains, the codec profile drops to
//! the strongest one both sides implement, and the degradation ladder's
//! best rung is limited to the SR tiers the client's NPU can actually
//! host. The session simulator applies the result before frame 0 and
//! clamps the [`crate::degrade::DegradationController`] ceiling to the
//! negotiated rung, so a weak client is never asked to decode or upscale
//! beyond its capabilities.
//!
//! For the calibrated reference devices the negotiation is the identity —
//! their capability sets constrain nothing — which keeps every pre-existing
//! session byte-identical.

use crate::degrade::LADDER;
use gss_platform::{CodecProfile, DeviceCapabilities};
use gss_sr::ModelTier;
use serde::{Deserialize, Serialize};

/// What the server proposes at session start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamOffer {
    /// The low-resolution canvas the session simulates quality on.
    pub lr_size: (usize, usize),
    /// Upscale factor from the low-resolution stream to the display.
    pub scale_factor: usize,
    /// Coded pixels per frame at the deployment decode resolution.
    pub decode_pixels: usize,
    /// Codec profile the server encodes by default.
    pub codec_profile: CodecProfile,
}

/// The mutually supported stream configuration both ends agreed on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NegotiatedStream {
    /// Coded pixels the client will decode per frame (offer clamped to
    /// the client's decoder capability).
    pub decode_pixels: usize,
    /// Profile the stream is encoded with: `min(offered, supported)`.
    pub codec_profile: CodecProfile,
    /// Best (lowest-index) degradation-ladder rung whose SR tier the
    /// client's NPU supports; the controller's ceiling is clamped here.
    pub top_rung: usize,
    /// SR model tiers the client can host, strongest first.
    pub supported_tiers: Vec<ModelTier>,
    /// Whether negotiation changed anything relative to the offer.
    pub clamped: bool,
}

impl NegotiatedStream {
    /// One-line summary for the session log.
    pub fn describe(&self) -> String {
        let tiers: Vec<&str> = self.supported_tiers.iter().map(|t| t.label()).collect();
        format!(
            "negotiated stream: decode {} px, profile {}, top rung {}, tiers [{}]{}",
            self.decode_pixels,
            self.codec_profile.label(),
            self.top_rung,
            tiers.join(", "),
            if self.clamped { " (clamped)" } else { "" }
        )
    }
}

/// Intersects the server's offer with the client's capability set.
///
/// The result is monotone in the capabilities — a strictly stronger client
/// never negotiates a weaker stream — and is the identity when the
/// capabilities cover the whole offer.
pub fn negotiate(offer: &StreamOffer, caps: &DeviceCapabilities) -> NegotiatedStream {
    let decode_pixels = offer.decode_pixels.min(caps.max_decode_pixels);
    let codec_profile = offer.codec_profile.min(caps.codec_profile);
    let top_rung = LADDER
        .iter()
        .position(|r| {
            r.tier
                .is_none_or(|t| caps.supports_cost_ratio(t.cost_ratio()))
        })
        .unwrap_or(LADDER.len() - 1);
    let supported_tiers: Vec<ModelTier> = ModelTier::ALL
        .iter()
        .copied()
        .filter(|t| caps.supports_cost_ratio(t.cost_ratio()))
        .collect();
    let clamped =
        decode_pixels < offer.decode_pixels || codec_profile < offer.codec_profile || top_rung > 0;
    NegotiatedStream {
        decode_pixels,
        codec_profile,
        top_rung,
        supported_tiers,
        clamped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mtp::FULL_LR;
    use gss_platform::DeviceProfile;

    fn offer() -> StreamOffer {
        StreamOffer {
            lr_size: (320, 180),
            scale_factor: 2,
            decode_pixels: FULL_LR.pixels(),
            codec_profile: CodecProfile::High,
        }
    }

    #[test]
    fn flagship_capabilities_negotiate_the_identity() {
        for d in DeviceProfile::all() {
            let n = negotiate(&offer(), &d.capabilities);
            assert_eq!(n.decode_pixels, FULL_LR.pixels(), "{}", d.name);
            assert_eq!(n.codec_profile, CodecProfile::High);
            assert_eq!(n.top_rung, 0, "{} must keep the full ladder", d.name);
            assert_eq!(n.supported_tiers, ModelTier::ALL.to_vec());
            assert!(!n.clamped, "{} must not be clamped", d.name);
        }
    }

    #[test]
    fn the_entry_tier_clamps_every_dimension() {
        let caps = DeviceProfile::tier_low().capabilities;
        let n = negotiate(&offer(), &caps);
        assert_eq!(n.decode_pixels, 1280 * 720);
        assert_eq!(n.codec_profile, CodecProfile::Baseline);
        // rungs 0/1 run EDSR-64 (cost 1.0) which the weak NPU rejects;
        // rung 2 is the first EDSR-16 rung
        assert_eq!(n.top_rung, 2);
        assert_eq!(
            n.supported_tiers,
            vec![ModelTier::Edsr16, ModelTier::Fsrcnn]
        );
        assert!(n.clamped);
        assert!(n.describe().contains("(clamped)"));
    }

    #[test]
    fn a_decode_bound_client_clamps_resolution_only() {
        let caps = DeviceCapabilities {
            max_decode_pixels: 640 * 360,
            ..DeviceCapabilities::flagship()
        };
        let n = negotiate(&offer(), &caps);
        assert_eq!(n.decode_pixels, 640 * 360);
        assert_eq!(n.top_rung, 0);
        assert!(n.clamped);
    }

    #[test]
    fn an_npu_less_client_falls_to_the_bilinear_floor() {
        let caps = DeviceCapabilities {
            max_sr_cost_ratio: 0.0,
            ..DeviceCapabilities::flagship()
        };
        let n = negotiate(&offer(), &caps);
        assert_eq!(n.top_rung, LADDER.len() - 1, "only the floor is left");
        assert!(n.supported_tiers.is_empty());
    }

    #[test]
    fn negotiation_is_monotone_across_the_matrix() {
        // a stronger device never negotiates a weaker stream
        let by_tier = [
            DeviceProfile::tier_low(),
            DeviceProfile::tier_mid(),
            DeviceProfile::tier_high(),
        ];
        let results: Vec<NegotiatedStream> = by_tier
            .iter()
            .map(|d| negotiate(&offer(), &d.capabilities))
            .collect();
        for pair in results.windows(2) {
            assert!(pair[0].decode_pixels <= pair[1].decode_pixels);
            assert!(pair[0].codec_profile <= pair[1].codec_profile);
            assert!(pair[0].top_rung >= pair[1].top_rung);
            assert!(pair[0].supported_tiers.len() <= pair[1].supported_tiers.len());
        }
    }
}
