//! **GameStreamSR** — depth-guided RoI detection and RoI-assisted
//! super-resolution for real-time game streaming on mobile platforms.
//!
//! A full reproduction of the ISCA 2024 paper's system on top of the
//! workspace's simulated substrates (renderer, codec, platform and network
//! models — see `DESIGN.md` for the substitutions):
//!
//! * [`roi`] — the server-side RoI machinery: foveal/compute window sizing
//!   (§IV-B1), depth-map preprocessing (foreground extraction → Gaussian
//!   spatial weighting → depth layering → layer selection, Fig. 8) and the
//!   two-phase coarse/fine window search (Algorithm 1).
//! * [`server`] — the streaming server: renders a game frame, captures the
//!   depth buffer, detects the RoI, encodes the low-resolution frame and
//!   ships packet + RoI coordinates.
//! * [`client`] — the mobile client: hardware decode, then *parallel*
//!   DNN-SR of the RoI on the NPU and bilinear upscaling of the remaining
//!   region on the GPU, merged into the high-resolution framebuffer
//!   (Fig. 9).
//! * [`nemo`] — the NEMO baseline (SOTA): full-frame DNN SR on reference
//!   frames, reconstruction of non-reference frames from upscaled motion
//!   vectors + residuals, software decode.
//! * [`session`] — the end-to-end session simulator producing every number
//!   in the paper's evaluation: per-frame upscaling latency, MTP breakdown,
//!   energy breakdown, PSNR and perceptual-quality series.
//! * [`decoder_ext`] — the paper's §VI future-work prototype: an
//!   SR-integrated decoder with RoI-guided residual interpolation and a
//!   reference-frame bypass dispatcher.
//!
//! # Quickstart
//!
//! ```
//! use gamestreamsr::roi::{RoiDetector, RoiDetectorConfig};
//! use gss_frame::DepthMap;
//!
//! // a depth map with a near object right of center
//! let depth = DepthMap::from_fn(320, 180, |x, y| {
//!     let dx = x as f32 - 200.0;
//!     let dy = y as f32 - 90.0;
//!     if (dx * dx + dy * dy).sqrt() < 40.0 { 0.1 } else { 0.8 }
//! });
//! let detector = RoiDetector::new(RoiDetectorConfig::default());
//! let result = detector.detect(&depth, (80, 80));
//! let (cx, _) = result.roi.center();
//! assert!(cx > 140, "RoI should land on the near object, got {:?}", result.roi);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod decoder_ext;
pub mod degrade;
mod error;
pub mod fleet;
pub mod mtp;
pub mod negotiate;
pub mod nemo;
pub mod recovery;
pub mod roi;
pub mod server;
pub mod session;

pub use client::{ClientOutput, ClientTiming, GameStreamClient};
pub use degrade::{
    DegradationConfig, DegradationController, LadderRung, LadderStep, NackManager, NackSignal,
    LADDER,
};
pub use error::GssError;
pub use fleet::{
    run_fleet, AdmissionPolicy, AdmissionSummary, FleetConfig, FleetReport, FleetSessionReport,
    FleetSessionSpec, FleetSim,
};
pub use mtp::MtpBreakdown;
pub use negotiate::{negotiate, NegotiatedStream, StreamOffer};
pub use nemo::{NemoClient, NemoOutput};
pub use recovery::{
    RecoveryConfig, RecoveryEvent, RecoveryMachine, RecoveryState, RecoverySummary,
};
pub use roi::{RoiDetector, RoiDetectorConfig, RoiResult, RoiWindowPlan};
pub use server::{GameStreamServer, ServerConfig, ServerPacket};
pub use session::{
    run_comparison, ComparisonReport, FrameRecord, Pipeline, SessionConfig, SessionReport,
};
