//! The GameStreamSR streaming server (paper Fig. 6, phase 1).
//!
//! Per frame: advance the game (scripted camera), render color + depth at
//! native high resolution, derive the low-resolution stream frame, run
//! depth-guided RoI detection on the low-resolution depth buffer, encode,
//! and emit the packet together with the RoI coordinates. The native render
//! is kept alongside as evaluation ground truth.

use crate::roi::{RoiDetector, RoiDetectorConfig, RoiTracker, TrackerConfig};
use crate::GssError;
use gss_codec::{
    EncodedFrame, Encoder, EncoderConfig, FrameType, RateControlConfig, RateController,
};
use gss_frame::{DepthMap, Frame, Rect};
use gss_platform::plane_ops;
use gss_render::{GameId, GameWorkload};

/// Server-side configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The game workload to stream.
    pub game: GameId,
    /// Low-resolution (streamed) frame size; the native render is
    /// `scale`-times larger.
    pub lr_size: (usize, usize),
    /// Upscale factor of the deployment (2 in the paper).
    pub scale: usize,
    /// Codec settings (GOP length, quality).
    pub encoder: EncoderConfig,
    /// RoI detector settings.
    pub detector: RoiDetectorConfig,
    /// RoI window in low-resolution pixels, conveyed by the client at
    /// session start (step-0).
    pub roi_window: (usize, usize),
    /// Camera-script frames advanced per streamed frame. On a reduced
    /// evaluation canvas, pixel-space motion shrinks with the canvas; a
    /// stride of `deployment_width / canvas_width` restores deployment
    /// pixel velocity so codec/NEMO drift dynamics match the full scale.
    pub time_stride: usize,
    /// Optional temporal RoI stabilization (an extension beyond the paper;
    /// see [`crate::roi::RoiTracker`]). `None` ships raw detections.
    pub tracker: Option<TrackerConfig>,
    /// Optional closed-loop bitrate control steering the quantizers toward
    /// a byte budget (see [`gss_codec::RateController`]). `None` keeps the
    /// fixed quantizers of [`ServerConfig::encoder`].
    pub rate_control: Option<RateControlConfig>,
}

impl ServerConfig {
    /// A configuration for `game` on a reduced evaluation canvas with the
    /// default codec and detector.
    pub fn new(game: GameId, lr_size: (usize, usize), roi_window: (usize, usize)) -> Self {
        ServerConfig {
            game,
            lr_size,
            scale: 2,
            encoder: EncoderConfig::default(),
            detector: RoiDetectorConfig::default(),
            roi_window,
            time_stride: 1,
            tracker: None,
            rate_control: None,
        }
    }
}

/// Rounds a requested RoI window up to even extents. The codec halves RoI
/// coordinates on the 4:2:0 chroma grid, so an odd window side would shear
/// chroma against luma at the patch edge. The low-resolution frame is
/// asserted even-sized, so for any window that fits, rounding up still
/// fits.
const fn even_window(window: (usize, usize)) -> (usize, usize) {
    (window.0.next_multiple_of(2), window.1.next_multiple_of(2))
}

/// Row-parallel [`gss_platform::plane_ops::downsample_box`] over a frame's
/// three planes — bit-identical to the serial `Frame::downsample_box` at
/// any worker count.
fn downsample_frame(frame: &Frame, factor: usize) -> Frame {
    let [y, cb, cr] = frame.planes();
    Frame::from_planes(
        plane_ops::downsample_box(y, factor),
        plane_ops::downsample_box(cb, factor),
        plane_ops::downsample_box(cr, factor),
    )
    .expect("downsampled planes share one size")
}

/// One streamed frame: the coded payload, the RoI coordinates, and the
/// evaluation ground truth.
#[derive(Debug, Clone)]
pub struct ServerPacket {
    /// The coded low-resolution frame.
    pub encoded: EncodedFrame,
    /// Detected RoI in low-resolution coordinates.
    pub roi: Rect,
    /// Intra (reference) or inter (non-reference).
    pub frame_type: FrameType,
    /// Frame index in the session.
    pub index: usize,
    /// The native high-resolution render — evaluation ground truth, never
    /// transmitted.
    pub ground_truth_hr: Frame,
    /// The low-resolution depth buffer the RoI was detected on.
    pub depth_lr: DepthMap,
}

/// The streaming server.
///
/// ```
/// use gamestreamsr::{GameStreamServer, ServerConfig};
/// use gss_render::GameId;
///
/// let mut server = GameStreamServer::new(ServerConfig::new(GameId::G3, (128, 72), (40, 40)));
/// let packet = server.next_frame().unwrap();
/// assert_eq!(packet.ground_truth_hr.size(), (256, 144));
/// assert_eq!(packet.roi.width, 40);
/// ```
#[derive(Debug)]
pub struct GameStreamServer {
    config: ServerConfig,
    workload: GameWorkload,
    encoder: Encoder,
    detector: RoiDetector,
    tracker: Option<RoiTracker>,
    rate_controller: Option<RateController>,
    frame_index: usize,
}

impl GameStreamServer {
    /// Builds the server for a configuration.
    ///
    /// # Panics
    ///
    /// Panics on a zero scale, an empty frame, an odd low-resolution
    /// dimension (codec 4:2:0 needs even sizes) or an RoI window that
    /// does not fit the low-resolution frame.
    pub fn new(config: ServerConfig) -> Self {
        assert!(config.scale > 0, "scale must be nonzero");
        let (w, h) = config.lr_size;
        assert!(
            w > 0 && h > 0 && w % 2 == 0 && h % 2 == 0,
            "lr size must be even"
        );
        assert!(
            config.roi_window.0 <= w && config.roi_window.1 <= h,
            "roi window must fit the lr frame"
        );
        let config = ServerConfig {
            roi_window: even_window(config.roi_window),
            ..config
        };
        GameStreamServer {
            workload: GameWorkload::new(config.game),
            encoder: Encoder::new(config.encoder),
            detector: RoiDetector::new(config.detector),
            tracker: config.tracker.map(RoiTracker::new),
            rate_controller: config
                .rate_control
                .map(|rc| RateController::new(rc, &config.encoder)),
            config,
            frame_index: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The stream the server proposes at session start — the input to
    /// [`crate::negotiate::negotiate`]. Decode pixels are quoted at
    /// deployment scale (the canvas is an evaluation artifact) and the
    /// server always offers its strongest codec profile.
    pub fn offer(&self) -> crate::negotiate::StreamOffer {
        crate::negotiate::StreamOffer {
            lr_size: self.config.lr_size,
            scale_factor: self.config.scale,
            decode_pixels: crate::mtp::FULL_LR.pixels(),
            codec_profile: gss_platform::CodecProfile::High,
        }
    }

    /// `true` when the next frame will be a keyframe.
    pub fn next_is_keyframe(&self) -> bool {
        self.encoder.next_is_keyframe()
    }

    /// Forces the next frame to be coded intra — the server's reaction to
    /// a client NACK after packet loss (fast keyframe recovery, §II-B).
    pub fn request_keyframe(&mut self) {
        self.encoder.request_keyframe();
    }

    /// Renegotiates the RoI window mid-session — the client's degradation
    /// controller shrinks it when the NPU budget no longer fits and grows
    /// it back on recovery. Takes effect from the next frame.
    ///
    /// # Panics
    ///
    /// Panics when the window does not fit the low-resolution frame.
    pub fn set_roi_window(&mut self, window: (usize, usize)) {
        let (w, h) = self.config.lr_size;
        assert!(
            window.0 <= w && window.1 <= h,
            "roi window must fit the lr frame"
        );
        self.config.roi_window = even_window(window);
    }

    /// Rescales the rate controller's byte budget (see
    /// [`gss_codec::RateController::set_target_scale`]); a no-op without
    /// rate control.
    pub fn set_rate_target_scale(&mut self, scale: f64) {
        if let Some(rc) = &mut self.rate_controller {
            rc.set_target_scale(scale);
        }
    }

    /// Renders, detects, encodes and returns the next frame of the
    /// session.
    ///
    /// # Errors
    ///
    /// Propagates codec errors.
    pub fn next_frame(&mut self) -> Result<ServerPacket, GssError> {
        self.next_frame_inner(None)
    }

    /// [`GameStreamServer::next_frame`] plus telemetry: the codec counts
    /// encoded frames and forced keyframes, the rate controller gauges its
    /// quantizer decisions, and the selected RoI area is gauged per frame.
    /// The emitted packet is identical to an untraced call.
    ///
    /// # Errors
    ///
    /// Propagates codec errors.
    pub fn next_frame_traced(
        &mut self,
        rec: &mut gss_telemetry::Recorder,
    ) -> Result<ServerPacket, GssError> {
        self.next_frame_inner(Some(rec))
    }

    fn next_frame_inner(
        &mut self,
        mut rec: Option<&mut gss_telemetry::Recorder>,
    ) -> Result<ServerPacket, GssError> {
        let index = self.frame_index;
        self.frame_index += 1;
        let (lw, lh) = self.config.lr_size;
        let scale = self.config.scale;

        // native render (ground truth) + depth buffer
        let native = self.workload.render_frame(
            index * self.config.time_stride.max(1),
            lw * scale,
            lh * scale,
        );
        // the streamed low-resolution frame and its depth
        let lr = downsample_frame(&native.frame, scale);
        let depth_lr = DepthMap::from_plane(plane_ops::downsample_box(native.depth.plane(), scale));

        let detected = self.detector.detect(&depth_lr, self.config.roi_window).roi;
        let roi = match &mut self.tracker {
            Some(tracker) => tracker.track(detected, (lw, lh)),
            None => detected,
        };
        // The negotiated window extent is even (see `even_window`), but the
        // detector/tracker can still centre it on an odd origin. The codec
        // halves RoI coordinates on the 4:2:0 chroma grid, so an odd origin
        // would shear chroma against luma when the patch is cropped and
        // merged — snap the origin down to even luma coordinates, which
        // keeps the rect inside the frame and preserves its extent.
        let roi = Rect::new(roi.x & !1, roi.y & !1, roi.width, roi.height);
        if let Some(rec) = rec.as_deref_mut() {
            rec.gauge(
                gss_telemetry::Gauge::RoiAreaPx,
                (roi.width * roi.height) as f64,
            );
        }
        let encoded = match rec.as_deref_mut() {
            Some(rec) => self.encoder.encode_traced(&lr, rec)?,
            None => self.encoder.encode(&lr)?,
        };
        let frame_type = encoded.frame_type;
        if let Some(rc) = &mut self.rate_controller {
            let intra = frame_type == FrameType::Intra;
            match rec {
                Some(rec) => rc.observe_traced(encoded.size_bytes(), intra, rec),
                None => rc.observe(encoded.size_bytes(), intra),
            }
            let (quality, residual_step) = rc.quantizers();
            self.encoder.set_quantizers(quality, residual_step);
        }
        Ok(ServerPacket {
            encoded,
            roi,
            frame_type,
            index,
            ground_truth_hr: native.frame,
            depth_lr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_follow_gop_structure() {
        let mut cfg = ServerConfig::new(GameId::G1, (96, 54), (32, 32));
        cfg.encoder.gop_size = 3;
        let mut server = GameStreamServer::new(cfg);
        let types: Vec<FrameType> = (0..6)
            .map(|_| server.next_frame().unwrap().frame_type)
            .collect();
        use FrameType::*;
        assert_eq!(types, vec![Intra, Inter, Inter, Intra, Inter, Inter]);
    }

    #[test]
    fn roi_stays_inside_lr_frame() {
        let mut server = GameStreamServer::new(ServerConfig::new(GameId::G5, (128, 72), (48, 48)));
        for _ in 0..5 {
            let p = server.next_frame().unwrap();
            assert!(p.roi.right() <= 128 && p.roi.bottom() <= 72);
            assert_eq!(p.roi.width, 48);
        }
    }

    #[test]
    fn roi_lands_on_near_content() {
        // per game, the detected RoI must not be farther than the frame
        // at large (small tolerance: some scenes are uniformly near), and
        // across the suite it must be clearly nearer on average
        let mut roi_sum = 0.0;
        let mut frame_sum = 0.0;
        for game in GameId::ALL {
            let mut server = GameStreamServer::new(ServerConfig::new(game, (128, 72), (48, 40)));
            let p = server.next_frame().unwrap();
            let roi_depth = p.depth_lr.mean_in(p.roi);
            let frame_depth = p.depth_lr.plane().mean();
            assert!(
                roi_depth < frame_depth * 1.3 + 0.02,
                "{game}: roi depth {roi_depth:.3} vs frame {frame_depth:.3}"
            );
            roi_sum += roi_depth;
            frame_sum += frame_depth;
        }
        assert!(
            roi_sum < frame_sum * 0.8,
            "suite-wide: roi {roi_sum:.3} vs frame {frame_sum:.3}"
        );
    }

    #[test]
    fn deterministic_across_instances() {
        let mk = || GameStreamServer::new(ServerConfig::new(GameId::G3, (96, 54), (32, 32)));
        let mut a = mk();
        let mut b = mk();
        for _ in 0..3 {
            let pa = a.next_frame().unwrap();
            let pb = b.next_frame().unwrap();
            assert_eq!(pa.roi, pb.roi);
            assert_eq!(pa.encoded.payload, pb.encoded.payload);
        }
    }

    #[test]
    fn traced_frames_match_untraced_and_gauge_the_roi() {
        use gss_telemetry::{Counter, Gauge, Recorder};
        let mk = || {
            let mut cfg = ServerConfig::new(GameId::G3, (96, 54), (32, 32));
            cfg.rate_control = Some(RateControlConfig::for_bitrate_mbps(2.0));
            GameStreamServer::new(cfg)
        };
        let mut plain = mk();
        let mut traced = mk();
        let mut rec = Recorder::new("server-test", 16.67);
        for _ in 0..4 {
            let a = plain.next_frame().unwrap();
            let b = traced.next_frame_traced(&mut rec).unwrap();
            assert_eq!(a.encoded.payload, b.encoded.payload);
            assert_eq!(a.roi, b.roi);
        }
        assert_eq!(rec.counter(Counter::FramesEncoded), 4);
        let s = rec.summary();
        assert_eq!(s.gauge(Gauge::RoiAreaPx).unwrap().last, (32 * 32) as f64);
        assert!(s.gauge(Gauge::EncodeQuality).is_some());
    }

    #[test]
    fn tracker_damps_roi_jitter() {
        let game = GameId::G10; // fastest camera, most detection churn
        let measure = |tracker: Option<TrackerConfig>| {
            let mut cfg = ServerConfig::new(game, (128, 72), (48, 40));
            cfg.tracker = tracker;
            cfg.time_stride = 10;
            let mut server = GameStreamServer::new(cfg);
            let mut centers = Vec::new();
            for _ in 0..8 {
                let p = server.next_frame().unwrap();
                let (cx, cy) = p.roi.center();
                centers.push((cx as f64, cy as f64));
            }
            centers
                .windows(2)
                .map(|w| ((w[1].0 - w[0].0).powi(2) + (w[1].1 - w[0].1).powi(2)).sqrt())
                .sum::<f64>()
        };
        let raw = measure(None);
        let tracked = measure(Some(TrackerConfig::default()));
        assert!(
            tracked <= raw + 1e-9,
            "tracked path length {tracked:.1} vs raw {raw:.1}"
        );
    }

    #[test]
    fn rate_control_reins_in_the_bitrate() {
        let measure = |rc: Option<RateControlConfig>| {
            let mut cfg = ServerConfig::new(GameId::G5, (128, 72), (48, 40));
            cfg.time_stride = 10; // heavy motion: the adversarial case
            cfg.rate_control = rc;
            let mut server = GameStreamServer::new(cfg);
            let mut bytes = 0usize;
            for _ in 0..10 {
                bytes += server.next_frame().unwrap().encoded.size_bytes();
            }
            bytes
        };
        let free = measure(None);
        let governed = measure(Some(RateControlConfig {
            target_bytes_per_frame: 600,
            ..RateControlConfig::for_bitrate_mbps(1.0)
        }));
        assert!(
            governed < free * 3 / 4,
            "governed {governed} vs free {free}"
        );
    }

    #[test]
    fn roi_window_renegotiation_applies_next_frame() {
        let mut server = GameStreamServer::new(ServerConfig::new(GameId::G3, (128, 72), (48, 48)));
        assert_eq!(server.next_frame().unwrap().roi.width, 48);
        server.set_roi_window((24, 24));
        let p = server.next_frame().unwrap();
        assert_eq!((p.roi.width, p.roi.height), (24, 24));
        server.set_roi_window((48, 48));
        assert_eq!(server.next_frame().unwrap().roi.width, 48);
    }

    #[test]
    fn odd_ladder_windows_ship_even_roi_coordinates() {
        // DegradationController rung scaling truncates `(side * lr) /
        // full_lr`, so every rung can request an odd window side. The
        // shipped RoI must still sit on even luma coordinates (and even
        // extents) or the 4:2:0 chroma crop shears against luma.
        use crate::degrade::LADDER;
        use gss_platform::DeviceProfile;
        let device = DeviceProfile::s8_tab();
        let mut server = GameStreamServer::new(ServerConfig::new(GameId::G2, (128, 72), (48, 48)));
        for (i, rung) in LADDER.iter().enumerate() {
            // an odd base side makes the rung scaling land on odd values
            let side = rung.roi_side(&device, 47).clamp(9, 71) | 1;
            assert_eq!(
                side % 2,
                1,
                "rung {i} side {side} must be odd for this test"
            );
            server.set_roi_window((side, side));
            let p = server.next_frame().unwrap();
            assert_eq!(p.roi.x % 2, 0, "rung {i}: odd x {}", p.roi);
            assert_eq!(p.roi.y % 2, 0, "rung {i}: odd y {}", p.roi);
            assert_eq!(p.roi.width % 2, 0, "rung {i}: odd width {}", p.roi);
            assert_eq!(p.roi.height % 2, 0, "rung {i}: odd height {}", p.roi);
            // the even window covers the requested one and still fits
            assert!(p.roi.width >= side && p.roi.height >= side, "{}", p.roi);
            assert!(p.roi.right() <= 128 && p.roi.bottom() <= 72, "{}", p.roi);
        }
    }

    #[test]
    #[should_panic(expected = "fit")]
    fn oversized_roi_window_renegotiation_rejected() {
        let mut server = GameStreamServer::new(ServerConfig::new(GameId::G3, (96, 54), (32, 32)));
        server.set_roi_window((200, 32));
    }

    #[test]
    fn rate_target_rescale_tightens_the_stream() {
        let measure = |scale: f64| {
            let mut cfg = ServerConfig::new(GameId::G5, (128, 72), (48, 40));
            cfg.time_stride = 10;
            cfg.rate_control = Some(RateControlConfig {
                target_bytes_per_frame: 4000,
                ..RateControlConfig::for_bitrate_mbps(1.0)
            });
            let mut server = GameStreamServer::new(cfg);
            server.set_rate_target_scale(scale);
            let mut bytes = 0usize;
            for _ in 0..12 {
                bytes += server.next_frame().unwrap().encoded.size_bytes();
            }
            bytes
        };
        let full = measure(1.0);
        let cut = measure(0.25);
        assert!(cut < full, "cut {cut} vs full {full}");
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_lr_size_rejected() {
        GameStreamServer::new(ServerConfig::new(GameId::G1, (97, 54), (32, 32)));
    }
}
