//! The NEMO baseline (Yeo et al., MobiCom'20) — the paper's SOTA
//! comparison point.
//!
//! NEMO amortizes DNN super-resolution over a GOP: the reference (key)
//! frame is upscaled through the full DNN, and each non-reference frame is
//! *reconstructed in high-resolution space* from the previously upscaled
//! frame plus bilinearly-upscaled motion vectors and residuals. Doing so
//! requires the codec's internals ([`gss_codec::DecodeDetail`]), which is
//! why NEMO runs a software decoder on the CPU rather than the phone's
//! hardware decoder — the root of its energy disadvantage (paper Fig. 12).
//!
//! The quality consequence reproduced here (paper Fig. 13): bilinear
//! residual upscaling cannot express high-frequency corrections, so
//! reconstruction error accumulates frame over frame within a GOP.

use crate::GssError;
use gss_codec::{DecodeDetail, Decoder, EncodedFrame, FrameType, MotionField, MB_SIZE};
use gss_frame::{Frame, Plane};
use gss_sr::{InterpKernel, InterpUpscaler, NeuralSr, NeuralSrConfig, Upscaler};

/// One frame produced by the NEMO pipeline.
#[derive(Debug, Clone)]
pub struct NemoOutput {
    /// The high-resolution frame shown to the player.
    pub frame: Frame,
    /// Whether the DNN ran (reference) or reconstruction ran
    /// (non-reference).
    pub frame_type: FrameType,
}

/// The NEMO client pipeline.
///
/// ```
/// use gamestreamsr::NemoClient;
/// use gss_codec::{Encoder, EncoderConfig};
/// use gss_frame::Frame;
///
/// let mut enc = Encoder::new(EncoderConfig::default());
/// let mut nemo = NemoClient::new(2);
/// let packet = enc.encode(&Frame::filled(64, 32, [90.0, 128.0, 128.0])).unwrap();
/// let out = nemo.process(&packet).unwrap();
/// assert_eq!(out.frame.size(), (128, 64));
/// ```
#[derive(Debug)]
pub struct NemoClient {
    decoder: Decoder,
    neural: NeuralSr,
    bilinear: InterpUpscaler,
    scale: usize,
    reference_hr: Option<Frame>,
}

impl NemoClient {
    /// Creates the baseline client for an upscale factor.
    ///
    /// # Panics
    ///
    /// Panics when `scale` is zero.
    pub fn new(scale: usize) -> Self {
        assert!(scale > 0, "scale must be nonzero");
        NemoClient {
            decoder: Decoder::new(),
            neural: NeuralSr::new(NeuralSrConfig {
                scale,
                ..NeuralSrConfig::default()
            }),
            bilinear: InterpUpscaler::new(InterpKernel::Bilinear, scale),
            scale,
            reference_hr: None,
        }
    }

    /// The upscale factor.
    pub fn scale(&self) -> usize {
        self.scale
    }

    /// Processes the next packet of the stream.
    ///
    /// # Errors
    ///
    /// Propagates codec errors; an inter packet without a prior reference
    /// frame yields [`gss_codec::CodecError::MissingReference`].
    pub fn process(&mut self, packet: &EncodedFrame) -> Result<NemoOutput, GssError> {
        let decoded = self.decoder.decode(packet)?;
        match decoded.detail {
            DecodeDetail::Intra => {
                // reference frame: full-frame DNN SR on the NPU
                let hr = self.neural.upscale(&decoded.frame);
                self.reference_hr = Some(hr.clone());
                Ok(NemoOutput {
                    frame: hr,
                    frame_type: FrameType::Intra,
                })
            }
            DecodeDetail::Inter { motion, residual } => {
                let reference = self
                    .reference_hr
                    .as_ref()
                    .ok_or(gss_codec::CodecError::MissingReference)?;
                let hr = self.reconstruct(reference, &motion, &residual);
                self.reference_hr = Some(hr.clone());
                Ok(NemoOutput {
                    frame: hr,
                    frame_type: FrameType::Inter,
                })
            }
        }
    }

    /// [`NemoClient::process`] plus telemetry: the software decoder counts
    /// reconstructed inter frames (NEMO's defining cost — it is the reason
    /// the baseline cannot use the hardware decoder), and reference frames
    /// count as full-frame upscales. The output is identical to an
    /// untraced call.
    ///
    /// # Errors
    ///
    /// Same as [`NemoClient::process`].
    pub fn process_traced(
        &mut self,
        packet: &EncodedFrame,
        rec: &mut gss_telemetry::Recorder,
    ) -> Result<NemoOutput, GssError> {
        let out = self.process(packet)?;
        match out.frame_type {
            FrameType::Intra => rec.incr(gss_telemetry::Counter::FramesUpscaled),
            FrameType::Inter => rec.incr(gss_telemetry::Counter::FramesReconstructed),
        }
        Ok(out)
    }

    /// NEMO's non-reference reconstruction: upscale the motion vectors by
    /// the scale factor, motion-compensate the previous *high-resolution*
    /// frame, and add the bilinearly-upscaled residual.
    fn reconstruct(
        &self,
        reference_hr: &Frame,
        motion: &MotionField,
        residual_lr: &Frame,
    ) -> Frame {
        let motion_hr = motion.scaled(self.scale);
        let block_hr = MB_SIZE * self.scale;
        let residual_hr = self.bilinear.upscale(residual_lr);
        let compensate_plane = |reference: &Plane<f32>, residual: &Plane<f32>| {
            let pred = gss_codec::compensate(reference, &motion_hr, block_hr);
            pred.zip_map(residual, |p, r| (p + r).clamp(0.0, 255.0))
                .expect("prediction and residual share HR dimensions")
        };
        let y = compensate_plane(reference_hr.y(), residual_hr.y());
        let cb = compensate_plane(reference_hr.cb(), residual_hr.cb());
        let cr = compensate_plane(reference_hr.cr(), residual_hr.cr());
        Frame::from_planes(y, cb, cr).expect("planes share dimensions")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_codec::{Encoder, EncoderConfig};
    use gss_metrics::psnr;

    fn moving_scene(w: usize, h: usize, t: f32) -> Frame {
        Frame::from_planes(
            Plane::from_fn(w, h, |x, y| {
                let fx = x as f32 + t * 1.5;
                let stripes = if ((fx / 14.0).floor() as i32 + (y / 12) as i32) % 2 == 0 {
                    70.0
                } else {
                    185.0
                };
                let tex = 18.0 * ((fx * 0.25).sin() * (y as f32 * 0.2).cos());
                (stripes + tex).clamp(0.0, 255.0)
            }),
            Plane::filled(w, h, 118.0),
            Plane::filled(w, h, 134.0),
        )
        .unwrap()
    }

    #[test]
    fn reference_frames_use_dnn_and_reset_drift() {
        let mut enc = Encoder::new(EncoderConfig {
            gop_size: 4,
            ..EncoderConfig::default()
        });
        let mut nemo = NemoClient::new(2);
        let mut types = Vec::new();
        for t in 0..8 {
            let lr = moving_scene(64, 48, t as f32);
            let out = nemo.process(&enc.encode(&lr).unwrap()).unwrap();
            types.push(out.frame_type);
        }
        use FrameType::*;
        assert_eq!(
            types,
            vec![Intra, Inter, Inter, Inter, Intra, Inter, Inter, Inter]
        );
    }

    #[test]
    fn quality_decays_within_a_gop_and_recovers_at_keyframe() {
        // rendered game content (deployment pixel velocity): NEMO drifts
        // within the GOP and a keyframe resets it. The window starts 12
        // streamed frames into the flythrough, where content difficulty has
        // plateaued — on the opening segment the camera dollies into busier
        // geometry and the difficulty slope swamps the drift/recovery signal
        // this test isolates.
        const GOP: usize = 12;
        const OFFSET: usize = 12;
        let mut enc = Encoder::new(EncoderConfig {
            gop_size: GOP,
            ..EncoderConfig::default()
        });
        let workload = gss_render::GameWorkload::new(gss_render::GameId::G3);
        let mut nemo = NemoClient::new(2);
        let mut series = Vec::new();
        for t in 0..GOP + 1 {
            let hr = workload.render_frame((t + OFFSET) * 8, 192, 108).frame;
            let lr = hr.downsample_box(2);
            let out = nemo.process(&enc.encode(&lr).unwrap()).unwrap();
            series.push(psnr(&hr, &out.frame).unwrap());
        }
        // error accumulates: the last quarter of the GOP is worse than the
        // first non-reference frames
        let early = (series[1] + series[2]) / 2.0;
        let late = (series[GOP - 2] + series[GOP - 1]) / 2.0;
        assert!(late < early - 0.4, "early {early:.2} late {late:.2}");
        // the next keyframe restores quality above the late-GOP level
        // (recovery is bounded by the codec's own intra quality)
        assert!(
            series[GOP] > late + 0.15,
            "key {:.2} late {late:.2}",
            series[GOP]
        );
    }

    #[test]
    fn inter_before_intra_errors() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let lr = moving_scene(64, 48, 0.0);
        enc.encode(&lr).unwrap();
        let inter = enc.encode(&moving_scene(64, 48, 1.0)).unwrap();
        let mut nemo = NemoClient::new(2);
        assert!(nemo.process(&inter).is_err());
    }

    #[test]
    fn output_is_always_hr_sized() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut nemo = NemoClient::new(2);
        for t in 0..3 {
            let lr = moving_scene(64, 48, t as f32);
            let out = nemo.process(&enc.encode(&lr).unwrap()).unwrap();
            assert_eq!(out.frame.size(), (128, 96));
        }
    }
}
