//! Temporal RoI stabilization — an extension beyond the paper.
//!
//! Per-frame detection can jitter by a few pixels (depth noise, histogram
//! quantization), and the RoI boundary is a visible quality seam: a
//! flickering seam is worse than a slightly stale one. The tracker smooths
//! the detected window center with an exponential moving average and snaps
//! only on genuine scene changes (large detected jumps), trading a few
//! frames of tracking lag for a stable seam. The ablation harness
//! quantifies the jitter reduction.

use gss_frame::Rect;
use serde::{Deserialize, Serialize};

/// Tracker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// EMA weight of the *new* detection per frame (`1.0` = no smoothing).
    pub alpha: f64,
    /// Center jumps of at least this many pixels bypass smoothing (scene
    /// cut / new focus object).
    pub snap_distance: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            alpha: 0.35,
            snap_distance: 80.0,
        }
    }
}

/// Smooths a stream of detected RoIs into a stable window trajectory.
///
/// ```
/// use gamestreamsr::roi::{RoiTracker, TrackerConfig};
/// use gss_frame::Rect;
///
/// let mut tracker = RoiTracker::new(TrackerConfig::default());
/// let first = tracker.track(Rect::new(100, 50, 64, 64), (320, 180));
/// assert_eq!(first, Rect::new(100, 50, 64, 64)); // first detection passes through
/// let second = tracker.track(Rect::new(112, 50, 64, 64), (320, 180));
/// assert!(second.x > 100 && second.x < 112);     // smoothed toward the new spot
/// ```
#[derive(Debug, Clone)]
pub struct RoiTracker {
    config: TrackerConfig,
    center: Option<(f64, f64)>,
}

impl RoiTracker {
    /// Creates a tracker with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is outside `(0, 1]`.
    pub fn new(config: TrackerConfig) -> Self {
        assert!(
            config.alpha > 0.0 && config.alpha <= 1.0,
            "alpha must be in (0, 1]"
        );
        RoiTracker {
            config,
            center: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> TrackerConfig {
        self.config
    }

    /// Resets the tracker (e.g. at a keyframe after packet loss).
    pub fn reset(&mut self) {
        self.center = None;
    }

    /// Feeds one detection and returns the stabilized window, clamped into
    /// a `bounds.0 x bounds.1` frame.
    ///
    /// # Panics
    ///
    /// Panics when the window does not fit inside `bounds`.
    pub fn track(&mut self, detected: Rect, bounds: (usize, usize)) -> Rect {
        assert!(
            detected.width <= bounds.0 && detected.height <= bounds.1,
            "window must fit inside the frame"
        );
        let (dx, dy) = detected.center();
        let (dx, dy) = (dx as f64, dy as f64);
        let (cx, cy) = match self.center {
            None => (dx, dy),
            Some((px, py)) => {
                let dist = ((dx - px).powi(2) + (dy - py).powi(2)).sqrt();
                if dist >= self.config.snap_distance {
                    (dx, dy) // scene cut: follow immediately
                } else {
                    let a = self.config.alpha;
                    (px + a * (dx - px), py + a * (dy - py))
                }
            }
        };
        self.center = Some((cx, cy));
        let x = (cx - detected.width as f64 / 2.0).round().max(0.0) as usize;
        let y = (cy - detected.height as f64 / 2.0).round().max(0.0) as usize;
        Rect::new(x, y, detected.width, detected.height).clamp_to(bounds.0, bounds.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_detection_passes_through() {
        let mut t = RoiTracker::new(TrackerConfig::default());
        let r = Rect::new(30, 40, 50, 50);
        assert_eq!(t.track(r, (320, 180)), r);
    }

    #[test]
    fn small_jitter_is_damped() {
        let mut t = RoiTracker::new(TrackerConfig {
            alpha: 0.3,
            snap_distance: 60.0,
        });
        let base = Rect::new(100, 60, 40, 40);
        t.track(base, (320, 180));
        // detection jitters +10 px; tracked window moves only ~3 px
        let tracked = t.track(Rect::new(110, 60, 40, 40), (320, 180));
        assert_eq!(tracked.y, 60);
        assert!(tracked.x > 100 && tracked.x <= 104, "{tracked:?}");
    }

    #[test]
    fn converges_to_a_stable_detection() {
        let mut t = RoiTracker::new(TrackerConfig::default());
        t.track(Rect::new(0, 0, 40, 40), (320, 180));
        let target = Rect::new(60, 30, 40, 40);
        let mut last = Rect::default();
        for _ in 0..40 {
            last = t.track(target, (320, 180));
        }
        assert_eq!(last, target);
    }

    #[test]
    fn large_jumps_snap_immediately() {
        let mut t = RoiTracker::new(TrackerConfig {
            alpha: 0.2,
            snap_distance: 50.0,
        });
        t.track(Rect::new(0, 0, 40, 40), (320, 180));
        let far = Rect::new(200, 100, 40, 40);
        assert_eq!(t.track(far, (320, 180)), far);
    }

    #[test]
    fn reset_forgets_history() {
        let mut t = RoiTracker::new(TrackerConfig::default());
        t.track(Rect::new(0, 0, 40, 40), (320, 180));
        t.reset();
        let r = Rect::new(150, 80, 40, 40);
        assert_eq!(t.track(r, (320, 180)), r);
    }

    #[test]
    fn output_always_fits_bounds() {
        let mut t = RoiTracker::new(TrackerConfig::default());
        for i in 0..20 {
            let r = t.track(Rect::new(i * 15 % 280, i * 9 % 140, 40, 40), (320, 180));
            assert!(r.right() <= 320 && r.bottom() <= 180);
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let _ = RoiTracker::new(TrackerConfig {
            alpha: 0.0,
            snap_distance: 10.0,
        });
    }
}
