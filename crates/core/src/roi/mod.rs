//! Depth-guided Region-of-Importance detection (paper §IV-B).
//!
//! The server captures the depth buffer for free during rendering and runs:
//!
//! 1. window sizing ([`sizing`], once per device at session start),
//! 2. depth-map preprocessing ([`mod@preprocess`], Fig. 8),
//! 3. the two-phase window search ([`search`], Algorithm 1).

pub mod preprocess;
pub mod search;
pub mod sizing;
pub mod tracker;

pub use preprocess::{preprocess, PreprocessConfig, PreprocessStages};
pub use search::{search_roi, SearchConfig};
pub use sizing::{plan_roi_window, RoiWindowPlan};
pub use tracker::{RoiTracker, TrackerConfig};

use gss_frame::{DepthMap, Rect};

/// Configuration of the full detection pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RoiDetectorConfig {
    /// Depth-map preprocessing knobs.
    pub preprocess: PreprocessConfig,
    /// Window-search knobs.
    pub search: SearchConfig,
    /// Keep the intermediate preprocessing stages in the result (for
    /// visualization/debugging; costs memory).
    pub keep_stages: bool,
}

/// Result of RoI detection for one frame.
#[derive(Debug, Clone)]
pub struct RoiResult {
    /// The detected region, clamped inside the depth map.
    pub roi: Rect,
    /// Intermediate stages when requested via
    /// [`RoiDetectorConfig::keep_stages`].
    pub stages: Option<PreprocessStages>,
}

/// The server-side RoI detector.
///
/// See the crate-level example for typical use.
#[derive(Debug, Clone, Default)]
pub struct RoiDetector {
    config: RoiDetectorConfig,
}

impl RoiDetector {
    /// Creates a detector with the given configuration.
    pub fn new(config: RoiDetectorConfig) -> Self {
        RoiDetector { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &RoiDetectorConfig {
        &self.config
    }

    /// Detects the RoI window of `(width, height)` in a depth map.
    ///
    /// # Panics
    ///
    /// Panics when the window does not fit inside the depth map.
    pub fn detect(&self, depth: &DepthMap, window: (usize, usize)) -> RoiResult {
        let (w, h) = depth.size();
        assert!(
            window.0 <= w && window.1 <= h && window.0 > 0 && window.1 > 0,
            "roi window {window:?} must fit inside {w}x{h}"
        );
        let stages = preprocess(depth, &self.config.preprocess);
        let roi = search_roi(&stages.processed, window, &self.config.search);
        RoiResult {
            roi,
            stages: if self.config.keep_stages {
                Some(stages)
            } else {
                None
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Depth map: uniform far background, one near blob.
    fn blob_depth(w: usize, h: usize, cx: f32, cy: f32, r: f32) -> DepthMap {
        DepthMap::from_fn(w, h, |x, y| {
            let dx = x as f32 - cx;
            let dy = y as f32 - cy;
            if (dx * dx + dy * dy).sqrt() < r {
                0.08
            } else {
                0.85
            }
        })
    }

    #[test]
    fn detects_centered_blob() {
        let depth = blob_depth(320, 180, 160.0, 90.0, 30.0);
        let det = RoiDetector::default();
        let r = det.detect(&depth, (64, 64));
        let (cx, cy) = r.roi.center();
        assert!((cx as f32 - 160.0).abs() < 20.0, "cx {cx}");
        assert!((cy as f32 - 90.0).abs() < 20.0, "cy {cy}");
    }

    #[test]
    fn detects_offcenter_blob() {
        let depth = blob_depth(320, 180, 110.0, 120.0, 28.0);
        let det = RoiDetector::default();
        let r = det.detect(&depth, (64, 64));
        let (cx, cy) = r.roi.center();
        assert!((cx as f32 - 110.0).abs() < 26.0, "cx {cx}");
        assert!((cy as f32 - 120.0).abs() < 26.0, "cy {cy}");
    }

    #[test]
    fn window_always_inside_bounds() {
        let depth = blob_depth(320, 180, 5.0, 5.0, 30.0);
        let det = RoiDetector::default();
        let r = det.detect(&depth, (100, 100));
        assert!(r.roi.right() <= 320 && r.roi.bottom() <= 180);
        assert_eq!(r.roi.width, 100);
        assert_eq!(r.roi.height, 100);
    }

    #[test]
    fn stages_kept_when_requested() {
        let depth = blob_depth(160, 90, 80.0, 45.0, 15.0);
        let det = RoiDetector::new(RoiDetectorConfig {
            keep_stages: true,
            ..RoiDetectorConfig::default()
        });
        assert!(det.detect(&depth, (32, 32)).stages.is_some());
        let det2 = RoiDetector::default();
        assert!(det2.detect(&depth, (32, 32)).stages.is_none());
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn oversized_window_panics() {
        let depth = blob_depth(64, 64, 32.0, 32.0, 10.0);
        RoiDetector::default().detect(&depth, (128, 128));
    }

    #[test]
    fn center_bias_breaks_uniform_depth() {
        // a completely flat depth map: the Gaussian weighting must pull the
        // RoI to the screen center (insight ① in §IV-B2)
        let depth = DepthMap::from_fn(320, 180, |_, _| 0.5);
        let det = RoiDetector::default();
        let r = det.detect(&depth, (64, 64));
        let (cx, cy) = r.roi.center();
        assert!((cx as i64 - 160).abs() <= 8, "cx {cx}");
        assert!((cy as i64 - 90).abs() <= 8, "cy {cy}");
    }

    #[test]
    fn near_content_wins_over_equidistant_far() {
        // two blobs mirrored around the center: the nearer one must win
        let depth = DepthMap::from_fn(320, 180, |x, y| {
            let d1 = ((x as f32 - 100.0).powi(2) + (y as f32 - 90.0).powi(2)).sqrt();
            let d2 = ((x as f32 - 220.0).powi(2) + (y as f32 - 90.0).powi(2)).sqrt();
            if d1 < 25.0 {
                0.05 // near
            } else if d2 < 25.0 {
                0.45 // mid-distance
            } else {
                0.9
            }
        });
        let det = RoiDetector::default();
        let r = det.detect(&depth, (64, 64));
        let (cx, _) = r.roi.center();
        assert!(cx < 160, "expected the nearer blob (x≈100), got cx {cx}");
    }
}
