//! The two-phase RoI window search (paper Algorithm 1): a coarse-grained
//! scan with a large stride to localize the candidate, then a fine-grained
//! scan with a small stride around it. Window sums come from a summed-area
//! table, making each probe O(1) — the software analog of the paper's
//! parallel GPU reduction.

use gss_frame::{Plane, Rect};

/// Search strides and refinement margin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// Fine-phase stride `s` in pixels (the coarse stride is
    /// `max(h, w) / 2` per the paper).
    pub fine_stride: usize,
    /// Boundary `b` around the coarse result refined by the fine phase;
    /// `None` uses the coarse stride.
    pub boundary: Option<usize>,
    /// Skip the fine phase entirely (coarse-only ablation).
    pub coarse_only: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            fine_stride: 4,
            boundary: None,
            coarse_only: false,
        }
    }
}

/// Runs Algorithm 1 on a processed importance map, returning the best
/// `(width, height)` window. Ties break toward the frame center (§IV-B2).
///
/// # Panics
///
/// Panics when the window is empty or does not fit inside the map.
pub fn search_roi(processed: &Plane<f32>, window: (usize, usize), config: &SearchConfig) -> Rect {
    let (map_w, map_h) = processed.size();
    let (win_w, win_h) = window;
    assert!(
        win_w > 0 && win_h > 0 && win_w <= map_w && win_h <= map_h,
        "window {window:?} must fit inside {map_w}x{map_h}"
    );
    let sat = processed.integral();
    let center_x = (map_w as f64 - win_w as f64) / 2.0;
    let center_y = (map_h as f64 - win_h as f64) / 2.0;

    // phase 1: coarse scan, stride S = max(h, w) / 2
    let coarse_stride = (win_w.max(win_h) / 2).max(1);
    let coarse = scan(
        &sat,
        (0, map_w - win_w),
        (0, map_h - win_h),
        coarse_stride,
        window,
        (center_x, center_y),
    );
    if config.coarse_only {
        return Rect::new(coarse.0, coarse.1, win_w, win_h);
    }

    // phase 2: fine scan with stride s inside ±b of the coarse result
    let b = config.boundary.unwrap_or(coarse_stride);
    let fine_stride = config.fine_stride.max(1);
    let x_lo = coarse.0.saturating_sub(b);
    let x_hi = (coarse.0 + b).min(map_w - win_w);
    let y_lo = coarse.1.saturating_sub(b);
    let y_hi = (coarse.1 + b).min(map_h - win_h);
    let fine = scan(
        &sat,
        (x_lo, x_hi),
        (y_lo, y_hi),
        fine_stride,
        window,
        (center_x, center_y),
    );
    Rect::new(fine.0, fine.1, win_w, win_h)
}

/// Scans window positions over `[x_lo..=x_hi] x [y_lo..=y_hi]` with the
/// given stride, maximizing window sum; ties break toward the center.
fn scan(
    sat: &gss_frame::IntegralImage,
    (x_lo, x_hi): (usize, usize),
    (y_lo, y_hi): (usize, usize),
    stride: usize,
    (win_w, win_h): (usize, usize),
    (center_x, center_y): (f64, f64),
) -> (usize, usize) {
    let mut best_pos = (x_lo, y_lo);
    let mut best_sum = f64::NEG_INFINITY;
    let mut best_center_d2 = f64::INFINITY;
    let mut y = y_lo;
    loop {
        let mut x = x_lo;
        loop {
            let sum = sat.window_sum(Rect::new(x, y, win_w, win_h));
            let dx = x as f64 - center_x;
            let dy = y as f64 - center_y;
            let d2 = dx * dx + dy * dy;
            if sum > best_sum + 1e-9 || (sum > best_sum - 1e-9 && d2 < best_center_d2) {
                if sum > best_sum {
                    best_sum = sum;
                }
                best_center_d2 = d2;
                best_pos = (x, y);
            }
            if x == x_hi {
                break;
            }
            x = (x + stride).min(x_hi);
        }
        if y == y_hi {
            break;
        }
        y = (y + stride).min(y_hi);
    }
    best_pos
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_with_blob(w: usize, h: usize, bx: usize, by: usize, r: usize) -> Plane<f32> {
        Plane::from_fn(w, h, |x, y| {
            let dx = x as f64 - bx as f64;
            let dy = y as f64 - by as f64;
            if (dx * dx + dy * dy).sqrt() < r as f64 {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn finds_single_blob() {
        let m = map_with_blob(200, 120, 140, 60, 15);
        let roi = search_roi(&m, (40, 40), &SearchConfig::default());
        let (cx, cy) = roi.center();
        assert!((cx as i64 - 140).abs() <= 6, "cx {cx}");
        assert!((cy as i64 - 60).abs() <= 6, "cy {cy}");
    }

    #[test]
    fn fine_phase_beats_coarse_only() {
        // blob positioned off the coarse grid: fine refinement captures
        // at least as much mass
        let m = map_with_blob(200, 120, 97, 53, 10);
        let coarse = search_roi(
            &m,
            (40, 40),
            &SearchConfig {
                coarse_only: true,
                ..SearchConfig::default()
            },
        );
        let fine = search_roi(&m, (40, 40), &SearchConfig::default());
        let sat = m.integral();
        assert!(sat.window_sum(fine) >= sat.window_sum(coarse));
    }

    #[test]
    fn fine_stride_one_is_optimal_for_small_maps() {
        let m = map_with_blob(80, 60, 33, 27, 6);
        let roi = search_roi(
            &m,
            (20, 20),
            &SearchConfig {
                fine_stride: 1,
                boundary: Some(80),
                ..SearchConfig::default()
            },
        );
        // exhaustive check
        let sat = m.integral();
        let mut best = f64::NEG_INFINITY;
        for y in 0..=40 {
            for x in 0..=60 {
                best = best.max(sat.window_sum(Rect::new(x, y, 20, 20)));
            }
        }
        assert!((sat.window_sum(roi) - best).abs() < 1e-9);
    }

    #[test]
    fn tie_breaks_toward_center() {
        // completely uniform map: every window has the same sum
        let m = Plane::filled(100, 100, 1.0f32);
        let roi = search_roi(&m, (20, 20), &SearchConfig::default());
        let (cx, cy) = roi.center();
        assert!((cx as i64 - 50).abs() <= 3, "cx {cx}");
        assert!((cy as i64 - 50).abs() <= 3, "cy {cy}");
    }

    #[test]
    fn result_always_in_bounds() {
        let m = map_with_blob(64, 48, 2, 2, 10);
        let roi = search_roi(&m, (30, 30), &SearchConfig::default());
        assert!(roi.right() <= 64 && roi.bottom() <= 48);
    }

    #[test]
    fn full_frame_window_is_identity() {
        let m = map_with_blob(40, 30, 20, 15, 5);
        let roi = search_roi(&m, (40, 30), &SearchConfig::default());
        assert_eq!(roi, Rect::new(0, 0, 40, 30));
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn oversized_window_panics() {
        let m = Plane::filled(10, 10, 0.0f32);
        search_roi(&m, (20, 20), &SearchConfig::default());
    }
}
