//! RoI window sizing (paper §IV-B1, Fig. 7): the physiological minimum from
//! foveal vision and the compute maximum from device calibration.

use gss_platform::{DeviceProfile, REALTIME_BUDGET_MS};
use serde::{Deserialize, Serialize};

/// The per-device RoI window plan negotiated at session start (step-0 of
/// Fig. 6). Computed once per device; the server uses `chosen_side`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoiWindowPlan {
    /// Minimum desired side from foveal physiology, on the low-resolution
    /// frame (`ppi · 1.25 in / scale`).
    pub foveal_side: usize,
    /// Maximum side whose DNN upscaling fits the 16.66 ms budget.
    pub max_side: usize,
    /// The side actually used: the compute maximum (to also cover the
    /// para-foveal central region, §IV-B1), never exceeding the frame.
    pub chosen_side: usize,
    /// `true` when the device cannot even afford the foveal minimum in
    /// real time (`max_side < foveal_side`) and quality is compute-bound.
    pub foveal_compromised: bool,
}

/// Plans the RoI window for a device streaming at `scale_factor`x
/// upscaling with low-resolution frames of `(lr_width, lr_height)`.
///
/// # Panics
///
/// Panics when `scale_factor` is zero or the frame is empty.
pub fn plan_roi_window(
    device: &DeviceProfile,
    scale_factor: usize,
    lr_width: usize,
    lr_height: usize,
) -> RoiWindowPlan {
    assert!(scale_factor > 0, "scale factor must be nonzero");
    assert!(lr_width > 0 && lr_height > 0, "frame must be nonempty");
    let foveal_side = device.foveal_roi_side(scale_factor);
    let max_side = device.max_realtime_roi_side(REALTIME_BUDGET_MS);
    // use the full compute budget (maximizes quality gains around the
    // fovea), clamped into the frame
    let chosen_side = max_side.min(lr_width).min(lr_height).max(1);
    RoiWindowPlan {
        foveal_side,
        max_side,
        chosen_side,
        foveal_compromised: max_side < foveal_side,
    }
}

impl RoiWindowPlan {
    /// The plan's window as `(width, height)`.
    pub fn window(&self) -> (usize, usize) {
        (self.chosen_side, self.chosen_side)
    }

    /// Rescales the chosen window to a reduced evaluation canvas while
    /// keeping the same fraction of the frame (used when experiments run
    /// at a smaller canvas for tractability; timing always uses the
    /// full-scale plan).
    pub fn scaled_to_canvas(&self, canvas_width: usize, full_width: usize) -> (usize, usize) {
        let side = (self.chosen_side * canvas_width) / full_width.max(1);
        let side = side.max(8);
        (side, side)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s8_plan_matches_paper_example() {
        let plan = plan_roi_window(&DeviceProfile::s8_tab(), 2, 1280, 720);
        // §IV-B1: foveal ≈172 px, compute max ≈300 px on the S8
        assert!(
            (170..=173).contains(&plan.foveal_side),
            "{}",
            plan.foveal_side
        );
        assert!((296..=312).contains(&plan.max_side), "{}", plan.max_side);
        assert_eq!(plan.chosen_side, plan.max_side);
        assert!(!plan.foveal_compromised);
    }

    #[test]
    fn pixel_plan_is_compute_bound() {
        // Pixel 7 Pro: 512 ppi wants a 320 px foveal window but the NPU
        // affords ≈300 → compromised flag set
        let plan = plan_roi_window(&DeviceProfile::pixel7_pro(), 2, 1280, 720);
        assert!(plan.foveal_side > plan.max_side);
        assert!(plan.foveal_compromised);
        assert_eq!(plan.chosen_side, plan.max_side);
    }

    #[test]
    fn window_clamped_to_small_frames() {
        let plan = plan_roi_window(&DeviceProfile::s8_tab(), 2, 160, 90);
        assert_eq!(plan.chosen_side, 90);
    }

    #[test]
    fn canvas_rescale_keeps_fraction() {
        let plan = plan_roi_window(&DeviceProfile::s8_tab(), 2, 1280, 720);
        let (w, _) = plan.scaled_to_canvas(640, 1280);
        assert_eq!(w, plan.chosen_side / 2);
    }

    #[test]
    fn higher_scale_factor_shrinks_foveal_window() {
        let d = DeviceProfile::s8_tab();
        let p2 = plan_roi_window(&d, 2, 1280, 720);
        let p4 = plan_roi_window(&d, 4, 1280, 720);
        assert!(p4.foveal_side < p2.foveal_side);
    }
}
