//! Depth-map preprocessing (paper Fig. 8): foreground extraction via
//! histogram-valley thresholding, Gaussian center-biased spatial weighting,
//! depth-map layering and max-energy layer selection.

use gss_frame::{DepthMap, Plane};

/// Preprocessing knobs, defaulting to the paper's design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreprocessConfig {
    /// Depth-histogram bins used for foreground/background thresholding.
    pub histogram_bins: usize,
    /// Number of depth layers the weighted map is split into (step-3).
    pub layers: usize,
    /// Peak amplitude of the additive Gaussian center bias (step-2).
    /// `0.0` disables spatial weighting (ablation).
    pub gaussian_weight: f32,
    /// Gaussian sigma as a fraction of `min(width, height)`.
    pub gaussian_sigma_frac: f32,
    /// Minimum probability mass required on each side of a histogram
    /// valley for it to count as the foreground/background gap.
    pub min_side_mass: f64,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            histogram_bins: 64,
            layers: 4,
            gaussian_weight: 0.5,
            gaussian_sigma_frac: 0.35,
            min_side_mass: 0.04,
        }
    }
}

/// All intermediate stages of preprocessing, for inspection and the
/// `roi_visualizer` example. `processed` feeds the window search.
#[derive(Debug, Clone)]
pub struct PreprocessStages {
    /// Foreground/background depth threshold found on the histogram.
    pub threshold: f32,
    /// Step-1 output: nearness (`1 − depth`) masked to the foreground.
    pub foreground: Plane<f32>,
    /// Step-2 output: foreground importance plus the Gaussian center bias.
    pub weighted: Plane<f32>,
    /// Step-3 output: the weighted map split into value-range layers.
    pub layers: Vec<Plane<f32>>,
    /// Step-4 choice: index of the selected (max total value) layer.
    pub selected_layer: usize,
    /// The map the RoI search runs on.
    pub processed: Plane<f32>,
}

/// Runs the full preprocessing pipeline on a depth map.
pub fn preprocess(depth: &DepthMap, config: &PreprocessConfig) -> PreprocessStages {
    let (w, h) = depth.size();

    // -- step 1: foreground extraction ------------------------------------
    let hist = depth.histogram(config.histogram_bins.max(2));
    let threshold = foreground_threshold(&hist, config.min_side_mass);
    let foreground = {
        let data = gss_platform::pool::build_rows(w, h, 0.0f32, |y, row| {
            for (x, v) in row.iter_mut().enumerate() {
                let d = depth.get(x, y);
                if d < threshold {
                    *v = 1.0 - d;
                }
            }
        });
        Plane::from_vec(w, h, data).expect("rows cover the map")
    };

    // -- step 2: spatial weighting -----------------------------------------
    let cx = (w as f32 - 1.0) * 0.5;
    let cy = (h as f32 - 1.0) * 0.5;
    let sigma = (w.min(h) as f32 * config.gaussian_sigma_frac).max(1.0);
    let inv_two_sigma_sq = 1.0 / (2.0 * sigma * sigma);
    let weighted = {
        let data = gss_platform::pool::build_rows(w, h, 0.0f32, |y, row| {
            let dy = y as f32 - cy;
            for (x, v) in row.iter_mut().enumerate() {
                // the bias augments the (already extracted) foreground:
                // background pixels stay at zero, per the stage order of
                // Fig. 8
                let f = foreground.get(x, y);
                if f <= 0.0 {
                    continue;
                }
                let dx = x as f32 - cx;
                let g = config.gaussian_weight * (-(dx * dx + dy * dy) * inv_two_sigma_sq).exp();
                *v = f + g;
            }
        });
        Plane::from_vec(w, h, data).expect("rows cover the map")
    };

    // -- step 3: depth-map layering ----------------------------------------
    // layering separates depth strata of the foreground; when the
    // foreground is a single stratum (all one depth) there is nothing to
    // layer, and splitting on the injected Gaussian alone would select a
    // meaningless iso-weight ring — skip to the weighted map directly
    let fg_span = {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in foreground.iter() {
            if v > 0.0 {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if hi >= lo {
            hi - lo
        } else {
            0.0
        }
    };
    let (lo, hi) = weighted.min_max();
    let span = hi - lo;
    let layer_count = config.layers.max(1);
    // the layers are independent, so they build (and sum, for step 4) on
    // one pool worker each; each layer's arithmetic stays a serial
    // computation, keeping the planes and sums bit-identical at any
    // worker count
    let layers: Vec<Plane<f32>> = if span <= f32::EPSILON || fg_span <= 1e-4 {
        vec![weighted.clone()]
    } else {
        gss_platform::pool::map_indexed(layer_count, |i| {
            let a = lo + span * i as f32 / layer_count as f32;
            let b = lo + span * (i + 1) as f32 / layer_count as f32;
            weighted.map(|v| {
                let inside = if i + 1 == layer_count {
                    v >= a && v <= b
                } else {
                    v >= a && v < b
                };
                if inside {
                    v
                } else {
                    0.0
                }
            })
        })
    };

    // -- step 4: layer selection --------------------------------------------
    let layer_sums = gss_platform::pool::map_indexed(layers.len(), |i| layers[i].sum());
    let selected_layer = layer_sums
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.total_cmp(b))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let processed = layers[selected_layer].clone();

    PreprocessStages {
        threshold,
        foreground,
        weighted,
        layers,
        selected_layer,
        processed,
    }
}

/// Finds the foreground/background depth threshold: the deepest valley of
/// the (smoothed) histogram with sufficient mass on both sides, falling
/// back to Otsu's method when no qualifying valley exists, and to "keep
/// everything" when even Otsu degenerates (near-uniform depth).
fn foreground_threshold(hist: &[usize], min_side_mass: f64) -> f32 {
    let bins = hist.len();
    let total: usize = hist.iter().sum();
    if total == 0 {
        return 1.0;
    }
    // moving-average smoothing (window 5)
    let smoothed: Vec<f64> = (0..bins)
        .map(|i| {
            let a = i.saturating_sub(2);
            let b = (i + 2).min(bins - 1);
            hist[a..=b].iter().sum::<usize>() as f64 / (b - a + 1) as f64
        })
        .collect();

    // collect every qualifying valley position at the minimum score, then
    // take the middle of that run so the threshold sits mid-gap
    let mut best_score = f64::INFINITY;
    let mut candidates: Vec<usize> = Vec::new();
    let mut left_mass = 0usize;
    #[allow(clippy::needless_range_loop)] // v indexes both hist and smoothed
    for v in 1..bins - 1 {
        left_mass += hist[v - 1];
        let right_mass = total - left_mass;
        let lm = left_mass as f64 / total as f64;
        let rm = right_mass as f64 / total as f64;
        if lm < min_side_mass || rm < min_side_mass {
            continue;
        }
        // valley: local minimum of the smoothed histogram
        if smoothed[v] <= smoothed[v - 1] && smoothed[v] <= smoothed[v + 1] {
            if smoothed[v] < best_score - 1e-9 {
                best_score = smoothed[v];
                candidates.clear();
            }
            if (smoothed[v] - best_score).abs() <= 1e-9 {
                candidates.push(v);
            }
        }
    }
    if !candidates.is_empty() {
        let v = candidates[candidates.len() / 2];
        return (v as f32 + 0.5) / bins as f32;
    }
    otsu_threshold(hist).unwrap_or(1.0)
}

/// Otsu's between-class-variance maximizing threshold; `None` when the
/// histogram is degenerate (all mass in one bin).
fn otsu_threshold(hist: &[usize]) -> Option<f32> {
    let bins = hist.len();
    let total: f64 = hist.iter().sum::<usize>() as f64;
    if total == 0.0 {
        return None;
    }
    let global_mean: f64 = hist
        .iter()
        .enumerate()
        .map(|(i, &c)| i as f64 * c as f64)
        .sum::<f64>()
        / total;
    let mut w0 = 0.0f64;
    let mut sum0 = 0.0f64;
    let mut best: Option<(usize, f64)> = None;
    for (t, &count) in hist.iter().enumerate().take(bins - 1) {
        w0 += count as f64;
        sum0 += t as f64 * count as f64;
        if w0 == 0.0 || w0 == total {
            continue;
        }
        let w1 = total - w0;
        let mu0 = sum0 / w0;
        let mu1 = (global_mean * total - sum0) / w1;
        let variance = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
        if best.map(|(_, v)| variance > v).unwrap_or(true) {
            best = Some((t, variance));
        }
    }
    best.filter(|&(_, v)| v > 1e-9)
        .map(|(t, _)| (t as f32 + 1.0) / bins as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_frame::DepthMap;

    fn bimodal(w: usize, h: usize) -> DepthMap {
        // left half near (0.1), right half far (0.8)
        DepthMap::from_fn(w, h, |x, _| if x < w / 2 { 0.1 } else { 0.8 })
    }

    #[test]
    fn threshold_splits_bimodal_depth() {
        let d = bimodal(64, 64);
        let stages = preprocess(&d, &PreprocessConfig::default());
        assert!(
            stages.threshold > 0.15 && stages.threshold < 0.8,
            "threshold {}",
            stages.threshold
        );
        // foreground keeps only the near half
        assert!(stages.foreground.get(5, 32) > 0.0);
        assert_eq!(stages.foreground.get(60, 32), 0.0);
    }

    #[test]
    fn layers_partition_nonzero_pixels() {
        let d = bimodal(64, 64);
        let stages = preprocess(&d, &PreprocessConfig::default());
        // each pixel may appear in at most one layer with its value
        for y in 0..64 {
            for x in 0..64 {
                let v = stages.weighted.get(x, y);
                let hits = stages.layers.iter().filter(|l| l.get(x, y) != 0.0).count();
                if v != 0.0 {
                    assert_eq!(hits, 1, "pixel ({x},{y}) value {v} in {hits} layers");
                } else {
                    assert_eq!(hits, 0);
                }
            }
        }
    }

    #[test]
    fn selected_layer_has_max_sum() {
        let d = bimodal(64, 64);
        let stages = preprocess(&d, &PreprocessConfig::default());
        let sums: Vec<f64> = stages.layers.iter().map(|l| l.sum()).collect();
        let max = sums.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(sums[stages.selected_layer], max);
    }

    #[test]
    fn gaussian_weighting_is_center_biased() {
        let d = DepthMap::from_fn(64, 64, |_, _| 0.3);
        let stages = preprocess(&d, &PreprocessConfig::default());
        let center = stages.weighted.get(32, 32);
        let corner = stages.weighted.get(0, 0);
        assert!(center > corner, "{center} vs {corner}");
    }

    #[test]
    fn zero_gaussian_weight_disables_bias() {
        let d = DepthMap::from_fn(64, 64, |_, _| 0.3);
        let cfg = PreprocessConfig {
            gaussian_weight: 0.0,
            ..PreprocessConfig::default()
        };
        let stages = preprocess(&d, &cfg);
        assert_eq!(stages.weighted.get(32, 32), stages.weighted.get(0, 0));
    }

    #[test]
    fn uniform_depth_does_not_panic_and_keeps_everything() {
        let d = DepthMap::from_fn(32, 32, |_, _| 0.5);
        let stages = preprocess(&d, &PreprocessConfig::default());
        assert!(stages.processed.sum() > 0.0);
    }

    #[test]
    fn processed_map_prefers_near_objects() {
        // near blob off-center vs far background: the processed map's mass
        // should concentrate on the blob
        let d = DepthMap::from_fn(96, 96, |x, y| {
            let dx = x as f32 - 60.0;
            let dy = y as f32 - 48.0;
            if (dx * dx + dy * dy).sqrt() < 14.0 {
                0.1
            } else {
                0.85
            }
        });
        let stages = preprocess(&d, &PreprocessConfig::default());
        let on_blob = stages.processed.get(60, 48);
        let off_blob = stages.processed.get(10, 10);
        assert!(on_blob > 0.0);
        assert!(on_blob > off_blob);
    }

    #[test]
    fn otsu_fallback_handles_smooth_histograms() {
        // linear ramp depth: no valley, Otsu must produce something sane
        let d = DepthMap::from_fn(64, 64, |x, _| x as f32 / 64.0);
        let stages = preprocess(&d, &PreprocessConfig::default());
        assert!(stages.threshold > 0.05 && stages.threshold <= 1.0);
    }

    #[test]
    fn empty_histogram_threshold_is_far() {
        assert_eq!(foreground_threshold(&[0, 0, 0, 0], 0.1), 1.0);
    }
}
