//! End-to-end streaming session simulation — the engine behind every
//! number in the paper's evaluation section.
//!
//! A session runs one game on one device over one link with one of the two
//! pipelines ([`Pipeline::GameStreamSr`] or [`Pipeline::Nemo`]) and records,
//! per frame: the upscaling critical path, the full MTP breakdown, bytes on
//! the wire, energy per stage, and (optionally) PSNR/perceptual quality
//! against the native render.
//!
//! # Canvas scaling
//!
//! The *data path* (render → codec → SR → metrics) may run on a reduced
//! canvas for tractability (e.g. 640×360 → 1280×720 instead of
//! 1280×720 → 2560×1440); quality trends are unaffected because both
//! pipelines see the same canvas. The *timing and energy models* always
//! evaluate at the paper's deployment scale (720p → 1440p): pixel counts
//! and byte volumes are rescaled to full scale before entering the platform
//! models, so latency/energy figures are canvas-independent.

use crate::client::GameStreamClient;
use crate::degrade::{
    DegradationController, LadderRung, LadderStep, NackManager, NackSignal, LADDER,
};
use crate::mtp::{self, MtpBreakdown, FULL_LR};
use crate::negotiate::negotiate;
use crate::nemo::NemoClient;
use crate::recovery::{RecoveryConfig, RecoveryEvent, RecoveryMachine, RecoverySummary};
use crate::roi::{plan_roi_window, RoiDetectorConfig};
use crate::server::{GameStreamServer, ServerConfig};
use crate::GssError;
use gss_codec::{EncoderConfig, FrameType};
use gss_frame::Frame;
use gss_metrics::{perceptual_distance, psnr, region_weighted_psnr};
use gss_net::{DropCause, FaultPlan, Link, LinkProfile};
use gss_platform::{
    DeviceProfile, EnergyBreakdown, EnergyMeter, Rail, ServerModel, Stage, REALTIME_BUDGET_MS,
};
use gss_render::GameId;
use gss_telemetry::{Counter, Gauge, InstantKind, Level, Recorder, SinkHandle, TelemetrySummary};
use serde::{Deserialize, Serialize};

/// Which client pipeline a session runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pipeline {
    /// This paper's RoI-assisted design.
    GameStreamSr,
    /// The NEMO baseline (SOTA).
    Nemo,
}

impl Pipeline {
    /// Report label.
    pub const fn label(self) -> &'static str {
        match self {
            Pipeline::GameStreamSr => "GameStreamSR",
            Pipeline::Nemo => "NEMO (SOTA)",
        }
    }
}

/// Full configuration of one simulated session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Game workload.
    pub game: GameId,
    /// Client device model.
    pub device: DeviceProfile,
    /// Downlink profile.
    pub link: LinkProfile,
    /// Link RNG seed (same seed ⇒ same channel for both pipelines).
    pub link_seed: u64,
    /// Frames to stream.
    pub frames: usize,
    /// GOP length (keyframe interval in frames).
    pub gop_size: usize,
    /// Low-resolution canvas the data path runs on (even dimensions).
    pub lr_size: (usize, usize),
    /// Upscale factor.
    pub scale: usize,
    /// Compute PSNR/perceptual metrics per frame (the expensive part).
    pub evaluate_quality: bool,
    /// Intra quality of the codec.
    pub encoder_quality: u8,
    /// Server timing model.
    pub server_model: ServerModel,
    /// RoI detector settings (GameStreamSR only).
    pub detector: RoiDetectorConfig,
    /// Optional temporal RoI stabilization (extension; `None` = raw
    /// per-frame detections, as in the paper).
    pub tracker: Option<crate::roi::TrackerConfig>,
    /// Optional closed-loop bitrate control (extension; `None` = fixed
    /// quantizers). The target is in *deployment-scale* bytes per frame
    /// (e.g. from [`gss_codec::RateControlConfig::for_bitrate_mbps`]); the
    /// session rescales it to the evaluation canvas internally.
    pub rate_control: Option<gss_codec::RateControlConfig>,
    /// Model packet loss end-to-end (extension): dropped frames are not
    /// decoded, the client freezes the last displayed frame, a NACK forces
    /// the server to code the next frame intra, and decoding resumes at
    /// that keyframe. `false` (default) assumes lossless delivery, like the
    /// paper's evaluation.
    pub loss_recovery: bool,
    /// Optional sink receiving the per-frame telemetry event stream
    /// ([`gss_telemetry::Event`]). Aggregates (stage percentiles, counters,
    /// deadline misses) are collected either way and land on
    /// [`SessionReport::telemetry`]; the sink only adds the raw events.
    pub telemetry: Option<SinkHandle>,
    /// Scripted fault timeline (extension): bandwidth collapses, outages
    /// and jitter spikes shape the link; NPU thermal-throttle ramps slow
    /// the SR pass; decoder stalls add decode latency. All deterministic —
    /// the same seed and plan replay the same session. The default empty
    /// plan reproduces the paper's fault-free channel.
    pub fault_plan: FaultPlan,
    /// Adaptive resilience controller (extension; shapes the GameStreamSR
    /// pipeline only): a rolling window of deadline misses and drops walks
    /// the degradation ladder ([`crate::degrade::LADDER`]) — shrinking the
    /// RoI window, swapping in cheaper SR tiers, cutting the rate target —
    /// and climbs back with hysteresis. Its NACK timing also paces
    /// keyframe re-requests under loss recovery. `None` disables
    /// adaptation (the paper's fixed configuration).
    pub degradation: Option<crate::degrade::DegradationConfig>,
    /// Worker-pool capacity, captured once at construction and bound to
    /// the stepping thread for the whole run. Threading the handle through
    /// the config (instead of reading the process-wide knob at every use
    /// site) keeps concurrent sessions in one process from clobbering each
    /// other via [`gss_platform::pool::set_workers`].
    pub pool: gss_platform::pool::PoolHandle,
}

impl SessionConfig {
    /// A quality-evaluating session on the reduced 640×360 canvas —
    /// the default experimental configuration.
    pub fn new(game: GameId, device: DeviceProfile) -> Self {
        SessionConfig {
            game,
            device,
            link: LinkProfile::wifi(),
            link_seed: 0x6a6e,
            frames: 60,
            gop_size: 60,
            lr_size: (640, 360),
            scale: 2,
            evaluate_quality: true,
            encoder_quality: 75,
            server_model: ServerModel::default(),
            detector: RoiDetectorConfig::default(),
            tracker: None,
            rate_control: None,
            loss_recovery: false,
            telemetry: None,
            fault_plan: FaultPlan::default(),
            degradation: None,
            pool: gss_platform::pool::PoolHandle::current(),
        }
    }

    /// Disables quality metrics (latency/energy experiments).
    pub fn without_quality(mut self) -> Self {
        self.evaluate_quality = false;
        self
    }

    /// Sets the frame count.
    pub fn with_frames(mut self, frames: usize) -> Self {
        self.frames = frames;
        self
    }

    /// Streams telemetry events into `sink` (aggregation is always on;
    /// this adds the raw per-frame event stream, e.g. for a JSONL trace).
    pub fn with_telemetry(mut self, sink: SinkHandle) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Attaches a tail-sampling trace collector
    /// ([`gss_telemetry::SamplingTraceSink`]) under `policy`, fanning out
    /// alongside any sink already configured, and returns a shared handle
    /// for exporting the retained trace after the run.
    pub fn with_sampled_trace(
        mut self,
        policy: gss_telemetry::SamplingPolicy,
    ) -> (Self, gss_telemetry::SamplingTraceSink) {
        let sampler = gss_telemetry::SamplingTraceSink::new(policy);
        let handle = SinkHandle::new(sampler.clone());
        self.telemetry = Some(match self.telemetry.take() {
            Some(existing) => SinkHandle::fanout(vec![existing, handle]),
            None => handle,
        });
        (self, sampler)
    }

    /// Injects a scripted fault timeline into the session.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Enables the adaptive degradation controller — and loss recovery,
    /// whose NACK pacing the controller's configuration governs.
    pub fn with_degradation(mut self, degradation: crate::degrade::DegradationConfig) -> Self {
        self.degradation = Some(degradation);
        self.loss_recovery = true;
        self
    }

    /// Factor rescaling coded byte counts measured on the canvas to
    /// deployment scale. Coded size grows *sublinearly* with resolution at
    /// fixed quality (detail density falls as resolution rises); the
    /// exponent 0.835 was fitted to this codec's measured bits-per-pixel
    /// across canvases from 128x72 to 1280x720 (see `examples/` history in
    /// DESIGN.md), making byte volumes canvas-independent to within ~5%.
    fn canvas_to_full(&self) -> f64 {
        let ratio = FULL_LR.pixels() as f64 / (self.lr_size.0 * self.lr_size.1) as f64;
        ratio.powf(0.835)
    }
}

/// Per-frame measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrameRecord {
    /// Frame index.
    pub index: usize,
    /// Reference (intra) or non-reference (inter).
    pub frame_type: FrameType,
    /// Upscaling-stage critical path, ms (deployment scale). For the
    /// GameStreamSR pipeline the NPU and GPU legs overlap, so this is
    /// `max(upscale_npu_ms, upscale_gpu_ms) + upscale_merge_ms`.
    pub upscale_ms: f64,
    /// NPU leg of the upscale stage (patch SR), ms. Runs concurrently
    /// with the GPU leg; zero on CPU-only paths and frozen frames.
    pub upscale_npu_ms: f64,
    /// GPU leg of the upscale stage (full-frame interpolation), ms.
    pub upscale_gpu_ms: f64,
    /// Patch-merge cost paid after the slower leg completes, ms.
    pub upscale_merge_ms: f64,
    /// Decode latency, ms (deployment scale).
    pub decode_ms: f64,
    /// Full MTP breakdown.
    pub mtp: MtpBreakdown,
    /// Transmitted bytes (deployment scale).
    pub bytes: usize,
    /// Whether the link dropped the frame (latency uses the queue-limit
    /// bound; with [`SessionConfig::loss_recovery`] the frame is also not
    /// decoded).
    pub dropped: bool,
    /// Why the link dropped the frame (`None` when delivered): queue
    /// overflow under congestion, or a scripted outage window.
    pub drop_cause: Option<DropCause>,
    /// Degradation-ladder rung in effect while this frame was processed
    /// (0 = full quality; always 0 without a controller).
    pub rung: usize,
    /// Whether the client displayed a stale (frozen) frame because of loss
    /// recovery.
    pub frozen: bool,
    /// Whether the upscaling stage fit the 16.66 ms real-time budget — the
    /// per-frame deadline a 60 FPS pipeline must hold (end-to-end MTP is
    /// longer but pipelined). Frozen frames consume no upscale time and
    /// trivially meet it.
    pub deadline_met: bool,
    /// Luma PSNR against the native render, dB (when evaluated).
    pub psnr_db: Option<f64>,
    /// Foveated PSNR: squared error inside the detected RoI weighted 4x
    /// (quality where the player looks; when evaluated).
    pub foveated_psnr_db: Option<f64>,
    /// Perceptual distance against the native render (when evaluated).
    pub perceptual: Option<f64>,
}

/// A completed session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionReport {
    /// Which pipeline ran.
    pub pipeline: Pipeline,
    /// Game workload.
    pub game: GameId,
    /// Device name.
    pub device: String,
    /// Per-frame records.
    pub frames: Vec<FrameRecord>,
    /// Session energy breakdown (deployment scale).
    pub energy: EnergyBreakdown,
    /// Aggregated telemetry: per-stage latency percentiles, counters,
    /// gauges and deadline-miss accounting for the whole session.
    pub telemetry: TelemetrySummary,
    /// Root-cause attribution of every deadline miss and frozen stall,
    /// replayed from the session's causal trace.
    pub attribution: gss_telemetry::SessionAttribution,
    /// Service-level-objective standings: breaches and worst burn rates
    /// for the standard objectives ([`gss_telemetry::SloEngine::standard`]).
    pub slo: gss_telemetry::SloSummary,
    /// Decoder-crash recovery history (`None` when the fault plan scripts
    /// no crash — the recovery machine is only armed when needed, so
    /// crash-free sessions replay byte-identically to earlier builds).
    pub recovery: Option<RecoverySummary>,
}

impl SessionReport {
    fn frames_of(&self, ty: FrameType) -> impl Iterator<Item = &FrameRecord> {
        self.frames.iter().filter(move |f| f.frame_type == ty)
    }

    /// Mean upscaling latency for a frame class, ms.
    pub fn mean_upscale_ms(&self, ty: FrameType) -> f64 {
        mean(self.frames_of(ty).map(|f| f.upscale_ms))
    }

    /// Mean upscaling latency over all frames (GOP average), ms.
    pub fn mean_upscale_ms_all(&self) -> f64 {
        mean(self.frames.iter().map(|f| f.upscale_ms))
    }

    /// Output frame rate implied by the upscaling stage for a frame class.
    pub fn upscale_fps(&self, ty: FrameType) -> f64 {
        1000.0 / self.mean_upscale_ms(ty)
    }

    /// Mean end-to-end MTP latency for a frame class, ms.
    pub fn mean_mtp_ms(&self, ty: FrameType) -> f64 {
        mean(self.frames_of(ty).map(|f| f.mtp.total_ms()))
    }

    /// Maximum MTP latency across all frames, ms.
    pub fn max_mtp_ms(&self) -> f64 {
        self.frames
            .iter()
            .map(|f| f.mtp.total_ms())
            .fold(0.0, f64::max)
    }

    /// Fraction of frames whose upscaling met the 16.66 ms budget.
    pub fn realtime_fraction(&self) -> f64 {
        let ok = self.frames.iter().filter(|f| f.deadline_met).count();
        ok as f64 / self.frames.len().max(1) as f64
    }

    /// Effective display rate: the 60 FPS source rate times the fraction
    /// of frames that met the real-time deadline — a frame that misses its
    /// slot is a repeat from the display's point of view.
    pub fn fps_effective(&self) -> f64 {
        60.0 * self.realtime_fraction()
    }

    /// Session mean PSNR (dB) when quality was evaluated.
    pub fn mean_psnr_db(&self) -> Option<f64> {
        let vals: Vec<f64> = self.frames.iter().filter_map(|f| f.psnr_db).collect();
        if vals.is_empty() {
            None
        } else {
            Some(mean(vals.into_iter()))
        }
    }

    /// Session mean foveated PSNR (dB) when quality was evaluated.
    pub fn mean_foveated_psnr_db(&self) -> Option<f64> {
        let vals: Vec<f64> = self
            .frames
            .iter()
            .filter_map(|f| f.foveated_psnr_db)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(mean(vals.into_iter()))
        }
    }

    /// Session mean perceptual distance when quality was evaluated.
    pub fn mean_perceptual(&self) -> Option<f64> {
        let vals: Vec<f64> = self.frames.iter().filter_map(|f| f.perceptual).collect();
        if vals.is_empty() {
            None
        } else {
            Some(mean(vals.into_iter()))
        }
    }

    /// Per-frame PSNR series (NaN where not evaluated).
    pub fn psnr_series(&self) -> Vec<f64> {
        self.frames
            .iter()
            .map(|f| f.psnr_db.unwrap_or(f64::NAN))
            .collect()
    }

    /// Total bytes on the wire.
    pub fn total_bytes(&self) -> usize {
        self.frames.iter().map(|f| f.bytes).sum()
    }

    /// Mean stream bitrate in Mbps at 60 FPS.
    pub fn mean_bitrate_mbps(&self) -> f64 {
        let bytes_per_frame = self.total_bytes() as f64 / self.frames.len().max(1) as f64;
        bytes_per_frame * 8.0 * 60.0 / 1e6
    }

    /// Longest run of consecutive frozen frames — the worst stall a viewer
    /// sat through, in frames (÷60 for seconds).
    pub fn longest_frozen_run(&self) -> usize {
        let mut best = 0;
        let mut run = 0;
        for f in &self.frames {
            if f.frozen {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
        }
        best
    }

    /// Deepest degradation-ladder rung the session visited (0 = never
    /// degraded).
    pub fn max_rung(&self) -> usize {
        self.frames.iter().map(|f| f.rung).max().unwrap_or(0)
    }

    /// Frames dropped by the link for a given cause.
    pub fn drops_with_cause(&self, cause: DropCause) -> usize {
        self.frames
            .iter()
            .filter(|f| f.drop_cause == Some(cause))
            .count()
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// Applies one ladder rung's parameters to the live pipeline — the RoI
/// window shipped to the server, the client's SR tier and the encoder's
/// rate target — and returns the resulting (RoI side, SR cost ratio) pair
/// at deployment scale. Shared by the degradation controller's regular
/// steps, the negotiated capability clamp and the crash-recovery floor,
/// so every path renegotiates the pipeline identically.
fn apply_rung_params(
    rung: &LadderRung,
    config: &SessionConfig,
    base_side: usize,
    server: &mut GameStreamServer,
    ours_client: &mut GameStreamClient,
) -> (usize, f64) {
    let active_side = rung.roi_side(&config.device, base_side);
    let active_cost = rung.tier.map_or(1.0, |t| t.cost_ratio());
    ours_client.set_model_tier(rung.tier);
    server.set_rate_target_scale(rung.rate_scale);
    // the server keeps detecting an RoI (coordinates still ship with
    // every packet), so its window floors at 8 px even on the bilinear
    // rung
    let canvas_side = ((active_side * config.lr_size.0) / FULL_LR.width())
        .max(8)
        .min(config.lr_size.0.min(config.lr_size.1));
    server.set_roi_window((canvas_side, canvas_side));
    (active_side, active_cost)
}

/// Folds the recovery machine's transitions into the live session: a
/// trace instant per event, crash/reconfigure counters, the ladder floor
/// while the decoder is down, the permanent ceiling on safe-profile
/// fallback, and a fresh NACK resync cycle the moment the machine starts
/// waiting for its keyframe.
#[allow(clippy::too_many_arguments)]
fn apply_recovery_events(
    events: &[RecoveryEvent],
    send_time: f64,
    config: &SessionConfig,
    base_side: usize,
    rec: &mut Recorder,
    controller: &mut Option<DegradationController>,
    server: &mut GameStreamServer,
    ours_client: &mut GameStreamClient,
    nack: &mut NackManager,
    active_side: &mut usize,
    active_cost: &mut f64,
) {
    for ev in events {
        rec.instant(InstantKind::Recovery, send_time, ev.detail());
        match ev {
            RecoveryEvent::CrashDetected { .. } => {
                rec.incr(Counter::DecoderCrashes);
                rec.log(Level::Warn, ev.detail());
                // graceful degradation: ride out the recovery on the
                // bilinear floor; the controller climbs back with its
                // usual hysteresis once frames flow again
                if let Some(ctl) = controller.as_mut() {
                    if ctl.force_rung(LADDER.len() - 1) {
                        let (side, cost) = apply_rung_params(
                            &ctl.rung_params(),
                            config,
                            base_side,
                            server,
                            ours_client,
                        );
                        *active_side = side;
                        *active_cost = cost;
                    }
                }
            }
            RecoveryEvent::Reconfiguring { .. } => {
                rec.incr(Counter::DecoderReconfigures);
            }
            RecoveryEvent::AwaitingKeyframe => {
                // restart the NACK cycle from scratch: the machine needs a
                // keyframe *now*, and any backoff accumulated while the
                // decoder was down would only delay the resync
                nack.on_keyframe_delivered();
                nack.on_loss();
            }
            RecoveryEvent::AttemptFailed { .. } => {
                rec.log(Level::Warn, ev.detail());
            }
            RecoveryEvent::SafeProfileFallback => {
                rec.log(Level::Error, ev.detail());
                if let Some(ctl) = controller.as_mut() {
                    if ctl.clamp_ceiling(LADDER.len() - 1) {
                        let (side, cost) = apply_rung_params(
                            &ctl.rung_params(),
                            config,
                            base_side,
                            server,
                            ours_client,
                        );
                        *active_side = side;
                        *active_cost = cost;
                    }
                }
            }
            RecoveryEvent::Recovered { .. } => {
                rec.log(Level::Info, ev.detail());
            }
        }
    }
}

/// Runs one session with one pipeline.
///
/// # Errors
///
/// Propagates codec failures (which would indicate a bug — the simulated
/// stream is delivered losslessly to the decoder).
pub fn run_session(config: &SessionConfig, pipeline: Pipeline) -> Result<SessionReport, GssError> {
    // Pin the pool capacity captured at construction to this stepping
    // thread: a concurrent session flipping the global worker knob must
    // not reconfigure this session's kernels mid-frame.
    let _pool = config.pool.bind();
    let plan = plan_roi_window(
        &config.device,
        config.scale,
        FULL_LR.width(),
        FULL_LR.height(),
    );
    let roi_window = plan.scaled_to_canvas(config.lr_size.0, FULL_LR.width());

    let mut server = GameStreamServer::new(ServerConfig {
        game: config.game,
        lr_size: config.lr_size,
        scale: config.scale,
        encoder: EncoderConfig {
            quality: config.encoder_quality,
            gop_size: config.gop_size,
            ..EncoderConfig::default()
        },
        detector: config.detector,
        roi_window,
        time_stride: (FULL_LR.width() / config.lr_size.0.max(1)).max(1),
        tracker: config.tracker,
        // the controller sees canvas-scale byte counts: rescale the
        // deployment-scale target accordingly
        rate_control: config.rate_control.map(|mut rc| {
            rc.target_bytes_per_frame =
                ((rc.target_bytes_per_frame as f64 / config.canvas_to_full()) as usize).max(1);
            rc
        }),
    });

    let mut ours_client = GameStreamClient::new(config.scale);
    let mut nemo_client = NemoClient::new(config.scale);
    let mut link = Link::with_faults(
        config.link.clone(),
        config.link_seed,
        config.fault_plan.clone(),
    );
    let mut meter = EnergyMeter::new(&config.device);
    let byte_scale = config.canvas_to_full();

    let mut rec = Recorder::new(
        format!(
            "{} | {} | {}",
            pipeline.label(),
            config.device.name,
            config.link.name
        ),
        REALTIME_BUDGET_MS,
    );
    // an internal trace sink always rides along (tee'd with any
    // user-supplied sink) so deadline-miss attribution can replay the
    // session's causal span tree after the run
    let trace = gss_telemetry::TraceSink::new();
    let trace_handle = SinkHandle::new(trace.clone());
    rec = rec.with_sink(match &config.telemetry {
        Some(sink) => SinkHandle::new(gss_telemetry::MultiSink::new(vec![
            sink.clone(),
            trace_handle,
        ])),
        None => trace_handle,
    });
    // the SLO engine watches the same per-frame health bits the report
    // exposes; breach transitions land in the trace as slo-breach markers
    let mut slo = gss_telemetry::SloEngine::standard(REALTIME_BUDGET_MS);

    let mut frames = Vec::with_capacity(config.frames);
    // resilience state: the ladder controller adapts the GameStreamSR
    // pipeline only; the NACK manager paces keyframe requests whenever
    // loss recovery is on
    let mut controller = match (pipeline, config.degradation) {
        (Pipeline::GameStreamSr, Some(cfg)) => Some(DegradationController::new(cfg)),
        _ => None,
    };
    let nack_cfg = config.degradation.unwrap_or_default();
    let mut nack = NackManager::new(
        nack_cfg.nack_timeout_frames,
        nack_cfg.nack_backoff_max_frames,
    );
    let mut active_side = plan.chosen_side;
    let mut active_cost = 1.0_f64;

    // ---- capability negotiation (step 0) ---------------------------------
    // the server's offer meets the client's capability set before the
    // first frame. For the calibrated reference devices the result is the
    // identity (their capabilities cover the whole offer), which keeps
    // every pre-existing session byte-identical.
    let negotiated = negotiate(&server.offer(), &config.device.capabilities);
    if negotiated.clamped {
        rec.log(Level::Info, negotiated.describe());
    }
    if pipeline == Pipeline::GameStreamSr && negotiated.top_rung > 0 {
        match &mut controller {
            // the controller may never climb above the negotiated rung
            Some(ctl) => {
                if ctl.clamp_ceiling(negotiated.top_rung) {
                    let (side, cost) = apply_rung_params(
                        &ctl.rung_params(),
                        config,
                        plan.chosen_side,
                        &mut server,
                        &mut ours_client,
                    );
                    active_side = side;
                    active_cost = cost;
                }
            }
            // no controller: pin the pipeline statically to the best rung
            // the client's NPU supports
            None => {
                let (side, cost) = apply_rung_params(
                    &LADDER[negotiated.top_rung],
                    config,
                    plan.chosen_side,
                    &mut server,
                    &mut ours_client,
                );
                active_side = side;
                active_cost = cost;
            }
        }
    }
    // decoder crash recovery: the machine is armed only when the plan
    // scripts a crash, and arming it implies loss recovery — a recovering
    // decoder freezes the display and resyncs on a NACKed keyframe
    let mut recovery = config
        .fault_plan
        .has_decoder_crashes()
        .then(|| RecoveryMachine::new(RecoveryConfig::default()));
    let loss_recovery = config.loss_recovery || recovery.is_some();

    let mut active_faults: Vec<&'static str> = Vec::new();
    let mut last_displayed: Option<Frame> = None;
    for i in 0..config.frames {
        rec.begin_frame(i as u64);
        let send_time = i as f64 * 1000.0 / 60.0;

        // structured fault telemetry: one log event per active-set change
        let faults_now = config.fault_plan.active_labels(send_time);
        if faults_now != active_faults {
            let msg = if faults_now.is_empty() {
                "faults cleared".to_owned()
            } else {
                format!("faults active: {}", faults_now.join("+"))
            };
            rec.log(Level::Warn, msg.clone());
            rec.instant(InstantKind::Fault, send_time, msg);
            active_faults = faults_now;
        }
        let slowdown = config.fault_plan.npu_slowdown(send_time);
        if slowdown > 1.0 {
            rec.gauge(Gauge::NpuSlowdown, slowdown);
        }
        // ---- decoder crash recovery (frame open) --------------------------
        // sample the crash signal at send time and walk the state machine;
        // its transitions renegotiate the pipeline before this frame's
        // packet is cut
        if let Some(rm) = &mut recovery {
            let events = rm.begin_frame(config.fault_plan.decoder_crashed(send_time));
            apply_recovery_events(
                &events,
                send_time,
                config,
                plan.chosen_side,
                &mut rec,
                &mut controller,
                &mut server,
                &mut ours_client,
                &mut nack,
                &mut active_side,
                &mut active_cost,
            );
            rec.gauge(Gauge::RecoveryState, rm.state().gauge_value());
        }
        let rung_now = controller.as_ref().map_or(0, |c| c.rung());
        if controller.is_some() {
            rec.gauge(Gauge::LadderRung, rung_now as f64);
        }

        if loss_recovery {
            if let Some(signal) = nack.begin_frame() {
                server.request_keyframe();
                rec.incr(Counter::Nacks);
                rec.instant(
                    InstantKind::Nack,
                    send_time,
                    if signal == NackSignal::Retry {
                        "keyframe re-request (retry)"
                    } else {
                        "keyframe request"
                    },
                );
                if signal == NackSignal::Retry {
                    rec.incr(Counter::NackRetries);
                }
            }
        }
        let packet = server.next_frame_traced(&mut rec)?;
        let bytes_full = (packet.encoded.size_bytes() as f64 * byte_scale) as usize;

        // ---- network ------------------------------------------------------
        let input_uplink_ms = link.control_latency_ms();
        let transfer = link.send_traced(bytes_full, send_time, &mut rec);
        let (mut dropped, downlink_ms) = if transfer.delivered() {
            (false, transfer.transit_ms)
        } else {
            // bound: the frame would have waited out the full queue
            (true, config.link.queue_limit_ms + config.link.rtt_ms / 2.0)
        };
        let mut drop_cause = transfer.drop_cause;
        // a delivered frame is still unusable while the decoder is down:
        // the client discards it. The drop is charged to the decoder, not
        // the link — a distinct cause in the counters and the stall ledger
        if let Some(rm) = &recovery {
            if !dropped && !rm.can_decode(packet.frame_type == FrameType::Intra) {
                dropped = true;
                drop_cause = Some(DropCause::DecoderDown);
                rec.incr(Counter::FramesDropped);
                rec.incr(Counter::DropsDecoderDown);
                rec.instant(
                    InstantKind::Drop,
                    send_time,
                    format!("frame dropped: {}", DropCause::DecoderDown.label()),
                );
            }
        }
        // a frame is unusable when it was dropped, or when it depends on a
        // reference the client never received (judged before this frame's
        // loss is folded into the NACK state)
        let frozen = loss_recovery
            && (dropped || (nack.awaiting() && packet.frame_type == FrameType::Inter));
        if frozen {
            rec.incr(Counter::FramesFrozen);
        }
        if loss_recovery {
            if dropped {
                nack.on_loss();
            } else if packet.frame_type == FrameType::Intra {
                nack.on_keyframe_delivered();
            }
        }
        // ---- decoder crash recovery (frame close) -------------------------
        // a keyframe that was delivered *and* decoded completes the resync;
        // an expired keyframe window fails the attempt and re-reconfigures
        if let Some(rm) = &mut recovery {
            if frozen && rm.in_recovery() {
                rm.note_frozen();
            }
            let keyframe_decoded = !dropped && !frozen && packet.frame_type == FrameType::Intra;
            let events = rm.end_frame(keyframe_decoded);
            apply_recovery_events(
                &events,
                send_time,
                config,
                plan.chosen_side,
                &mut rec,
                &mut controller,
                &mut server,
                &mut ours_client,
                &mut nack,
                &mut active_side,
                &mut active_cost,
            );
        }
        meter.add_network_bytes(bytes_full);

        // ---- decode + upscale (modeled at deployment scale) ----------------
        let stall_ms = config.fault_plan.decoder_stall_ms(send_time);
        let (decode_ms, upscale) = if frozen {
            // nothing to decode or upscale: the display repeats the last frame
            (0.0, mtp::UpscaleTiming::default())
        } else {
            match pipeline {
                Pipeline::GameStreamSr => {
                    let decode = config.device.hw_decode_ms(negotiated.decode_pixels) + stall_ms;
                    meter.add_busy(Stage::Decode, Rail::HwDecoder, decode);
                    let t = mtp::ours_upscale_degraded(
                        &config.device,
                        active_side,
                        active_cost,
                        slowdown,
                    );
                    meter.add_busy(Stage::Upscale, Rail::Npu, t.npu_ms);
                    meter.add_busy(Stage::Upscale, Rail::Gpu, t.gpu_ms + t.merge_ms);
                    (decode, t)
                }
                Pipeline::Nemo => {
                    let decode = config.device.sw_decode_ms(negotiated.decode_pixels) + stall_ms;
                    meter.add_busy(Stage::Decode, Rail::CpuHeavy, decode);
                    let t = match packet.frame_type {
                        FrameType::Intra => {
                            let t = mtp::sota_ref_upscale_throttled(&config.device, slowdown);
                            meter.add_busy(Stage::Upscale, Rail::Npu, t.npu_ms);
                            t
                        }
                        FrameType::Inter => {
                            let t = mtp::sota_nonref_upscale(&config.device);
                            meter.add_busy(Stage::Upscale, Rail::CpuLight, t.cpu_ms);
                            t
                        }
                    };
                    (decode, t)
                }
            }
        };
        meter.add_display_frame();

        // ---- MTP assembly ---------------------------------------------------
        let with_roi = pipeline == Pipeline::GameStreamSr;
        let sm = &config.server_model;
        let mtp_breakdown = MtpBreakdown {
            input_uplink_ms,
            engine_ms: sm.engine_tick_ms,
            render_ms: sm.render_ms(FULL_LR),
            roi_extra_ms: if with_roi {
                (sm.roi_detect_ms(FULL_LR) - sm.encode_ms(FULL_LR)).max(0.0)
            } else {
                0.0
            },
            encode_ms: sm.encode_ms(FULL_LR),
            downlink_ms,
            decode_ms,
            upscale_ms: upscale.critical_ms,
            display_ms: config.device.display_present_ms,
        };

        // ---- telemetry spans on the session clock ---------------------------
        // Anchor the frame's MTP timeline so its downlink segment coincides
        // with the link span recorded at `send_time`: the controller input
        // behind frame i left the client `server_side_ms` before the packet
        // hit the wire.
        let server_side_ms = input_uplink_ms
            + mtp_breakdown.engine_ms
            + mtp_breakdown.render_ms
            + mtp_breakdown.roi_extra_ms
            + mtp_breakdown.encode_ms;
        let upscale_start = mtp_breakdown.record_spans(&mut rec, send_time - server_side_ms);
        if with_roi {
            // depth capture then RoI search, pipelined against the encode
            // (the breakdown only carries their excess beyond the encode)
            let render_end = send_time - mtp_breakdown.roi_extra_ms - mtp_breakdown.encode_ms;
            let depth_ms = sm.depth_capture_ms(FULL_LR);
            rec.record_span(gss_telemetry::Stage::DepthCapture, render_end, depth_ms);
            rec.record_span(
                gss_telemetry::Stage::RoiDetect,
                render_end + depth_ms,
                sm.roi_search_ms(FULL_LR),
            );
        }
        upscale.record_spans(&mut rec, upscale_start);

        // ---- data path + quality --------------------------------------------
        let (psnr_db, foveated_psnr_db, perceptual) = if config.evaluate_quality {
            let displayed: Option<Frame> = if frozen {
                last_displayed.clone()
            } else {
                let out: Frame = match pipeline {
                    Pipeline::GameStreamSr => {
                        ours_client
                            .process_traced(&packet.encoded, packet.roi, &mut rec)?
                            .frame
                    }
                    Pipeline::Nemo => nemo_client.process_traced(&packet.encoded, &mut rec)?.frame,
                };
                Some(out)
            };
            last_displayed = displayed.clone();
            match displayed {
                Some(out) => {
                    let (hw, hh) = packet.ground_truth_hr.size();
                    // the shipped RoI is even-aligned at lr scale; keep the
                    // HR evaluation window on even luma coordinates too so
                    // the weighted-PSNR region matches what a 4:2:0 merge
                    // actually touched
                    let roi_hr = packet
                        .roi
                        .scaled(config.scale)
                        .aligned_even()
                        .clamp_to(hw, hh);
                    (
                        Some(psnr(&packet.ground_truth_hr, &out)?),
                        Some(region_weighted_psnr(
                            &packet.ground_truth_hr,
                            &out,
                            roi_hr,
                            4.0,
                        )?),
                        Some(perceptual_distance(&packet.ground_truth_hr, &out)?),
                    )
                }
                // nothing was ever displayed (loss before the first frame)
                None => (None, None, None),
            }
        } else {
            (None, None, None)
        };

        // the recorder judges the same per-frame critical path the report
        // exposes, so its miss count is consistent with the FrameRecords by
        // construction (end_frame closes the frame for the trace sink, so
        // the miss marker must be emitted first, with the same predicate)
        let met_now = gss_telemetry::deadline_met(upscale.critical_ms, rec.budget_ms());
        if !met_now {
            rec.instant(
                InstantKind::DeadlineMiss,
                upscale_start + upscale.critical_ms,
                format!(
                    "critical path {:.2} ms > budget {:.2} ms",
                    upscale.critical_ms,
                    rec.budget_ms()
                ),
            );
        }
        // SLO burn rates see the same health bits; breach transitions must
        // also land before end_frame so they attach to this frame's trace
        for ev in slo.observe(&gss_telemetry::FrameHealth {
            critical_ms: upscale.critical_ms,
            deadline_met: met_now,
            frozen,
        }) {
            rec.instant(
                InstantKind::SloBreach,
                send_time - server_side_ms + mtp_breakdown.total_ms(),
                ev.detail,
            );
        }
        let deadline_met = rec
            .end_frame(
                mtp_breakdown.total_ms(),
                upscale.critical_ms,
                bytes_full as u64,
            )
            .expect("session records one-shot spans only; none can be left open");

        frames.push(FrameRecord {
            index: i,
            frame_type: packet.frame_type,
            upscale_ms: upscale.critical_ms,
            upscale_npu_ms: upscale.npu_ms,
            upscale_gpu_ms: upscale.gpu_ms,
            upscale_merge_ms: upscale.merge_ms,
            decode_ms,
            mtp: mtp_breakdown,
            bytes: bytes_full,
            dropped,
            drop_cause,
            rung: rung_now,
            frozen,
            deadline_met,
            psnr_db,
            foveated_psnr_db,
            perceptual,
        });

        // ---- adaptation ----------------------------------------------------
        // the controller sees this frame's health and renegotiates the
        // pipeline (RoI window, SR tier, rate target) for the next frame
        if let Some(ctl) = &mut controller {
            if let Some(step) = ctl.observe(dropped || !deadline_met) {
                let rung = ctl.rung_params();
                rec.incr(match step {
                    LadderStep::Downgrade => Counter::LadderDowngrades,
                    LadderStep::Upgrade => Counter::LadderUpgrades,
                });
                let (side, cost) = apply_rung_params(
                    &rung,
                    config,
                    plan.chosen_side,
                    &mut server,
                    &mut ours_client,
                );
                active_side = side;
                active_cost = cost;
                let shift_msg = format!(
                    "ladder {}: rung {} -> {} ({}, roi {} px, rate x{:.2})",
                    match step {
                        LadderStep::Downgrade => "down",
                        LadderStep::Upgrade => "up",
                    },
                    rung_now,
                    ctl.rung(),
                    rung.tier_label(),
                    active_side,
                    rung.rate_scale
                );
                rec.log(
                    match step {
                        LadderStep::Downgrade => Level::Warn,
                        LadderStep::Upgrade => Level::Info,
                    },
                    shift_msg.clone(),
                );
                // the controller decides after the frame completes; the
                // trace sink attaches this post-frame instant to the frame
                // that was just closed
                rec.instant(
                    InstantKind::LadderShift,
                    send_time - server_side_ms + mtp_breakdown.total_ms(),
                    shift_msg,
                );
            }
        }
    }

    let telemetry = rec.finish();
    // finish() closed the session for the sinks; replay the completed
    // causal trace and attribute every miss and stall
    let attribution = trace
        .sessions()
        .last()
        .map(|s| gss_telemetry::Attributor::new(REALTIME_BUDGET_MS).attribute(s))
        .unwrap_or_default();
    Ok(SessionReport {
        pipeline,
        game: config.game,
        device: config.device.name.to_owned(),
        frames,
        energy: meter.breakdown(),
        telemetry,
        attribution,
        slo: slo.summary(),
        recovery: recovery.map(RecoveryMachine::into_summary),
    })
}

/// Paired run of both pipelines on identical streams/channels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// GameStreamSR session.
    pub ours: SessionReport,
    /// NEMO session.
    pub sota: SessionReport,
}

/// Runs both pipelines with the same configuration (same game frames, same
/// codec stream, same channel trace) and pairs the reports.
///
/// # Errors
///
/// Propagates session errors.
pub fn run_comparison(config: &SessionConfig) -> Result<ComparisonReport, GssError> {
    Ok(ComparisonReport {
        ours: run_session(config, Pipeline::GameStreamSr)?,
        sota: run_session(config, Pipeline::Nemo)?,
    })
}

impl ComparisonReport {
    /// Reference-frame upscaling speedup (paper Fig. 10a: ≈13–14×).
    pub fn ref_upscale_speedup(&self) -> f64 {
        self.sota.mean_upscale_ms(FrameType::Intra) / self.ours.mean_upscale_ms(FrameType::Intra)
    }

    /// Non-reference-frame upscaling speedup (paper: ≥1.5×).
    pub fn nonref_upscale_speedup(&self) -> f64 {
        self.sota.mean_upscale_ms(FrameType::Inter) / self.ours.mean_upscale_ms(FrameType::Inter)
    }

    /// Whole-GOP upscaling speedup (paper: ≈2×).
    pub fn gop_upscale_speedup(&self) -> f64 {
        self.sota.mean_upscale_ms_all() / self.ours.mean_upscale_ms_all()
    }

    /// Reference-frame MTP improvement (paper Fig. 10b: ≈3.8–4×).
    pub fn ref_mtp_improvement(&self) -> f64 {
        self.sota.mean_mtp_ms(FrameType::Intra) / self.ours.mean_mtp_ms(FrameType::Intra)
    }

    /// Overall energy savings versus SOTA (paper Fig. 11: 26–33%).
    pub fn energy_savings(&self) -> f64 {
        1.0 - self.ours.energy.total_mj / self.sota.energy.total_mj
    }

    /// Mean PSNR gain over SOTA in dB (paper Fig. 14a: ≈2 dB).
    pub fn psnr_gain_db(&self) -> Option<f64> {
        Some(self.ours.mean_psnr_db()? - self.sota.mean_psnr_db()?)
    }

    /// Perceptual-distance improvement (SOTA − ours; positive is better,
    /// paper Fig. 14b: ≈0.2).
    pub fn perceptual_improvement(&self) -> Option<f64> {
        Some(self.sota.mean_perceptual()? - self.ours.mean_perceptual()?)
    }

    /// Foveated-PSNR gain over SOTA in dB (quality where the player looks,
    /// RoI weighted 4x; extension metric).
    pub fn foveated_psnr_gain_db(&self) -> Option<f64> {
        Some(self.ours.mean_foveated_psnr_db()? - self.sota.mean_foveated_psnr_db()?)
    }

    /// Both pipelines' telemetry summaries, ours first.
    pub fn telemetry(&self) -> (&TelemetrySummary, &TelemetrySummary) {
        (&self.ours.telemetry, &self.sota.telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SessionConfig {
        SessionConfig {
            frames: 6,
            gop_size: 3,
            lr_size: (128, 72),
            ..SessionConfig::new(GameId::G3, DeviceProfile::s8_tab())
        }
    }

    #[test]
    fn session_produces_one_record_per_frame() {
        let r = run_session(&tiny_config(), Pipeline::GameStreamSr).unwrap();
        assert_eq!(r.frames.len(), 6);
        assert_eq!(
            r.frames
                .iter()
                .filter(|f| f.frame_type == FrameType::Intra)
                .count(),
            2
        );
    }

    #[test]
    fn frame_records_carry_the_npu_gpu_overlap_breakdown() {
        let cfg = tiny_config().without_quality();
        let r = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
        for f in &r.frames {
            if f.frozen {
                assert_eq!(f.upscale_ms, 0.0);
                continue;
            }
            // NPU and GPU legs overlap: the critical path is the slower
            // leg plus the merge, never the sum of the legs
            assert_eq!(
                f.upscale_ms,
                f.upscale_npu_ms.max(f.upscale_gpu_ms) + f.upscale_merge_ms,
                "frame {}",
                f.index
            );
            assert!(f.upscale_npu_ms > 0.0 && f.upscale_gpu_ms > 0.0);
            assert!(f.upscale_ms < f.upscale_npu_ms + f.upscale_gpu_ms + f.upscale_merge_ms);
        }
    }

    #[test]
    fn ours_meets_realtime_sota_does_not() {
        let cfg = tiny_config().without_quality();
        let ours = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
        let sota = run_session(&cfg, Pipeline::Nemo).unwrap();
        assert_eq!(ours.realtime_fraction(), 1.0);
        assert_eq!(sota.realtime_fraction(), 0.0);
    }

    #[test]
    fn comparison_headline_shapes_hold() {
        // a full 60-frame GOP so the reference/non-reference energy mix
        // matches the deployment (paper Fig. 11 band: 26-33%)
        let cfg = SessionConfig {
            gop_size: 60,
            lr_size: (128, 72),
            ..SessionConfig::new(GameId::G3, DeviceProfile::s8_tab())
        }
        .without_quality()
        .with_frames(60);
        let cmp = run_comparison(&cfg).unwrap();
        let ref_speedup = cmp.ref_upscale_speedup();
        assert!((12.0..15.0).contains(&ref_speedup), "{ref_speedup:.2}");
        assert!(cmp.nonref_upscale_speedup() > 1.5);
        let gop = cmp.gop_upscale_speedup();
        assert!((1.5..2.5).contains(&gop), "gop {gop:.2}");
        let savings = cmp.energy_savings();
        assert!((0.20..0.40).contains(&savings), "savings {savings:.3}");
    }

    #[test]
    fn quality_metrics_present_when_enabled() {
        let r = run_session(&tiny_config(), Pipeline::GameStreamSr).unwrap();
        assert!(r.mean_psnr_db().is_some());
        assert!(r.mean_perceptual().is_some());
        let r2 = run_session(&tiny_config().without_quality(), Pipeline::GameStreamSr).unwrap();
        assert!(r2.mean_psnr_db().is_none());
    }

    #[test]
    fn mtp_under_budget_for_ours() {
        let cfg = tiny_config().without_quality();
        let ours = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
        assert!(ours.max_mtp_ms() < 100.0, "{:.1}", ours.max_mtp_ms());
    }

    #[test]
    fn loss_recovery_freezes_then_recovers() {
        // strangle the link mid-session so frames drop; with recovery on,
        // unusable frames freeze and a forced keyframe resumes decoding
        let mut cfg = SessionConfig {
            frames: 16,
            gop_size: 16,
            lr_size: (128, 72),
            loss_recovery: true,
            ..SessionConfig::new(GameId::G3, DeviceProfile::s8_tab())
        };
        cfg.link.bandwidth_mbps = 14.0; // tight: some frames will drop
        cfg.link.bandwidth_cv = 0.6;
        let r = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
        let dropped: Vec<usize> = r
            .frames
            .iter()
            .filter(|f| f.dropped)
            .map(|f| f.index)
            .collect();
        assert!(!dropped.is_empty(), "link never dropped — tighten the test");
        // every dropped frame is frozen
        for f in &r.frames {
            if f.dropped {
                assert!(f.frozen, "frame {} dropped but not frozen", f.index);
            }
        }
        // a keyframe follows each drop within a few frames (NACK recovery)
        let first_drop = dropped[0];
        let recovered = r.frames[first_drop + 1..]
            .iter()
            .find(|f| !f.frozen)
            .expect("stream never recovered");
        assert!(
            recovered.frame_type == FrameType::Intra || !r.frames[first_drop + 1].frozen,
            "recovery frame {} should be a keyframe",
            recovered.index
        );
        // frozen frames consume no decode/upscale time
        let frozen = r.frames.iter().find(|f| f.frozen).unwrap();
        assert_eq!(frozen.decode_ms, 0.0);
        assert_eq!(frozen.upscale_ms, 0.0);
    }

    #[test]
    fn telemetry_summary_is_consistent_with_frame_records() {
        use gss_telemetry::{Gauge, Stage};
        let cfg = tiny_config().without_quality();
        let r = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
        let t = &r.telemetry;
        assert_eq!(t.frames as usize, r.frames.len());
        assert_eq!(
            t.deadline_misses as usize,
            r.frames.iter().filter(|f| !f.deadline_met).count()
        );
        assert_eq!(t.counter(Counter::BytesOnWire) as usize, r.total_bytes());
        assert_eq!(t.counter(Counter::FramesEncoded) as usize, r.frames.len());
        // every stage of the ours pipeline shows up with full percentiles
        for stage in [
            Stage::Render,
            Stage::DepthCapture,
            Stage::RoiDetect,
            Stage::Encode,
            Stage::LinkTransfer,
            Stage::Decode,
            Stage::NpuSr,
            Stage::GpuInterp,
            Stage::Merge,
            Stage::Display,
        ] {
            let s = t
                .stage(stage)
                .unwrap_or_else(|| panic!("{} missing", stage.label()));
            assert!(s.dist.p50 > 0.0 && s.dist.p50 <= s.dist.p95 && s.dist.p95 <= s.dist.p99);
        }
        // whole-frame MTP distribution covers every frame and matches the
        // per-record extremes to bucket resolution
        let mtp = t.mtp_ms.expect("mtp histogram");
        assert_eq!(mtp.count as usize, r.frames.len());
        assert!((mtp.max - r.max_mtp_ms()).abs() < 1e-9);
        // the RoI pipeline gauges the detected area every frame
        assert!(t.gauge(Gauge::RoiAreaPx).is_some());
    }

    #[test]
    fn fps_effective_follows_the_deadline_ledger() {
        let cfg = tiny_config().without_quality();
        let ours = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
        let sota = run_session(&cfg, Pipeline::Nemo).unwrap();
        assert_eq!(ours.fps_effective(), 60.0);
        assert_eq!(sota.fps_effective(), 0.0);
        assert_eq!(ours.telemetry.deadline_misses, 0);
        assert_eq!(sota.telemetry.deadline_misses, sota.telemetry.frames);
    }

    #[test]
    fn memory_sink_sees_the_event_stream() {
        use gss_telemetry::{Event, MemorySink, SinkHandle};
        let mem = MemorySink::new();
        let cfg = tiny_config()
            .without_quality()
            .with_telemetry(SinkHandle::new(mem.clone()));
        run_session(&cfg, Pipeline::GameStreamSr).unwrap();
        let events = mem.events();
        assert!(matches!(events[0], Event::SessionStart { .. }));
        assert!(matches!(
            events.last(),
            Some(Event::SessionEnd { frames: 6, .. })
        ));
        let frame_ends = events
            .iter()
            .filter(|e| matches!(e, Event::FrameEnd { .. }))
            .count();
        assert_eq!(frame_ends, 6);
    }

    #[test]
    fn lossless_default_never_freezes() {
        let cfg = tiny_config().without_quality();
        let r = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
        assert!(r.frames.iter().all(|f| !f.frozen));
    }

    #[test]
    fn decoder_crash_freezes_then_recovers_with_a_summary() {
        use gss_net::{FaultEvent, FaultKind};
        // one crash at 150 ms in an otherwise clean 60-frame session; the
        // machine must be armed implicitly (no loss_recovery flag set)
        let plan = FaultPlan::new(vec![FaultEvent {
            start_ms: 150.0,
            end_ms: 250.0,
            kind: FaultKind::DecoderCrash,
        }]);
        let cfg = SessionConfig {
            frames: 60,
            lr_size: (128, 72),
            ..SessionConfig::new(GameId::G3, DeviceProfile::s8_tab())
        }
        .without_quality()
        .with_faults(plan);
        let r = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
        let rec = r.recovery.as_ref().expect("machine was armed");
        assert_eq!(rec.crashes, 1);
        assert_eq!(rec.recovery_frames.len(), 1, "the episode must complete");
        assert!(!rec.safe_profile_fallback);
        assert!(rec.frozen_frames > 0, "recovery frames freeze the display");
        // the client discarded delivered frames while the decoder was down
        assert!(r.drops_with_cause(DropCause::DecoderDown) > 0);
        assert!(r.telemetry.counter(Counter::DecoderCrashes) == 1);
        assert!(r.telemetry.counter(Counter::DropsDecoderDown) > 0);
        // no permanent freeze: the tail of the session streams normally
        assert!(r.frames[50..].iter().all(|f| !f.frozen));
        // frozen repeats trivially meet the deadline, so the episode must
        // not stall the session beyond its budgets (drain 2 + reconfigure
        // 3 + resync ≤ await 8)
        assert!(r.longest_frozen_run() <= 13, "{}", r.longest_frozen_run());
    }

    #[test]
    fn crash_storm_backs_off_into_the_safe_profile_fallback() {
        // the canonical storm at 0.2x: five crashes, the last four inside
        // one stability window — strikes 2..4 grow the backoff and the
        // 4th crosses max_strikes into the permanent ladder floor
        let scale = 0.2;
        let frames = (FaultPlan::crash_storm_duration_ms(scale) * 60.0 / 1000.0).ceil() as usize;
        let cfg = SessionConfig {
            frames,
            gop_size: 60,
            lr_size: (128, 72),
            rate_control: Some(gss_codec::RateControlConfig::for_bitrate_mbps(12.0)),
            ..SessionConfig::new(GameId::G3, DeviceProfile::s8_tab())
        }
        .without_quality()
        .with_faults(FaultPlan::crash_storm_scaled(scale))
        .with_degradation(crate::degrade::DegradationConfig::default());
        let r = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
        let rec = r.recovery.as_ref().expect("machine was armed");
        assert_eq!(rec.crashes, 5, "every scripted crash must be sampled");
        assert!(rec.safe_profile_fallback, "repeat offences must trip it");
        assert!(rec.reconfigures >= 5);
        // every burst eventually recovered (at this compressed clock the
        // rapid-fire crashes merge into one long episode, but it ends):
        // a crash never became a permanent freeze
        assert!(rec.recovery_frames.len() >= 2, "{:?}", rec.recovery_frames);
        assert!(!r.frames.last().unwrap().frozen);
        // the fallback pins the ladder to its floor for the rest of the run
        assert_eq!(r.frames.last().unwrap().rung, LADDER.len() - 1);
        // deterministic replay: the same plan reproduces the same session
        let r2 = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
        assert_eq!(format!("{:?}", r.frames), format!("{:?}", r2.frames));
        assert_eq!(r.recovery, r2.recovery);
    }

    #[test]
    fn capability_negotiation_clamps_the_weak_tier() {
        // same weak NPU, once with its honest capability set and once
        // claiming flagship capabilities: the honest run negotiates the
        // EDSR-16 rung and its upscale path must be strictly cheaper
        let run = |device: DeviceProfile| {
            let cfg = SessionConfig {
                frames: 12,
                lr_size: (128, 72),
                ..SessionConfig::new(GameId::G3, device)
            }
            .without_quality();
            run_session(&cfg, Pipeline::GameStreamSr).unwrap()
        };
        let honest = run(DeviceProfile::tier_low());
        let lying = run(DeviceProfile {
            capabilities: gss_platform::DeviceCapabilities::flagship(),
            ..DeviceProfile::tier_low()
        });
        assert!(
            honest.mean_upscale_ms_all() < lying.mean_upscale_ms_all(),
            "negotiated clamp must shed NPU load: {:.2} vs {:.2}",
            honest.mean_upscale_ms_all(),
            lying.mean_upscale_ms_all()
        );
        // flagship reference devices negotiate the identity — nothing in
        // their session may change (guards byte-compat of old baselines)
        let s8 = run(DeviceProfile::s8_tab());
        assert_eq!(s8.recovery, None);
        assert_eq!(s8.max_rung(), 0);
    }

    #[test]
    fn bitrate_is_plausible_for_720p() {
        // deployment GOP mix (one keyframe per 12 frames here; a 3-frame
        // GOP would treble the intra share and inflate the bitrate)
        let cfg = SessionConfig {
            gop_size: 12,
            lr_size: (128, 72),
            ..SessionConfig::new(GameId::G3, DeviceProfile::s8_tab())
        }
        .without_quality()
        .with_frames(12);
        let r = run_session(&cfg, Pipeline::GameStreamSr).unwrap();
        // same order of magnitude as real 720p60 game streams; this codec
        // lacks intra prediction and arithmetic coding, so it sits ~2-3x
        // above deployed encoders (documented in DESIGN.md)
        let mbps = r.mean_bitrate_mbps();
        assert!((5.0..60.0).contains(&mbps), "bitrate {mbps:.2} Mbps");
    }
}
