//! Motion-to-Photon latency assembly (paper Fig. 10b/10c) and modeled
//! upscaling-stage timings for both pipelines.
//!
//! All stage latencies come from the calibrated platform models at the
//! paper's deployment scale (720p stream → 1440p display), regardless of
//! the (possibly reduced) pixel canvas an experiment runs its data path on.

use gss_frame::Resolution;
use gss_platform::DeviceProfile;
use serde::{Deserialize, Serialize};

/// The deployment's streamed (low) resolution.
pub const FULL_LR: Resolution = Resolution::P720;
/// The deployment's display (high) resolution.
pub const FULL_HR: Resolution = Resolution::P1440;

/// Per-stage Motion-to-Photon latency of one frame, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MtpBreakdown {
    /// Controller input → server (uplink).
    pub input_uplink_ms: f64,
    /// Game-engine state update.
    pub engine_ms: f64,
    /// Frame rendering on the server GPU.
    pub render_ms: f64,
    /// RoI detection latency *not hidden* behind encode (zero in the
    /// default configuration — it runs on spare GPU cores, §IV-B2).
    pub roi_extra_ms: f64,
    /// Hardware encode.
    pub encode_ms: f64,
    /// Frame transit over the downlink (queueing + serialization +
    /// propagation).
    pub downlink_ms: f64,
    /// Client-side decode.
    pub decode_ms: f64,
    /// Client-side upscaling critical path.
    pub upscale_ms: f64,
    /// Display pipeline (composition + mean vsync wait).
    pub display_ms: f64,
}

impl MtpBreakdown {
    /// End-to-end Motion-to-Photon latency.
    pub fn total_ms(&self) -> f64 {
        self.input_uplink_ms
            + self.engine_ms
            + self.render_ms
            + self.roi_extra_ms
            + self.encode_ms
            + self.downlink_ms
            + self.decode_ms
            + self.upscale_ms
            + self.display_ms
    }

    /// Records the serial stages of this breakdown as telemetry spans on a
    /// frame timeline beginning at `t0_ms` (the instant the user input
    /// leaves the controller) and returns the instant upscaling starts.
    ///
    /// Only the stages this struct resolves 1:1 are recorded here: render,
    /// encode, decode and display. The downlink span is recorded by the
    /// link model at transfer time, the RoI/depth spans by the session
    /// (their overlap with encode is not recoverable from the summed
    /// `roi_extra_ms`), and the upscale spans by
    /// [`UpscaleTiming::record_spans`].
    pub fn record_spans(&self, rec: &mut gss_telemetry::Recorder, t0_ms: f64) -> f64 {
        use gss_telemetry::Stage;
        let mut span = |stage, start, dur| {
            // zero-duration stages (e.g. decode of a frozen frame) are
            // omitted so they cannot drag stage percentiles to zero
            if dur > 0.0 {
                rec.record_span(stage, start, dur);
            }
        };
        let mut t = t0_ms + self.input_uplink_ms + self.engine_ms;
        span(Stage::Render, t, self.render_ms);
        t += self.render_ms;
        span(Stage::Encode, t, self.encode_ms);
        t += self.encode_ms + self.roi_extra_ms + self.downlink_ms;
        span(Stage::Decode, t, self.decode_ms);
        t += self.decode_ms;
        span(Stage::Display, t + self.upscale_ms, self.display_ms);
        t
    }

    /// `(label, value)` pairs in pipeline order, for reports.
    pub fn stages(&self) -> [(&'static str, f64); 9] {
        [
            ("input uplink", self.input_uplink_ms),
            ("game engine", self.engine_ms),
            ("render", self.render_ms),
            ("roi detect", self.roi_extra_ms),
            ("encode", self.encode_ms),
            ("downlink", self.downlink_ms),
            ("decode", self.decode_ms),
            ("upscale", self.upscale_ms),
            ("display", self.display_ms),
        ]
    }
}

/// Modeled client upscaling-stage occupancy for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct UpscaleTiming {
    /// NPU busy time (DNN SR), ms.
    pub npu_ms: f64,
    /// GPU busy time (bilinear of the non-RoI region), ms.
    pub gpu_ms: f64,
    /// GPU merge (copying the upscaled RoI into the framebuffer), ms.
    pub merge_ms: f64,
    /// CPU busy time (NEMO's bilinear/reconstruction path), ms.
    pub cpu_ms: f64,
    /// Critical-path latency of the whole upscaling stage, ms.
    pub critical_ms: f64,
}

impl UpscaleTiming {
    /// Records the upscale as telemetry spans starting at `start_ms`.
    ///
    /// NPU super-resolution and GPU interpolation are genuinely parallel,
    /// so their spans share a start and overlap in time; the merge begins
    /// after the slower of the two. NEMO's CPU reconstruction path is
    /// recorded under the generic interpolation stage (see
    /// [`gss_telemetry::Stage::GpuInterp`]). Zero-duration stages (paths a
    /// pipeline does not use) are omitted.
    pub fn record_spans(&self, rec: &mut gss_telemetry::Recorder, start_ms: f64) {
        use gss_telemetry::Stage;
        if self.npu_ms > 0.0 {
            rec.record_span(Stage::NpuSr, start_ms, self.npu_ms);
        }
        if self.gpu_ms > 0.0 {
            rec.record_span(Stage::GpuInterp, start_ms, self.gpu_ms);
        }
        if self.cpu_ms > 0.0 {
            rec.record_span(Stage::GpuInterp, start_ms, self.cpu_ms);
        }
        if self.merge_ms > 0.0 {
            let merge_start = start_ms + self.npu_ms.max(self.gpu_ms);
            rec.record_span(Stage::Merge, merge_start, self.merge_ms);
        }
    }
}

/// GameStreamSR's upscaling timing: NPU (RoI) and GPU (non-RoI) run in
/// parallel; the merge follows the slower of the two (paper §IV-C).
pub fn ours_upscale(device: &DeviceProfile, roi_side: usize) -> UpscaleTiming {
    ours_upscale_degraded(device, roi_side, 1.0, 1.0)
}

/// [`ours_upscale`] under degradation: the SR model costs `cost_ratio`
/// times the calibrated EDSR per pixel and the NPU is thermally throttled
/// by `slowdown` (≥ 1). A zero `roi_side` models the ladder's bilinear-only
/// floor — the GPU interpolates the whole frame and no NPU pass or merge
/// runs.
///
/// # Panics
///
/// Panics when `cost_ratio` is not positive or `slowdown` is below 1
/// (for a nonzero RoI).
pub fn ours_upscale_degraded(
    device: &DeviceProfile,
    roi_side: usize,
    cost_ratio: f64,
    slowdown: f64,
) -> UpscaleTiming {
    if roi_side == 0 {
        let gpu_ms = device.gpu_bilinear_ms(FULL_HR.pixels());
        return UpscaleTiming {
            npu_ms: 0.0,
            gpu_ms,
            merge_ms: 0.0,
            cpu_ms: 0.0,
            critical_ms: gpu_ms,
        };
    }
    let roi_px = roi_side * roi_side;
    let roi_hr_px = roi_px * 4;
    let non_roi_hr_px = FULL_HR.pixels().saturating_sub(roi_hr_px);
    let npu_ms = device.npu_sr_ms_throttled(roi_px, cost_ratio, slowdown);
    let gpu_ms = device.gpu_bilinear_ms(non_roi_hr_px);
    let merge_ms = device.gpu_bilinear_ms(roi_hr_px);
    UpscaleTiming {
        npu_ms,
        gpu_ms,
        merge_ms,
        cpu_ms: 0.0,
        critical_ms: npu_ms.max(gpu_ms) + merge_ms,
    }
}

/// NEMO's reference-frame upscaling: the whole 720p frame through the DNN
/// on the NPU.
pub fn sota_ref_upscale(device: &DeviceProfile) -> UpscaleTiming {
    sota_ref_upscale_throttled(device, 1.0)
}

/// [`sota_ref_upscale`] with an NPU thermal `slowdown` (≥ 1), so fault
/// timelines throttle both pipelines even-handedly.
///
/// # Panics
///
/// Panics when `slowdown` is below 1.
pub fn sota_ref_upscale_throttled(device: &DeviceProfile, slowdown: f64) -> UpscaleTiming {
    let npu_ms = device.npu_sr_ms_throttled(FULL_LR.pixels(), 1.0, slowdown);
    UpscaleTiming {
        npu_ms,
        gpu_ms: 0.0,
        merge_ms: 0.0,
        cpu_ms: 0.0,
        critical_ms: npu_ms,
    }
}

/// NEMO's non-reference-frame path: bilinear upscaling of motion vectors
/// and residuals plus frame reconstruction, all on the CPU (its codec
/// modifications preclude hardware offload).
pub fn sota_nonref_upscale(device: &DeviceProfile) -> UpscaleTiming {
    let hr_px = FULL_HR.pixels();
    let cpu_ms = device.cpu_bilinear_ms(hr_px) + device.cpu_reconstruct_ms(hr_px);
    UpscaleTiming {
        npu_ms: 0.0,
        gpu_ms: 0.0,
        merge_ms: 0.0,
        cpu_ms,
        critical_ms: cpu_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_platform::REALTIME_BUDGET_MS;

    #[test]
    fn total_is_sum_of_stages() {
        let m = MtpBreakdown {
            input_uplink_ms: 1.0,
            engine_ms: 2.0,
            render_ms: 3.0,
            roi_extra_ms: 0.5,
            encode_ms: 4.0,
            downlink_ms: 5.0,
            decode_ms: 6.0,
            upscale_ms: 7.0,
            display_ms: 8.0,
        };
        assert!((m.total_ms() - 36.5).abs() < 1e-12);
        let stage_sum: f64 = m.stages().iter().map(|(_, v)| v).sum();
        assert!((stage_sum - m.total_ms()).abs() < 1e-12);
    }

    #[test]
    fn breakdown_spans_line_up_on_the_frame_timeline() {
        use gss_telemetry::{Recorder, Stage};
        let m = MtpBreakdown {
            input_uplink_ms: 1.0,
            engine_ms: 2.0,
            render_ms: 3.0,
            roi_extra_ms: 0.5,
            encode_ms: 4.0,
            downlink_ms: 5.0,
            decode_ms: 6.0,
            upscale_ms: 7.0,
            display_ms: 8.0,
        };
        let mut rec = Recorder::new("mtp-test", 100.0);
        rec.begin_frame(0);
        let upscale_start = m.record_spans(&mut rec, 0.0);
        assert!((upscale_start - 21.5).abs() < 1e-12);
        let s = rec.summary();
        for (stage, dur) in [
            (Stage::Render, 3.0),
            (Stage::Encode, 4.0),
            (Stage::Decode, 6.0),
            (Stage::Display, 8.0),
        ] {
            assert_eq!(s.stage(stage).unwrap().dist.p50, dur, "{}", stage.label());
        }
    }

    #[test]
    fn upscale_spans_follow_the_parallel_timeline() {
        use gss_telemetry::{MemorySink, Recorder, SinkHandle};
        let s8 = DeviceProfile::s8_tab();
        let side = s8.max_realtime_roi_side(REALTIME_BUDGET_MS);
        let timing = ours_upscale(&s8, side);
        let mem = MemorySink::new();
        let mut rec = Recorder::new("mtp-test", 100.0).with_sink(SinkHandle::new(mem.clone()));
        timing.record_spans(&mut rec, 10.0);
        let spans: Vec<(String, f64, f64)> = mem
            .events()
            .iter()
            .filter_map(|e| match e {
                gss_telemetry::Event::Span {
                    stage,
                    start_ms,
                    end_ms,
                    ..
                } => Some((stage.label().to_owned(), *start_ms, *end_ms)),
                _ => None,
            })
            .collect();
        // NPU and GPU start together; the merge starts when the slower ends.
        assert_eq!(spans[0].0, "npu-sr");
        assert_eq!(spans[1].0, "gpu-interp");
        assert_eq!(spans[0].1, spans[1].1);
        let merge = spans.iter().find(|s| s.0 == "merge").expect("merge span");
        assert!((merge.1 - (10.0 + timing.npu_ms.max(timing.gpu_ms))).abs() < 1e-12);
        // Whole-stage extent matches the critical path.
        assert!((merge.2 - (10.0 + timing.critical_ms)).abs() < 1e-12);
    }

    #[test]
    fn nemo_cpu_path_records_as_interpolation() {
        use gss_telemetry::{Recorder, Stage};
        let mut rec = Recorder::new("mtp-test", 100.0);
        sota_nonref_upscale(&DeviceProfile::s8_tab()).record_spans(&mut rec, 0.0);
        let s = rec.summary();
        assert!(s.stage(Stage::GpuInterp).is_some());
        assert!(s.stage(Stage::NpuSr).is_none());
        assert!(s.stage(Stage::Merge).is_none());
    }

    #[test]
    fn ours_meets_realtime_on_both_devices() {
        for device in DeviceProfile::all() {
            let side = device.max_realtime_roi_side(REALTIME_BUDGET_MS);
            let t = ours_upscale(&device, side);
            assert!(
                t.critical_ms <= REALTIME_BUDGET_MS + 0.6,
                "{}: {:.2} ms",
                device.name,
                t.critical_ms
            );
            // NPU dominates the parallel pair
            assert!(t.npu_ms > t.gpu_ms);
        }
    }

    #[test]
    fn sota_violates_realtime_for_both_frame_classes() {
        for device in DeviceProfile::all() {
            assert!(sota_ref_upscale(&device).critical_ms > 200.0);
            let nonref = sota_nonref_upscale(&device).critical_ms;
            assert!(
                nonref > REALTIME_BUDGET_MS && nonref < 35.0,
                "{}: {:.2}",
                device.name,
                nonref
            );
        }
    }

    #[test]
    fn degraded_upscale_scales_npu_and_bilinear_floor_skips_it() {
        let d = DeviceProfile::s8_tab();
        let side = d.max_realtime_roi_side(REALTIME_BUDGET_MS);
        let nominal = ours_upscale(&d, side);
        let throttled = ours_upscale_degraded(&d, side, 1.0, 3.0);
        assert!((throttled.npu_ms - nominal.npu_ms * 3.0).abs() < 1e-9);
        assert_eq!(throttled.gpu_ms, nominal.gpu_ms);
        // a cheap model at nominal clocks undercuts the calibrated EDSR
        let cheap = ours_upscale_degraded(&d, side, 0.1, 1.0);
        assert!(cheap.npu_ms < nominal.npu_ms);
        // bilinear floor: GPU-only, and fast enough regardless of throttle
        let floor = ours_upscale_degraded(&d, 0, 1.0, 10.0);
        assert_eq!(floor.npu_ms, 0.0);
        assert_eq!(floor.merge_ms, 0.0);
        assert!(floor.critical_ms < 2.0, "{:.2}", floor.critical_ms);
        // NEMO's reference path throttles the same way
        let sota = sota_ref_upscale_throttled(&d, 2.0);
        assert!((sota.critical_ms - sota_ref_upscale(&d).critical_ms * 2.0).abs() < 1e-9);
    }

    #[test]
    fn reference_frame_speedup_is_about_13x() {
        let s8 = DeviceProfile::s8_tab();
        let side = s8.max_realtime_roi_side(REALTIME_BUDGET_MS);
        let speedup = sota_ref_upscale(&s8).critical_ms / ours_upscale(&s8, side).critical_ms;
        assert!((12.0..15.0).contains(&speedup), "{speedup:.2}");
    }

    #[test]
    fn nonref_speedup_exceeds_1_5x() {
        for device in DeviceProfile::all() {
            let side = device.max_realtime_roi_side(REALTIME_BUDGET_MS);
            let speedup =
                sota_nonref_upscale(&device).critical_ms / ours_upscale(&device, side).critical_ms;
            assert!(speedup > 1.5, "{}: {speedup:.2}", device.name);
        }
    }
}
