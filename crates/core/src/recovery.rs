//! Decoder crash recovery: an explicit, deterministic state machine.
//!
//! Production streaming clients (Moonlight, Stadia's client, GFN) all ship
//! a decoder recovery manager, because on commodity phones the hardware
//! video decoder *does* die mid-session — codec process crashes, DRM
//! session loss, surface teardown on rotation. This module models that
//! failure mode for the simulator: when a [`FaultKind::DecoderCrash`]
//! window asserts the crash signal, the session walks
//!
//! ```text
//! Healthy → Draining → Reconfiguring → AwaitingKeyframe → Healthy
//! ```
//!
//! with a per-state frame budget at every step. Repeated crashes (or
//! keyframe-resync timeouts) grow the reconfigure budget with bounded
//! exponential backoff, and after more than
//! [`RecoveryConfig::max_strikes`] failures inside one stability window
//! the machine falls back permanently to a *safe profile* — the session
//! pins the degradation ladder to its bilinear floor rather than risking
//! another crash loop. During recovery the session repeats the last good
//! frame (frozen display slots) with the ladder floor engaged, and resyncs
//! via a NACK-forced keyframe on re-entry, so a crash never turns into a
//! permanent freeze.
//!
//! Everything here counts frames, never wall clocks, so identical crash
//! timelines replay bit-identically at any worker count — the same
//! contract as the rest of the pipeline.
//!
//! [`FaultKind::DecoderCrash`]: gss_net::FaultKind::DecoderCrash

use serde::{Deserialize, Serialize};

/// Where the recovery state machine currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryState {
    /// The decoder is up and decoding.
    Healthy,
    /// The crashed codec's queued buffers are being flushed.
    Draining,
    /// The codec is being torn down and reinitialized.
    Reconfiguring,
    /// The codec is up again but has no reference frame: only a keyframe
    /// can restart decoding.
    AwaitingKeyframe,
}

impl RecoveryState {
    /// Kebab-case label for telemetry details and reports.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryState::Healthy => "healthy",
            RecoveryState::Draining => "draining",
            RecoveryState::Reconfiguring => "reconfiguring",
            RecoveryState::AwaitingKeyframe => "awaiting-keyframe",
        }
    }

    /// Stable numeric encoding for the `recovery-state` gauge
    /// (0 = healthy … 3 = awaiting keyframe).
    pub fn gauge_value(self) -> f64 {
        match self {
            RecoveryState::Healthy => 0.0,
            RecoveryState::Draining => 1.0,
            RecoveryState::Reconfiguring => 2.0,
            RecoveryState::AwaitingKeyframe => 3.0,
        }
    }
}

/// Per-state frame budgets and the backoff/fallback policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Frames spent flushing the dead codec's buffers.
    pub drain_frames: usize,
    /// Base frames spent reinitializing the codec (before backoff).
    pub reconfigure_frames: usize,
    /// Frames to wait for the resync keyframe before declaring the
    /// attempt failed and reconfiguring again.
    pub await_keyframe_frames: usize,
    /// First backoff increment added to the reconfigure budget on the
    /// second strike; doubles per further strike.
    pub backoff_base_frames: usize,
    /// Ceiling on the backoff increment, frames.
    pub backoff_max_frames: usize,
    /// Strikes (crashes plus failed resyncs inside one stability window)
    /// tolerated before the permanent safe-profile fallback.
    pub max_strikes: u32,
    /// Healthy frames after a recovery before the strike count forgives —
    /// a crash landing inside this window counts as a repeat offence.
    pub stability_frames: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            drain_frames: 2,
            reconfigure_frames: 3,
            await_keyframe_frames: 8,
            backoff_base_frames: 4,
            backoff_max_frames: 32,
            max_strikes: 3,
            stability_frames: 240,
        }
    }
}

/// One observable transition of the machine, for trace instants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RecoveryEvent {
    /// The crash signal rose: the decoder just died.
    CrashDetected {
        /// Repeat-offence count inside the current stability window.
        strike: u32,
    },
    /// The machine entered [`RecoveryState::Reconfiguring`].
    Reconfiguring {
        /// Which attempt this is (equals the strike count).
        attempt: u32,
        /// Frames this reconfigure will take, backoff included.
        budget_frames: usize,
    },
    /// The machine entered [`RecoveryState::AwaitingKeyframe`] and the
    /// session should force a NACK keyframe resync.
    AwaitingKeyframe,
    /// The keyframe never arrived inside its budget; the attempt failed.
    AttemptFailed {
        /// Which attempt failed.
        attempt: u32,
    },
    /// A keyframe decoded: the machine is healthy again.
    Recovered {
        /// Frames the whole episode took, crash to resync.
        frames: u64,
    },
    /// Too many strikes: the machine has permanently fallen back to the
    /// safe profile (ladder floor).
    SafeProfileFallback,
}

impl RecoveryEvent {
    /// Human-readable detail string for the `recovery` trace instant.
    pub fn detail(&self) -> String {
        match self {
            RecoveryEvent::CrashDetected { strike } => {
                format!("recovery: decoder crash detected (strike {strike}) -> draining")
            }
            RecoveryEvent::Reconfiguring {
                attempt,
                budget_frames,
            } => format!(
                "recovery: reconfiguring decoder (attempt {attempt}, budget {budget_frames} frames)"
            ),
            RecoveryEvent::AwaitingKeyframe => "recovery: awaiting keyframe resync".to_owned(),
            RecoveryEvent::AttemptFailed { attempt } => {
                format!("recovery: keyframe window expired (attempt {attempt} failed)")
            }
            RecoveryEvent::Recovered { frames } => {
                format!("recovery: healthy again after {frames} frames")
            }
            RecoveryEvent::SafeProfileFallback => {
                "recovery: safe-profile fallback engaged (ladder pinned to floor)".to_owned()
            }
        }
    }
}

/// End-of-session aggregate of the machine's history.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoverySummary {
    /// Decoder crashes observed (rising edges of the crash signal).
    pub crashes: u64,
    /// Reconfigure attempts started (> crashes when resyncs time out).
    pub reconfigures: u64,
    /// Keyframe resyncs that timed out.
    pub failed_attempts: u64,
    /// Whether the permanent safe-profile fallback engaged.
    pub safe_profile_fallback: bool,
    /// Frames each completed recovery episode took, crash to resync, in
    /// episode order.
    pub recovery_frames: Vec<u64>,
    /// Frames the display repeated (frozen) while the machine was not
    /// healthy; maintained by the session, not the machine.
    pub frozen_frames: u64,
}

impl RecoverySummary {
    /// p99 of time-to-recover across completed episodes, in ms, given the
    /// frame interval (exact order statistic on the sorted episode list;
    /// 0 when no episode completed).
    pub fn time_to_recover_p99_ms(&self, frame_interval_ms: f64) -> f64 {
        if self.recovery_frames.is_empty() {
            return 0.0;
        }
        let mut v = self.recovery_frames.clone();
        v.sort_unstable();
        let idx = ((v.len() as f64 * 0.99).ceil() as usize).max(1) - 1;
        v[idx.min(v.len() - 1)] as f64 * frame_interval_ms
    }

    /// The longest completed recovery episode, frames (0 when none).
    pub fn worst_recovery_frames(&self) -> u64 {
        self.recovery_frames.iter().copied().max().unwrap_or(0)
    }
}

/// The recovery state machine. Drive it with [`RecoveryMachine::begin_frame`]
/// (crash signal sampled at the frame's send time) and
/// [`RecoveryMachine::end_frame`] (whether a keyframe decoded this frame);
/// both return the transitions they caused, for telemetry.
#[derive(Debug, Clone)]
pub struct RecoveryMachine {
    config: RecoveryConfig,
    state: RecoveryState,
    frames_in_state: usize,
    reconfigure_budget: usize,
    strikes: u32,
    stability_left: usize,
    safe_profile: bool,
    prev_crash: bool,
    episode_frames: u64,
    summary: RecoverySummary,
}

impl RecoveryMachine {
    /// Builds a healthy machine.
    ///
    /// # Panics
    ///
    /// Panics when a per-state budget is zero (the machine could spin in
    /// place) or the backoff ceiling is below its base.
    pub fn new(config: RecoveryConfig) -> Self {
        assert!(config.drain_frames >= 1, "drain budget must be >= 1 frame");
        assert!(
            config.reconfigure_frames >= 1,
            "reconfigure budget must be >= 1 frame"
        );
        assert!(
            config.await_keyframe_frames >= 1,
            "keyframe window must be >= 1 frame"
        );
        assert!(
            config.backoff_max_frames >= config.backoff_base_frames,
            "backoff ceiling must be >= its base"
        );
        RecoveryMachine {
            config,
            state: RecoveryState::Healthy,
            frames_in_state: 0,
            reconfigure_budget: config.reconfigure_frames,
            strikes: 0,
            stability_left: 0,
            safe_profile: false,
            prev_crash: false,
            episode_frames: 0,
            summary: RecoverySummary::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> RecoveryState {
        self.state
    }

    /// `true` while the decoder is anything but fully healthy.
    pub fn in_recovery(&self) -> bool {
        self.state != RecoveryState::Healthy
    }

    /// Whether the permanent safe-profile fallback has engaged.
    pub fn safe_profile(&self) -> bool {
        self.safe_profile
    }

    /// Aggregate history so far.
    pub fn summary(&self) -> &RecoverySummary {
        &self.summary
    }

    /// Records one frozen display slot during recovery (session calls
    /// this; the machine itself does not know about the display).
    pub fn note_frozen(&mut self) {
        self.summary.frozen_frames += 1;
    }

    /// Consumes the machine, yielding its summary.
    pub fn into_summary(self) -> RecoverySummary {
        self.summary
    }

    /// Whether a frame of the given type can be decoded right now:
    /// everything while healthy, only a keyframe while awaiting resync,
    /// nothing while draining or reconfiguring.
    pub fn can_decode(&self, is_keyframe: bool) -> bool {
        match self.state {
            RecoveryState::Healthy => true,
            RecoveryState::AwaitingKeyframe => is_keyframe,
            RecoveryState::Draining | RecoveryState::Reconfiguring => false,
        }
    }

    /// Advances the machine by one frame given the sampled crash signal.
    /// Returns the transitions taken, in order.
    pub fn begin_frame(&mut self, crash_signal: bool) -> Vec<RecoveryEvent> {
        let mut events = Vec::new();
        let rising = crash_signal && !self.prev_crash;
        self.prev_crash = crash_signal;
        if rising {
            self.summary.crashes += 1;
            // a crash inside the stability window (or while already
            // recovering) is a repeat offence; otherwise the slate is clean
            self.strikes = if self.state != RecoveryState::Healthy || self.stability_left > 0 {
                self.strikes + 1
            } else {
                1
            };
            if self.state == RecoveryState::Healthy {
                self.episode_frames = 0;
            }
            events.push(RecoveryEvent::CrashDetected {
                strike: self.strikes,
            });
            self.state = RecoveryState::Draining;
            self.frames_in_state = 0;
        }
        match self.state {
            RecoveryState::Healthy => {
                self.stability_left = self.stability_left.saturating_sub(1);
            }
            RecoveryState::Draining => {
                self.episode_frames += 1;
                self.frames_in_state += 1;
                if self.frames_in_state >= self.config.drain_frames {
                    self.enter_reconfiguring(&mut events);
                }
            }
            RecoveryState::Reconfiguring => {
                self.episode_frames += 1;
                self.frames_in_state += 1;
                if self.frames_in_state >= self.reconfigure_budget {
                    self.state = RecoveryState::AwaitingKeyframe;
                    self.frames_in_state = 0;
                    events.push(RecoveryEvent::AwaitingKeyframe);
                }
            }
            RecoveryState::AwaitingKeyframe => {
                self.episode_frames += 1;
            }
        }
        events
    }

    /// Closes the frame: `keyframe_decoded` says whether an intra frame
    /// was delivered *and* decoded this frame. Only meaningful while
    /// awaiting the resync keyframe; a no-op otherwise.
    pub fn end_frame(&mut self, keyframe_decoded: bool) -> Vec<RecoveryEvent> {
        let mut events = Vec::new();
        if self.state != RecoveryState::AwaitingKeyframe {
            return events;
        }
        if keyframe_decoded {
            self.state = RecoveryState::Healthy;
            self.frames_in_state = 0;
            self.stability_left = self.config.stability_frames;
            self.summary.recovery_frames.push(self.episode_frames);
            events.push(RecoveryEvent::Recovered {
                frames: self.episode_frames,
            });
        } else {
            self.frames_in_state += 1;
            if self.frames_in_state >= self.config.await_keyframe_frames {
                self.summary.failed_attempts += 1;
                self.strikes += 1;
                events.push(RecoveryEvent::AttemptFailed {
                    attempt: self.strikes,
                });
                self.enter_reconfiguring(&mut events);
            }
        }
        events
    }

    /// Starts (or restarts) the reconfigure phase, applying exponential
    /// backoff and — past the strike limit — the safe-profile fallback.
    fn enter_reconfiguring(&mut self, events: &mut Vec<RecoveryEvent>) {
        self.summary.reconfigures += 1;
        let extra = if self.strikes <= 1 {
            0
        } else {
            let shift = (self.strikes - 2).min(16);
            (self.config.backoff_base_frames << shift).min(self.config.backoff_max_frames)
        };
        self.reconfigure_budget = self.config.reconfigure_frames + extra;
        if !self.safe_profile && self.strikes > self.config.max_strikes {
            self.safe_profile = true;
            self.summary.safe_profile_fallback = true;
            events.push(RecoveryEvent::SafeProfileFallback);
        }
        events.push(RecoveryEvent::Reconfiguring {
            attempt: self.strikes.max(1),
            budget_frames: self.reconfigure_budget,
        });
        self.state = RecoveryState::Reconfiguring;
        self.frames_in_state = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RecoveryConfig {
        RecoveryConfig::default()
    }

    /// Runs one crash through drain + reconfigure, returning the machine
    /// in `AwaitingKeyframe`.
    fn crash_to_awaiting(m: &mut RecoveryMachine) {
        let ev = m.begin_frame(true);
        assert!(matches!(ev[0], RecoveryEvent::CrashDetected { .. }));
        assert_eq!(m.state(), RecoveryState::Draining);
        let mut guard = 0;
        while m.state() != RecoveryState::AwaitingKeyframe {
            m.begin_frame(false);
            m.end_frame(false);
            guard += 1;
            assert!(guard < 100, "machine never reached AwaitingKeyframe");
        }
    }

    #[test]
    fn healthy_machine_stays_healthy_and_decodes_everything() {
        let mut m = RecoveryMachine::new(cfg());
        for _ in 0..100 {
            assert!(m.begin_frame(false).is_empty());
            assert!(m.end_frame(false).is_empty());
        }
        assert_eq!(m.state(), RecoveryState::Healthy);
        assert!(m.can_decode(false));
        assert!(m.can_decode(true));
        assert_eq!(m.summary().crashes, 0);
    }

    #[test]
    fn single_crash_walks_the_four_states_and_recovers_on_keyframe() {
        let mut m = RecoveryMachine::new(cfg());
        crash_to_awaiting(&mut m);
        assert!(!m.can_decode(false), "inter frames are useless pre-resync");
        assert!(m.can_decode(true), "a keyframe restarts the decoder");
        m.begin_frame(false);
        let ev = m.end_frame(true);
        assert!(matches!(ev[0], RecoveryEvent::Recovered { .. }));
        assert_eq!(m.state(), RecoveryState::Healthy);
        assert_eq!(m.summary().crashes, 1);
        assert_eq!(m.summary().reconfigures, 1);
        assert_eq!(m.summary().recovery_frames.len(), 1);
        // drain 2 + reconfigure 3 + 1 awaiting frame = 6 frames
        assert_eq!(m.summary().recovery_frames[0], 6);
        assert!(!m.safe_profile());
    }

    #[test]
    fn decoder_is_down_while_draining_and_reconfiguring() {
        let mut m = RecoveryMachine::new(cfg());
        m.begin_frame(true);
        assert_eq!(m.state(), RecoveryState::Draining);
        assert!(!m.can_decode(true), "even a keyframe is useless mid-drain");
        m.begin_frame(false);
        m.begin_frame(false);
        assert_eq!(m.state(), RecoveryState::Reconfiguring);
        assert!(!m.can_decode(true));
    }

    #[test]
    fn keyframe_timeout_fails_the_attempt_and_backs_off() {
        let mut m = RecoveryMachine::new(cfg());
        crash_to_awaiting(&mut m);
        // starve the resync: the await budget expires
        let mut failed = false;
        for _ in 0..cfg().await_keyframe_frames {
            m.begin_frame(false);
            let ev = m.end_frame(false);
            if ev
                .iter()
                .any(|e| matches!(e, RecoveryEvent::AttemptFailed { .. }))
            {
                failed = true;
                assert_eq!(m.state(), RecoveryState::Reconfiguring);
            }
        }
        assert!(failed, "the keyframe window never expired");
        assert_eq!(m.summary().failed_attempts, 1);
        assert_eq!(m.summary().reconfigures, 2);
    }

    #[test]
    fn backoff_grows_exponentially_and_saturates() {
        let cfg = RecoveryConfig::default();
        let mut m = RecoveryMachine::new(cfg);
        let mut budgets = Vec::new();
        m.begin_frame(true);
        for _ in 0..400 {
            let mut ev = m.begin_frame(false);
            ev.extend(m.end_frame(false));
            for e in ev {
                if let RecoveryEvent::Reconfiguring { budget_frames, .. } = e {
                    budgets.push(budget_frames);
                }
            }
            if budgets.len() >= 5 {
                break;
            }
        }
        // base 3, then +4, +8, +16, +32 (saturated at backoff_max 32)
        assert_eq!(budgets, vec![3, 7, 11, 19, 35]);
    }

    #[test]
    fn repeated_crashes_inside_the_stability_window_trigger_fallback() {
        let cfg = RecoveryConfig::default();
        let mut m = RecoveryMachine::new(cfg);
        let mut fallback_at_strike = None;
        for strike in 1..=5u32 {
            m.begin_frame(true);
            // drive to recovery, feeding the keyframe as soon as possible
            let mut guard = 0;
            while m.state() != RecoveryState::Healthy {
                let mut ev = m.begin_frame(false);
                ev.extend(m.end_frame(m.state() == RecoveryState::AwaitingKeyframe));
                if ev
                    .iter()
                    .any(|e| matches!(e, RecoveryEvent::SafeProfileFallback))
                {
                    fallback_at_strike.get_or_insert(strike);
                }
                guard += 1;
                assert!(guard < 200, "recovery never completed");
            }
            // next crash lands well inside the 240-frame stability window
            for _ in 0..10 {
                m.begin_frame(false);
            }
        }
        // strikes 1..3 tolerated, the 4th crosses max_strikes
        assert_eq!(fallback_at_strike, Some(4));
        assert!(m.safe_profile());
        assert!(m.summary().safe_profile_fallback);
        assert_eq!(m.summary().crashes, 5);
        // the machine still recovers after the fallback — it is a profile
        // clamp, not a terminal freeze
        assert_eq!(m.state(), RecoveryState::Healthy);
        assert_eq!(m.summary().recovery_frames.len(), 5);
    }

    #[test]
    fn a_quiet_stability_window_forgives_old_strikes() {
        let cfg = RecoveryConfig::default();
        let mut m = RecoveryMachine::new(cfg);
        for _ in 0..4 {
            m.begin_frame(true);
            let mut guard = 0;
            while m.state() != RecoveryState::Healthy {
                m.begin_frame(false);
                m.end_frame(m.state() == RecoveryState::AwaitingKeyframe);
                guard += 1;
                assert!(guard < 200);
            }
            // outlive the stability window before the next crash
            for _ in 0..cfg.stability_frames + 1 {
                m.begin_frame(false);
            }
        }
        assert!(
            !m.safe_profile(),
            "well-spaced crashes must never trip the fallback"
        );
        assert_eq!(m.summary().crashes, 4);
    }

    #[test]
    fn crash_during_recovery_restarts_the_drain_within_the_episode() {
        let mut m = RecoveryMachine::new(cfg());
        crash_to_awaiting(&mut m);
        let ev = m.begin_frame(true);
        assert!(matches!(ev[0], RecoveryEvent::CrashDetected { strike: 2 }));
        assert_eq!(m.state(), RecoveryState::Draining);
        // one episode, counted from the first crash
        let mut guard = 0;
        while m.state() != RecoveryState::Healthy {
            m.begin_frame(false);
            m.end_frame(m.state() == RecoveryState::AwaitingKeyframe);
            guard += 1;
            assert!(guard < 200);
        }
        assert_eq!(m.summary().crashes, 2);
        assert_eq!(
            m.summary().recovery_frames.len(),
            1,
            "a mid-recovery crash extends the episode, it does not split it"
        );
    }

    #[test]
    fn summary_percentile_is_exact_on_the_sorted_episodes() {
        let s = RecoverySummary {
            recovery_frames: vec![6, 10, 8],
            ..RecoverySummary::default()
        };
        let frame_ms = 1000.0 / 60.0;
        assert!((s.time_to_recover_p99_ms(frame_ms) - 10.0 * frame_ms).abs() < 1e-9);
        assert_eq!(s.worst_recovery_frames(), 10);
        assert_eq!(
            RecoverySummary::default().time_to_recover_p99_ms(frame_ms),
            0.0
        );
    }

    #[test]
    fn gauge_values_and_labels_are_stable() {
        let states = [
            RecoveryState::Healthy,
            RecoveryState::Draining,
            RecoveryState::Reconfiguring,
            RecoveryState::AwaitingKeyframe,
        ];
        for (i, s) in states.iter().enumerate() {
            assert_eq!(s.gauge_value(), i as f64);
        }
        let labels: std::collections::HashSet<&str> = states.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), states.len());
    }

    #[test]
    #[should_panic(expected = "drain budget")]
    fn zero_drain_budget_rejected() {
        let _ = RecoveryMachine::new(RecoveryConfig {
            drain_frames: 0,
            ..RecoveryConfig::default()
        });
    }
}
