//! The GameStreamSR mobile client (paper §IV-C, Fig. 9).
//!
//! Data path per frame: hardware decode of the 720p packet → extract the
//! RoI patch → **in parallel**, DNN-SR the RoI (NPU) and bilinear-upscale
//! the rest of the frame (GPU) → merge into the high-resolution
//! framebuffer. The parallelism is real (crossbeam scoped threads), exactly
//! mirroring the NPU ∥ GPU concurrency of the paper's client.

use crate::GssError;
use gss_codec::{Decoder, EncodedFrame};
use gss_frame::{Frame, Rect};
use gss_sr::{InterpKernel, InterpUpscaler, ModelTier, NeuralSr, Upscaler};
use serde::{Deserialize, Serialize};

/// Modeled stage occupancy of one client frame (filled in by the session
/// simulator from the platform model; the client itself only moves pixels).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ClientTiming {
    /// Hardware decode, ms.
    pub decode_ms: f64,
    /// RoI DNN SR on the NPU, ms.
    pub npu_ms: f64,
    /// Non-RoI bilinear on the GPU, ms.
    pub gpu_ms: f64,
    /// Merge into the HR framebuffer, ms.
    pub merge_ms: f64,
}

/// One upscaled frame produced by the client.
#[derive(Debug, Clone)]
pub struct ClientOutput {
    /// The merged high-resolution frame.
    pub frame: Frame,
    /// The RoI in high-resolution coordinates.
    pub roi_hr: Rect,
}

/// The RoI-assisted upscaling client.
///
/// ```
/// use gamestreamsr::GameStreamClient;
/// use gss_frame::{Frame, Rect};
///
/// let client = GameStreamClient::new(2);
/// let lr = Frame::filled(64, 36, [120.0, 128.0, 128.0]);
/// let out = client.upscale(&lr, Rect::new(16, 8, 24, 24));
/// assert_eq!(out.frame.size(), (128, 72));
/// assert_eq!(out.roi_hr, Rect::new(32, 16, 48, 48));
/// ```
#[derive(Debug)]
pub struct GameStreamClient {
    decoder: Decoder,
    neural: Option<NeuralSr>,
    tier: Option<ModelTier>,
    bilinear: InterpUpscaler,
    scale: usize,
}

impl GameStreamClient {
    /// Creates a client for the given upscale factor (2 in the paper's
    /// deployment), running the calibrated top-tier SR model.
    ///
    /// # Panics
    ///
    /// Panics when `scale` is zero.
    pub fn new(scale: usize) -> Self {
        assert!(scale > 0, "scale must be nonzero");
        GameStreamClient {
            decoder: Decoder::new(),
            neural: Some(NeuralSr::new(ModelTier::Edsr64.proxy_config(scale))),
            tier: Some(ModelTier::Edsr64),
            bilinear: InterpUpscaler::new(InterpKernel::Bilinear, scale),
            scale,
        }
    }

    /// The upscale factor.
    pub fn scale(&self) -> usize {
        self.scale
    }

    /// The SR model tier currently loaded on the NPU; `None` means the
    /// bilinear-only degradation floor.
    pub fn model_tier(&self) -> Option<ModelTier> {
        self.tier
    }

    /// Swaps the NPU's SR model for a (usually cheaper) tier, or unloads it
    /// entirely (`None` — the degradation ladder's bilinear floor, where
    /// the whole frame takes the GPU path). Only the neural model is
    /// rebuilt: the decoder's reference chain is untouched, so switching
    /// tiers mid-stream is safe.
    pub fn set_model_tier(&mut self, tier: Option<ModelTier>) {
        if tier == self.tier {
            return;
        }
        self.neural = tier.map(|t| NeuralSr::new(t.proxy_config(self.scale)));
        self.tier = tier;
    }

    /// Decodes a packet (hardware-decoder path: the codec is a black box
    /// here) and runs the RoI-assisted upscale.
    ///
    /// # Errors
    ///
    /// Propagates codec errors (missing reference, corrupt stream, …).
    pub fn process(&mut self, packet: &EncodedFrame, roi: Rect) -> Result<ClientOutput, GssError> {
        let decoded = self.decoder.decode(packet)?;
        Ok(self.upscale(&decoded.frame, roi))
    }

    /// [`GameStreamClient::process`] plus telemetry: bumps the
    /// `FramesUpscaled` counter and lets the (black-box) decoder count
    /// reconstructed inter frames. Modeled stage *timings* are recorded by
    /// the session from the platform model, not here — the client only
    /// moves pixels. The output is identical to an untraced call.
    ///
    /// # Errors
    ///
    /// Same as [`GameStreamClient::process`].
    pub fn process_traced(
        &mut self,
        packet: &EncodedFrame,
        roi: Rect,
        rec: &mut gss_telemetry::Recorder,
    ) -> Result<ClientOutput, GssError> {
        let decoded = self.decoder.decode_traced(packet, rec)?;
        rec.incr(gss_telemetry::Counter::FramesUpscaled);
        Ok(self.upscale(&decoded.frame, roi))
    }

    /// The RoI-assisted upscale on an already-decoded frame: DNN SR inside
    /// `roi`, bilinear everywhere else, merged. The two paths run on
    /// separate threads like the paper's NPU ∥ GPU split. On the
    /// bilinear-only floor (no model tier) the NPU path and the merge are
    /// skipped and the whole frame is GPU-interpolated.
    ///
    /// `roi` is clamped into the frame if it protrudes.
    pub fn upscale(&self, lr: &Frame, roi: Rect) -> ClientOutput {
        let (w, h) = lr.size();
        let roi = roi.clamp_to(w, h);
        let roi_hr = roi.scaled(self.scale);
        let Some(neural) = &self.neural else {
            return ClientOutput {
                frame: self.bilinear.upscale(lr),
                roi_hr,
            };
        };
        let (neural_patch, mut hr) = crossbeam::thread::scope(|s| {
            // NPU path: DNN SR of the RoI patch
            let npu = s.spawn(|_| {
                let patch = lr.crop(roi);
                neural.upscale(&patch)
            });
            // GPU path: bilinear of the (whole) frame; only the non-RoI
            // part of this output survives the merge
            let full = self.bilinear.upscale(lr);
            (npu.join().expect("npu thread panicked"), full)
        })
        .expect("upscale scope panicked");

        hr.paste(&neural_patch, roi_hr.x, roi_hr.y);
        ClientOutput { frame: hr, roi_hr }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_codec::{Encoder, EncoderConfig};
    use gss_frame::Plane;
    use gss_metrics::psnr_planes;

    fn scene_frame(w: usize, h: usize) -> Frame {
        Frame::from_planes(
            Plane::from_fn(w, h, |x, y| {
                let stripes = if (x / 5 + y / 4) % 2 == 0 {
                    70.0
                } else {
                    180.0
                };
                let tex = 20.0 * ((x as f32 * 0.7).sin() * (y as f32 * 0.5).cos());
                (stripes + tex).clamp(0.0, 255.0)
            }),
            Plane::filled(w, h, 120.0),
            Plane::filled(w, h, 136.0),
        )
        .unwrap()
    }

    #[test]
    fn output_dimensions_are_scaled() {
        let client = GameStreamClient::new(2);
        let lr = scene_frame(64, 36);
        let out = client.upscale(&lr, Rect::new(10, 10, 20, 20));
        assert_eq!(out.frame.size(), (128, 72));
    }

    #[test]
    fn roi_region_gets_higher_quality_than_bilinear() {
        // ground truth: a detailed HR scene; stream its downsample
        let hr = scene_frame(128, 96);
        let lr = hr.downsample_box(2);
        let roi = Rect::new(16, 12, 32, 32);
        let client = GameStreamClient::new(2);
        let ours = client.upscale(&lr, roi);
        let plain = InterpUpscaler::new(InterpKernel::Bilinear, 2).upscale(&lr);
        let roi_hr = roi.scaled(2);
        let gt_patch = hr.y().crop(roi_hr).unwrap();
        let ours_patch = ours.frame.y().crop(roi_hr).unwrap();
        let plain_patch = plain.y().crop(roi_hr).unwrap();
        let p_ours = psnr_planes(&gt_patch, &ours_patch).unwrap();
        let p_plain = psnr_planes(&gt_patch, &plain_patch).unwrap();
        assert!(
            p_ours > p_plain,
            "roi psnr {p_ours:.2} vs bilinear {p_plain:.2}"
        );
    }

    #[test]
    fn non_roi_region_matches_pure_bilinear() {
        let lr = scene_frame(64, 48);
        let roi = Rect::new(8, 8, 16, 16);
        let client = GameStreamClient::new(2);
        let ours = client.upscale(&lr, roi);
        let plain = InterpUpscaler::new(InterpKernel::Bilinear, 2).upscale(&lr);
        // a probe far from the RoI must be bit-identical to plain bilinear
        for (x, y) in [(100, 80), (2, 2), (120, 10)] {
            assert_eq!(ours.frame.y().get(x, y), plain.y().get(x, y), "({x},{y})");
        }
    }

    #[test]
    fn protruding_roi_is_clamped() {
        let lr = scene_frame(64, 36);
        let client = GameStreamClient::new(2);
        let out = client.upscale(&lr, Rect::new(50, 20, 30, 30));
        assert!(out.roi_hr.right() <= 128 && out.roi_hr.bottom() <= 72);
        assert_eq!(out.roi_hr.width, 60);
    }

    #[test]
    fn end_to_end_with_codec() {
        let mut enc = Encoder::new(EncoderConfig {
            gop_size: 4,
            ..EncoderConfig::default()
        });
        let mut client = GameStreamClient::new(2);
        for t in 0..6 {
            let lr = scene_frame(64, 48);
            let packet = enc.encode(&lr).unwrap();
            let out = client.process(&packet, Rect::new(16, 12, 24, 24)).unwrap();
            assert_eq!(out.frame.size(), (128, 96), "frame {t}");
        }
    }

    #[test]
    fn tier_fallback_degrades_quality_and_floor_matches_bilinear() {
        let hr = scene_frame(128, 96);
        let lr = hr.downsample_box(2);
        let roi = Rect::new(16, 12, 32, 32);
        let roi_hr = roi.scaled(2);
        let gt_patch = hr.y().crop(roi_hr).unwrap();
        let mut client = GameStreamClient::new(2);
        assert_eq!(client.model_tier(), Some(ModelTier::Edsr64));
        let mut patch_psnr = Vec::new();
        for tier in ModelTier::ALL {
            client.set_model_tier(Some(tier));
            let out = client.upscale(&lr, roi);
            let patch = out.frame.y().crop(roi_hr).unwrap();
            patch_psnr.push(psnr_planes(&gt_patch, &patch).unwrap());
        }
        // the proxy's refinement gains are content-dependent, so adjacent
        // tiers may tie to within a tenth of a dB — but no step down the
        // ladder improves the RoI beyond that noise, and the top tier
        // beats the cheapest
        assert!(
            patch_psnr.windows(2).all(|w| w[1] <= w[0] + 0.1),
            "{patch_psnr:?}"
        );
        assert!(patch_psnr[0] >= patch_psnr[2] - 1e-9, "{patch_psnr:?}");
        // the floor is byte-identical to pure bilinear, with no panic on a
        // skipped NPU path
        client.set_model_tier(None);
        assert_eq!(client.model_tier(), None);
        let floor = client.upscale(&lr, roi);
        let plain = InterpUpscaler::new(InterpKernel::Bilinear, 2).upscale(&lr);
        assert_eq!(floor.frame, plain);
        // and the decoder survives tier swaps mid-stream
        let mut enc = Encoder::new(EncoderConfig {
            gop_size: 100,
            ..EncoderConfig::default()
        });
        let mut streaming = GameStreamClient::new(2);
        for t in 0..4 {
            let packet = enc.encode(&scene_frame(64, 48)).unwrap();
            if t == 2 {
                streaming.set_model_tier(Some(ModelTier::Fsrcnn));
            }
            streaming.process(&packet, roi).unwrap();
        }
    }

    #[test]
    fn upscale_is_deterministic() {
        let lr = scene_frame(48, 32);
        let client = GameStreamClient::new(2);
        let a = client.upscale(&lr, Rect::new(8, 8, 16, 16));
        let b = client.upscale(&lr, Rect::new(8, 8, 16, 16));
        assert_eq!(a.frame, b.frame);
    }
}
