//! Frame-scoped telemetry for the GameStreamSR reproduction.
//!
//! The simulated streaming pipeline (render → encode → link → decode →
//! NPU/GPU upscale → display) previously reported only end-of-run
//! aggregates. This crate adds an observability layer that works at frame
//! granularity while staying deterministic and allocation-free on the hot
//! path:
//!
//! - [`Recorder`] — one per session; records stage spans keyed by
//!   [`Stage`], counters ([`Counter`]), gauges ([`Gauge`]), per-frame
//!   motion-to-photon latency, wire bytes, and deadline misses against a
//!   configurable budget. All aggregate state lives in fixed-size arrays.
//! - [`Histogram`] — fixed geometric buckets with per-bucket count *and*
//!   sum, so percentile queries return bucket means (exact for a bucket of
//!   identical samples, and therefore exact for a single sample).
//! - [`Sink`] implementations — [`NullSink`], [`MemorySink`] (tests),
//!   [`JsonlSink`] (one JSON object per line) — shared via [`SinkHandle`].
//!   With no sink attached, recording is pure array arithmetic.
//! - [`TelemetrySummary`] — the durable per-session aggregate, rendered as
//!   a human-readable table or deterministic JSON.
//!
//! All recorded times are *modeled* milliseconds from the platform timing
//! models, not wall-clock measurements, so identical seeded sessions
//! produce byte-identical summaries — a property the workspace tests
//! assert.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
mod hist;
pub mod json;
pub mod prom;
mod recorder;
pub mod sampling;
mod sink;
pub mod slo;
mod summary;
pub mod timeseries;
pub mod trace;

pub use attribution::{Attributor, BlameEntry, MissCause, MissRecord, SessionAttribution};
pub use hist::{DistSummary, Exemplar, Histogram, BUCKETS};
pub use recorder::{Recorder, TelemetryError, MAX_SPAN_DEPTH};
pub use sampling::{
    compute_exemplars, enforce_fleet_cap, KeepReason, SamplingPolicy, SamplingStats,
    SamplingSummary, SamplingTraceSink, SessionExemplars, TraceBudget,
};
pub use sink::{
    Event, InstantKind, JsonlSink, Level, MemorySink, MultiSink, NullSink, Sink, SinkHandle,
};
pub use slo::{FrameHealth, Objective, SloEngine, SloEvent, SloSpec, SloStatus, SloSummary};
pub use summary::{CounterSummary, GaugeSummary, StageSummary, TelemetrySummary};
pub use timeseries::{
    jain_fairness, AdmissionStormDetector, Bucket, RungFlapDetector, SeriesSet, StarvationDetector,
    TimeSeries,
};
pub use trace::{
    chrome_trace_json, chrome_trace_json_ext, CounterTrack, TraceFrame, TraceInstant, TraceSession,
    TraceSink, TraceSpan,
};

/// The 60 FPS real-time frame budget in milliseconds (16.66 ms). This is
/// the canonical definition; `gss_platform::REALTIME_BUDGET_MS` re-exports
/// it so the timing models, the session simulator, the recorder and the
/// SLO engine all judge frames against the same number.
pub const REALTIME_BUDGET_MS: f64 = 1000.0 / 60.0;

/// Slack added to every deadline comparison so float noise from summing
/// modeled stage times cannot flip a frame that is exactly on budget.
/// Shared by [`Recorder::end_frame`], the session simulator's miss marker
/// and the SLO engine via [`deadline_met`], so the three predicates cannot
/// drift apart.
pub const DEADLINE_EPSILON_MS: f64 = 1e-9;

/// The deadline predicate: does a critical path of `critical_ms` fit a
/// budget of `budget_ms`, up to [`DEADLINE_EPSILON_MS`] of float noise?
pub fn deadline_met(critical_ms: f64, budget_ms: f64) -> bool {
    critical_ms <= budget_ms + DEADLINE_EPSILON_MS
}

/// The pipeline stages a frame passes through, server to display.
///
/// Stage spans may overlap in time: the server searches the region of
/// interest while encoding, and the client's NPU super-resolution runs in
/// parallel with GPU interpolation. Spans carry explicit start/end times
/// rather than relying on nesting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum Stage {
    /// Game render of the native frame on the server GPU.
    Render,
    /// Depth-buffer capture and pre-processing on the server.
    DepthCapture,
    /// Depth-guided region-of-interest search on the server.
    RoiDetect,
    /// Video encode of the low-resolution frame.
    Encode,
    /// Network transfer from server to client.
    LinkTransfer,
    /// Video decode on the client.
    Decode,
    /// Neural super-resolution of the region of interest on the NPU.
    NpuSr,
    /// Interpolation upscale of the full frame on the client GPU (also
    /// used for generic client-side reconstruction in the SOTA baseline).
    GpuInterp,
    /// Merge of the neural region into the interpolated frame.
    Merge,
    /// Scan-out / display of the finished frame.
    Display,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 10;

    /// All stages, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Render,
        Stage::DepthCapture,
        Stage::RoiDetect,
        Stage::Encode,
        Stage::LinkTransfer,
        Stage::Decode,
        Stage::NpuSr,
        Stage::GpuInterp,
        Stage::Merge,
        Stage::Display,
    ];

    /// Stable array index of this stage.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Kebab-case label used in serialized events and tables.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Render => "render",
            Stage::DepthCapture => "depth-capture",
            Stage::RoiDetect => "roi-detect",
            Stage::Encode => "encode",
            Stage::LinkTransfer => "link-transfer",
            Stage::Decode => "decode",
            Stage::NpuSr => "npu-sr",
            Stage::GpuInterp => "gpu-interp",
            Stage::Merge => "merge",
            Stage::Display => "display",
        }
    }
}

/// Monotonic event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum Counter {
    /// Frames encoded by the server codec.
    FramesEncoded,
    /// Keyframes forced by loss recovery (NACK-triggered intra refresh).
    KeyframesForced,
    /// NACKs raised by the client after a lost transfer.
    Nacks,
    /// Transfers dropped by the link model.
    FramesDropped,
    /// Frames the client displayed frozen (no fresh data).
    FramesFrozen,
    /// Frames upscaled through the RoI-parallel client path.
    FramesUpscaled,
    /// Inter frames reconstructed from motion + residual (NEMO baseline).
    FramesReconstructed,
    /// Frames whose motion-to-photon latency exceeded the budget.
    DeadlineMisses,
    /// Total payload bytes put on the wire.
    BytesOnWire,
    /// Degradation-ladder steps taken toward a cheaper rung.
    LadderDowngrades,
    /// Degradation-ladder steps recovered toward full quality.
    LadderUpgrades,
    /// NACKs re-issued after the previous request timed out.
    NackRetries,
    /// Link drops caused by bottleneck-queue overflow (tail drop).
    DropsQueueOverflow,
    /// Link drops caused by a scripted outage window.
    DropsOutage,
    /// Delivered frames discarded because the client decoder was down
    /// (crashed or mid-reconfigure).
    DropsDecoderDown,
    /// Hardware decoder crashes observed by the recovery state machine.
    DecoderCrashes,
    /// Decoder reconfigure attempts started by the recovery state machine
    /// (> crashes when keyframe resync times out and the attempt retries).
    DecoderReconfigures,
    /// Rung-flap anomalies: the degradation ladder reversed direction often
    /// enough inside a short window to count as oscillation.
    AnomalyRungFlap,
    /// Starvation anomalies: the session's consumed rate stayed under its
    /// fair-share allocation for a sustained streak of ticks.
    AnomalyStarvation,
    /// Admission-storm anomalies: a flash crowd of join requests dense
    /// enough to blow through the wait queue (fleet-level counter).
    AnomalyAdmissionStorm,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 20;

    /// All counters, in declaration order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::FramesEncoded,
        Counter::KeyframesForced,
        Counter::Nacks,
        Counter::FramesDropped,
        Counter::FramesFrozen,
        Counter::FramesUpscaled,
        Counter::FramesReconstructed,
        Counter::DeadlineMisses,
        Counter::BytesOnWire,
        Counter::LadderDowngrades,
        Counter::LadderUpgrades,
        Counter::NackRetries,
        Counter::DropsQueueOverflow,
        Counter::DropsOutage,
        Counter::DropsDecoderDown,
        Counter::DecoderCrashes,
        Counter::DecoderReconfigures,
        Counter::AnomalyRungFlap,
        Counter::AnomalyStarvation,
        Counter::AnomalyAdmissionStorm,
    ];

    /// Stable array index of this counter.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Kebab-case label used in serialized events and tables.
    pub fn label(self) -> &'static str {
        match self {
            Counter::FramesEncoded => "frames-encoded",
            Counter::KeyframesForced => "keyframes-forced",
            Counter::Nacks => "nacks",
            Counter::FramesDropped => "frames-dropped",
            Counter::FramesFrozen => "frames-frozen",
            Counter::FramesUpscaled => "frames-upscaled",
            Counter::FramesReconstructed => "frames-reconstructed",
            Counter::DeadlineMisses => "deadline-misses",
            Counter::BytesOnWire => "bytes-on-wire",
            Counter::LadderDowngrades => "ladder-downgrades",
            Counter::LadderUpgrades => "ladder-upgrades",
            Counter::NackRetries => "nack-retries",
            Counter::DropsQueueOverflow => "drops-queue-overflow",
            Counter::DropsOutage => "drops-outage",
            Counter::DropsDecoderDown => "drops-decoder-down",
            Counter::DecoderCrashes => "decoder-crashes",
            Counter::DecoderReconfigures => "decoder-reconfigures",
            Counter::AnomalyRungFlap => "anomaly-rung-flap",
            Counter::AnomalyStarvation => "anomaly-starvation",
            Counter::AnomalyAdmissionStorm => "anomaly-admission-storm",
        }
    }
}

/// Sampled values whose latest/extreme/mean readings matter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum Gauge {
    /// Area of the selected region of interest, in low-res pixels.
    RoiAreaPx,
    /// Base-layer quantizer chosen by the rate controller.
    EncodeQuality,
    /// Residual quantization step chosen by the rate controller.
    EncodeResidualStep,
    /// Link goodput observed by the network model, in Mbit/s.
    LinkBandwidthMbps,
    /// Current degradation-ladder rung (0 = full quality).
    LadderRung,
    /// NPU thermal slowdown factor applied to the SR timing model.
    NpuSlowdown,
    /// Recovery state machine position (0 = healthy, 1 = draining,
    /// 2 = reconfiguring, 3 = awaiting keyframe).
    RecoveryState,
}

impl Gauge {
    /// Number of gauges.
    pub const COUNT: usize = 7;

    /// All gauges, in declaration order.
    pub const ALL: [Gauge; Gauge::COUNT] = [
        Gauge::RoiAreaPx,
        Gauge::EncodeQuality,
        Gauge::EncodeResidualStep,
        Gauge::LinkBandwidthMbps,
        Gauge::LadderRung,
        Gauge::NpuSlowdown,
        Gauge::RecoveryState,
    ];

    /// Stable array index of this gauge.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Kebab-case label used in serialized events and tables.
    pub fn label(self) -> &'static str {
        match self {
            Gauge::RoiAreaPx => "roi-area-px",
            Gauge::EncodeQuality => "encode-quality",
            Gauge::EncodeResidualStep => "encode-residual-step",
            Gauge::LinkBandwidthMbps => "link-bandwidth-mbps",
            Gauge::LadderRung => "ladder-rung",
            Gauge::NpuSlowdown => "npu-slowdown",
            Gauge::RecoveryState => "recovery-state",
        }
    }
}

/// Running statistics of one gauge.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct GaugeStat {
    /// Most recent observation.
    pub last: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Sum of observations (for the mean).
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl Default for GaugeStat {
    fn default() -> Self {
        GaugeStat {
            last: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            count: 0,
        }
    }
}

impl GaugeStat {
    /// Folds one observation into the statistics.
    pub fn observe(&mut self, value: f64) {
        self.last = value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value;
        self.count += 1;
    }

    /// Mean of the observations, or `None` when none were made. An empty
    /// gauge must not masquerade as a measured 0.0 — that degenerate value
    /// would poison drift comparisons in the benchmark-regression gate.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_match_all_order() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        let labels: std::collections::HashSet<&str> =
            Stage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), Stage::COUNT, "stage labels must be unique");
    }

    #[test]
    fn counter_and_gauge_indices_match_all_order() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
        let counter_labels: std::collections::HashSet<&str> =
            Counter::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(counter_labels.len(), Counter::COUNT);
        let gauge_labels: std::collections::HashSet<&str> =
            Gauge::ALL.iter().map(|g| g.label()).collect();
        assert_eq!(gauge_labels.len(), Gauge::COUNT);
    }

    #[test]
    fn gauge_stat_tracks_extremes_and_mean() {
        let mut g = GaugeStat::default();
        assert_eq!(g.mean(), None, "empty gauge must not report a mean");
        g.observe(4.0);
        g.observe(2.0);
        g.observe(6.0);
        assert_eq!(g.last, 6.0);
        assert_eq!(g.min, 2.0);
        assert_eq!(g.max, 6.0);
        assert_eq!(g.mean(), Some(4.0));
        assert_eq!(g.count, 3);
    }
}
