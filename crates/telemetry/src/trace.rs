//! Causal per-frame tracing and Chrome trace-event export.
//!
//! [`TraceSink`] is a [`Sink`] that reconstructs a *causal trace* from the
//! recorder's event stream: every frame becomes a tree of spans (a `frame`
//! root, one child per pipeline stage, and a synthesized `upscale` umbrella
//! over the parallel NPU ∥ GPU ∥ merge leg), annotated with instant events
//! for deadline misses, drops, ladder-rung shifts, NACKs, and fault
//! activations. [`TraceSink::to_chrome_json`] renders the whole trace in
//! the Chrome trace-event format, loadable in Perfetto or
//! `chrome://tracing`.
//!
//! Two structural properties are maintained by construction and asserted
//! by the workspace property tests:
//!
//! - **Well-formed span trees** — every span's interval is contained in its
//!   parent's interval (the root and umbrella are envelopes of their
//!   children), and every `parent` id refers to a span in the same frame.
//! - **Determinism** — all timestamps are *modeled* milliseconds from the
//!   platform timing models, never wall-clock reads, so two same-seed runs
//!   emit byte-identical trace JSON at any worker count. This is also why
//!   the trace's parallel lanes are the modeled NPU/GPU/merge lanes rather
//!   than the thread pool's measured per-worker accounting: the pool's
//!   nanosecond measurements are real time and vary run to run, so they
//!   feed the scaling table and the benchmark harness instead.
//!
//! Lane model (Chrome `tid` per session `pid`):
//!
//! | tid | lane            | spans                        |
//! |-----|-----------------|------------------------------|
//! | 0   | `frames`        | frame roots (async), instants|
//! | 1   | `server`        | render, encode               |
//! | 2   | `server-roi`    | depth-capture, roi-detect    |
//! | 3   | `network`       | link-transfer                |
//! | 4   | `client-decode` | decode, display              |
//! | 5   | `client-npu`    | npu-sr                       |
//! | 6   | `client-gpu`    | gpu-interp, merge            |
//! | 7   | `client-upscale`| upscale umbrella             |

use std::sync::{Arc, Mutex};

use crate::sink::{json_escape, json_f64, Event, InstantKind, Sink};
use crate::Stage;

/// Human-readable lane names, indexed by Chrome `tid`.
pub const LANES: [&str; 8] = [
    "frames",
    "server",
    "server-roi",
    "network",
    "client-decode",
    "client-npu",
    "client-gpu",
    "client-upscale",
];

/// The synthesized umbrella span over the parallel client upscale leg.
pub const UPSCALE_SPAN: &str = "upscale";

/// The per-frame root span name.
pub const FRAME_SPAN: &str = "frame";

fn stage_lane(stage: Stage) -> u32 {
    match stage {
        Stage::Render | Stage::Encode => 1,
        Stage::DepthCapture | Stage::RoiDetect => 2,
        Stage::LinkTransfer => 3,
        Stage::Decode | Stage::Display => 4,
        Stage::NpuSr => 5,
        Stage::GpuInterp | Stage::Merge => 6,
    }
}

fn is_upscale_leg(stage: Stage) -> bool {
    matches!(stage, Stage::NpuSr | Stage::GpuInterp | Stage::Merge)
}

/// One span in a frame's causal tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Span id, unique within the frame. The frame root is always id 0.
    pub id: u32,
    /// Parent span id; `None` only for the frame root.
    pub parent: Option<u32>,
    /// Span name (a stage label, [`FRAME_SPAN`], or [`UPSCALE_SPAN`]).
    pub name: String,
    /// Rendering lane, an index into [`LANES`].
    pub lane: u32,
    /// Start time in modeled milliseconds.
    pub start_ms: f64,
    /// End time in modeled milliseconds (`>= start_ms`).
    pub end_ms: f64,
}

/// One instant event attached to a frame.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceInstant {
    /// What happened.
    pub kind: InstantKind,
    /// When, in modeled milliseconds.
    pub ts_ms: f64,
    /// Free-form detail (cause, rung transition, block id, …).
    pub detail: String,
}

/// One frame's causal trace: a well-formed span tree plus instants.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFrame {
    /// Frame number within the session.
    pub frame: u64,
    /// Globally unique trace id (`pid * 1_000_000 + frame`).
    pub trace_id: u64,
    /// Whether the frame met its deadline (`false` until `FrameEnd`).
    pub deadline_met: bool,
    /// Spans; index 0 is the frame root, whose interval is the envelope of
    /// every child.
    pub spans: Vec<TraceSpan>,
    /// Instant events, in arrival order. Instants that arrive between
    /// `FrameEnd` and the next `FrameStart` (e.g. ladder shifts decided by
    /// the post-frame controller) attach to the frame that just closed.
    pub instants: Vec<TraceInstant>,
}

impl TraceFrame {
    /// Looks up a span by id.
    pub fn span(&self, id: u32) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// The spans named after `stage`, in arrival order.
    pub fn stage_spans(&self, stage: Stage) -> Vec<&TraceSpan> {
        self.spans
            .iter()
            .filter(|s| s.name == stage.label())
            .collect()
    }
}

/// One traced session: a Chrome "process".
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSession {
    /// Session label, rendered as the Chrome process name.
    pub label: String,
    /// Chrome pid (1-based session index).
    pub pid: u64,
    /// Completed frames, in order.
    pub frames: Vec<TraceFrame>,
}

/// An in-flight frame before `FrameEnd` settles its deadline verdict.
/// Shared with the sampling sink (`crate::sampling`), which reconstructs
/// frames from the same event stream via [`build_frame`] so a retained
/// frame is structurally identical to its full-trace counterpart.
#[derive(Debug, Default)]
pub(crate) struct OpenFrame {
    pub(crate) frame: u64,
    pub(crate) spans: Vec<(Stage, f64, f64)>,
    pub(crate) instants: Vec<TraceInstant>,
}

#[derive(Debug, Default)]
struct TraceState {
    sessions: Vec<SessionState>,
}

#[derive(Debug, Default)]
struct SessionState {
    label: String,
    frames: Vec<TraceFrame>,
    open: Option<OpenFrame>,
}

impl SessionState {
    fn finalize(&mut self, deadline_met: bool) {
        let Some(open) = self.open.take() else {
            return;
        };
        let frame = build_frame(open, deadline_met);
        self.frames.push(frame);
    }
}

pub(crate) fn build_frame(open: OpenFrame, deadline_met: bool) -> TraceFrame {
    let mut spans = Vec::with_capacity(open.spans.len() + 2);
    // Reserve id 0 for the root; fill its envelope afterwards.
    spans.push(TraceSpan {
        id: 0,
        parent: None,
        name: FRAME_SPAN.to_owned(),
        lane: 0,
        start_ms: 0.0,
        end_ms: 0.0,
    });
    let has_upscale = open.spans.iter().any(|(s, _, _)| is_upscale_leg(*s));
    let umbrella_id = (open.spans.len() + 1) as u32;
    for (i, (stage, start, end)) in open.spans.iter().enumerate() {
        let parent = if has_upscale && is_upscale_leg(*stage) {
            Some(umbrella_id)
        } else {
            Some(0)
        };
        spans.push(TraceSpan {
            id: (i + 1) as u32,
            parent,
            name: stage.label().to_owned(),
            lane: stage_lane(*stage),
            start_ms: *start,
            end_ms: (*end).max(*start),
        });
    }
    if has_upscale {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &spans[1..] {
            if s.parent == Some(umbrella_id) {
                lo = lo.min(s.start_ms);
                hi = hi.max(s.end_ms);
            }
        }
        spans.push(TraceSpan {
            id: umbrella_id,
            parent: Some(0),
            name: UPSCALE_SPAN.to_owned(),
            lane: 7,
            start_ms: lo,
            end_ms: hi,
        });
    }
    // Root envelope: cover every child; an empty (frozen) frame collapses
    // to the earliest instant, or zero width at 0.
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in &spans[1..] {
        lo = lo.min(s.start_ms);
        hi = hi.max(s.end_ms);
    }
    if spans.len() == 1 {
        let anchor = open.instants.first().map(|i| i.ts_ms).unwrap_or(0.0);
        lo = anchor;
        hi = anchor;
    }
    spans[0].start_ms = lo;
    spans[0].end_ms = hi;
    TraceFrame {
        frame: open.frame,
        trace_id: 0, // patched once the owning session's pid is known
        deadline_met,
        spans,
        instants: open.instants,
    }
}

/// A sink that reconstructs causal frame traces from the event stream.
///
/// Cloning shares the underlying trace (the [`crate::MemorySink`] pattern):
/// hand one clone to the recorder via [`crate::SinkHandle`] and keep the
/// other to export after the session finishes.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    state: Arc<Mutex<TraceState>>,
}

impl TraceSink {
    /// An empty trace sink.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut TraceState) -> R) -> R {
        let mut state = self.state.lock().expect("trace sink poisoned");
        f(&mut state)
    }

    fn current(state: &mut TraceState) -> &mut SessionState {
        if state.sessions.is_empty() {
            // Events without a SessionStart (unit tests, bare recorders)
            // land in an implicit unlabelled session.
            state.sessions.push(SessionState::default());
        }
        state.sessions.last_mut().expect("session exists")
    }

    fn open_frame(state: &mut TraceState, frame: u64) -> &mut OpenFrame {
        let session = Self::current(state);
        if session.open.is_none() {
            session.open = Some(OpenFrame {
                frame,
                ..OpenFrame::default()
            });
        }
        session.open.as_mut().expect("frame open")
    }

    /// Snapshot of every traced session, with pids and trace ids assigned.
    pub fn sessions(&self) -> Vec<TraceSession> {
        self.with_state(|state| {
            state
                .sessions
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let pid = (i + 1) as u64;
                    let mut frames = s.frames.clone();
                    for f in &mut frames {
                        f.trace_id = pid * 1_000_000 + f.frame;
                    }
                    TraceSession {
                        label: s.label.clone(),
                        pid,
                        frames,
                    }
                })
                .collect()
        })
    }

    /// Total completed frames across all sessions.
    pub fn frame_count(&self) -> usize {
        self.with_state(|state| state.sessions.iter().map(|s| s.frames.len()).sum())
    }

    /// Renders the trace as a Chrome trace-event JSON document (the
    /// `{"displayTimeUnit":…,"traceEvents":[…]}` object form), loadable in
    /// Perfetto or `chrome://tracing`.
    ///
    /// Frame roots become async nestable `b`/`e` pairs on lane 0 (frames
    /// overlap in a pipelined stream, so they cannot be complete events on
    /// one thread); stage spans become `X` complete events on their lanes;
    /// instants become process-scoped `i` events. All timestamps are
    /// shifted so the earliest is 0 and converted to microseconds. Output
    /// is byte-deterministic for identical event streams.
    pub fn to_chrome_json(&self) -> String {
        chrome_trace_json(&self.sessions())
    }
}

/// One Chrome counter track: a named per-process series of `(ts_ms, value)`
/// samples rendered as `C` (counter) events. Perfetto draws one counter
/// track per `(pid, name)` pair, so fleet-wide series live on a dedicated
/// "fleet" process while per-session series share the session's pid and sit
/// directly under its span lanes.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterTrack {
    /// Chrome process the track belongs to.
    pub pid: u64,
    /// Track (and counter-event) name.
    pub name: String,
    /// `(modeled ms, value)` samples in time order.
    pub samples: Vec<(f64, f64)>,
}

/// Renders a set of traced sessions — possibly collected from *several*
/// sinks, e.g. one per fleet session — as one Chrome trace-event JSON
/// document (see [`TraceSink::to_chrome_json`] for the event mapping).
/// Each [`TraceSession`] becomes one Chrome process; callers merging
/// sinks must assign unique `pid`s (and matching `trace_id`s) first.
/// Output is byte-deterministic for identical inputs.
pub fn chrome_trace_json(sessions: &[TraceSession]) -> String {
    chrome_trace_json_ext(sessions, &[], &[], &[])
}

/// [`chrome_trace_json`] extended with synthetic processes, counter tracks
/// and process-scoped markers — the fleet-trace form.
///
/// - `extra_processes` — `(pid, name)` pairs that get `process_name`
///   metadata without any span lanes (e.g. pid 0 `"fleet"` for
///   fleet-aggregate tracks).
/// - `counters` — [`CounterTrack`]s rendered as `C` events in input order.
/// - `markers` — `(pid, instant)` pairs rendered as process-scoped `i`
///   events in input order (e.g. fleet-level anomaly markers).
///
/// Counter samples and markers participate in the global minimum-timestamp
/// shift, and with all three extensions empty the output is byte-identical
/// to [`chrome_trace_json`]. Determinism contract unchanged: identical
/// inputs render byte-identical JSON at any worker count.
pub fn chrome_trace_json_ext(
    sessions: &[TraceSession],
    extra_processes: &[(u64, &str)],
    counters: &[CounterTrack],
    markers: &[(u64, TraceInstant)],
) -> String {
    {
        // Global shift: Chrome viewers dislike negative timestamps, and
        // frame 0's root starts before t=0 (the server-side pipeline leads
        // the send timestamp the session clock is anchored on).
        let mut min_ms = f64::INFINITY;
        for s in sessions {
            for f in &s.frames {
                for sp in &f.spans {
                    min_ms = min_ms.min(sp.start_ms);
                }
                for i in &f.instants {
                    min_ms = min_ms.min(i.ts_ms);
                }
            }
        }
        for c in counters {
            for (ts, _) in &c.samples {
                min_ms = min_ms.min(*ts);
            }
        }
        for (_, m) in markers {
            min_ms = min_ms.min(m.ts_ms);
        }
        if !min_ms.is_finite() {
            min_ms = 0.0;
        }
        let us = |ms: f64| json_f64((ms - min_ms) * 1000.0);

        let mut events: Vec<String> = Vec::new();
        for s in sessions {
            let name = if s.label.is_empty() {
                "(unlabelled)".to_owned()
            } else {
                s.label.clone()
            };
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
                s.pid,
                json_escape(&name)
            ));
            for (tid, lane) in LANES.iter().enumerate() {
                events.push(format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                    s.pid, tid, lane
                ));
                events.push(format!(
                    "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"sort_index\":{}}}}}",
                    s.pid, tid, tid
                ));
            }
        }
        for (pid, name) in extra_processes {
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
                pid,
                json_escape(name)
            ));
        }
        for c in counters {
            for (ts, value) in &c.samples {
                events.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{\"value\":{}}}}}",
                    json_escape(&c.name),
                    us(*ts),
                    c.pid,
                    json_f64(*value)
                ));
            }
        }
        for s in sessions {
            for f in &s.frames {
                let root = &f.spans[0];
                let id_hex = format!("0x{:x}", f.trace_id);
                events.push(format!(
                    "{{\"name\":\"{} {}\",\"cat\":\"frame\",\"ph\":\"b\",\"id\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{\"trace_id\":{},\"deadline_met\":{}}}}}",
                    FRAME_SPAN, f.frame, id_hex, us(root.start_ms), s.pid, f.trace_id, f.deadline_met
                ));
                for sp in &f.spans[1..] {
                    let dur = json_f64(((sp.end_ms - sp.start_ms) * 1000.0).max(0.0));
                    events.push(format!(
                        "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"frame\":{},\"trace_id\":{},\"span_id\":{},\"parent_id\":{}}}}}",
                        json_escape(&sp.name),
                        us(sp.start_ms),
                        dur,
                        s.pid,
                        sp.lane,
                        f.frame,
                        f.trace_id,
                        sp.id,
                        sp.parent.map_or_else(|| "null".to_owned(), |p| p.to_string()),
                    ));
                }
                for i in &f.instants {
                    events.push(format!(
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{\"frame\":{},\"trace_id\":{},\"detail\":\"{}\"}}}}",
                        i.kind.label(),
                        us(i.ts_ms),
                        s.pid,
                        f.frame,
                        f.trace_id,
                        json_escape(&i.detail)
                    ));
                }
                events.push(format!(
                    "{{\"name\":\"{} {}\",\"cat\":\"frame\",\"ph\":\"e\",\"id\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{}}}}",
                    FRAME_SPAN, f.frame, id_hex, us(root.end_ms), s.pid
                ));
            }
        }
        for (pid, m) in markers {
            events.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{\"detail\":\"{}\"}}}}",
                m.kind.label(),
                us(m.ts_ms),
                pid,
                json_escape(&m.detail)
            ));
        }

        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(e);
        }
        out.push_str("\n]}\n");
        out
    }
}

impl Sink for TraceSink {
    fn emit(&mut self, event: &Event) {
        self.with_state(|state| match event {
            Event::SessionStart { label, .. } => {
                state.sessions.push(SessionState {
                    label: label.clone(),
                    ..SessionState::default()
                });
            }
            Event::FrameStart { frame } => {
                let session = Self::current(state);
                // A dangling open frame (no FrameEnd) is closed as a miss
                // so its data is not silently lost.
                session.finalize(false);
                session.open = Some(OpenFrame {
                    frame: *frame,
                    ..OpenFrame::default()
                });
            }
            Event::Span {
                frame,
                stage,
                start_ms,
                end_ms,
            } => {
                let open = Self::open_frame(state, *frame);
                open.spans.push((*stage, *start_ms, *end_ms));
            }
            Event::Instant {
                frame,
                kind,
                ts_ms,
                detail,
            } => {
                let session = Self::current(state);
                let instant = TraceInstant {
                    kind: *kind,
                    ts_ms: *ts_ms,
                    detail: detail.clone(),
                };
                if let Some(open) = session.open.as_mut() {
                    open.instants.push(instant);
                } else if let Some(last) = session.frames.last_mut() {
                    // Post-frame instants (ladder shifts decided after
                    // end_frame) attach to the frame that just closed.
                    last.instants.push(instant);
                } else {
                    let open = Self::open_frame(state, *frame);
                    open.instants.push(instant);
                }
            }
            Event::FrameEnd {
                frame: _,
                deadline_met,
                ..
            } => {
                let session = Self::current(state);
                session.finalize(*deadline_met);
            }
            Event::SessionEnd { .. } => {
                let session = Self::current(state);
                session.finalize(false);
            }
            Event::Count { .. } | Event::Gauge { .. } | Event::Log { .. } => {}
        });
    }

    fn flush(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, SinkHandle};

    fn traced_recorder(trace: &TraceSink) -> Recorder {
        Recorder::new("trace-unit", 16.67).with_sink(SinkHandle::new(trace.clone()))
    }

    fn record_one_frame(rec: &mut Recorder, frame: u64) {
        rec.begin_frame(frame);
        rec.record_span(Stage::Render, -10.0, 4.0);
        rec.record_span(Stage::Encode, -6.0, 2.0);
        rec.record_span(Stage::LinkTransfer, 0.0, 5.0);
        rec.record_span(Stage::Decode, 5.0, 1.5);
        rec.record_span(Stage::NpuSr, 6.5, 6.0);
        rec.record_span(Stage::GpuInterp, 6.5, 3.0);
        rec.record_span(Stage::Merge, 12.5, 0.5);
        rec.instant(InstantKind::Nack, 2.0, "block 1");
        rec.end_frame(23.0, 13.0, 1000).unwrap();
    }

    #[test]
    fn builds_a_well_formed_span_tree() {
        let trace = TraceSink::new();
        let mut rec = traced_recorder(&trace);
        record_one_frame(&mut rec, 0);
        rec.finish();

        let sessions = trace.sessions();
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].pid, 1);
        let f = &sessions[0].frames[0];
        assert_eq!(f.trace_id, 1_000_000);
        // Root envelope covers everything.
        let root = &f.spans[0];
        assert_eq!(root.parent, None);
        assert_eq!(root.start_ms, -10.0);
        assert_eq!(root.end_ms, 13.0);
        // Every non-root parent exists and contains its child.
        for s in &f.spans[1..] {
            let p = f.span(s.parent.expect("non-root has parent")).unwrap();
            assert!(
                p.start_ms <= s.start_ms && s.end_ms <= p.end_ms,
                "{s:?} in {p:?}"
            );
        }
        // The upscale umbrella wraps exactly the parallel leg.
        let umbrella = f.spans.iter().find(|s| s.name == UPSCALE_SPAN).unwrap();
        assert_eq!(umbrella.start_ms, 6.5);
        assert_eq!(umbrella.end_ms, 13.0);
        assert_eq!(umbrella.parent, Some(0));
        for stage in [Stage::NpuSr, Stage::GpuInterp, Stage::Merge] {
            assert_eq!(f.stage_spans(stage)[0].parent, Some(umbrella.id));
        }
        assert_eq!(f.instants.len(), 1);
    }

    #[test]
    fn post_frame_instants_attach_to_last_closed_frame() {
        let trace = TraceSink::new();
        let mut rec = traced_recorder(&trace);
        record_one_frame(&mut rec, 0);
        rec.instant(InstantKind::LadderShift, 20.0, "rung 0 -> 1");
        record_one_frame(&mut rec, 1);
        rec.finish();

        let sessions = trace.sessions();
        let frames = &sessions[0].frames;
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].instants.len(), 2, "ladder shift joins frame 0");
        assert_eq!(frames[1].instants.len(), 1);
        assert_eq!(frames[0].instants[1].kind, InstantKind::LadderShift);
    }

    #[test]
    fn interp_only_path_still_gets_an_umbrella() {
        let trace = TraceSink::new();
        let mut rec = traced_recorder(&trace);
        rec.begin_frame(0);
        rec.record_span(Stage::GpuInterp, 1.0, 2.0);
        rec.end_frame(3.0, 3.0, 0).unwrap();
        rec.finish();
        let f = trace.sessions()[0].frames[0].clone();
        let umbrella = f.spans.iter().find(|s| s.name == UPSCALE_SPAN).unwrap();
        assert_eq!((umbrella.start_ms, umbrella.end_ms), (1.0, 3.0));
    }

    #[test]
    fn chrome_export_is_valid_and_deterministic() {
        let run = || {
            let trace = TraceSink::new();
            let mut rec = traced_recorder(&trace);
            for frame in 0..3 {
                record_one_frame(&mut rec, frame);
            }
            rec.finish();
            trace.to_chrome_json()
        };
        let a = run();
        assert_eq!(a, run(), "same inputs must export byte-identical JSON");
        let doc = crate::json::parse(&a).expect("export parses as JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("traceEvents array");
        // All timestamps are shifted to be non-negative.
        for e in events {
            if let Some(ts) = e.get("ts").and_then(|t| t.as_f64()) {
                assert!(ts >= 0.0, "negative ts in {e:?}");
            }
        }
        // Async frame roots come in balanced b/e pairs.
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
            .collect();
        assert_eq!(
            phases.iter().filter(|p| **p == "b").count(),
            phases.iter().filter(|p| **p == "e").count()
        );
        assert!(phases.contains(&"X"));
        assert!(phases.contains(&"i"));
        assert!(phases.contains(&"M"));
    }

    #[test]
    fn ext_with_empty_extensions_matches_the_plain_export() {
        let trace = TraceSink::new();
        let mut rec = traced_recorder(&trace);
        record_one_frame(&mut rec, 0);
        rec.finish();
        let sessions = trace.sessions();
        assert_eq!(
            chrome_trace_json(&sessions),
            chrome_trace_json_ext(&sessions, &[], &[], &[]),
            "empty extensions must not perturb a single byte"
        );
    }

    #[test]
    fn counter_tracks_and_markers_render_and_shift_the_origin() {
        let counters = [CounterTrack {
            pid: 0,
            name: "active-sessions".to_owned(),
            samples: vec![(-5.0, 1.0), (11.0, 2.0)],
        }];
        let markers = [(
            0u64,
            TraceInstant {
                kind: InstantKind::Anomaly,
                ts_ms: 11.0,
                detail: "admission storm: 5 join requests within 10 ticks".to_owned(),
            },
        )];
        let json = chrome_trace_json_ext(&[], &[(0, "fleet")], &counters, &markers);
        let doc = crate::json::parse(&json).expect("export parses");
        let events = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        // process metadata + 2 counter samples + 1 marker
        assert_eq!(events.len(), 4);
        // the earliest counter sample (-5 ms) defines the trace origin
        let ts: Vec<f64> = events
            .iter()
            .filter_map(|e| e.get("ts").and_then(|t| t.as_f64()))
            .collect();
        assert_eq!(ts, [0.0, 16000.0, 16000.0]);
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
            .collect();
        assert_eq!(phases, ["M", "C", "C", "i"]);
        assert_eq!(
            events[1]
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(|v| v.as_f64()),
            Some(1.0)
        );
    }

    /// Satellite: `C` counter events survive an emit → parse → re-emit
    /// cycle byte-identically. The re-emit rebuilds each event *from the
    /// parsed values only*, so this pins both the emitter's field order and
    /// the JSON parser's exact number round-tripping.
    #[test]
    fn counter_events_round_trip_byte_identically_through_the_parser() {
        let counters = [
            CounterTrack {
                pid: 0,
                name: "fairness-jain".to_owned(),
                samples: vec![(0.0, 1.0), (16.666666666666668, 0.8731), (33.5, 0.25)],
            },
            CounterTrack {
                pid: 3,
                name: "alloc \"fair\" mbps".to_owned(),
                samples: vec![(1.25, 18.0)],
            },
        ];
        let emitted = chrome_trace_json_ext(&[], &[(0, "fleet")], &counters, &[]);
        let doc = crate::json::parse(&emitted).expect("emitted trace parses");
        let events = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();

        // Original event texts, recovered from the document layout
        // (one event per line, comma-separated inside the array).
        let originals: Vec<&str> = emitted
            .lines()
            .filter(|l| l.starts_with('{') && l.contains("\"ph\":\"C\""))
            .map(|l| l.strip_suffix(',').unwrap_or(l))
            .collect();
        assert_eq!(originals.len(), 4);

        let reemitted: Vec<String> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .map(|e| {
                let name = e.get("name").and_then(|v| v.as_str()).unwrap();
                let ts = e.get("ts").and_then(|v| v.as_f64()).unwrap();
                let pid = e.get("pid").and_then(|v| v.as_f64()).unwrap() as u64;
                let value = e
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(|v| v.as_f64())
                    .unwrap();
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{\"value\":{}}}}}",
                    json_escape(name),
                    json_f64(ts),
                    pid,
                    json_f64(value)
                )
            })
            .collect();
        assert_eq!(
            originals, reemitted,
            "C events must re-emit byte-identically"
        );
    }

    #[test]
    fn frozen_frames_produce_an_empty_but_valid_root() {
        let trace = TraceSink::new();
        let mut rec = traced_recorder(&trace);
        rec.begin_frame(0);
        rec.instant(InstantKind::Drop, 4.0, "outage");
        rec.end_frame(0.0, 0.0, 0).unwrap();
        rec.finish();
        let f = trace.sessions()[0].frames[0].clone();
        assert_eq!(f.spans.len(), 1);
        assert_eq!(f.spans[0].start_ms, 4.0);
        assert_eq!(f.spans[0].end_ms, 4.0);
        assert!(crate::json::parse(&trace.to_chrome_json()).is_ok());
    }
}
