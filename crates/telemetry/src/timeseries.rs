//! Fleet-wide streaming time series with deterministic downsampling, plus
//! the streaming anomaly detectors built on top of them.
//!
//! A fleet run produces one sample per series per 60 Hz tick — far more
//! points than a report (or a human) needs, and an unbounded buffer would
//! make long soaks allocate proportionally to their length. [`TimeSeries`]
//! is the fixed-capacity answer: a ring of per-tick buckets that, when
//! full, *doubles its stride* and merges adjacent buckets in place, so a
//! series always holds at most `capacity` buckets covering the whole run
//! at a uniform power-of-two tick stride. Each bucket keeps deterministic
//! `min`/`max`/`last` (and a sample count), so downsampling never invents
//! values and the global extremes survive any number of compactions
//! (they are additionally tracked exactly across the whole stream).
//!
//! Everything here is integer/float arithmetic on modeled values — no
//! clocks, no RNG, no hashing — so two identical fleet runs produce
//! byte-identical series JSON at any worker count. The hot path
//! ([`TimeSeries::push`]) allocates only when the bucket ring grows toward
//! its fixed capacity (at most `capacity + 1` slots, reserved up front)
//! and never during steady-state compaction, which merges in place.
//!
//! The streaming detectors ([`RungFlapDetector`], [`StarvationDetector`],
//! [`AdmissionStormDetector`]) are small deterministic state machines over
//! the same per-tick signals. Each fires **on entry** into its anomalous
//! condition (returning a human-readable detail string exactly once per
//! episode), which is what the fleet loop turns into `Instant` trace
//! markers and anomaly counters.

use std::collections::VecDeque;

use crate::sink::{json_escape, json_f64};

/// Default bucket capacity used by the fleet's series set.
pub const DEFAULT_CAPACITY: usize = 240;

/// One downsampled bucket: the deterministic summary of every sample whose
/// tick falls in `[start_tick, start_tick + stride)` for the owning
/// series' current stride.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// First tick the bucket covers (always stride-aligned).
    pub start_tick: u64,
    /// Samples folded into the bucket.
    pub count: u64,
    /// Smallest sample in the bucket.
    pub min: f64,
    /// Largest sample in the bucket.
    pub max: f64,
    /// Most recent sample in the bucket.
    pub last: f64,
}

impl Bucket {
    fn seed(start_tick: u64, value: f64) -> Self {
        Bucket {
            start_tick,
            count: 1,
            min: value,
            max: value,
            last: value,
        }
    }

    fn fold(&mut self, value: f64) {
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.last = value;
    }

    fn merge(&mut self, other: &Bucket) {
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.last = other.last;
    }
}

/// A fixed-capacity streaming series of per-tick samples with
/// min/max/last downsampling (see the module docs for the compaction
/// scheme). Ticks must be pushed in non-decreasing order.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: String,
    capacity: usize,
    stride: u64,
    buckets: Vec<Bucket>,
    samples: u64,
    global_min: f64,
    global_max: f64,
}

impl TimeSeries {
    /// An empty series holding at most `capacity` buckets (floored at 1).
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TimeSeries {
            name: name.into(),
            capacity,
            stride: 1,
            // one slot of slack: push appends first, then compacts
            buckets: Vec::with_capacity(capacity + 1),
            samples: 0,
            global_min: f64::INFINITY,
            global_max: f64::NEG_INFINITY,
        }
    }

    /// Series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current downsampling stride, in ticks (a power of two).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Total samples pushed over the series' lifetime.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The downsampled buckets, oldest first.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Exact minimum over every sample ever pushed (not just surviving
    /// bucket minima), or `None` for an empty series.
    pub fn min(&self) -> Option<f64> {
        (self.samples > 0).then_some(self.global_min)
    }

    /// Exact maximum over every sample ever pushed.
    pub fn max(&self) -> Option<f64> {
        (self.samples > 0).then_some(self.global_max)
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<f64> {
        self.buckets.last().map(|b| b.last)
    }

    /// Pushes one sample. `tick` must be `>=` every previously pushed
    /// tick; an out-of-order tick folds into the newest bucket (keeping
    /// the structure deterministic rather than panicking mid-run).
    pub fn push(&mut self, tick: u64, value: f64) {
        self.samples += 1;
        self.global_min = self.global_min.min(value);
        self.global_max = self.global_max.max(value);
        let key = tick / self.stride;
        match self.buckets.last_mut() {
            Some(last) if last.start_tick / self.stride >= key => last.fold(value),
            _ => {
                self.buckets.push(Bucket::seed(key * self.stride, value));
                while self.buckets.len() > self.capacity {
                    self.compact();
                }
            }
        }
    }

    /// Doubles the stride and merges adjacent buckets in place.
    fn compact(&mut self) {
        self.stride *= 2;
        let mut write = 0;
        for read in 0..self.buckets.len() {
            let mut b = self.buckets[read];
            b.start_tick = (b.start_tick / self.stride) * self.stride;
            if write > 0 && self.buckets[write - 1].start_tick == b.start_tick {
                self.buckets[write - 1].merge(&b);
            } else {
                self.buckets[write] = b;
                write += 1;
            }
        }
        self.buckets.truncate(write);
    }

    /// Deterministic one-line JSON of the summary statistics only.
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"samples\":{},\"stride\":{},\"min\":{},\"max\":{},\"last\":{}}}",
            json_escape(&self.name),
            self.samples,
            self.stride,
            json_f64(self.min().unwrap_or(f64::NAN)),
            json_f64(self.max().unwrap_or(f64::NAN)),
            json_f64(self.last().unwrap_or(f64::NAN)),
        )
    }

    /// Deterministic one-line JSON including every surviving bucket.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "{{\"name\":\"{}\",\"samples\":{},\"stride\":{},\"min\":{},\"max\":{},\"last\":{},\"buckets\":[",
            json_escape(&self.name),
            self.samples,
            self.stride,
            json_f64(self.min().unwrap_or(f64::NAN)),
            json_f64(self.max().unwrap_or(f64::NAN)),
            json_f64(self.last().unwrap_or(f64::NAN)),
        );
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"tick\":{},\"count\":{},\"min\":{},\"max\":{},\"last\":{}}}",
                b.start_tick,
                b.count,
                json_f64(b.min),
                json_f64(b.max),
                json_f64(b.last)
            );
        }
        out.push_str("]}");
        out
    }
}

/// A named collection of [`TimeSeries`] in stable insertion order — the
/// fleet's per-tick metric surface. Lookups are linear (the fleet has a
/// couple dozen series), which keeps iteration order — and therefore
/// every export — deterministic without sorting.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSet {
    capacity: usize,
    series: Vec<TimeSeries>,
}

impl SeriesSet {
    /// An empty set whose series each hold `capacity` buckets.
    pub fn new(capacity: usize) -> Self {
        SeriesSet {
            capacity: capacity.max(1),
            series: Vec::new(),
        }
    }

    /// Pushes one sample, creating the series on first use.
    pub fn push(&mut self, name: &str, tick: u64, value: f64) {
        match self.series.iter_mut().find(|s| s.name == name) {
            Some(s) => s.push(tick, value),
            None => {
                let mut s = TimeSeries::new(name, self.capacity);
                s.push(tick, value);
                self.series.push(s);
            }
        }
    }

    /// Looks a series up by name.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name == name)
    }

    /// All series, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &TimeSeries> {
        self.series.iter()
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the set holds no series yet.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Deterministic one-line JSON array of per-series summaries.
    pub fn summary_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.summary_json());
        }
        out.push(']');
        out
    }

    /// Deterministic one-line JSON array including every bucket.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push(']');
        out
    }
}

/// Detects degradation-ladder oscillation: a session whose rung keeps
/// reversing direction is thrashing between quality tiers (each reversal
/// is a visible quality pop), which a stable controller should not do.
/// Fires on entry once at least `reversals` direction reversals land
/// within a `window_ticks` window.
#[derive(Debug, Clone)]
pub struct RungFlapDetector {
    window_ticks: u64,
    reversals: usize,
    last_rung: Option<usize>,
    last_dir: i8,
    reversal_ticks: VecDeque<u64>,
    firing: bool,
    /// Episodes fired over the detector's lifetime.
    pub events: u64,
}

impl RungFlapDetector {
    /// Default window: 2 s of ticks.
    pub const DEFAULT_WINDOW_TICKS: u64 = 120;
    /// Default reversal threshold.
    pub const DEFAULT_REVERSALS: usize = 3;

    /// A detector with the default thresholds.
    pub fn new() -> Self {
        Self::with_thresholds(Self::DEFAULT_WINDOW_TICKS, Self::DEFAULT_REVERSALS)
    }

    /// A detector firing at `reversals` direction reversals within
    /// `window_ticks`.
    pub fn with_thresholds(window_ticks: u64, reversals: usize) -> Self {
        RungFlapDetector {
            window_ticks: window_ticks.max(1),
            reversals: reversals.max(1),
            last_rung: None,
            last_dir: 0,
            reversal_ticks: VecDeque::new(),
            firing: false,
            events: 0,
        }
    }

    /// Observes the session's rung this tick; returns a detail string on
    /// the tick an anomalous flapping episode begins.
    pub fn observe(&mut self, tick: u64, rung: usize) -> Option<String> {
        if let Some(prev) = self.last_rung {
            if rung != prev {
                let dir: i8 = if rung > prev { 1 } else { -1 };
                if self.last_dir != 0 && dir != self.last_dir {
                    self.reversal_ticks.push_back(tick);
                }
                self.last_dir = dir;
            }
        }
        self.last_rung = Some(rung);
        while self
            .reversal_ticks
            .front()
            .is_some_and(|&t| t + self.window_ticks <= tick)
        {
            self.reversal_ticks.pop_front();
        }
        let active = self.reversal_ticks.len() >= self.reversals;
        let fired = active && !self.firing;
        self.firing = active;
        if fired {
            self.events += 1;
            Some(format!(
                "rung flap: {} ladder reversals within {} ticks (now at rung {})",
                self.reversal_ticks.len(),
                self.window_ticks,
                rung
            ))
        } else {
            None
        }
    }
}

impl Default for RungFlapDetector {
    fn default() -> Self {
        Self::new()
    }
}

/// Detects session starvation: a session whose consumed rate stays under
/// `fraction` of its fair-share allocation for at least `threshold_ticks`
/// consecutive ticks is being starved by the shared bottleneck (drops,
/// freezes, or contention) despite holding an allocation. Fires on entry.
#[derive(Debug, Clone)]
pub struct StarvationDetector {
    threshold_ticks: u64,
    fraction: f64,
    streak: u64,
    firing: bool,
    /// Longest under-fair-share streak observed, ticks.
    pub max_streak: u64,
    /// Episodes fired over the detector's lifetime.
    pub events: u64,
}

impl StarvationDetector {
    /// Default streak threshold: 12 ticks (200 ms) under fair share.
    pub const DEFAULT_THRESHOLD_TICKS: u64 = 12;
    /// Default fair-share fraction below which a tick counts as starved.
    pub const DEFAULT_FRACTION: f64 = 0.5;

    /// A detector with the default thresholds.
    pub fn new() -> Self {
        Self::with_thresholds(Self::DEFAULT_THRESHOLD_TICKS, Self::DEFAULT_FRACTION)
    }

    /// A detector firing after `threshold_ticks` consecutive ticks under
    /// `fraction` of fair share.
    pub fn with_thresholds(threshold_ticks: u64, fraction: f64) -> Self {
        StarvationDetector {
            threshold_ticks: threshold_ticks.max(1),
            fraction,
            streak: 0,
            firing: false,
            max_streak: 0,
            events: 0,
        }
    }

    /// Observes one tick's consumed rate against the fair-share
    /// allocation; returns a detail string on the tick starvation is
    /// declared.
    pub fn observe(&mut self, consumed_mbps: f64, fair_share_mbps: f64) -> Option<String> {
        let starved = fair_share_mbps > 0.0 && consumed_mbps < self.fraction * fair_share_mbps;
        if starved {
            self.streak += 1;
            self.max_streak = self.max_streak.max(self.streak);
        } else {
            self.streak = 0;
            self.firing = false;
        }
        let fired = self.streak >= self.threshold_ticks && !self.firing;
        if fired {
            self.firing = true;
            self.events += 1;
            Some(format!(
                "starvation: {:.2} Mbps consumed < {:.0}% of {:.2} Mbps fair share for {} ticks",
                consumed_mbps,
                self.fraction * 100.0,
                fair_share_mbps,
                self.streak
            ))
        } else {
            None
        }
    }
}

impl Default for StarvationDetector {
    fn default() -> Self {
        Self::new()
    }
}

/// Detects admission storms: a burst of join requests dense enough to
/// blow through the wait queue (a flash crowd). Fires on entry once at
/// least `joins` requests land within a `window_ticks` window.
#[derive(Debug, Clone)]
pub struct AdmissionStormDetector {
    window_ticks: u64,
    joins: usize,
    join_ticks: VecDeque<u64>,
    firing: bool,
    /// Episodes fired over the detector's lifetime.
    pub events: u64,
}

impl AdmissionStormDetector {
    /// Default window: 10 ticks.
    pub const DEFAULT_WINDOW_TICKS: u64 = 10;
    /// Default join-count threshold.
    pub const DEFAULT_JOINS: usize = 5;

    /// A detector with the default thresholds.
    pub fn new() -> Self {
        Self::with_thresholds(Self::DEFAULT_WINDOW_TICKS, Self::DEFAULT_JOINS)
    }

    /// A detector firing at `joins` join requests within `window_ticks`.
    pub fn with_thresholds(window_ticks: u64, joins: usize) -> Self {
        AdmissionStormDetector {
            window_ticks: window_ticks.max(1),
            joins: joins.max(1),
            join_ticks: VecDeque::new(),
            firing: false,
            events: 0,
        }
    }

    /// Observes this tick's join-request count; returns a detail string on
    /// the tick a storm is declared.
    pub fn observe(&mut self, tick: u64, joins_this_tick: usize) -> Option<String> {
        for _ in 0..joins_this_tick {
            self.join_ticks.push_back(tick);
        }
        while self
            .join_ticks
            .front()
            .is_some_and(|&t| t + self.window_ticks <= tick)
        {
            self.join_ticks.pop_front();
        }
        let active = self.join_ticks.len() >= self.joins;
        let fired = active && !self.firing;
        self.firing = active;
        if fired {
            self.events += 1;
            Some(format!(
                "admission storm: {} join requests within {} ticks",
                self.join_ticks.len(),
                self.window_ticks
            ))
        } else {
            None
        }
    }
}

impl Default for AdmissionStormDetector {
    fn default() -> Self {
        Self::new()
    }
}

/// Jain's fairness index over per-session shares: `(Σx)² / (n · Σx²)`.
/// 1.0 means perfectly even shares; `1/n` means one session has
/// everything. Defined as 1.0 for an empty set or all-zero shares (an
/// idle fleet is trivially fair).
pub fn jain_fairness(shares: &[f64]) -> f64 {
    if shares.is_empty() {
        return 1.0;
    }
    let sum: f64 = shares.iter().sum();
    let sq_sum: f64 = shares.iter().map(|x| x * x).sum();
    if sq_sum <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (shares.len() as f64 * sq_sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bucket_is_exact() {
        let mut s = TimeSeries::new("x", 16);
        s.push(3, 5.0);
        s.push(3, 2.0);
        s.push(3, 9.0);
        assert_eq!(s.stride(), 1);
        assert_eq!(s.buckets().len(), 1);
        let b = s.buckets()[0];
        assert_eq!((b.start_tick, b.count), (3, 3));
        assert_eq!((b.min, b.max, b.last), (2.0, 9.0, 9.0));
        assert_eq!(
            (s.min(), s.max(), s.last()),
            (Some(2.0), Some(9.0), Some(9.0))
        );
    }

    #[test]
    fn capacity_one_keeps_downsampling_to_a_single_bucket() {
        let mut s = TimeSeries::new("c1", 1);
        for tick in 0..100u64 {
            s.push(tick, tick as f64);
        }
        assert_eq!(s.buckets().len(), 1, "capacity-1 ring must stay at 1");
        assert!(s.stride().is_power_of_two());
        assert!(s.stride() >= 100, "stride must cover every pushed tick");
        let b = s.buckets()[0];
        assert_eq!(b.start_tick, 0);
        assert_eq!(b.count, 100);
        assert_eq!((b.min, b.max, b.last), (0.0, 99.0, 99.0));
        assert_eq!(s.samples(), 100);
    }

    #[test]
    fn zero_capacity_is_floored_to_one() {
        let mut s = TimeSeries::new("z", 0);
        s.push(0, 1.0);
        s.push(1, 2.0);
        assert_eq!(s.buckets().len(), 1);
    }

    #[test]
    fn downsample_boundary_merges_aligned_pairs_only() {
        // capacity 2: pushing ticks 0,1,2 forces stride 2 and the aligned
        // pair {0,1} must merge while {2} stays separate.
        let mut s = TimeSeries::new("b", 2);
        s.push(0, 10.0);
        s.push(1, 20.0);
        s.push(2, 30.0);
        assert_eq!(s.stride(), 2);
        assert_eq!(s.buckets().len(), 2);
        let (a, b) = (s.buckets()[0], s.buckets()[1]);
        assert_eq!(
            (a.start_tick, a.count, a.min, a.max, a.last),
            (0, 2, 10.0, 20.0, 20.0)
        );
        assert_eq!((b.start_tick, b.count, b.last), (2, 1, 30.0));
        // tick 3 folds into the stride-2 bucket that starts at 2
        s.push(3, 5.0);
        assert_eq!(s.buckets().len(), 2);
        let b = s.buckets()[1];
        assert_eq!((b.start_tick, b.count, b.min, b.last), (2, 2, 5.0, 5.0));
    }

    #[test]
    fn global_extremes_survive_compaction() {
        let mut s = TimeSeries::new("g", 4);
        for tick in 0..1000u64 {
            // the single spike must survive any number of merges
            let v = if tick == 371 { 1e6 } else { (tick % 7) as f64 };
            s.push(tick, v);
        }
        assert_eq!(s.max(), Some(1e6));
        assert_eq!(s.min(), Some(0.0));
        assert!(s.buckets().len() <= 4);
        assert!(s.buckets().iter().any(|b| b.max == 1e6));
        assert_eq!(
            s.buckets().iter().map(|b| b.count).sum::<u64>(),
            s.samples()
        );
    }

    #[test]
    fn compaction_is_deterministic_for_identical_streams() {
        let run = || {
            let mut s = TimeSeries::new("d", 8);
            for tick in 0..500u64 {
                s.push(tick, ((tick * 37) % 101) as f64);
            }
            s.to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn series_set_creates_on_first_use_and_keeps_order() {
        let mut set = SeriesSet::new(8);
        set.push("b", 0, 1.0);
        set.push("a", 0, 2.0);
        set.push("b", 1, 3.0);
        assert_eq!(set.len(), 2);
        let names: Vec<&str> = set.iter().map(TimeSeries::name).collect();
        assert_eq!(names, ["b", "a"], "insertion order, not sorted");
        assert_eq!(set.get("b").unwrap().samples(), 2);
        assert!(crate::json::parse(&set.to_json()).is_ok());
        assert!(crate::json::parse(&set.summary_json()).is_ok());
    }

    #[test]
    fn jain_index_matches_hand_computed_cases() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_fairness(&[5.0, 5.0, 5.0]), 1.0);
        // one of four has everything: J = 1/4
        assert!((jain_fairness(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // textbook case: (1+2+3)^2 / (3 * 14) = 36/42
        assert!((jain_fairness(&[1.0, 2.0, 3.0]) - 36.0 / 42.0).abs() < 1e-12);
    }

    #[test]
    fn rung_flap_fires_on_entry_once_per_episode() {
        let mut d = RungFlapDetector::with_thresholds(20, 3);
        // down-up-down-up: 3 reversals
        let rungs = [0, 1, 1, 0, 0, 1, 1, 0];
        let mut fires = Vec::new();
        for (tick, &r) in rungs.iter().enumerate() {
            if let Some(msg) = d.observe(tick as u64, r) {
                fires.push((tick, msg));
            }
        }
        assert_eq!(fires.len(), 1, "{fires:?}");
        assert_eq!(d.events, 1);
        // staying flappy does not re-fire; a long calm period resets
        for tick in 8..60u64 {
            assert!(d.observe(tick, 0).is_none());
        }
        // a fresh burst of reversals fires a second episode
        let rungs2 = [1, 1, 0, 0, 1, 1, 0];
        let mut refired = false;
        for (i, &r) in rungs2.iter().enumerate() {
            refired |= d.observe(60 + i as u64, r).is_some();
        }
        assert!(refired, "second flap episode must fire again");
        assert_eq!(d.events, 2);
    }

    #[test]
    fn monotone_ladder_walk_never_flaps() {
        let mut d = RungFlapDetector::new();
        for (tick, rung) in [0usize, 1, 2, 3, 4, 4, 3, 2, 1, 0].iter().enumerate() {
            // one reversal total (down at the end): never anomalous
            assert!(d.observe(tick as u64, *rung).is_none());
        }
        assert_eq!(d.events, 0);
    }

    #[test]
    fn starvation_fires_after_the_streak_threshold_only() {
        let mut d = StarvationDetector::with_thresholds(3, 0.5);
        assert!(d.observe(0.1, 1.0).is_none());
        assert!(d.observe(0.1, 1.0).is_none());
        let fired = d.observe(0.1, 1.0);
        assert!(fired.is_some(), "third starved tick fires");
        assert!(d.observe(0.1, 1.0).is_none(), "no re-fire inside episode");
        assert_eq!(d.events, 1);
        assert_eq!(d.max_streak, 4);
        // recovery resets; a fresh streak fires a new episode
        assert!(d.observe(0.9, 1.0).is_none());
        for _ in 0..2 {
            assert!(d.observe(0.0, 1.0).is_none());
        }
        assert!(d.observe(0.0, 1.0).is_some());
        assert_eq!(d.events, 2);
    }

    #[test]
    fn starvation_ignores_sessions_without_an_allocation() {
        let mut d = StarvationDetector::with_thresholds(1, 0.5);
        assert!(d.observe(0.0, 0.0).is_none(), "no share, no starvation");
        assert_eq!(d.events, 0);
    }

    #[test]
    fn admission_storm_fires_on_a_flash_crowd() {
        let mut d = AdmissionStormDetector::with_thresholds(10, 5);
        assert!(d.observe(0, 2).is_none());
        assert!(d.observe(1, 2).is_none());
        assert!(d.observe(2, 1).is_some(), "5th join within the window");
        assert!(d.observe(3, 3).is_none(), "still the same storm");
        assert_eq!(d.events, 1);
        // joins age out of the window; a later burst is a new storm
        for tick in 4..30u64 {
            assert!(d.observe(tick, 0).is_none());
        }
        assert!(d.observe(30, 5).is_some());
        assert_eq!(d.events, 2);
    }

    #[test]
    fn trickle_of_joins_is_not_a_storm() {
        let mut d = AdmissionStormDetector::new();
        for tick in 0..200u64 {
            let joins = usize::from(tick % 12 == 0);
            assert!(d.observe(tick, joins).is_none(), "tick {tick}");
        }
        assert_eq!(d.events, 0);
    }
}
