//! Deadline-miss root-cause attribution over the causal frame trace.
//!
//! A deadline miss recorded by the session is a single boolean; triage
//! needs to know *what ate the budget*. This module replays a completed
//! [`TraceSession`] — the per-frame causal span tree plus its instant
//! markers — and assigns every missed frame to a cause from a small
//! taxonomy ([`MissCause`]):
//!
//! - Stage spans are compared against a rolling per-stage baseline (an
//!   exponential moving average fed only by healthy frames), so "the NPU
//!   pass was 3× its usual cost" is judged relative to what this session
//!   normally does at its current ladder rung, not a fixed table.
//! - Fault instants carry the active fault set across frames, so a miss
//!   that coincides with an `npu-throttle` window is blamed on the
//!   throttle rather than on the SR pass being intrinsically slow.
//! - Ladder-shift instants give the pass hindsight: a miss while the
//!   degradation controller is still mid-descent is `LadderLag` (the
//!   ladder had not yet caught up with the fault), distinct from
//!   `NpuThrottle` (the ladder had nothing left to give).
//!
//! Frozen display slots never miss the upscaling deadline (there is
//! nothing to upscale), so stalls are attributed separately from drop
//! instants: the ledger distinguishes outage stalls from queue-overflow
//! stalls and reports the longest run per cause.
//!
//! Everything is computed from modeled timestamps, so attribution of the
//! same session is byte-identical across reruns and worker counts.

use crate::hist::{DistSummary, Histogram};
use crate::sink::{json_escape, json_f64};
use crate::summary::dist_json;
use crate::trace::{TraceFrame, TraceSession, UPSCALE_SPAN};
use crate::{InstantKind, Stage};

/// Root causes a missed deadline (or a frozen stall) can be blamed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum MissCause {
    /// NPU thermal throttle inflated the SR pass beyond the budget.
    NpuThrottle,
    /// A scripted link outage starved the client.
    NetOutage,
    /// A latency jitter spike inflated the transfer beyond its baseline.
    JitterSpike,
    /// The bottleneck queue overflowed and tail-dropped the frame.
    QueueOverflow,
    /// A decoder stall inflated the decode stage beyond its baseline.
    DecoderStall,
    /// The hardware decoder crashed: the frame missed (or froze) while the
    /// recovery state machine was draining, reconfiguring or waiting for a
    /// keyframe resync.
    DecoderCrash,
    /// The SR pass overran the budget with no fault active — the
    /// configuration is intrinsically too slow for the deadline.
    SrOverrun,
    /// The degradation ladder was still descending when the frame missed:
    /// the fault was survivable, the reaction was late.
    LadderLag,
    /// Worker-pool load imbalance. Reserved: the modeled trace timestamps
    /// are scheduling-independent by construction, so this cause can only
    /// be assigned from wall-clock pool accounting (see the collapsed-stack
    /// exporter), never from a trace replay.
    PoolImbalance,
    /// No cause matched — the miss needs a human.
    Unknown,
}

impl MissCause {
    /// Number of causes.
    pub const COUNT: usize = 10;

    /// All causes, in declaration order.
    pub const ALL: [MissCause; MissCause::COUNT] = [
        MissCause::NpuThrottle,
        MissCause::NetOutage,
        MissCause::JitterSpike,
        MissCause::QueueOverflow,
        MissCause::DecoderStall,
        MissCause::DecoderCrash,
        MissCause::SrOverrun,
        MissCause::LadderLag,
        MissCause::PoolImbalance,
        MissCause::Unknown,
    ];

    /// Stable array index of this cause.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Kebab-case label used in reports and metrics. Causes that mirror a
    /// scripted fault reuse the fault's label, so traces and blame tables
    /// correlate textually.
    pub fn label(self) -> &'static str {
        match self {
            MissCause::NpuThrottle => "npu-throttle",
            MissCause::NetOutage => "net-outage",
            MissCause::JitterSpike => "jitter-spike",
            MissCause::QueueOverflow => "queue-overflow",
            MissCause::DecoderStall => "decoder-stall",
            MissCause::DecoderCrash => "decoder-crash",
            MissCause::SrOverrun => "sr-overrun",
            MissCause::LadderLag => "ladder-lag",
            MissCause::PoolImbalance => "pool-imbalance",
            MissCause::Unknown => "unknown",
        }
    }
}

/// One attributed deadline miss.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct MissRecord {
    /// Frame index within the session.
    pub frame: u64,
    /// Session-clock timestamp of the miss, modeled ms.
    pub ts_ms: f64,
    /// How far past the budget the critical path ran, ms.
    pub overrun_ms: f64,
    /// Assigned root cause.
    pub cause: MissCause,
    /// Evidence the verdict rests on (spans vs baselines, active faults).
    pub detail: String,
}

/// Aggregate blame for one cause.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct BlameEntry {
    /// The cause.
    pub cause: MissCause,
    /// Misses blamed on it.
    pub misses: u64,
    /// Total budget overrun across those misses, ms.
    pub total_overrun_ms: f64,
    /// Frame with the largest overrun.
    pub worst_frame: u64,
    /// That frame's overrun, ms.
    pub worst_overrun_ms: f64,
    /// Distribution of the overruns (geometric-bucket histogram summary).
    pub overrun: Option<DistSummary>,
}

/// Aggregate ledger for frozen display slots blamed on one cause.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct StallEntry {
    /// The cause.
    pub cause: MissCause,
    /// Frozen frames blamed on it.
    pub frames: u64,
    /// Longest consecutive frozen run blamed on it, frames.
    pub longest_run: u64,
}

/// The full attribution verdict for one session.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct SessionAttribution {
    /// Session label (pipeline | device | link).
    pub label: String,
    /// Frames in the session.
    pub frames: u64,
    /// Deadline misses found in the trace.
    pub misses: u64,
    /// Per-cause blame table, [`MissCause::ALL`] order, causes with at
    /// least one miss only.
    pub blame: Vec<BlameEntry>,
    /// Frozen-slot ledger, [`MissCause::ALL`] order, causes with at least
    /// one frozen frame only.
    pub stalls: Vec<StallEntry>,
    /// Every miss in frame order, with evidence.
    pub records: Vec<MissRecord>,
}

impl SessionAttribution {
    /// Misses assigned a non-[`MissCause::Unknown`] cause.
    pub fn attributed(&self) -> u64 {
        self.misses
            - self
                .blame
                .iter()
                .find(|b| b.cause == MissCause::Unknown)
                .map_or(0, |b| b.misses)
    }

    /// Fraction of misses with a known cause (1.0 when nothing missed).
    pub fn attributed_fraction(&self) -> f64 {
        if self.misses == 0 {
            1.0
        } else {
            self.attributed() as f64 / self.misses as f64
        }
    }

    /// The blame entry for a cause, if it was ever assigned.
    pub fn entry(&self, cause: MissCause) -> Option<&BlameEntry> {
        self.blame.iter().find(|b| b.cause == cause)
    }

    /// Deterministic single-line JSON rendering.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"label\":\"{}\",\"frames\":{},\"misses\":{},\"attributed\":{},\
             \"attributed_fraction\":{},\"blame\":[",
            json_escape(&self.label),
            self.frames,
            self.misses,
            self.attributed(),
            json_f64(self.attributed_fraction())
        );
        for (i, b) in self.blame.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"cause\":\"{}\",\"misses\":{},\"total_overrun_ms\":{},\
                 \"worst_frame\":{},\"worst_overrun_ms\":{},\"overrun\":{}}}",
                b.cause.label(),
                b.misses,
                json_f64(b.total_overrun_ms),
                b.worst_frame,
                json_f64(b.worst_overrun_ms),
                b.overrun
                    .as_ref()
                    .map_or_else(|| "null".to_owned(), dist_json)
            );
        }
        out.push_str("],\"stalls\":[");
        for (i, s) in self.stalls.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"cause\":\"{}\",\"frames\":{},\"longest_run\":{}}}",
                s.cause.label(),
                s.frames,
                s.longest_run
            );
        }
        out.push_str("],\"records\":[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"frame\":{},\"ts_ms\":{},\"overrun_ms\":{},\"cause\":\"{}\",\"detail\":\"{}\"}}",
                r.frame,
                json_f64(r.ts_ms),
                json_f64(r.overrun_ms),
                r.cause.label(),
                json_escape(&r.detail)
            );
        }
        out.push_str("]}");
        out
    }

    /// Human-readable blame table.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "attribution: {} | {} frames, {} misses, {:.1}% attributed",
            self.label,
            self.frames,
            self.misses,
            self.attributed_fraction() * 100.0
        );
        let _ = writeln!(
            out,
            "  {:<16} {:>8} {:>16} {:>12} {:>16}",
            "cause", "misses", "total overrun", "worst frame", "worst overrun"
        );
        for b in &self.blame {
            let _ = writeln!(
                out,
                "  {:<16} {:>8} {:>13.2} ms {:>12} {:>13.2} ms",
                b.cause.label(),
                b.misses,
                b.total_overrun_ms,
                b.worst_frame,
                b.worst_overrun_ms
            );
        }
        for s in &self.stalls {
            let _ = writeln!(
                out,
                "  {:<16} {:>8} frozen frames, longest run {}",
                s.cause.label(),
                s.frames,
                s.longest_run
            );
        }
        out
    }
}

/// EMA smoothing for the per-stage baselines (healthy frames only).
const BASELINE_ALPHA: f64 = 0.2;

/// A stage span counts as elevated when it exceeds its baseline by this
/// ratio plus [`ELEVATION_SLACK_MS`].
const ELEVATION_RATIO: f64 = 1.05;

/// Absolute slack on top of [`ELEVATION_RATIO`], ms.
const ELEVATION_SLACK_MS: f64 = 0.05;

/// How far ahead (in frames) a ladder downgrade may trail a miss for the
/// miss to count as [`MissCause::LadderLag`]: the controller is still
/// reacting to the episode this miss belongs to.
const LADDER_LOOKAHEAD_FRAMES: u64 = 90;

/// Everything pass 1 extracts from one [`TraceFrame`].
struct FrameFacts {
    frame: u64,
    deadline_met: bool,
    frozen: bool,
    critical_ms: f64,
    miss_ts_ms: f64,
    stage_ms: [f64; Stage::COUNT],
    faults: Vec<String>,
    drop_cause: Option<String>,
}

/// Replays completed trace sessions and assigns blame.
///
/// The attributor is stateless between sessions; construct once and call
/// [`Attributor::attribute`] per [`TraceSession`].
#[derive(Debug, Clone)]
pub struct Attributor {
    budget_ms: f64,
}

impl Attributor {
    /// An attributor judging frames against `budget_ms`.
    pub fn new(budget_ms: f64) -> Self {
        Attributor { budget_ms }
    }

    /// Walks the session's frames in order and attributes every deadline
    /// miss and every frozen stall.
    pub fn attribute(&self, session: &TraceSession) -> SessionAttribution {
        // ---- pass 1: flatten each frame's spans + instants into facts,
        // carrying the active fault set across frames ----
        let mut facts: Vec<FrameFacts> = Vec::with_capacity(session.frames.len());
        let mut active_faults: Vec<String> = Vec::new();
        let mut downgrade_frames: Vec<u64> = Vec::new();
        for f in &session.frames {
            for inst in &f.instants {
                match inst.kind {
                    InstantKind::Fault => {
                        if inst.detail.trim() == "faults cleared" {
                            active_faults.clear();
                        } else if let Some(list) = inst.detail.strip_prefix("faults active: ") {
                            active_faults = list.split('+').map(str::to_owned).collect();
                        }
                    }
                    InstantKind::LadderShift if inst.detail.starts_with("ladder down") => {
                        downgrade_frames.push(f.frame);
                    }
                    _ => {}
                }
            }
            facts.push(self.frame_facts(f, &active_faults));
        }

        // ---- pass 2: baselines stream forward over healthy frames; each
        // miss is judged against the baseline as of its own frame, with
        // ladder hindsight from the downgrade schedule ----
        let mut baselines: [Option<f64>; Stage::COUNT] = [None; Stage::COUNT];
        let mut hists: Vec<Histogram> = (0..MissCause::COUNT)
            .map(|_| Histogram::latency_ms())
            .collect();
        let mut tallies: Vec<(u64, f64, u64, f64)> = vec![(0, 0.0, 0, 0.0); MissCause::COUNT];
        let mut records: Vec<MissRecord> = Vec::new();
        let mut misses = 0u64;
        // frozen-slot ledger: carry the causing drop across the stall run
        let mut stall_frames = [0u64; MissCause::COUNT];
        let mut stall_longest = [0u64; MissCause::COUNT];
        let mut stall_run = 0u64;
        let mut stall_cause = MissCause::Unknown;
        for f in &facts {
            if f.frozen {
                if let Some(cause) = f.drop_cause.as_deref().and_then(drop_label_to_cause) {
                    if stall_run == 0 || cause != stall_cause {
                        stall_cause = cause;
                    }
                } else if stall_run == 0 {
                    stall_cause = MissCause::Unknown;
                }
                stall_run += 1;
                let idx = stall_cause.index();
                stall_frames[idx] += 1;
                stall_longest[idx] = stall_longest[idx].max(stall_run);
            } else {
                stall_run = 0;
            }
            if f.deadline_met {
                if !f.frozen {
                    for s in Stage::ALL {
                        let v = f.stage_ms[s.index()];
                        if v > 0.0 {
                            let b = baselines[s.index()].unwrap_or(v);
                            baselines[s.index()] =
                                Some(b * (1.0 - BASELINE_ALPHA) + v * BASELINE_ALPHA);
                        }
                    }
                }
                continue;
            }
            misses += 1;
            let overrun = (f.critical_ms - self.budget_ms).max(0.0);
            let (cause, detail) = self.judge(f, &baselines, &downgrade_frames);
            let idx = cause.index();
            hists[idx].record(overrun);
            let t = &mut tallies[idx];
            t.0 += 1;
            t.1 += overrun;
            if overrun > t.3 || t.0 == 1 {
                t.2 = f.frame;
                t.3 = overrun;
            }
            records.push(MissRecord {
                frame: f.frame,
                ts_ms: f.miss_ts_ms,
                overrun_ms: overrun,
                cause,
                detail,
            });
        }

        let blame = MissCause::ALL
            .iter()
            .filter(|c| tallies[c.index()].0 > 0)
            .map(|&cause| {
                let (n, total, worst_frame, worst) = tallies[cause.index()];
                BlameEntry {
                    cause,
                    misses: n,
                    total_overrun_ms: total,
                    worst_frame,
                    worst_overrun_ms: worst,
                    overrun: hists[cause.index()].summary(),
                }
            })
            .collect();
        let stalls = MissCause::ALL
            .iter()
            .filter(|c| stall_frames[c.index()] > 0)
            .map(|&cause| StallEntry {
                cause,
                frames: stall_frames[cause.index()],
                longest_run: stall_longest[cause.index()],
            })
            .collect();
        SessionAttribution {
            label: session.label.clone(),
            frames: session.frames.len() as u64,
            misses,
            blame,
            stalls,
            records,
        }
    }

    fn frame_facts(&self, f: &TraceFrame, active_faults: &[String]) -> FrameFacts {
        let mut stage_ms = [0.0; Stage::COUNT];
        let mut umbrella: Option<(f64, f64)> = None;
        for span in &f.spans {
            if span.name == UPSCALE_SPAN {
                umbrella = Some((span.start_ms, span.end_ms));
                continue;
            }
            if let Some(stage) = Stage::ALL.iter().find(|s| s.label() == span.name) {
                stage_ms[stage.index()] += span.end_ms - span.start_ms;
            }
        }
        // the umbrella's extent is exactly the upscale critical path
        // (slower of the NPU/GPU legs plus the merge); fall back to the
        // legs' envelope for traces without the synthetic umbrella
        let critical_ms = match umbrella {
            Some((lo, hi)) => hi - lo,
            None => {
                let legs = [Stage::NpuSr, Stage::GpuInterp, Stage::Merge];
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for span in &f.spans {
                    if legs.iter().any(|s| s.label() == span.name) {
                        lo = lo.min(span.start_ms);
                        hi = hi.max(span.end_ms);
                    }
                }
                if hi > lo {
                    hi - lo
                } else {
                    0.0
                }
            }
        };
        let miss_ts_ms = f
            .instants
            .iter()
            .find(|i| i.kind == InstantKind::DeadlineMiss)
            .map_or_else(|| umbrella.map_or(0.0, |(_, hi)| hi), |i| i.ts_ms);
        let drop_cause = f.instants.iter().find_map(|i| {
            if i.kind == InstantKind::Drop {
                i.detail
                    .rsplit_once(": ")
                    .map(|(_, label)| label.to_owned())
            } else {
                None
            }
        });
        let frozen = stage_ms[Stage::Decode.index()] == 0.0
            && stage_ms[Stage::NpuSr.index()] == 0.0
            && stage_ms[Stage::GpuInterp.index()] == 0.0
            && stage_ms[Stage::Merge.index()] == 0.0;
        FrameFacts {
            frame: f.frame,
            deadline_met: f.deadline_met,
            frozen,
            critical_ms,
            miss_ts_ms,
            stage_ms,
            faults: active_faults.to_vec(),
            drop_cause,
        }
    }

    /// The decision tree for one missed frame.
    fn judge(
        &self,
        f: &FrameFacts,
        baselines: &[Option<f64>; Stage::COUNT],
        downgrade_frames: &[u64],
    ) -> (MissCause, String) {
        let stage = |s: Stage| f.stage_ms[s.index()];
        let baseline = |s: Stage| baselines[s.index()];
        // elevated: the span exceeds its rolling baseline (or the baseline
        // is still unknown, in which case the fault correlation decides)
        let elevated = |s: Stage| {
            let v = stage(s);
            v > 0.0 && baseline(s).is_none_or(|b| v > b * ELEVATION_RATIO + ELEVATION_SLACK_MS)
        };
        let vs_baseline = |s: Stage| match baseline(s) {
            Some(b) if b > 0.0 => format!(
                "{} {:.2} ms vs baseline {:.2} ms (x{:.2})",
                s.label(),
                stage(s),
                b,
                stage(s) / b
            ),
            _ => format!("{} {:.2} ms (no baseline yet)", s.label(), stage(s)),
        };
        let fault = |name: &str| f.faults.iter().any(|l| l == name);
        let upscale_over = !crate::deadline_met(
            stage(Stage::NpuSr).max(stage(Stage::GpuInterp)) + stage(Stage::Merge),
            self.budget_ms,
        );

        if fault("npu-throttle") && (elevated(Stage::NpuSr) || upscale_over) {
            // ladder hindsight: a downgrade at or shortly after this frame
            // means the controller was still descending toward a rung that
            // absorbs the throttle — the reaction, not the NPU, is to blame
            let lagging = downgrade_frames
                .iter()
                .any(|&d| d >= f.frame && d <= f.frame + LADDER_LOOKAHEAD_FRAMES);
            let evidence = format!("{}, npu-throttle active", vs_baseline(Stage::NpuSr));
            if lagging {
                return (
                    MissCause::LadderLag,
                    format!("{evidence}, ladder still descending"),
                );
            }
            return (MissCause::NpuThrottle, evidence);
        }
        if fault("decoder-crash") || f.drop_cause.as_deref() == Some("decoder-down") {
            return (
                MissCause::DecoderCrash,
                "decoder down: crash recovery in progress".to_owned(),
            );
        }
        if fault("decoder-stall") && elevated(Stage::Decode) {
            return (
                MissCause::DecoderStall,
                format!("{}, decoder-stall active", vs_baseline(Stage::Decode)),
            );
        }
        if fault("jitter-spike") && elevated(Stage::LinkTransfer) {
            return (
                MissCause::JitterSpike,
                format!("{}, jitter-spike active", vs_baseline(Stage::LinkTransfer)),
            );
        }
        if fault("outage") || f.drop_cause.as_deref() == Some("outage") {
            return (
                MissCause::NetOutage,
                "frame lost to a scripted outage window".to_owned(),
            );
        }
        if f.drop_cause.as_deref() == Some("queue-overflow") {
            return (
                MissCause::QueueOverflow,
                "frame tail-dropped by the bottleneck queue".to_owned(),
            );
        }
        if upscale_over {
            return (
                MissCause::SrOverrun,
                format!(
                    "upscale critical path {:.2} ms > budget {:.2} ms with no fault active ({})",
                    f.critical_ms,
                    self.budget_ms,
                    vs_baseline(Stage::NpuSr)
                ),
            );
        }
        (
            MissCause::Unknown,
            format!(
                "no stage elevated and no fault active (critical {:.2} ms, budget {:.2} ms)",
                f.critical_ms, self.budget_ms
            ),
        )
    }
}

/// Maps a drop instant's cause label onto the taxonomy.
fn drop_label_to_cause(label: &str) -> Option<MissCause> {
    match label {
        "queue-overflow" => Some(MissCause::QueueOverflow),
        "outage" => Some(MissCause::NetOutage),
        "decoder-down" => Some(MissCause::DecoderCrash),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceInstant, TraceSpan};

    fn span(id: u32, name: &str, start: f64, end: f64) -> TraceSpan {
        TraceSpan {
            id,
            parent: if id == 0 { None } else { Some(0) },
            name: name.to_owned(),
            lane: 0,
            start_ms: start,
            end_ms: end,
        }
    }

    /// A healthy frame: 4 ms NPU leg, 2 ms GPU leg, 1 ms merge.
    fn good_frame(i: u64, t0: f64) -> TraceFrame {
        TraceFrame {
            frame: i,
            trace_id: i,
            deadline_met: true,
            spans: vec![
                span(0, "frame", t0, t0 + 16.0),
                span(1, "decode", t0, t0 + 3.0),
                span(2, "npu-sr", t0 + 3.0, t0 + 7.0),
                span(3, "gpu-interp", t0 + 3.0, t0 + 5.0),
                span(4, "merge", t0 + 7.0, t0 + 8.0),
                span(5, UPSCALE_SPAN, t0 + 3.0, t0 + 8.0),
            ],
            instants: vec![],
        }
    }

    /// A missed frame whose NPU leg ran `npu_ms` (baseline is 4 ms).
    fn miss_frame(i: u64, t0: f64, npu_ms: f64) -> TraceFrame {
        TraceFrame {
            frame: i,
            trace_id: i,
            deadline_met: false,
            spans: vec![
                span(0, "frame", t0, t0 + 16.0 + npu_ms),
                span(1, "decode", t0, t0 + 3.0),
                span(2, "npu-sr", t0 + 3.0, t0 + 3.0 + npu_ms),
                span(3, "gpu-interp", t0 + 3.0, t0 + 5.0),
                span(4, "merge", t0 + 3.0 + npu_ms, t0 + 4.0 + npu_ms),
                span(5, UPSCALE_SPAN, t0 + 3.0, t0 + 4.0 + npu_ms),
            ],
            instants: vec![TraceInstant {
                kind: InstantKind::DeadlineMiss,
                ts_ms: t0 + 4.0 + npu_ms,
                detail: "critical path over budget".to_owned(),
            }],
        }
    }

    fn fault_instant(detail: &str, ts: f64) -> TraceInstant {
        TraceInstant {
            kind: InstantKind::Fault,
            ts_ms: ts,
            detail: detail.to_owned(),
        }
    }

    fn session(frames: Vec<TraceFrame>) -> TraceSession {
        TraceSession {
            label: "test".to_owned(),
            pid: 1,
            frames,
        }
    }

    #[test]
    fn throttled_miss_is_blamed_on_the_npu() {
        let mut frames: Vec<TraceFrame> =
            (0..20).map(|i| good_frame(i, i as f64 * 16.67)).collect();
        let mut bad = miss_frame(20, 20.0 * 16.67, 20.0);
        bad.instants
            .push(fault_instant("faults active: npu-throttle", 20.0 * 16.67));
        frames.push(bad);
        let a = Attributor::new(crate::REALTIME_BUDGET_MS).attribute(&session(frames));
        assert_eq!(a.misses, 1);
        assert_eq!(a.records[0].cause, MissCause::NpuThrottle);
        assert!(a.records[0].detail.contains("vs baseline"));
        assert_eq!(a.attributed_fraction(), 1.0);
        let entry = a.entry(MissCause::NpuThrottle).unwrap();
        assert_eq!(entry.misses, 1);
        assert_eq!(entry.worst_frame, 20);
        assert!(entry.worst_overrun_ms > 4.0);
    }

    #[test]
    fn miss_before_a_downgrade_is_ladder_lag() {
        let mut frames: Vec<TraceFrame> =
            (0..20).map(|i| good_frame(i, i as f64 * 16.67)).collect();
        let mut bad = miss_frame(20, 20.0 * 16.67, 20.0);
        bad.instants
            .push(fault_instant("faults active: npu-throttle", 20.0 * 16.67));
        frames.push(bad);
        let mut after = good_frame(22, 22.0 * 16.67);
        after.instants.push(TraceInstant {
            kind: InstantKind::LadderShift,
            ts_ms: 22.0 * 16.67,
            detail: "ladder down: rung 0 -> 1 (fp16, roi 416 px, rate x0.85)".to_owned(),
        });
        frames.push(after);
        let a = Attributor::new(crate::REALTIME_BUDGET_MS).attribute(&session(frames));
        assert_eq!(a.records[0].cause, MissCause::LadderLag);
    }

    #[test]
    fn faultless_overrun_is_sr_overrun_and_no_spans_is_unknown() {
        let mut frames: Vec<TraceFrame> = (0..5).map(|i| good_frame(i, i as f64 * 16.67)).collect();
        frames.push(miss_frame(5, 5.0 * 16.67, 18.0));
        let mut bare = miss_frame(6, 6.0 * 16.67, 18.0);
        bare.spans.clear();
        frames.push(bare);
        let a = Attributor::new(crate::REALTIME_BUDGET_MS).attribute(&session(frames));
        assert_eq!(a.misses, 2);
        assert_eq!(a.records[0].cause, MissCause::SrOverrun);
        assert_eq!(a.records[1].cause, MissCause::Unknown);
        assert_eq!(a.attributed(), 1);
        assert!((a.attributed_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn frozen_slots_are_ledgered_by_drop_cause() {
        let mut frames: Vec<TraceFrame> = vec![good_frame(0, 0.0)];
        for i in 1..4u64 {
            let t0 = i as f64 * 16.67;
            let mut frozen = TraceFrame {
                frame: i,
                trace_id: i,
                deadline_met: true,
                spans: vec![span(0, "frame", t0, t0 + 1.0)],
                instants: vec![],
            };
            if i == 1 {
                frozen.instants.push(TraceInstant {
                    kind: InstantKind::Drop,
                    ts_ms: t0,
                    detail: "frame dropped: queue-overflow".to_owned(),
                });
            }
            frames.push(frozen);
        }
        let a = Attributor::new(crate::REALTIME_BUDGET_MS).attribute(&session(frames));
        assert_eq!(a.misses, 0);
        assert_eq!(a.stalls.len(), 1);
        assert_eq!(a.stalls[0].cause, MissCause::QueueOverflow);
        assert_eq!(
            a.stalls[0].frames, 3,
            "the stall run carries the drop cause"
        );
        assert_eq!(a.stalls[0].longest_run, 3);
    }

    #[test]
    fn cause_indices_and_labels_are_stable() {
        for (i, c) in MissCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        let labels: std::collections::HashSet<&str> =
            MissCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels.len(),
            MissCause::COUNT,
            "cause labels must be unique"
        );
    }

    #[test]
    fn attribution_json_is_deterministic_and_parses() {
        let mut frames: Vec<TraceFrame> =
            (0..10).map(|i| good_frame(i, i as f64 * 16.67)).collect();
        frames.push(miss_frame(10, 10.0 * 16.67, 19.0));
        let s = session(frames);
        let att = Attributor::new(crate::REALTIME_BUDGET_MS);
        let a = att.attribute(&s).to_json();
        assert_eq!(a, att.attribute(&s).to_json());
        let parsed = crate::json::parse(&a).expect("attribution json parses");
        assert_eq!(parsed.get("misses").and_then(|v| v.as_f64()), Some(1.0));
    }
}
