//! Declarative service-level objectives with multi-window burn rates.
//!
//! A deadline miss is a boolean; an *operable* session needs to know
//! whether misses are arriving faster than the error budget allows. This
//! module evaluates a small set of declarative objectives over the frame
//! stream — p99 critical path within the real-time budget, effective FPS
//! above a floor, longest frozen run under a cap — using the classic
//! multi-window burn-rate scheme: a *fast* window (seconds of frames)
//! catches sharp regressions, a *slow* window (tens of seconds) filters
//! one-off blips, and a breach fires only when **both** windows burn the
//! error budget faster than the alert threshold. Breach entry/exit events
//! surface as [`InstantKind::SloBreach`] markers in the causal trace, so a
//! Perfetto timeline shows exactly when the session went out of contract.
//!
//! Everything here is arithmetic on modeled per-frame health bits, so the
//! engine is deterministic: identical sessions produce identical breach
//! events and identical [`SloSummary`] JSON.
//!
//! [`InstantKind::SloBreach`]: crate::InstantKind::SloBreach

use crate::sink::{json_escape, json_f64};

/// Default fast-window length, frames (1 s at 60 FPS).
pub const FAST_WINDOW_FRAMES: usize = 60;

/// Default slow-window length, frames (5 s at 60 FPS).
pub const SLOW_WINDOW_FRAMES: usize = 300;

/// Default burn-rate alert threshold: a breach fires when both windows
/// consume the error budget at least this many times faster than allowed.
pub const BURN_THRESHOLD: f64 = 6.0;

/// One frame's health signals, as seen by every objective.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct FrameHealth {
    /// Upscaling critical path, modeled ms (0 for frozen frames).
    pub critical_ms: f64,
    /// Did the critical path fit the real-time budget?
    pub deadline_met: bool,
    /// Was the display slot a frozen repeat (no fresh frame)?
    pub frozen: bool,
}

/// What a service-level objective promises.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub enum Objective {
    /// At least `1 - error_budget` of frames finish their upscaling
    /// critical path within `budget_ms` (e.g. budget 1% ⇒ "p99 critical
    /// path ≤ budget").
    CriticalPathUnderBudget {
        /// Real-time budget the critical path is judged against, ms.
        budget_ms: f64,
        /// Allowed bad-frame fraction (0.01 ⇒ p99).
        error_budget: f64,
    },
    /// Effective display rate stays at or above `target_fps` out of the
    /// 60 FPS source rate: a frame is bad when it missed its deadline *or*
    /// was a frozen repeat, and the error budget is `1 - target_fps / 60`.
    EffectiveFpsAtLeast {
        /// Floor on the effective display rate, frames per second.
        target_fps: f64,
    },
    /// No stall freezes the display for more than `max_run` consecutive
    /// frames. Breaches instantly when a run exceeds the cap (burn rate =
    /// run / cap), recovers when a fresh frame lands.
    FrozenRunAtMost {
        /// Longest tolerated frozen run, frames.
        max_run: usize,
    },
}

impl Objective {
    /// Is this frame bad for the objective?
    fn is_bad(&self, h: &FrameHealth) -> bool {
        match *self {
            Objective::CriticalPathUnderBudget { budget_ms, .. } => {
                !crate::deadline_met(h.critical_ms, budget_ms)
            }
            Objective::EffectiveFpsAtLeast { .. } => !h.deadline_met || h.frozen,
            Objective::FrozenRunAtMost { .. } => h.frozen,
        }
    }

    /// Allowed bad-frame fraction.
    fn error_budget(&self) -> f64 {
        match *self {
            Objective::CriticalPathUnderBudget { error_budget, .. } => error_budget,
            Objective::EffectiveFpsAtLeast { target_fps } => (1.0 - target_fps / 60.0).max(1e-6),
            // the frozen-run objective burns on run length, not fractions;
            // the value only feeds the summary
            Objective::FrozenRunAtMost { max_run } => max_run as f64,
        }
    }

    /// One-line human description for tables and reports.
    fn describe(&self) -> String {
        match *self {
            Objective::CriticalPathUnderBudget {
                budget_ms,
                error_budget,
            } => format!(
                "p{:.4} critical path <= {budget_ms:.2} ms",
                (1.0 - error_budget) * 100.0
            ),
            Objective::EffectiveFpsAtLeast { target_fps } => {
                format!("effective rate >= {target_fps:.0} fps")
            }
            Objective::FrozenRunAtMost { max_run } => {
                format!("longest frozen run <= {max_run} frames")
            }
        }
    }
}

/// One declarative objective plus its alerting windows.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SloSpec {
    /// Stable kebab-case name used in reports, metrics and trace markers.
    pub name: &'static str,
    /// The promise being tracked.
    pub objective: Objective,
    /// Fast window length, frames.
    pub fast_window: usize,
    /// Slow window length, frames.
    pub slow_window: usize,
    /// Burn-rate alert threshold (both windows must exceed it).
    pub burn_threshold: f64,
}

/// A breach-state transition emitted by [`SloEngine::observe`].
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SloEvent {
    /// Objective name (matches [`SloSpec::name`]).
    pub name: &'static str,
    /// `true` when entering breach, `false` when recovering.
    pub breached: bool,
    /// Fast-window burn rate at the transition.
    pub fast_burn: f64,
    /// Slow-window burn rate at the transition.
    pub slow_burn: f64,
    /// Human-readable marker text for the trace.
    pub detail: String,
}

/// Fixed-size ring of bad-frame bits with an O(1) running count.
#[derive(Debug, Clone)]
struct BadWindow {
    bits: Vec<bool>,
    next: usize,
    filled: usize,
    bad: usize,
}

impl BadWindow {
    fn new(len: usize) -> Self {
        BadWindow {
            bits: vec![false; len.max(1)],
            next: 0,
            filled: 0,
            bad: 0,
        }
    }

    fn push(&mut self, bad: bool) {
        if self.filled == self.bits.len() {
            if self.bits[self.next] {
                self.bad -= 1;
            }
        } else {
            self.filled += 1;
        }
        self.bits[self.next] = bad;
        if bad {
            self.bad += 1;
        }
        self.next = (self.next + 1) % self.bits.len();
    }

    fn bad_fraction(&self) -> f64 {
        if self.filled == 0 {
            0.0
        } else {
            self.bad as f64 / self.filled as f64
        }
    }
}

/// Per-objective engine state.
#[derive(Debug, Clone)]
struct SloState {
    spec: SloSpec,
    fast: BadWindow,
    slow: BadWindow,
    run: u64,
    frames: u64,
    bad_frames: u64,
    breaches: u64,
    breached_frames: u64,
    max_fast_burn: f64,
    max_slow_burn: f64,
    breached: bool,
}

impl SloState {
    fn burn_rates(&self) -> (f64, f64) {
        match self.spec.objective {
            Objective::FrozenRunAtMost { max_run } => {
                let burn = self.run as f64 / max_run.max(1) as f64;
                (burn, burn)
            }
            _ => {
                let budget = self.spec.objective.error_budget();
                (
                    self.fast.bad_fraction() / budget,
                    self.slow.bad_fraction() / budget,
                )
            }
        }
    }
}

/// Evaluates a set of objectives over a frame stream, emitting breach
/// transitions as they happen and a [`SloSummary`] at the end.
#[derive(Debug, Clone)]
pub struct SloEngine {
    states: Vec<SloState>,
}

impl SloEngine {
    /// An engine over explicit objective specs.
    pub fn new(specs: Vec<SloSpec>) -> Self {
        let states = specs
            .into_iter()
            .map(|spec| {
                let fast = BadWindow::new(spec.fast_window);
                let slow = BadWindow::new(spec.slow_window);
                SloState {
                    spec,
                    fast,
                    slow,
                    run: 0,
                    frames: 0,
                    bad_frames: 0,
                    breaches: 0,
                    breached_frames: 0,
                    max_fast_burn: 0.0,
                    max_slow_burn: 0.0,
                    breached: false,
                }
            })
            .collect();
        SloEngine { states }
    }

    /// The standard objectives every session is judged against: p99
    /// critical path within the real-time budget, effective display rate
    /// of at least 45 FPS, and no frozen stall longer than half a second.
    pub fn standard(budget_ms: f64) -> Self {
        SloEngine::new(vec![
            SloSpec {
                name: "critical-path-p99",
                objective: Objective::CriticalPathUnderBudget {
                    budget_ms,
                    error_budget: 0.01,
                },
                fast_window: FAST_WINDOW_FRAMES,
                slow_window: SLOW_WINDOW_FRAMES,
                burn_threshold: BURN_THRESHOLD,
            },
            SloSpec {
                name: "effective-fps",
                objective: Objective::EffectiveFpsAtLeast { target_fps: 45.0 },
                fast_window: FAST_WINDOW_FRAMES,
                slow_window: SLOW_WINDOW_FRAMES,
                burn_threshold: BURN_THRESHOLD,
            },
            SloSpec {
                name: "frozen-run",
                objective: Objective::FrozenRunAtMost { max_run: 30 },
                fast_window: FAST_WINDOW_FRAMES,
                slow_window: SLOW_WINDOW_FRAMES,
                burn_threshold: 1.0,
            },
        ])
    }

    /// Folds one frame into every objective and returns the breach-state
    /// transitions it caused (usually none).
    pub fn observe(&mut self, health: &FrameHealth) -> Vec<SloEvent> {
        let mut events = Vec::new();
        for st in &mut self.states {
            let bad = st.spec.objective.is_bad(health);
            st.frames += 1;
            if bad {
                st.bad_frames += 1;
            }
            if health.frozen {
                st.run += 1;
            } else {
                st.run = 0;
            }
            st.fast.push(bad);
            st.slow.push(bad);
            let (fast_burn, slow_burn) = st.burn_rates();
            st.max_fast_burn = st.max_fast_burn.max(fast_burn);
            st.max_slow_burn = st.max_slow_burn.max(slow_burn);
            let over = match st.spec.objective {
                // run-length objectives breach the moment the cap is
                // exceeded and recover the moment the display unfreezes
                Objective::FrozenRunAtMost { .. } => fast_burn > 1.0,
                _ => fast_burn >= st.spec.burn_threshold && slow_burn >= st.spec.burn_threshold,
            };
            if over != st.breached {
                st.breached = over;
                if over {
                    st.breaches += 1;
                }
                events.push(SloEvent {
                    name: st.spec.name,
                    breached: over,
                    fast_burn,
                    slow_burn,
                    detail: format!(
                        "slo {} {}: {} (fast burn {:.2}x, slow burn {:.2}x)",
                        st.spec.name,
                        if over { "breach" } else { "recovered" },
                        st.spec.objective.describe(),
                        fast_burn,
                        slow_burn
                    ),
                });
            }
            if st.breached {
                st.breached_frames += 1;
            }
        }
        events
    }

    /// The current `(fast, slow)` burn rates of a named objective — the
    /// live value a streaming exporter samples each tick, as opposed to the
    /// end-of-run maxima in [`SloEngine::summary`]. `None` for an unknown
    /// objective name.
    pub fn current_burn(&self, name: &str) -> Option<(f64, f64)> {
        self.states
            .iter()
            .find(|st| st.spec.name == name)
            .map(SloState::burn_rates)
    }

    /// The per-objective standings so far.
    pub fn summary(&self) -> SloSummary {
        SloSummary {
            objectives: self
                .states
                .iter()
                .map(|st| SloStatus {
                    name: st.spec.name.to_owned(),
                    objective: st.spec.objective.describe(),
                    frames: st.frames,
                    bad_frames: st.bad_frames,
                    breaches: st.breaches,
                    breached_frames: st.breached_frames,
                    max_fast_burn: st.max_fast_burn,
                    max_slow_burn: st.max_slow_burn,
                    breached: st.breached,
                })
                .collect(),
        }
    }
}

/// Final standing of one objective.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SloStatus {
    /// Objective name.
    pub name: String,
    /// Human description of the promise.
    pub objective: String,
    /// Frames observed.
    pub frames: u64,
    /// Frames that were bad for this objective.
    pub bad_frames: u64,
    /// Times the objective entered breach.
    pub breaches: u64,
    /// Frames spent in breach.
    pub breached_frames: u64,
    /// Worst fast-window burn rate seen.
    pub max_fast_burn: f64,
    /// Worst slow-window burn rate seen.
    pub max_slow_burn: f64,
    /// Was the objective still in breach at session end?
    pub breached: bool,
}

/// All objectives' standings for one session.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SloSummary {
    /// One entry per declared objective, declaration order.
    pub objectives: Vec<SloStatus>,
}

impl SloSummary {
    /// Total breach entries across all objectives.
    pub fn total_breaches(&self) -> u64 {
        self.objectives.iter().map(|o| o.breaches).sum()
    }

    /// The standing for a named objective.
    pub fn objective(&self, name: &str) -> Option<&SloStatus> {
        self.objectives.iter().find(|o| o.name == name)
    }

    /// Deterministic single-line JSON rendering.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"objectives\":[");
        for (i, o) in self.objectives.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"objective\":\"{}\",\"frames\":{},\"bad_frames\":{},\
                 \"breaches\":{},\"breached_frames\":{},\"max_fast_burn\":{},\
                 \"max_slow_burn\":{},\"breached\":{}}}",
                json_escape(&o.name),
                json_escape(&o.objective),
                o.frames,
                o.bad_frames,
                o.breaches,
                o.breached_frames,
                json_f64(o.max_fast_burn),
                json_f64(o.max_slow_burn),
                o.breached
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good() -> FrameHealth {
        FrameHealth {
            critical_ms: 10.0,
            deadline_met: true,
            frozen: false,
        }
    }

    fn miss() -> FrameHealth {
        FrameHealth {
            critical_ms: 25.0,
            deadline_met: false,
            frozen: false,
        }
    }

    fn frozen() -> FrameHealth {
        FrameHealth {
            critical_ms: 0.0,
            deadline_met: true,
            frozen: true,
        }
    }

    #[test]
    fn healthy_stream_never_breaches() {
        let mut eng = SloEngine::standard(crate::REALTIME_BUDGET_MS);
        for _ in 0..600 {
            assert!(eng.observe(&good()).is_empty());
        }
        let s = eng.summary();
        assert_eq!(s.total_breaches(), 0);
        assert!(s.objectives.iter().all(|o| !o.breached));
    }

    #[test]
    fn sustained_misses_breach_and_recover() {
        let mut eng = SloEngine::standard(crate::REALTIME_BUDGET_MS);
        let mut events = Vec::new();
        for _ in 0..300 {
            events.extend(eng.observe(&good()));
        }
        for _ in 0..120 {
            events.extend(eng.observe(&miss()));
        }
        let breach = events.iter().find(|e| e.breached).expect("breach fires");
        assert_eq!(breach.name, "critical-path-p99");
        // a long healthy tail drains the fast window and recovers
        for _ in 0..600 {
            events.extend(eng.observe(&good()));
        }
        assert!(
            events
                .iter()
                .any(|e| !e.breached && e.name == "critical-path-p99"),
            "recovery fires once the windows drain"
        );
        let s = eng.summary();
        let cp = s.objective("critical-path-p99").unwrap();
        assert!(cp.breaches >= 1);
        assert!(!cp.breached, "recovered by session end");
        assert!(cp.max_fast_burn > cp.max_slow_burn);
    }

    #[test]
    fn frozen_run_breaches_past_the_cap_only() {
        let mut eng = SloEngine::standard(crate::REALTIME_BUDGET_MS);
        for _ in 0..30 {
            let evs = eng.observe(&frozen());
            assert!(
                evs.iter().all(|e| e.name != "frozen-run"),
                "run at the cap must not breach"
            );
        }
        let evs = eng.observe(&frozen());
        assert!(
            evs.iter().any(|e| e.name == "frozen-run" && e.breached),
            "frame 31 of the stall breaches the cap of 30"
        );
        let evs = eng.observe(&good());
        assert!(
            evs.iter().any(|e| e.name == "frozen-run" && !e.breached),
            "a fresh frame recovers instantly"
        );
        assert_eq!(eng.summary().objective("frozen-run").unwrap().breaches, 1);
    }

    #[test]
    fn summary_json_is_deterministic_and_parses() {
        let mut eng = SloEngine::standard(crate::REALTIME_BUDGET_MS);
        for i in 0..400 {
            let h = if i % 3 == 0 { miss() } else { good() };
            eng.observe(&h);
        }
        let a = eng.summary().to_json();
        let b = eng.summary().to_json();
        assert_eq!(a, b);
        let parsed = crate::json::parse(&a).expect("summary json parses");
        assert_eq!(
            parsed
                .get("objectives")
                .and_then(|o| o.as_arr())
                .map(|a| a.len()),
            Some(3)
        );
    }
}
